//! The §5.2.1 conflict-and-repair walkthrough: weaken the bookseller's
//! oc2 to `ref? = true implies rating >= 3` (the paper's hypothetical),
//! watch the admission conflict `Ω' ⊭ Ω̂` appear, and let the Figure-3
//! loop apply the paper's suggested correction — strengthening the
//! comparison rule with the missing intraobject condition.
//!
//! Run with `cargo run --example conflict_repair`.

use db_interop::constraint::{Catalog, CmpOp, Formula};
use db_interop::core::fixtures;
use db_interop::core::{Integrator, IntegratorOptions};
use db_interop::spec::RuleId;

fn main() {
    let fx = fixtures::paper_fixture();

    // Weaken oc2 exactly as the paper hypothesises.
    let mut weakened = Catalog::new();
    for oc in fx.remote_catalog.all_object() {
        if oc.id.as_str() == "Bookseller.Proceedings.oc2" {
            let mut weak = oc.clone();
            weak.formula = Formula::cmp("ref?", CmpOp::Eq, true).implies(Formula::cmp(
                "rating",
                CmpOp::Ge,
                3i64,
            ));
            println!("weakened {}: {}", weak.id, weak.formula);
            weakened.add_object(weak);
        } else {
            weakened.add_object(oc.clone());
        }
    }
    for cc in fx.remote_catalog.all_class() {
        weakened.add_class(cc.clone());
    }
    for dc in fx.remote_catalog.database_constraints() {
        weakened.add_database(dc.clone());
    }

    let mut integrator = Integrator::new(
        fx.local_db,
        fx.local_catalog,
        fx.remote_db,
        weakened,
        fx.spec,
    )
    .with_options(IntegratorOptions {
        merge: fixtures::merge_options(),
        ..Default::default()
    });

    let first = integrator.run().expect("pipeline runs");
    println!("\n--- conflicts before repair ---");
    for (c, repairs) in first.conflicts.iter().zip(&first.repairs) {
        println!("{c}");
        for r in repairs {
            println!("  option: {r}");
        }
    }

    let outcomes = integrator.run_with_repairs(5).expect("loop terminates");
    println!(
        "\n--- after {} repair round(s) ---",
        outcomes.len().saturating_sub(1)
    );
    let last = outcomes.last().expect("rounds");
    if last.conflicts.is_empty() {
        println!("no conflicts remain");
    } else {
        for c in &last.conflicts {
            println!("remaining: {c}");
        }
    }
    let r3 = integrator
        .spec()
        .rules
        .iter()
        .find(|r| r.id == RuleId::new("r3"))
        .expect("r3 exists");
    println!("\nrepaired rule (the paper's corrected form):\n  {r3}");
}
