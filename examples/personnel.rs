//! The paper's introduction example: two department personnel databases.
//!
//! Shows the two observations the paper opens with: (1) `salary < 1500`
//! is a *subjective* business rule, valid only within DB1's context —
//! but still valid for employees registered in DB1 alone; (2) the
//! apparently conflicting reimbursement tariffs `{10,20}` vs `{14,24}`
//! are reconciled by the company's averaging policy, yielding the global
//! constraint `trav_reimb ∈ {12,17,22}`.
//!
//! Run with `cargo run --example personnel`.

use db_interop::core::fixtures;
use db_interop::core::{report, Integrator};
use db_interop::model::AttrName;

fn main() {
    println!("=== DB1 ===\n{}", fixtures::DB1_TM);
    println!("=== DB2 ===\n{}", fixtures::DB2_TM);
    println!("=== Specification ===\n{}", fixtures::PERSONNEL_SPEC);

    let fx = fixtures::personnel_fixture();
    let outcome = Integrator::new(
        fx.local_db,
        fx.local_catalog,
        fx.remote_db,
        fx.remote_catalog,
        fx.spec,
    )
    .run()
    .expect("personnel fixture integrates");

    println!("{}", report::render(&outcome));

    // The multi-department employee's fused reimbursement tariff.
    for g in outcome.view.objects.values() {
        if g.local.is_some() && g.remote.is_some() {
            let ssn = g.attrs.get(&AttrName::new("ssn")).cloned();
            let reimb = g.attrs.get(&AttrName::new("trav_reimb")).cloned();
            println!(
                "multi-department employee ssn={} gets averaged tariff {}",
                ssn.unwrap_or(db_interop::model::Value::Null),
                reimb.unwrap_or(db_interop::model::Value::Null)
            );
        }
    }
}
