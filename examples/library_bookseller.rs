//! The paper's running example, end to end: parses the Figure-1 TM
//! sources, runs the full methodology, and prints every §4/§5 artifact —
//! the conformed constraints, the subjectivity classification, the
//! derived global constraints (including the §5.2.1 ACM derivation), the
//! inferred hierarchy with `RefereedProceedings`, and the detected
//! conflicts with their repair options.
//!
//! Run with `cargo run --example library_bookseller`.

use db_interop::core::fixtures;
use db_interop::core::{report, Integrator, IntegratorOptions};

fn main() {
    println!(
        "=== CSLibrary (Figure 1, left) ===\n{}",
        fixtures::CSLIBRARY_TM
    );
    println!(
        "=== Bookseller (Figure 1, right) ===\n{}",
        fixtures::BOOKSELLER_TM
    );
    println!(
        "=== Integration specification (§2.2) ===\n{}",
        fixtures::PAPER_SPEC
    );

    let fx = fixtures::paper_fixture();
    let mut integrator = Integrator::new(
        fx.local_db,
        fx.local_catalog,
        fx.remote_db,
        fx.remote_catalog,
        fx.spec,
    )
    .with_options(IntegratorOptions {
        merge: fixtures::merge_options(),
        ..Default::default()
    });

    let outcome = integrator.run().expect("paper fixture integrates");
    println!("{}", report::render(&outcome));

    // The Figure-3 loop: apply suggested repairs until stable.
    let outcomes = integrator
        .run_with_repairs(5)
        .expect("repair loop terminates");
    println!(
        "=== After {} repair round(s) ===",
        outcomes.len().saturating_sub(1)
    );
    let last = outcomes.last().expect("at least one round");
    println!("{}", report::render(last));
    println!("final specification rules:");
    for rule in &integrator.spec().rules {
        println!("  {rule}");
    }
}
