//! Durability walkthrough: open a store with a write-ahead log, commit
//! work (a transaction included), "crash", and reopen to recover
//! everything committed — then snapshot to make the next open
//! replay-free.
//!
//! Run with `cargo run --example durability`.

use db_interop::constraint::Catalog;
use db_interop::model::{ClassDef, Database, Schema, Type, Value};
use db_interop::storage::{DurabilityMode, Store, Transaction, TxnOutcome};

fn schema() -> Schema {
    Schema::new(
        "Shop",
        vec![ClassDef::new("Product")
            .attr("sku", Type::Str)
            .attr("price", Type::Real)],
    )
    .expect("valid schema")
}

fn main() {
    let dir = std::env::temp_dir().join(format!("db-interop-durability-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // 1. Open a durable store: the directory holds the write-ahead log
    //    (and, in WalWithSnapshots mode, periodic snapshots).
    let mut store = Store::open(
        Database::new(schema(), 1),
        Catalog::new(),
        &dir,
        DurabilityMode::Wal,
    )
    .expect("open durable store");

    // 2. Commit work. Single operations are logged as one-op
    //    transactions; a Transaction reaches the log only as a whole.
    let widget = store
        .create(
            "Product",
            vec![("sku", "widget".into()), ("price", 9.99.into())],
        )
        .expect("insert");
    let gadget = store
        .create(
            "Product",
            vec![("sku", "gadget".into()), ("price", 24.0.into())],
        )
        .expect("insert");
    let txn = Transaction::new()
        .update(widget, "price", Value::real(7.49))
        .delete(gadget);
    assert!(matches!(
        txn.commit(&mut store),
        TxnOutcome::Committed { .. }
    ));
    println!("committed: 2 inserts + a 2-op transaction");

    // 3. "Crash": drop the store without any shutdown ceremony.
    drop(store);

    // 4. Reopen. The WAL tail replays one committed transaction at a
    //    time; a torn trailing frame (a real crash mid-append) would be
    //    discarded, never half-applied.
    let mut store = Store::open(
        Database::new(schema(), 1),
        Catalog::new(),
        &dir,
        DurabilityMode::Wal,
    )
    .expect("recover");
    println!(
        "recovered {} object(s); widget price = {}",
        store.db().len(),
        store
            .db()
            .object(widget)
            .expect("recovered")
            .get(&"price".into())
    );
    assert_eq!(store.db().len(), 1);
    assert_eq!(
        store
            .db()
            .object(widget)
            .expect("recovered")
            .get(&"price".into()),
        &Value::real(7.49)
    );

    // 5. Snapshot before a planned shutdown: the log is truncated and
    //    the next open loads the snapshot with nothing to replay.
    store.snapshot_now().expect("snapshot");
    drop(store);
    let store = Store::open(
        Database::new(schema(), 1),
        Catalog::new(),
        &dir,
        DurabilityMode::Wal,
    )
    .expect("reopen from snapshot");
    assert_eq!(store.db().len(), 1);
    println!(
        "reopened from snapshot: {} object(s), empty log",
        store.db().len()
    );

    let _ = std::fs::remove_dir_all(&dir);
}
