//! Quickstart: integrate two tiny databases and print the derived global
//! constraints.
//!
//! Run with `cargo run --example quickstart`.

use db_interop::constraint::{Catalog, CmpOp, ConstraintId, Formula, ObjectConstraint};
use db_interop::core::{report, Integrator};
use db_interop::model::{ClassDef, ClassName, Database, DbName, Schema, Type};
use db_interop::spec::{ComparisonRule, Conversion, Decision, InterCond, PropEq, Spec};

fn main() {
    // 1. Two databases describing products, each with its own rules.
    let shop_schema = Schema::new(
        "Shop",
        vec![ClassDef::new("Product")
            .attr("sku", Type::Str)
            .attr("price", Type::Real)
            .attr("stars", Type::Range(1, 5))],
    )
    .expect("valid schema");
    let market_schema = Schema::new(
        "Marketplace",
        vec![ClassDef::new("Listing")
            .attr("sku", Type::Str)
            .attr("price", Type::Real)
            .attr("stars", Type::Range(1, 5))],
    )
    .expect("valid schema");

    let shop_db_name = DbName::new("Shop");
    let mut shop_catalog = Catalog::new();
    shop_catalog.add_object(ObjectConstraint::new(
        ConstraintId::new(&shop_db_name, &ClassName::new("Product"), "oc1"),
        "Product",
        Formula::cmp("stars", CmpOp::Ge, 2i64),
    ));
    let market_db_name = DbName::new("Marketplace");
    let mut market_catalog = Catalog::new();
    market_catalog.add_object(ObjectConstraint::new(
        ConstraintId::new(&market_db_name, &ClassName::new("Listing"), "oc1"),
        "Listing",
        Formula::cmp("stars", CmpOp::Ge, 4i64),
    ));

    let mut shop = Database::new(shop_schema, 1);
    shop.create(
        "Product",
        vec![
            ("sku", "A-1".into()),
            ("price", 10.0.into()),
            ("stars", 3i64.into()),
        ],
    )
    .expect("insert");
    let mut market = Database::new(market_schema, 2);
    market
        .create(
            "Listing",
            vec![
                ("sku", "A-1".into()),
                ("price", 12.0.into()),
                ("stars", 5i64.into()),
            ],
        )
        .expect("insert");

    // 2. The integration specification: same sku = same product; the
    //    global star rating averages the two sources.
    let mut spec = Spec::new("Shop", "Marketplace");
    spec.add_rule(ComparisonRule::equality(
        "r1",
        "Product",
        "Listing",
        vec![InterCond::eq("sku", "sku")],
    ));
    spec.add_propeq(PropEq::named_after_remote(
        "Product",
        "stars",
        "Listing",
        "stars",
        Conversion::Id,
        Conversion::Id,
        Decision::Avg,
    ));

    // 3. Run the paper's methodology and print the report.
    let outcome = Integrator::new(shop, shop_catalog, market, market_catalog, spec)
        .run()
        .expect("integration succeeds");
    println!("{}", report::render(&outcome));

    // The derived global constraint: stars of merged products average the
    // local bounds — avg of [2,5] and [4,5] is [3,5], i.e. stars >= 3.
    let derived = outcome
        .global
        .object
        .iter()
        .find(|d| {
            matches!(
                d.origin,
                db_interop::core::derive::DerivationOrigin::DfCombination(_)
            )
        })
        .expect("a derived combination");
    println!("headline derivation: {derived}");
}
