//! Static spec analysis from the command line: parse two TM database
//! specifications and an integration specification, run the analyzer
//! registry (A001–A010), and print the canonical diagnostic stream —
//! without touching any object data.
//!
//! ```sh
//! cargo run --example analyze -- \
//!     assets/cslibrary.tm assets/bookseller.tm assets/paper_spec.tmspec
//! ```
//!
//! With no arguments, the bundled Figure-1 assets are analyzed (they
//! are diagnostic-free). Two extra modes:
//!
//! * `--codes` prints the diagnostic-code reference table;
//! * `--corpus` analyzes the seeded defect corpus and prints each
//!   fixture's diagnostics (CI asserts this run is noisy).
//!
//! Exit status: 0 when no error-severity diagnostic was produced, 1 on
//! errors, 2 on usage/IO problems.

use db_interop::analyze::{analyze, corpus, has_errors, render, AnalysisInput, Code};
use db_interop::lang::{parse_database, parse_spec};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("--codes") => {
            print_codes();
            return;
        }
        Some("--corpus") => {
            run_corpus();
            return;
        }
        _ => {}
    }
    let (local_path, remote_path, spec_path) = match args.as_slice() {
        [l, r, s] => (l.clone(), r.clone(), s.clone()),
        [] => (
            "assets/cslibrary.tm".to_owned(),
            "assets/bookseller.tm".to_owned(),
            "assets/paper_spec.tmspec".to_owned(),
        ),
        _ => {
            eprintln!("usage: analyze [<local.tm> <remote.tm> <spec.tmspec> | --corpus | --codes]");
            std::process::exit(2);
        }
    };
    let read = |p: &str| -> String {
        std::fs::read_to_string(p).unwrap_or_else(|e| {
            eprintln!("cannot read {p}: {e}");
            std::process::exit(2);
        })
    };
    let local = match parse_database(&read(&local_path)) {
        Ok(db) => db,
        Err(e) => {
            eprintln!("{local_path}: {e}");
            std::process::exit(2);
        }
    };
    let remote = match parse_database(&read(&remote_path)) {
        Ok(db) => db,
        Err(e) => {
            eprintln!("{remote_path}: {e}");
            std::process::exit(2);
        }
    };
    let spec = match parse_spec(&read(&spec_path), &local.schema, &remote.schema) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{spec_path}: {e}");
            std::process::exit(2);
        }
    };
    println!("analyzing {} with {}\n", local.schema.db, remote.schema.db);
    let diags = analyze(&AnalysisInput {
        local: &local.schema,
        local_catalog: &local.catalog,
        remote: &remote.schema,
        remote_catalog: &remote.catalog,
        spec: &spec,
    });
    print!("{}", render(&diags));
    if has_errors(&diags) {
        std::process::exit(1);
    }
}

fn print_codes() {
    println!("code  severity  summary");
    for code in Code::ALL {
        println!(
            "{}  {:<8}  {}",
            code.as_str(),
            code.severity().to_string(),
            code.summary()
        );
    }
}

fn run_corpus() {
    let mut total = 0usize;
    for f in corpus::defect_corpus() {
        let diags = match corpus::analyze_fixture(&f) {
            Ok(d) => d,
            Err(e) => {
                eprintln!("corpus fixture failed to parse: {e}");
                std::process::exit(2);
            }
        };
        total += diags.len();
        println!("== {} (seeds {}) ==", f.name, f.code.as_str());
        print!("{}", render(&diags));
        println!();
    }
    println!("{total} diagnostics across the corpus");
    // The corpus run is *supposed* to be noisy; a silent corpus means
    // the analyzer went blind. Signal that as an error for CI.
    if total < Code::ALL.len() {
        eprintln!("corpus produced fewer diagnostics than registered codes");
        std::process::exit(1);
    }
}
