//! File-driven integration: parse two TM database specifications and an
//! integration specification from disk, run the methodology, and print
//! the report — the shape of the design tool the paper's conclusion
//! envisions.
//!
//! ```sh
//! cargo run --example integrate_files -- \
//!     assets/cslibrary.tm assets/bookseller.tm assets/paper_spec.tmspec
//! ```
//!
//! With no arguments, the bundled Figure-1 assets are used.

use db_interop::core::{report, Integrator, IntegratorOptions};
use db_interop::lang::{parse_database, parse_spec};
use db_interop::model::Database;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (local_path, remote_path, spec_path) = match args.as_slice() {
        [l, r, s] => (l.clone(), r.clone(), s.clone()),
        [] => (
            "assets/cslibrary.tm".to_owned(),
            "assets/bookseller.tm".to_owned(),
            "assets/paper_spec.tmspec".to_owned(),
        ),
        _ => {
            eprintln!("usage: integrate_files <local.tm> <remote.tm> <spec.tmspec>");
            std::process::exit(2);
        }
    };
    let read = |p: &str| -> String {
        std::fs::read_to_string(p).unwrap_or_else(|e| {
            eprintln!("cannot read {p}: {e}");
            std::process::exit(2);
        })
    };
    let local = match parse_database(&read(&local_path)) {
        Ok(db) => db,
        Err(e) => {
            eprintln!("{local_path}: {e}");
            std::process::exit(1);
        }
    };
    let remote = match parse_database(&read(&remote_path)) {
        Ok(db) => db,
        Err(e) => {
            eprintln!("{remote_path}: {e}");
            std::process::exit(1);
        }
    };
    let spec = match parse_spec(&read(&spec_path), &local.schema, &remote.schema) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{spec_path}: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "integrating {} ({} classes, {} constraints) with {} ({} classes, {} constraints)\n",
        local.schema.db,
        local.schema.len(),
        local.catalog.len(),
        remote.schema.db,
        remote.schema.len(),
        remote.catalog.len()
    );
    let integrator = Integrator::new(
        Database::new(local.schema, 1),
        local.catalog,
        Database::new(remote.schema, 2),
        remote.catalog,
        spec,
    )
    .with_options(IntegratorOptions::default());
    match integrator.run() {
        Ok(outcome) => {
            println!("{}", report::render(&outcome));
            if !outcome.is_clean() {
                std::process::exit(3); // conflicts found — useful in scripts
            }
        }
        Err(e) => {
            eprintln!("integration failed: {e}");
            std::process::exit(1);
        }
    }
}
