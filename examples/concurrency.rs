//! Concurrency walkthrough: share one store across threads through
//! MVCC sessions, watch first-committer-wins resolve a write race, and
//! hand the recorded history to the black-box serializability oracle —
//! which finds a serial order and replays it on a fresh single-threaded
//! store to land on the same final state.
//!
//! Run with `cargo run --example concurrency`.

use db_interop::constraint::Catalog;
use db_interop::model::{AttrName, ClassDef, Database, Schema, Type, Value};
use db_interop::storage::{check, replay, MvccStore, RetryPolicy, Store, StoreError, Verdict};

fn schema() -> Schema {
    Schema::new(
        "Shop",
        vec![ClassDef::new("Account")
            .attr("owner", Type::Str)
            .attr("balance", Type::Int)],
    )
    .expect("valid schema")
}

fn base_store() -> Store {
    Store::new(Database::new(schema(), 1), Catalog::new())
}

fn main() {
    let store = MvccStore::new(base_store());
    store.record_history(true);

    // Seed two accounts through an ordinary session.
    let mut setup = store.begin();
    let alice = setup
        .create(
            "Account",
            vec![("owner", "alice".into()), ("balance", Value::Int(100))],
        )
        .expect("insert");
    let bob = setup
        .create(
            "Account",
            vec![("owner", "bob".into()), ("balance", Value::Int(100))],
        )
        .expect("insert");
    setup.commit().expect("setup commits");

    // A race: every thread reads alice's balance off its own snapshot
    // and tries to deposit 10. Snapshots mean no reader ever blocks;
    // first-committer-wins means overlapping writers lose cleanly and
    // retry — `run_txn` owns the retry loop (bounded, fresh snapshot
    // per attempt), so no deposit is ever lost and no one hand-rolls
    // `loop { … match commit() { … } }`.
    std::thread::scope(|s| {
        for _ in 0..4 {
            let store = &store;
            s.spawn(move || {
                store
                    .run_txn(RetryPolicy::default(), |t| {
                        let balance = match t
                            .get(alice)
                            .and_then(|o| o.attrs.get(&AttrName::new("balance")).cloned())
                        {
                            Some(Value::Int(b)) => b,
                            _ => unreachable!("alice was seeded"),
                        };
                        t.update(alice, "balance", Value::Int(balance + 10))?;
                        Ok::<_, StoreError>(())
                    })
                    .expect("bounded retry absorbs the write conflicts");
            });
        }
    });

    let view = store.read_view();
    let final_balance = view
        .db()
        .object(alice)
        .and_then(|o| o.attrs.get(&AttrName::new("balance")).cloned());
    println!("alice's balance after 4 racing deposits: {final_balance:?}");
    assert_eq!(final_balance, Some(Value::Int(140)), "no lost updates");
    assert_eq!(
        view.db()
            .object(bob)
            .and_then(|o| o.attrs.get(&AttrName::new("balance"))),
        Some(&Value::Int(100)),
        "bystanders untouched"
    );

    // The oracle doesn't trust the store: from read/write sets alone it
    // builds the serialization graph, demands acyclicity, and replays
    // the serial order it found through a fresh single-threaded store.
    let history = store.take_history();
    let order = match check(&history) {
        Verdict::Serializable { order, .. } => order,
        Verdict::Cyclic { cycle, .. } => panic!("non-serializable history: {cycle:?}"),
    };
    println!(
        "oracle: {} committed txns serialize as {order:?}",
        history.len()
    );
    let mut fresh = base_store();
    replay(&history, &order, &mut fresh).expect("serial replay");
    assert_eq!(
        fresh.db().object(alice).map(|o| o.attrs.clone()),
        view.db().object(alice).map(|o| o.attrs.clone()),
        "serial replay reproduces the concurrent final state"
    );
    println!("serial replay matches the concurrent final state");
}
