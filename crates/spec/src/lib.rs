//! # interop-spec
//!
//! Integration specifications (§2.2 of Vermeer & Apers, VLDB 1996): the
//! designer-supplied artifacts describing how two databases relate.
//!
//! * [`rules`] — *object comparison rules* `ρ ← Q`, where `ρ` is one of
//!   the relationships of [`relationship::Relationship`] (equality, strict
//!   similarity, approximate similarity, descriptivity) and `Q` is a
//!   conjunction of first-order predicates split into *interobject* and
//!   *intraobject* conditions (§3);
//! * [`propeq`] — *property equivalence assertions*
//!   `propeq(C.p, C'.p', cf, cf', df)`;
//! * [`convert`] — conversion functions `cf` mapping local/remote
//!   property domains to a common domain (applied to values *and* to
//!   constraint constants during conformation, §4);
//! * [`decide`] — decision functions `df` determining global property
//!   values, with the four-way classification of §5.1.2 (conflict
//!   ignoring / avoiding / settling / eliminating) that drives property
//!   subjectivity.
//!
//! # Invariants
//!
//! * **Rule conditions are split** into *interobject* predicates
//!   (relating `o` and `r`) and *intraobject* predicates (one side
//!   only) at construction — the §3 implied-constraint derivation and
//!   the merge phase's join planning both rely on the split being
//!   complete and disjoint.
//! * **Conversion functions apply to constants too**: whatever maps
//!   property *values* during conformation maps the constants inside
//!   constraints over those properties ([`Conversion::apply`] is the
//!   single code path for both), so a conformed constraint cannot drift
//!   from its conformed data.
//! * **The decision-function classification is total**: every [`Decision`]
//!   has a [`DfKind`], and the subjectivity analysis in `interop-core`
//!   treats anything not provably conflict-avoiding/-eliminating as
//!   potentially subjective — the conservative direction.

pub mod convert;
pub mod decide;
pub mod propeq;
pub mod relationship;
pub mod rules;

pub use convert::Conversion;
pub use decide::{Decision, DfKind, Side};
pub use propeq::PropEq;
pub use relationship::Relationship;
pub use rules::{ComparisonRule, InterCond, RuleId, Spec, SpecLocations};
