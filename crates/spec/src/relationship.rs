//! The object-relationship taxonomy of §2.2.

use std::fmt;

use interop_constraint::Path;
use interop_model::ClassName;

/// A relationship `ρ` that may hold between a remote object `O'` and a
/// local object `O` or class `C`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Relationship {
    /// `Eq(O', O)` — `O` and `O'` represent the same real-world object.
    Equality,
    /// `Sim(O', C)` — `O'` would locally be classified under `C`.
    StrictSimilarity {
        /// The local class `C` the remote object joins.
        class: ClassName,
    },
    /// `Sim(O', C, Cᵛ)` — locally `C ∪ {O'}` can be regarded as a more
    /// general virtual class `Cᵛ`.
    ApproxSimilarity {
        /// The local class `C`.
        class: ClassName,
        /// The virtual common superclass `Cᵛ`.
        virtual_class: ClassName,
    },
    /// `Eq(O', O.S)` / `Sim(O', C.S)` — the remote object is considered a
    /// set of values `S` describing a local object/class (object–value
    /// conflict, settled during conformation).
    Descriptivity {
        /// The local class whose attribute set `S` the remote object
        /// describes.
        class: ClassName,
        /// The attributes forming the descriptive value set `S`.
        value_attrs: Vec<Path>,
    },
}

impl Relationship {
    /// Short tag used in reports.
    pub fn tag(&self) -> &'static str {
        match self {
            Relationship::Equality => "Eq",
            Relationship::StrictSimilarity { .. } => "Sim",
            Relationship::ApproxSimilarity { .. } => "SimApprox",
            Relationship::Descriptivity { .. } => "Descr",
        }
    }

    /// The local class the relationship targets, when it targets a class.
    pub fn target_class(&self) -> Option<&ClassName> {
        match self {
            Relationship::Equality => None,
            Relationship::StrictSimilarity { class }
            | Relationship::ApproxSimilarity { class, .. }
            | Relationship::Descriptivity { class, .. } => Some(class),
        }
    }
}

impl fmt::Display for Relationship {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Relationship::Equality => write!(f, "Eq(O', O)"),
            Relationship::StrictSimilarity { class } => write!(f, "Sim(O', {class})"),
            Relationship::ApproxSimilarity {
                class,
                virtual_class,
            } => write!(f, "Sim(O', {class}, {virtual_class})"),
            Relationship::Descriptivity { class, value_attrs } => {
                write!(f, "Eq(O', {class}.{{")?;
                for (i, a) in value_attrs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, "}})")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tags_and_targets() {
        assert_eq!(Relationship::Equality.tag(), "Eq");
        assert!(Relationship::Equality.target_class().is_none());
        let s = Relationship::StrictSimilarity {
            class: ClassName::new("RefereedPubl"),
        };
        assert_eq!(s.tag(), "Sim");
        assert_eq!(s.target_class().unwrap().as_str(), "RefereedPubl");
    }

    #[test]
    fn display_forms() {
        let a = Relationship::ApproxSimilarity {
            class: ClassName::new("ScientificPubl"),
            virtual_class: ClassName::new("AnyPubl"),
        };
        assert_eq!(a.to_string(), "Sim(O', ScientificPubl, AnyPubl)");
        let d = Relationship::Descriptivity {
            class: ClassName::new("Publication"),
            value_attrs: vec![Path::parse("publisher")],
        };
        assert_eq!(d.to_string(), "Eq(O', Publication.{publisher})");
    }
}
