//! Conversion functions `cf` (§2.2, §4).
//!
//! A conversion function maps a property's local domain into the common
//! domain chosen for the conformed property. The paper uses `id` and
//! `multiply(2)` (library 1..5 rating → bookseller 1..10 scale); we also
//! provide general affine maps and lookup tables (the "correspondence
//! tables" the paper mentions).
//!
//! Conversions act on **values** (during merging) and on **domains**
//! (during constraint conformation: `rating >= 2` under `multiply(2)`
//! becomes `rating >= 4` — §4's *domain conversion* subtask).

use std::collections::BTreeMap;
use std::fmt;

use interop_constraint::{Domain, NumSet};
use interop_model::{Value, R64};

/// A conversion function.
#[derive(Clone, Debug, PartialEq)]
pub enum Conversion {
    /// The identity.
    Id,
    /// `x ↦ k · x`.
    Multiply(f64),
    /// `x ↦ a · x + b`.
    Linear {
        /// Slope.
        a: f64,
        /// Intercept.
        b: f64,
    },
    /// Explicit correspondence table.
    Table(BTreeMap<Value, Value>),
}

impl Conversion {
    /// Applies the conversion to a value. Returns `None` when the value
    /// is outside the conversion's domain (non-numeric for affine maps,
    /// missing from a table).
    pub fn apply(&self, v: &Value) -> Option<Value> {
        if v.is_null() {
            return Some(Value::Null);
        }
        match self {
            Conversion::Id => Some(v.clone()),
            Conversion::Multiply(k) => {
                let n = v.as_num()?;
                Some(num_value(n * R64::new(*k), v))
            }
            Conversion::Linear { a, b } => {
                let n = v.as_num()?;
                Some(num_value(n * R64::new(*a) + R64::new(*b), v))
            }
            Conversion::Table(map) => map.get(v).cloned(),
        }
    }

    /// The inverse conversion, when one exists (affine maps with non-zero
    /// slope invert; tables invert when injective).
    pub fn invert(&self) -> Option<Conversion> {
        match self {
            Conversion::Id => Some(Conversion::Id),
            Conversion::Multiply(k) => {
                if *k == 0.0 {
                    None
                } else {
                    Some(Conversion::Multiply(1.0 / k))
                }
            }
            Conversion::Linear { a, b } => {
                if *a == 0.0 {
                    None
                } else {
                    Some(Conversion::Linear {
                        a: 1.0 / a,
                        b: -b / a,
                    })
                }
            }
            Conversion::Table(map) => {
                let mut inv = BTreeMap::new();
                for (k, v) in map {
                    if inv.insert(v.clone(), k.clone()).is_some() {
                        return None; // not injective
                    }
                }
                Some(Conversion::Table(inv))
            }
        }
    }

    /// Image of a domain under the conversion (used when conforming
    /// constraint constants, §4). Returns `None` when the image cannot be
    /// computed exactly (conservative callers then drop the constraint
    /// from conformation and report it).
    pub fn apply_domain(&self, d: &Domain, integral_out: bool) -> Option<Domain> {
        match self {
            Conversion::Id => Some(d.clone()),
            Conversion::Multiply(k) => match d {
                Domain::Num(n) => Some(Domain::Num(n.affine_image(
                    R64::new(*k),
                    R64::new(0.0),
                    integral_out,
                ))),
                Domain::Disc(_) => None,
            },
            Conversion::Linear { a, b } => match d {
                Domain::Num(n) => Some(Domain::Num(n.affine_image(
                    R64::new(*a),
                    R64::new(*b),
                    integral_out,
                ))),
                Domain::Disc(_) => None,
            },
            Conversion::Table(map) => {
                // Pointwise image of a finite domain.
                match d {
                    Domain::Num(n) => {
                        let pts = n.enumerate(256)?;
                        let mut out = std::collections::BTreeSet::new();
                        for p in pts {
                            let key_int = Value::Int(p.get() as i64);
                            let key_real = Value::Real(p);
                            let v = map
                                .get(&key_real)
                                .or_else(|| {
                                    if p.get().fract() == 0.0 {
                                        map.get(&key_int)
                                    } else {
                                        None
                                    }
                                })?
                                .clone();
                            out.insert(v);
                        }
                        Some(Domain::from_values(&out, integral_out))
                    }
                    Domain::Disc(interop_constraint::DiscSet::In(s)) => {
                        let mut out = std::collections::BTreeSet::new();
                        for v in s {
                            out.insert(map.get(v)?.clone());
                        }
                        Some(Domain::from_values(&out, integral_out))
                    }
                    Domain::Disc(_) => None,
                }
            }
        }
    }

    /// True when the conversion is monotone non-decreasing on numerics
    /// (affine maps with non-negative slope, `id`). Tables are not
    /// analysed.
    pub fn is_monotone(&self) -> bool {
        match self {
            Conversion::Id => true,
            Conversion::Multiply(k) => *k >= 0.0,
            Conversion::Linear { a, .. } => *a >= 0.0,
            Conversion::Table(_) => false,
        }
    }

    /// Image of an attribute *type* under the conversion (used to compute
    /// the conformed attribute's type). Affine maps transform numeric
    /// types; ranges stay ranges when the endpoints stay whole.
    pub fn apply_type(&self, ty: &interop_model::Type) -> Option<interop_model::Type> {
        use interop_model::Type;
        match self {
            Conversion::Id => Some(ty.clone()),
            Conversion::Multiply(k) => affine_type(ty, *k, 0.0),
            Conversion::Linear { a, b } => affine_type(ty, *a, *b),
            Conversion::Table(map) => {
                // The output type is inferred from the table's range.
                let mut out: Option<Type> = None;
                for v in map.values() {
                    let t = match v {
                        interop_model::Value::Int(_) => Type::Int,
                        interop_model::Value::Real(_) => Type::Real,
                        interop_model::Value::Str(_) => Type::Str,
                        interop_model::Value::Bool(_) => Type::Bool,
                        _ => return None,
                    };
                    out = Some(match out {
                        None => t,
                        Some(prev) => prev.join(&t)?,
                    });
                }
                out
            }
        }
    }

    /// Image of a full numeric set helper for convenience in tests.
    pub fn apply_numset(&self, n: &NumSet, integral_out: bool) -> Option<NumSet> {
        match self.apply_domain(&Domain::Num(n.clone()), integral_out)? {
            Domain::Num(m) => Some(m),
            Domain::Disc(_) => None,
        }
    }
}

fn affine_type(ty: &interop_model::Type, a: f64, b: f64) -> Option<interop_model::Type> {
    use interop_model::Type;
    let whole = |x: f64| x.fract() == 0.0;
    match ty {
        Type::Range(lo, hi) if whole(a) && whole(b) && a > 0.0 => Some(Type::Range(
            (a * *lo as f64 + b) as i64,
            (a * *hi as f64 + b) as i64,
        )),
        Type::Range(lo, hi) if whole(a) && whole(b) && a < 0.0 => Some(Type::Range(
            (a * *hi as f64 + b) as i64,
            (a * *lo as f64 + b) as i64,
        )),
        Type::Range(_, _) => Some(Type::Real),
        Type::Int if whole(a) && whole(b) => Some(Type::Int),
        Type::Int | Type::Real => Some(Type::Real),
        _ => None,
    }
}

fn num_value(r: R64, like: &Value) -> Value {
    match like {
        Value::Int(_) if r.get().fract() == 0.0 => Value::Int(r.get() as i64),
        _ => Value::Real(r),
    }
}

impl fmt::Display for Conversion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Conversion::Id => write!(f, "id"),
            Conversion::Multiply(k) => write!(f, "multiply({k})"),
            Conversion::Linear { a, b } => write!(f, "linear({a}, {b})"),
            Conversion::Table(map) => write!(f, "table[{} entries]", map.len()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use interop_constraint::CmpOp;

    #[test]
    fn id_and_multiply() {
        assert_eq!(Conversion::Id.apply(&Value::int(3)), Some(Value::int(3)));
        assert_eq!(
            Conversion::Multiply(2.0).apply(&Value::int(2)),
            Some(Value::int(4))
        );
        assert_eq!(
            Conversion::Multiply(2.0).apply(&Value::real(1.5)),
            Some(Value::real(3.0))
        );
        assert_eq!(Conversion::Multiply(2.0).apply(&Value::str("x")), None);
        assert_eq!(
            Conversion::Multiply(2.0).apply(&Value::Null),
            Some(Value::Null)
        );
    }

    #[test]
    fn linear_and_inverse() {
        let c = Conversion::Linear { a: 2.0, b: 1.0 };
        assert_eq!(c.apply(&Value::int(3)), Some(Value::int(7)));
        let inv = c.invert().unwrap();
        assert_eq!(inv.apply(&Value::int(7)), Some(Value::int(3)));
        assert!(Conversion::Linear { a: 0.0, b: 1.0 }.invert().is_none());
        assert_eq!(
            Conversion::Multiply(2.0).invert().unwrap(),
            Conversion::Multiply(0.5)
        );
    }

    #[test]
    fn table_conversion() {
        let mut map = BTreeMap::new();
        map.insert(Value::str("NL"), Value::str("Netherlands"));
        map.insert(Value::str("IN"), Value::str("India"));
        let c = Conversion::Table(map);
        assert_eq!(c.apply(&Value::str("NL")), Some(Value::str("Netherlands")));
        assert_eq!(c.apply(&Value::str("??")), None);
        let inv = c.invert().unwrap();
        assert_eq!(inv.apply(&Value::str("India")), Some(Value::str("IN")));
    }

    #[test]
    fn non_injective_table_has_no_inverse() {
        let mut map = BTreeMap::new();
        map.insert(Value::int(1), Value::str("x"));
        map.insert(Value::int(2), Value::str("x"));
        assert!(Conversion::Table(map).invert().is_none());
    }

    #[test]
    fn paper_rating_conformation() {
        // §4: RefereedPubl.oc1 `rating >= 2` on the 1..5 scale conformed
        // through multiply(2) becomes `rating >= 4`.
        let d = Domain::Num(NumSet::from_cmp(true, CmpOp::Ge, R64::new(2.0)));
        let img = Conversion::Multiply(2.0).apply_domain(&d, true).unwrap();
        assert!(img.contains(&Value::int(4)));
        assert!(!img.contains(&Value::int(3)));
    }

    #[test]
    fn table_domain_image() {
        let mut map = BTreeMap::new();
        map.insert(Value::int(1), Value::int(10));
        map.insert(Value::int(2), Value::int(20));
        let c = Conversion::Table(map);
        let d = Domain::from_values(&[Value::int(1), Value::int(2)].into_iter().collect(), true);
        let img = c.apply_domain(&d, true).unwrap();
        assert!(img.contains(&Value::int(10)));
        assert!(img.contains(&Value::int(20)));
        assert!(!img.contains(&Value::int(1)));
        // Missing key: no exact image.
        let d2 = Domain::from_values(&[Value::int(3)].into_iter().collect(), true);
        assert!(c.apply_domain(&d2, true).is_none());
    }

    #[test]
    fn monotonicity() {
        assert!(Conversion::Id.is_monotone());
        assert!(Conversion::Multiply(2.0).is_monotone());
        assert!(!Conversion::Multiply(-1.0).is_monotone());
        assert!(!Conversion::Table(BTreeMap::new()).is_monotone());
    }
}

#[cfg(test)]
mod type_tests {
    use super::*;
    use interop_model::Type;

    #[test]
    fn multiply_scales_ranges() {
        assert_eq!(
            Conversion::Multiply(2.0).apply_type(&Type::Range(1, 5)),
            Some(Type::Range(2, 10))
        );
        assert_eq!(Conversion::Id.apply_type(&Type::Str), Some(Type::Str));
        assert_eq!(
            Conversion::Multiply(0.5).apply_type(&Type::Range(1, 5)),
            Some(Type::Real)
        );
        assert_eq!(Conversion::Multiply(2.0).apply_type(&Type::Str), None);
    }

    #[test]
    fn negative_slope_flips_range() {
        assert_eq!(
            Conversion::Linear { a: -1.0, b: 6.0 }.apply_type(&Type::Range(1, 5)),
            Some(Type::Range(1, 5))
        );
    }

    #[test]
    fn table_output_type_inferred() {
        let mut map = std::collections::BTreeMap::new();
        map.insert(Value::int(1), Value::str("low"));
        map.insert(Value::int(2), Value::str("high"));
        assert_eq!(
            Conversion::Table(map).apply_type(&Type::Int),
            Some(Type::Str)
        );
    }
}
