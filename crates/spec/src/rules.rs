//! Object comparison rules `ρ ← Q` and the integration specification.
//!
//! The condition `Q` of a rule splits into *interobject* conditions
//! (relating the two objects, e.g. `O.isbn = O'.isbn`) and *intraobject*
//! conditions (on one object only, e.g. `O'.ref? = true`) — the
//! distinction §3 of the paper builds on, because intraobject conditions
//! interact with object constraints.

use std::collections::BTreeMap;
use std::fmt;

use interop_constraint::{CmpOp, ConstraintId, Formula, Path, Status};
use interop_model::{ClassName, DbName};

use crate::decide::Side;
use crate::propeq::PropEq;
use crate::relationship::Relationship;

/// A stable rule identifier.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RuleId(String);

impl RuleId {
    /// Creates a rule id.
    pub fn new(s: impl Into<String>) -> Self {
        RuleId(s.into())
    }

    /// The id text.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for RuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl fmt::Debug for RuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "RuleId({})", self.0)
    }
}

/// An interobject condition: `subject.remote_path op counterpart.local_path`
/// (paths may be empty, denoting the object itself).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InterCond {
    /// Path on the counterpart (local) object.
    pub local: Path,
    /// Comparison operator.
    pub op: CmpOp,
    /// Path on the subject (remote) object.
    pub remote: Path,
}

impl InterCond {
    /// Equality of two attribute paths — the common case (`O.isbn =
    /// O'.isbn`).
    pub fn eq(local: &str, remote: &str) -> Self {
        InterCond {
            local: Path::parse(local),
            op: CmpOp::Eq,
            remote: Path::parse(remote),
        }
    }
}

impl fmt::Display for InterCond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "O.{} {} O'.{}", self.local, self.op, self.remote)
    }
}

/// An object comparison rule.
///
/// The *subject* is the object being relatеd (usually remote — the paper
/// mostly classifies bookseller objects into library classes — but
/// similarity can also run local→remote, as in
/// `Sim(O:ScientificPubl, Proceedings) ← contains(O.title, 'Proceed')`).
#[derive(Clone, Debug, PartialEq)]
pub struct ComparisonRule {
    /// Identifier.
    pub id: RuleId,
    /// The relationship the rule establishes.
    pub relationship: Relationship,
    /// Which database the subject object comes from.
    pub subject_side: Side,
    /// The subject object's class.
    pub subject_class: ClassName,
    /// For equality/descriptivity: the counterpart object's class on the
    /// other side.
    pub counterpart_class: Option<ClassName>,
    /// Interobject conditions (equality/descriptivity rules).
    pub inter: Vec<InterCond>,
    /// Intraobject condition on the subject object (`true` if none).
    pub intra_subject: Formula,
    /// Intraobject condition on the counterpart object (`true` if none).
    pub intra_counterpart: Formula,
}

impl ComparisonRule {
    /// An equality rule `Eq(O:local, O':remote) ← ⋀ inter ∧ intra`.
    pub fn equality(
        id: impl Into<String>,
        local_class: impl Into<ClassName>,
        remote_class: impl Into<ClassName>,
        inter: Vec<InterCond>,
    ) -> Self {
        ComparisonRule {
            id: RuleId::new(id),
            relationship: Relationship::Equality,
            subject_side: Side::Remote,
            subject_class: remote_class.into(),
            counterpart_class: Some(local_class.into()),
            inter,
            intra_subject: Formula::True,
            intra_counterpart: Formula::True,
        }
    }

    /// A strict-similarity rule `Sim(O':subject, target) ← condition` with
    /// the subject on `side`.
    pub fn similarity(
        id: impl Into<String>,
        side: Side,
        subject_class: impl Into<ClassName>,
        target_class: impl Into<ClassName>,
        condition: Formula,
    ) -> Self {
        ComparisonRule {
            id: RuleId::new(id),
            relationship: Relationship::StrictSimilarity {
                class: target_class.into(),
            },
            subject_side: side,
            subject_class: subject_class.into(),
            counterpart_class: None,
            inter: Vec::new(),
            intra_subject: condition,
            intra_counterpart: Formula::True,
        }
    }

    /// An approximate-similarity rule `Sim(O':subject, target, virt) ←
    /// condition`.
    pub fn approx_similarity(
        id: impl Into<String>,
        side: Side,
        subject_class: impl Into<ClassName>,
        target_class: impl Into<ClassName>,
        virtual_class: impl Into<ClassName>,
        condition: Formula,
    ) -> Self {
        ComparisonRule {
            id: RuleId::new(id),
            relationship: Relationship::ApproxSimilarity {
                class: target_class.into(),
                virtual_class: virtual_class.into(),
            },
            subject_side: side,
            subject_class: subject_class.into(),
            counterpart_class: None,
            inter: Vec::new(),
            intra_subject: condition,
            intra_counterpart: Formula::True,
        }
    }

    /// A descriptivity rule: the subject object corresponds to the value
    /// set `value_attrs` of the counterpart class.
    pub fn descriptivity(
        id: impl Into<String>,
        described_class: impl Into<ClassName>,
        value_attrs: Vec<&str>,
        subject_class: impl Into<ClassName>,
        inter: Vec<InterCond>,
    ) -> Self {
        let described = described_class.into();
        ComparisonRule {
            id: RuleId::new(id),
            relationship: Relationship::Descriptivity {
                class: described.clone(),
                value_attrs: value_attrs.into_iter().map(Path::parse).collect(),
            },
            subject_side: Side::Remote,
            subject_class: subject_class.into(),
            counterpart_class: Some(described),
            inter,
            intra_subject: Formula::True,
            intra_counterpart: Formula::True,
        }
    }

    /// Builder: adds an intraobject condition on the subject.
    pub fn with_subject_condition(mut self, f: Formula) -> Self {
        self.intra_subject = self.intra_subject.and(f);
        self
    }

    /// Builder: adds an intraobject condition on the counterpart.
    pub fn with_counterpart_condition(mut self, f: Formula) -> Self {
        self.intra_counterpart = self.intra_counterpart.and(f);
        self
    }

    /// Is this an equality rule?
    pub fn is_equality(&self) -> bool {
        matches!(self.relationship, Relationship::Equality)
    }

    /// Is this a (strict or approximate) similarity rule?
    pub fn is_similarity(&self) -> bool {
        matches!(
            self.relationship,
            Relationship::StrictSimilarity { .. } | Relationship::ApproxSimilarity { .. }
        )
    }

    /// Is this a descriptivity rule?
    pub fn is_descriptivity(&self) -> bool {
        matches!(self.relationship, Relationship::Descriptivity { .. })
    }
}

impl fmt::Display for ComparisonRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {} <- ", self.id, self.relationship)?;
        let mut first = true;
        for c in &self.inter {
            if !first {
                write!(f, " and ")?;
            }
            write!(f, "{c}")?;
            first = false;
        }
        if self.intra_subject != Formula::True {
            if !first {
                write!(f, " and ")?;
            }
            write!(f, "O'[{}]", self.intra_subject)?;
            first = false;
        }
        if self.intra_counterpart != Formula::True {
            if !first {
                write!(f, " and ")?;
            }
            write!(f, "O[{}]", self.intra_counterpart)?;
            first = false;
        }
        if first {
            write!(f, "true")?;
        }
        Ok(())
    }
}

/// Source positions for items of a parsed specification, used by
/// diagnostics (the static analyzer's `Location`s point here). All lines
/// are 1-based; items built programmatically simply have no entry, so
/// every lookup is optional.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SpecLocations {
    /// Source line of each comparison rule, by rule id.
    pub rules: BTreeMap<RuleId, u32>,
    /// Source line of each property equivalence, by its position in
    /// [`Spec::propeqs`] (propeqs have no stable identifier of their own).
    pub propeqs: BTreeMap<usize, u32>,
    /// Source line of each status declaration, by constraint id.
    pub declares: BTreeMap<ConstraintId, u32>,
}

impl SpecLocations {
    /// True when no positions were recorded (programmatic spec).
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty() && self.propeqs.is_empty() && self.declares.is_empty()
    }
}

/// A complete integration specification between one local and one remote
/// database (§2.2): comparison rules, property equivalences, the chosen
/// object-value conflict resolution, and the designer's objectivity
/// declarations.
#[derive(Clone, Debug, Default)]
pub struct Spec {
    /// The local database name.
    pub local_db: DbName,
    /// The remote database name.
    pub remote_db: DbName,
    /// Object comparison rules.
    pub rules: Vec<ComparisonRule>,
    /// Property equivalence assertions.
    pub propeqs: Vec<PropEq>,
    /// When true (the paper's example choice), object–value conflicts are
    /// settled by *objectifying* values (creating virtual objects);
    /// otherwise objects are *hidden* into values.
    pub object_view: bool,
    /// Designer-declared constraint statuses (objective/subjective). The
    /// integration validates these against the subjectivity rules (§5.1.3)
    /// and rejects declarations that violate "subjective values ⇒
    /// subjective constraints".
    pub status_overrides: BTreeMap<ConstraintId, Status>,
    /// Source positions recorded by the spec parser (empty for
    /// programmatically built specs).
    pub locations: SpecLocations,
}

impl Spec {
    /// Creates an empty specification between two databases, defaulting to
    /// the object view.
    pub fn new(local_db: impl Into<DbName>, remote_db: impl Into<DbName>) -> Self {
        Spec {
            local_db: local_db.into(),
            remote_db: remote_db.into(),
            rules: Vec::new(),
            propeqs: Vec::new(),
            object_view: true,
            status_overrides: BTreeMap::new(),
            locations: SpecLocations::default(),
        }
    }

    /// Adds a comparison rule.
    pub fn add_rule(&mut self, r: ComparisonRule) -> &mut Self {
        self.rules.push(r);
        self
    }

    /// Adds a property equivalence.
    pub fn add_propeq(&mut self, p: PropEq) -> &mut Self {
        self.propeqs.push(p);
        self
    }

    /// Declares a constraint objective or subjective.
    pub fn declare_status(&mut self, id: ConstraintId, status: Status) -> &mut Self {
        self.status_overrides.insert(id, status);
        self
    }

    /// All equality rules.
    pub fn equality_rules(&self) -> impl Iterator<Item = &ComparisonRule> {
        self.rules.iter().filter(|r| r.is_equality())
    }

    /// All similarity rules (strict and approximate).
    pub fn similarity_rules(&self) -> impl Iterator<Item = &ComparisonRule> {
        self.rules.iter().filter(|r| r.is_similarity())
    }

    /// All descriptivity rules.
    pub fn descriptivity_rules(&self) -> impl Iterator<Item = &ComparisonRule> {
        self.rules.iter().filter(|r| r.is_descriptivity())
    }

    /// Property equivalences whose local side is `class.path` (exact
    /// match; hierarchy-aware lookup lives in `interop-conform` where the
    /// schema is available).
    pub fn propeqs_for_local(&self, class: &ClassName, path: &Path) -> Vec<&PropEq> {
        self.propeqs
            .iter()
            .filter(|p| &p.local_class == class && &p.local_path == path)
            .collect()
    }

    /// Property equivalences whose remote side is `class.path`.
    pub fn propeqs_for_remote(&self, class: &ClassName, path: &Path) -> Vec<&PropEq> {
        self.propeqs
            .iter()
            .filter(|p| &p.remote_class == class && &p.remote_path == path)
            .collect()
    }

    /// A rule by id.
    pub fn rule(&self, id: &RuleId) -> Option<&ComparisonRule> {
        self.rules.iter().find(|r| &r.id == id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::convert::Conversion;
    use crate::decide::Decision;

    fn sample_spec() -> Spec {
        let mut spec = Spec::new("CSLibrary", "Bookseller");
        spec.add_rule(ComparisonRule::equality(
            "r_eq_pub_item",
            "Publication",
            "Item",
            vec![InterCond::eq("isbn", "isbn")],
        ));
        spec.add_rule(ComparisonRule::similarity(
            "r_sim_proc_ref",
            Side::Remote,
            "Proceedings",
            "RefereedPubl",
            Formula::cmp("ref?", CmpOp::Eq, true),
        ));
        spec.add_rule(ComparisonRule::similarity(
            "r_sim_sci_proc",
            Side::Local,
            "ScientificPubl",
            "Proceedings",
            Formula::Contains(interop_constraint::Expr::attr("title"), "Proceed".into()),
        ));
        spec.add_rule(ComparisonRule::descriptivity(
            "r_descr_publisher",
            "Publication",
            vec!["publisher"],
            "Publisher",
            vec![InterCond::eq("publisher", "name")],
        ));
        spec.add_propeq(PropEq::named_after_remote(
            "ScientificPubl",
            "rating",
            "Proceedings",
            "rating",
            Conversion::Multiply(2.0),
            Conversion::Id,
            Decision::Avg,
        ));
        spec
    }

    #[test]
    fn rule_kind_filters() {
        let s = sample_spec();
        assert_eq!(s.equality_rules().count(), 1);
        assert_eq!(s.similarity_rules().count(), 2);
        assert_eq!(s.descriptivity_rules().count(), 1);
        assert_eq!(s.rules.len(), 4);
    }

    #[test]
    fn rule_display() {
        let s = sample_spec();
        let r = s.rule(&RuleId::new("r_sim_proc_ref")).unwrap();
        assert_eq!(
            r.to_string(),
            "[r_sim_proc_ref] Sim(O', RefereedPubl) <- O'[ref? = true]"
        );
        let eq = s.rule(&RuleId::new("r_eq_pub_item")).unwrap();
        assert_eq!(
            eq.to_string(),
            "[r_eq_pub_item] Eq(O', O) <- O.isbn = O'.isbn"
        );
    }

    #[test]
    fn similarity_direction_recorded() {
        let s = sample_spec();
        let r = s.rule(&RuleId::new("r_sim_sci_proc")).unwrap();
        assert_eq!(r.subject_side, Side::Local);
        assert_eq!(r.subject_class.as_str(), "ScientificPubl");
        assert_eq!(
            r.relationship.target_class().unwrap().as_str(),
            "Proceedings"
        );
    }

    #[test]
    fn propeq_lookup() {
        let s = sample_spec();
        let found = s.propeqs_for_local(&ClassName::new("ScientificPubl"), &Path::parse("rating"));
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].df, Decision::Avg);
        assert!(s
            .propeqs_for_local(&ClassName::new("Publication"), &Path::parse("rating"))
            .is_empty());
        let remote = s.propeqs_for_remote(&ClassName::new("Proceedings"), &Path::parse("rating"));
        assert_eq!(remote.len(), 1);
    }

    #[test]
    fn status_overrides() {
        let mut s = sample_spec();
        let id = ConstraintId::derived("CSLibrary.Publication.cc2");
        s.declare_status(id.clone(), Status::Subjective);
        assert_eq!(s.status_overrides.get(&id), Some(&Status::Subjective));
    }

    #[test]
    fn rule_condition_builders() {
        let r = ComparisonRule::similarity(
            "r",
            Side::Remote,
            "Proceedings",
            "RefereedPubl",
            Formula::cmp("ref?", CmpOp::Eq, true),
        )
        .with_subject_condition(Formula::cmp("rating", CmpOp::Ge, 4i64));
        match &r.intra_subject {
            Formula::And(fs) => assert_eq!(fs.len(), 2),
            other => panic!("expected conjunction, got {other}"),
        }
    }
}
