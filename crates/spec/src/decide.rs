//! Decision functions `df` and their four-way classification (§5.1.2).
//!
//! A decision function determines the global value of a property given
//! (conformed) local and remote values. The paper requires idempotence,
//! `∀a : df(a, a) = a`, and classifies decision functions by how they
//! handle value conflicts; the classification determines property
//! subjectivity:
//!
//! | kind                 | examples      | local prop | remote prop |
//! |----------------------|---------------|------------|-------------|
//! | conflict ignoring    | `any`         | objective  | objective   |
//! | conflict avoiding    | `trust(DB)`   | trusted side objective, other subjective |
//! | conflict settling    | `max`, `min`  | subjective | subjective  |
//! | conflict eliminating | `avg`, `union`| subjective | subjective  |

use std::fmt;

use interop_constraint::Domain;
use interop_model::{Value, R64};

/// Which component database a side-sensitive function refers to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Side {
    /// The local database (`s` in the paper's conventions).
    Local,
    /// The remote database (`s'`).
    Remote,
}

impl Side {
    /// The opposite side.
    pub fn other(self) -> Side {
        match self {
            Side::Local => Side::Remote,
            Side::Remote => Side::Local,
        }
    }
}

impl fmt::Display for Side {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Side::Local => "local",
            Side::Remote => "remote",
        })
    }
}

/// The paper's four decision-function kinds (§5.1.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DfKind {
    /// Non-deterministically pick either value (`any`).
    Ignoring,
    /// Always pick the value of one designated side (`trust`).
    Avoiding(Side),
    /// Pick one of the two values by comparing them (`max`, `min`).
    Settling,
    /// Compute a new value from both (`avg`, `union`).
    Eliminating,
}

impl fmt::Display for DfKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DfKind::Ignoring => write!(f, "conflict ignoring"),
            DfKind::Avoiding(s) => write!(f, "conflict avoiding (trusts {s})"),
            DfKind::Settling => write!(f, "conflict settling"),
            DfKind::Eliminating => write!(f, "conflict eliminating"),
        }
    }
}

/// A decision function.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Decision {
    /// `any` — non-deterministic choice; both properties objective.
    Any,
    /// `trust(side)` — the designated side is the primary source.
    Trust(Side),
    /// `max` — the larger value wins.
    Max,
    /// `min` — the smaller value wins.
    Min,
    /// `avg` — the arithmetic mean.
    Avg,
    /// `union` — set union (for set-valued properties).
    Union,
}

impl Decision {
    /// The §5.1.2 classification.
    pub fn kind(self) -> DfKind {
        match self {
            Decision::Any => DfKind::Ignoring,
            Decision::Trust(s) => DfKind::Avoiding(s),
            Decision::Max | Decision::Min => DfKind::Settling,
            Decision::Avg | Decision::Union => DfKind::Eliminating,
        }
    }

    /// Is the property on `side` *subjective* under this decision
    /// function? (§5.1.2: ignoring → both objective; avoiding → only the
    /// trusted side objective; settling/eliminating → both subjective.)
    pub fn subjective(self, side: Side) -> bool {
        match self.kind() {
            DfKind::Ignoring => false,
            DfKind::Avoiding(trusted) => side != trusted,
            DfKind::Settling | DfKind::Eliminating => true,
        }
    }

    /// Applies the function to two non-null values. `None` when the
    /// values do not fit the function (e.g. `avg` of strings). For `Any`,
    /// the *local* value is returned (a fixed representative of the
    /// non-deterministic choice; the non-determinism itself is modelled by
    /// the implicit-conflict analysis, §5.2.1).
    pub fn apply(self, local: &Value, remote: &Value) -> Option<Value> {
        match (local.is_null(), remote.is_null()) {
            (true, true) => return Some(Value::Null),
            (true, false) => return Some(remote.clone()),
            (false, true) => return Some(local.clone()),
            _ => {}
        }
        match self {
            Decision::Any => Some(local.clone()),
            Decision::Trust(Side::Local) => Some(local.clone()),
            Decision::Trust(Side::Remote) => Some(remote.clone()),
            Decision::Max => match local.compare(remote)? {
                std::cmp::Ordering::Less => Some(remote.clone()),
                _ => Some(local.clone()),
            },
            Decision::Min => match local.compare(remote)? {
                std::cmp::Ordering::Greater => Some(remote.clone()),
                _ => Some(local.clone()),
            },
            Decision::Avg => {
                let (a, b) = (local.as_num()?, remote.as_num()?);
                let avg = (a + b) / R64::new(2.0);
                // Keep integer typing when both inputs and the mean are whole.
                if matches!((local, remote), (Value::Int(_), Value::Int(_)))
                    && avg.get().fract() == 0.0
                {
                    Some(Value::Int(avg.get() as i64))
                } else {
                    Some(Value::Real(avg))
                }
            }
            Decision::Union => {
                let (a, b) = (local.as_set()?, remote.as_set()?);
                Some(Value::Set(a.union(b).cloned().collect()))
            }
        }
    }

    /// Checks the paper's idempotence requirement `df(a, a) = a` for one
    /// sample (property tests sweep it across the value space).
    pub fn idempotent_on(self, a: &Value) -> bool {
        match self.apply(a, a) {
            Some(v) => v.sem_eq(a) || (a.is_null() && v.is_null()),
            None => true, // outside the function's domain — vacuous
        }
    }

    /// Combines local and remote constraint **domains** through the
    /// decision function: the image `{df(a,b) | a ∈ D, b ∈ D'}`.
    ///
    /// Returns `None` when the image cannot be computed exactly for this
    /// function/domain combination; the derivation engine then refrains
    /// from deriving a global constraint (conservative, matching the
    /// paper's necessary conditions).
    pub fn combine_domains(self, local: &Domain, remote: &Domain) -> Option<Domain> {
        match self {
            Decision::Trust(Side::Local) => Some(local.clone()),
            Decision::Trust(Side::Remote) => Some(remote.clone()),
            // `any` picks either value: the global value set is the union.
            Decision::Any => Some(local.union(remote)),
            Decision::Max => numeric_combine(local, remote, |a, b| a.max(b)),
            Decision::Min => numeric_combine(local, remote, |a, b| a.min(b)),
            Decision::Avg => numeric_combine(local, remote, |a, b| (a + b) / R64::new(2.0)),
            Decision::Union => local.combine_pointwise(remote, 64, |a, b| {
                let (x, y) = (a.as_set()?, b.as_set()?);
                Some(Value::Set(x.union(y).cloned().collect()))
            }),
        }
    }
}

fn numeric_combine(
    local: &Domain,
    remote: &Domain,
    f: impl Fn(R64, R64) -> R64 + Copy,
) -> Option<Domain> {
    let (a, b) = (local.as_num()?, remote.as_num()?);
    // `avg` of two integral scales is generally half-integral; `min`/`max`
    // stay integral. Conservatively mark the output integral only when
    // both inputs are and the function preserves integrality on a sample.
    let integral_out =
        a.integral && b.integral && f(R64::new(1.0), R64::new(2.0)).get().fract() == 0.0;
    Some(Domain::Num(a.combine_monotone(b, integral_out, f)))
}

impl fmt::Display for Decision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Decision::Any => write!(f, "any"),
            Decision::Trust(Side::Local) => write!(f, "trust(local)"),
            Decision::Trust(Side::Remote) => write!(f, "trust(remote)"),
            Decision::Max => write!(f, "max"),
            Decision::Min => write!(f, "min"),
            Decision::Avg => write!(f, "avg"),
            Decision::Union => write!(f, "union"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use interop_constraint::{CmpOp, NumSet};

    #[test]
    fn kinds_match_paper_table() {
        assert_eq!(Decision::Any.kind(), DfKind::Ignoring);
        assert_eq!(
            Decision::Trust(Side::Local).kind(),
            DfKind::Avoiding(Side::Local)
        );
        assert_eq!(Decision::Max.kind(), DfKind::Settling);
        assert_eq!(Decision::Min.kind(), DfKind::Settling);
        assert_eq!(Decision::Avg.kind(), DfKind::Eliminating);
        assert_eq!(Decision::Union.kind(), DfKind::Eliminating);
    }

    #[test]
    fn subjectivity_per_side() {
        // §5.1.2: any → both objective.
        assert!(!Decision::Any.subjective(Side::Local));
        assert!(!Decision::Any.subjective(Side::Remote));
        // trust(local): ourprice objective, shopprice-side subjective.
        assert!(!Decision::Trust(Side::Local).subjective(Side::Local));
        assert!(Decision::Trust(Side::Local).subjective(Side::Remote));
        // settling/eliminating: both subjective.
        for df in [Decision::Max, Decision::Min, Decision::Avg, Decision::Union] {
            assert!(df.subjective(Side::Local));
            assert!(df.subjective(Side::Remote));
        }
    }

    #[test]
    fn apply_semantics() {
        assert_eq!(
            Decision::Avg.apply(&Value::int(4), &Value::int(6)),
            Some(Value::int(5))
        );
        assert_eq!(
            Decision::Avg.apply(&Value::int(1), &Value::int(2)),
            Some(Value::real(1.5))
        );
        assert_eq!(
            Decision::Max.apply(&Value::real(26.0), &Value::real(22.0)),
            Some(Value::real(26.0))
        );
        assert_eq!(
            Decision::Min.apply(&Value::real(26.0), &Value::real(22.0)),
            Some(Value::real(22.0))
        );
        assert_eq!(
            Decision::Trust(Side::Remote).apply(&Value::int(1), &Value::int(9)),
            Some(Value::int(9))
        );
        let u = Decision::Union
            .apply(&Value::str_set(["a"]), &Value::str_set(["b"]))
            .unwrap();
        assert_eq!(u, Value::str_set(["a", "b"]));
        assert_eq!(Decision::Avg.apply(&Value::str("x"), &Value::int(1)), None);
    }

    #[test]
    fn null_handling_prefers_present_value() {
        assert_eq!(
            Decision::Avg.apply(&Value::Null, &Value::int(6)),
            Some(Value::int(6))
        );
        assert_eq!(
            Decision::Trust(Side::Local).apply(&Value::Null, &Value::int(6)),
            Some(Value::int(6))
        );
        assert_eq!(
            Decision::Max.apply(&Value::Null, &Value::Null),
            Some(Value::Null)
        );
    }

    #[test]
    fn idempotence_requirement() {
        for df in [
            Decision::Any,
            Decision::Trust(Side::Local),
            Decision::Trust(Side::Remote),
            Decision::Max,
            Decision::Min,
            Decision::Avg,
            Decision::Union,
        ] {
            assert!(df.idempotent_on(&Value::int(7)), "{df} not idempotent");
            assert!(df.idempotent_on(&Value::real(2.5)));
            assert!(df.idempotent_on(&Value::str_set(["x", "y"])));
        }
    }

    #[test]
    fn combine_domains_avg_matches_paper() {
        // §5.2.1: local rating >= 4 (conformed), remote rating >= 6,
        // df = avg ⇒ global rating >= 5.
        let local = Domain::Num(NumSet::from_cmp(false, CmpOp::Ge, R64::new(4.0)));
        let remote = Domain::Num(NumSet::from_cmp(false, CmpOp::Ge, R64::new(6.0)));
        let g = Decision::Avg.combine_domains(&local, &remote).unwrap();
        assert!(g.contains(&Value::real(5.0)));
        assert!(!g.contains(&Value::real(4.9)));
    }

    #[test]
    fn combine_domains_intro_example() {
        // §1: {10,20} and {14,24} under avg ⇒ {12,17,22}.
        let local = Domain::from_values(
            &[Value::int(10), Value::int(20)].into_iter().collect(),
            true,
        );
        let remote = Domain::from_values(
            &[Value::int(14), Value::int(24)].into_iter().collect(),
            true,
        );
        let g = Decision::Avg.combine_domains(&local, &remote).unwrap();
        for v in [12, 17, 22] {
            assert!(g.contains(&Value::int(v)), "{v} missing");
        }
        assert!(!g.contains(&Value::int(10)));
        assert!(!g.contains(&Value::int(24)));
    }

    #[test]
    fn combine_domains_trust_projects_one_side() {
        let local = Domain::Num(NumSet::from_cmp(false, CmpOp::Le, R64::new(10.0)));
        let remote = Domain::Num(NumSet::full(false));
        let g = Decision::Trust(Side::Local)
            .combine_domains(&local, &remote)
            .unwrap();
        assert_eq!(g, local);
    }

    #[test]
    fn combine_domains_any_is_union() {
        let local = Domain::Num(NumSet::from_cmp(false, CmpOp::Le, R64::new(1.0)));
        let remote = Domain::Num(NumSet::from_cmp(false, CmpOp::Ge, R64::new(9.0)));
        let g = Decision::Any.combine_domains(&local, &remote).unwrap();
        assert!(g.contains(&Value::real(0.0)));
        assert!(g.contains(&Value::real(10.0)));
        assert!(!g.contains(&Value::real(5.0)));
    }

    #[test]
    fn combine_domains_union_of_sets() {
        let mk = |items: &[&str]| -> Value { Value::str_set(items.iter().copied()) };
        let local = Domain::from_values(&[mk(&["a"])].into_iter().collect(), false);
        let remote = Domain::from_values(&[mk(&["b"]), mk(&["c"])].into_iter().collect(), false);
        let g = Decision::Union.combine_domains(&local, &remote).unwrap();
        assert!(g.contains(&mk(&["a", "b"])));
        assert!(g.contains(&mk(&["a", "c"])));
        assert!(!g.contains(&mk(&["b", "c"])));
    }

    #[test]
    fn combine_domains_avg_on_strings_fails() {
        let d = Domain::from_values(&[Value::str("x")].into_iter().collect(), false);
        assert!(Decision::Avg.combine_domains(&d, &d).is_none());
    }
}
