//! Property equivalence assertions `propeq(C.p, C'.p', cf, cf', df)`.

use std::fmt;

use interop_constraint::Path;
use interop_model::ClassName;

use crate::convert::Conversion;
use crate::decide::Decision;

/// One property-equivalence assertion (§2.2): the local property `C.p`
/// and the remote property `C'.p'` describe the same real-world property;
/// `cf`/`cf'` convert both into a common domain, and `df` decides the
/// global value when both sides supply one.
#[derive(Clone, Debug, PartialEq)]
pub struct PropEq {
    /// Local class.
    pub local_class: ClassName,
    /// Local property (basic or derived).
    pub local_path: Path,
    /// Remote class.
    pub remote_class: ClassName,
    /// Remote property.
    pub remote_path: Path,
    /// Local conversion function into the common domain.
    pub cf_local: Conversion,
    /// Remote conversion function into the common domain.
    pub cf_remote: Conversion,
    /// Decision function for the global value.
    pub df: Decision,
    /// The conformed (common) property name; defaults to the remote
    /// head attribute when the paper renames the local one (e.g.
    /// `ourprice` → `libprice`), but the designer may pick any name.
    pub conformed_name: Path,
}

impl PropEq {
    /// Creates a property equivalence with an explicit conformed name.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        local_class: impl Into<ClassName>,
        local_path: &str,
        remote_class: impl Into<ClassName>,
        remote_path: &str,
        cf_local: Conversion,
        cf_remote: Conversion,
        df: Decision,
        conformed_name: &str,
    ) -> Self {
        PropEq {
            local_class: local_class.into(),
            local_path: Path::parse(local_path),
            remote_class: remote_class.into(),
            remote_path: Path::parse(remote_path),
            cf_local,
            cf_remote,
            df,
            conformed_name: Path::parse(conformed_name),
        }
    }

    /// Creates a property equivalence whose conformed name is the remote
    /// property's name (the common case in the paper's example).
    pub fn named_after_remote(
        local_class: impl Into<ClassName>,
        local_path: &str,
        remote_class: impl Into<ClassName>,
        remote_path: &str,
        cf_local: Conversion,
        cf_remote: Conversion,
        df: Decision,
    ) -> Self {
        PropEq::new(
            local_class,
            local_path,
            remote_class,
            remote_path,
            cf_local,
            cf_remote,
            df,
            remote_path,
        )
    }
}

impl fmt::Display for PropEq {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "propeq({}.{}, {}.{}, {}, {}, {})",
            self.local_class,
            self.local_path,
            self.remote_class,
            self.remote_path,
            self.cf_local,
            self.cf_remote,
            self.df
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decide::Side;

    #[test]
    fn display_matches_paper_syntax() {
        let pe = PropEq::new(
            "Publication",
            "ourprice",
            "Item",
            "libprice",
            Conversion::Id,
            Conversion::Id,
            Decision::Trust(Side::Local),
            "libprice",
        );
        assert_eq!(
            pe.to_string(),
            "propeq(Publication.ourprice, Item.libprice, id, id, trust(local))"
        );
        assert_eq!(pe.conformed_name, Path::parse("libprice"));
    }

    #[test]
    fn named_after_remote_defaults() {
        let pe = PropEq::named_after_remote(
            "ScientificPubl",
            "rating",
            "Proceedings",
            "rating",
            Conversion::Multiply(2.0),
            Conversion::Id,
            Decision::Avg,
        );
        assert_eq!(pe.conformed_name, Path::parse("rating"));
        assert_eq!(pe.cf_local, Conversion::Multiply(2.0));
    }
}
