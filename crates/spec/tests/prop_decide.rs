//! Property-based tests for decision and conversion functions: the
//! paper's idempotence requirement `df(a,a)=a`, soundness of domain
//! combination, and inverse-conversion round trips.

use interop_constraint::{CmpOp, Domain, NumSet};
use interop_model::{Value, R64};
use interop_spec::{Conversion, Decision, Side};
use proptest::prelude::*;

fn all_dfs() -> Vec<Decision> {
    vec![
        Decision::Any,
        Decision::Trust(Side::Local),
        Decision::Trust(Side::Remote),
        Decision::Max,
        Decision::Min,
        Decision::Avg,
        Decision::Union,
    ]
}

fn arb_scalar() -> impl Strategy<Value = Value> {
    prop_oneof![
        (-1000i64..1000).prop_map(Value::Int),
        (-1000i64..1000).prop_map(|i| Value::real(i as f64 / 4.0)),
        prop::collection::btree_set("[a-c]{1,3}", 0..4).prop_map(|s| Value::str_set(s.into_iter())),
        any::<bool>().prop_map(Value::Bool),
        "[a-z]{0,6}".prop_map(Value::str),
    ]
}

fn arb_points() -> impl Strategy<Value = Domain> {
    prop::collection::btree_set(-50i64..50, 1..6)
        .prop_map(|s| Domain::Num(NumSet::points(true, s.into_iter().map(R64::from))))
}

fn arb_halfline() -> impl Strategy<Value = Domain> {
    (
        prop::sample::select(vec![CmpOp::Le, CmpOp::Ge, CmpOp::Lt, CmpOp::Gt]),
        -50i64..50,
    )
        .prop_map(|(op, b)| Domain::Num(NumSet::from_cmp(false, op, R64::from(b))))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// §2.2's requirement: ∀a: df(a, a) = a.
    #[test]
    fn decision_functions_are_idempotent(v in arb_scalar()) {
        for df in all_dfs() {
            prop_assert!(df.idempotent_on(&v), "{df} not idempotent on {v}");
        }
    }

    /// Whatever the decision function returns for members of two domains
    /// must lie inside the combined domain (soundness of the image).
    #[test]
    fn combine_domains_covers_applications(a in arb_points(), b in arb_points()) {
        for df in all_dfs() {
            let Some(combined) = df.combine_domains(&a, &b) else { continue };
            let (Domain::Num(na), Domain::Num(nb)) = (&a, &b) else { unreachable!() };
            for x in na.enumerate(64).expect("finite") {
                for y in nb.enumerate(64).expect("finite") {
                    let (vx, vy) = (Value::Real(x), Value::Real(y));
                    if let Some(g) = df.apply(&vx, &vy) {
                        prop_assert!(
                            combined.contains(&g),
                            "{df}({vx}, {vy}) = {g} escapes {combined}"
                        );
                    }
                }
            }
        }
    }

    /// Same soundness on half-line domains, sampled.
    #[test]
    fn combine_halflines_covers_samples(a in arb_halfline(), b in arb_halfline()) {
        for df in [Decision::Max, Decision::Min, Decision::Avg] {
            let Some(combined) = df.combine_domains(&a, &b) else { continue };
            for x in -60..60i64 {
                for y in [-55i64, -7, 0, 13, 42] {
                    let (vx, vy) = (Value::real(x as f64), Value::real(y as f64));
                    if a.contains(&vx) && b.contains(&vy) {
                        let g = df.apply(&vx, &vy).expect("numeric");
                        prop_assert!(
                            combined.contains(&g),
                            "{df}({vx}, {vy}) = {g} escapes {combined}"
                        );
                    }
                }
            }
        }
    }

    /// Affine conversions invert exactly on their numeric domain.
    #[test]
    fn conversion_inverse_round_trip(v in -10_000i64..10_000, k in 1i64..20, c in -50i64..50) {
        for cv in [
            Conversion::Id,
            Conversion::Multiply(k as f64),
            Conversion::Linear { a: k as f64, b: c as f64 },
        ] {
            let inv = cv.invert().expect("invertible");
            let x = Value::real(v as f64 / 8.0);
            let there = cv.apply(&x).expect("numeric");
            let back = inv.apply(&there).expect("numeric");
            // Floating-point round trip: exact for dyadic slopes, within
            // an ulp-scale tolerance otherwise.
            let (xa, xb) = (x.as_num().expect("real"), back.as_num().expect("real"));
            prop_assert!(
                (xa.get() - xb.get()).abs() <= 1e-9 * (1.0 + xa.get().abs()),
                "{cv} round trip failed: {x} -> {there} -> {back}"
            );
        }
    }

    /// Domain images of conversions cover applications.
    #[test]
    fn conversion_domain_image_sound(vals in prop::collection::btree_set(-50i64..50, 1..6),
                                     k in -5i64..5, c in -9i64..9) {
        prop_assume!(k != 0);
        let cv = Conversion::Linear { a: k as f64, b: c as f64 };
        let dom = Domain::Num(NumSet::points(true, vals.iter().map(|&v| R64::from(v))));
        let img = cv.apply_domain(&dom, false).expect("affine image");
        for &v in &vals {
            let out = cv.apply(&Value::Int(v)).expect("numeric");
            prop_assert!(img.contains(&out), "{cv}({v}) = {out} escapes {img}");
        }
    }

    /// Trust/any never invent values: the combined domain is covered by
    /// the union of the inputs.
    #[test]
    fn picking_functions_stay_within_inputs(a in arb_points(), b in arb_points()) {
        for df in [Decision::Any, Decision::Trust(Side::Local), Decision::Trust(Side::Remote),
                   Decision::Max, Decision::Min] {
            let combined = df.combine_domains(&a, &b).expect("numeric combine");
            let hull = a.union(&b);
            for v in -50i64..50 {
                let val = Value::Int(v);
                if combined.contains(&val) {
                    prop_assert!(
                        hull.contains(&val),
                        "{df} invented {val}: {combined} vs inputs {a} / {b}"
                    );
                }
            }
        }
    }
}
