//! Durability × concurrency: commits from many threads serialize into
//! the WAL under the commit mutex, so the log's `Begin…Commit` run
//! order must be (a) exactly the commit-timestamp order of the write
//! transactions and (b) a valid serialization order of the recorded
//! history — and truncating the log at *any* byte must recover the
//! state of a commit-order prefix, exactly as in the single-threaded
//! crash sweep (`prop_crash_recovery.rs`).

use std::path::PathBuf;

use interop_constraint::{Catalog, CmpOp, Formula};
use interop_model::{ClassDef, Database, ObjectId, Schema, Type, Value};
use interop_storage::wal::{
    list_segments, scan_segments, scan_wal, segment_path, GroupCommitPolicy, WalScan,
};
use interop_storage::{
    check_order, replay, DurabilityMode, MvccStore, Store, TxnRecord, WalRecord,
};

fn schema() -> Schema {
    Schema::new(
        "S",
        vec![ClassDef::new("Item")
            .attr("k", Type::Str)
            .attr("v", Type::Range(0, 100))],
    )
    .expect("static schema")
}

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("interop-mvccdur-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn open_durable(dir: &std::path::Path) -> Store {
    Store::open(
        Database::new(schema(), 1),
        Catalog::new(),
        dir,
        DurabilityMode::Wal,
    )
    .expect("open durable")
}

type ObjDump = (ObjectId, Vec<(String, Value)>);

fn dump(s: &Store) -> Vec<ObjDump> {
    let mut out: Vec<_> = s
        .db()
        .objects()
        .map(|o| {
            (
                o.id,
                o.attrs
                    .iter()
                    .map(|(a, v)| (a.to_string(), v.clone()))
                    .collect(),
            )
        })
        .collect();
    out.sort_by_key(|(id, _)| *id);
    out
}

/// Deterministic per-thread randomness, as in the serializability
/// property suite.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed.wrapping_mul(2685821657736338717).max(1))
    }
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(2685821657736338717)
    }
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

/// Runs a concurrent workload over a durable shared store, returning
/// the recorded history (the store handle is consumed and dropped, so
/// the WAL file is free to scan afterwards).
fn run_concurrent(
    dir: &std::path::Path,
    threads: usize,
    per_thread: usize,
    seed: u64,
) -> Vec<TxnRecord> {
    let store = MvccStore::new(open_durable(dir));
    store.record_history(true);

    let mut setup = store.begin();
    let mut seeds = Vec::new();
    for i in 0..4i64 {
        seeds.push(
            setup
                .create(
                    "Item",
                    vec![("k", format!("s{i}").as_str().into()), ("v", i.into())],
                )
                .expect("seed insert"),
        );
    }
    setup.commit().expect("seed commit");

    std::thread::scope(|s| {
        for th in 0..threads {
            let store = store.clone();
            let seeds = seeds.clone();
            s.spawn(move || {
                let mut rng = Rng::new(seed ^ ((th as u64 + 1) << 32));
                for _ in 0..per_thread {
                    let mut t = store.begin();
                    for _ in 0..=rng.below(2) {
                        match rng.below(8) {
                            0..=2 => {
                                let k = format!("w{}", rng.next());
                                let _ = t.create(
                                    "Item",
                                    vec![
                                        ("k", k.as_str().into()),
                                        ("v", (rng.below(100) as i64).into()),
                                    ],
                                );
                            }
                            3..=5 => {
                                let id = seeds[rng.below(seeds.len() as u64) as usize];
                                let _ = t.update(id, "v", Value::int(rng.below(100) as i64));
                            }
                            6 => {
                                let id = seeds[rng.below(seeds.len() as u64) as usize];
                                let _ = t.remove(id);
                            }
                            _ => {
                                let _ = t.query(
                                    "Item",
                                    &Formula::cmp("v", CmpOp::Lt, rng.below(100) as i64),
                                );
                            }
                        }
                    }
                    let _ = t.commit();
                }
            });
        }
    });

    let history = store.take_history();
    let inner = store.into_store().expect("sole handle after join");
    drop(inner); // release the WAL file handle
    history
}

/// The complete `Begin…Commit` runs of a scanned WAL: for each, the
/// byte offset one past its `Commit` frame.
fn commit_runs(scan: &WalScan) -> Vec<u64> {
    let mut runs = Vec::new();
    let mut open = false;
    for (i, r) in scan.records.iter().enumerate() {
        match r {
            WalRecord::Begin { .. } => open = true,
            WalRecord::Commit { .. } => {
                assert!(open, "Commit without Begin at record {i}");
                open = false;
                runs.push(scan.frame_ends[i]);
            }
            _ => {}
        }
    }
    runs
}

/// The history's write transactions in commit-timestamp order — the
/// order the MVCC layer claims to have serialized into the log.
fn writers_in_commit_order(history: &[TxnRecord]) -> Vec<usize> {
    let mut w: Vec<&TxnRecord> = history.iter().filter(|t| !t.ops.is_empty()).collect();
    w.sort_by_key(|t| t.commit_ts);
    w.iter().map(|t| t.txn).collect()
}

/// Satellite: under concurrent committers, the WAL's `Begin…Commit`
/// run order is a valid serialization order of the recorded history.
#[test]
fn concurrent_commits_serialize_into_wal_in_commit_order() {
    let dir = scratch("order");
    let history = run_concurrent(&dir, 4, 8, 0xC0FFEE);
    let scan = scan_wal(&segment_path(&dir, 1)).expect("scan");
    let runs = commit_runs(&scan);
    let order = writers_in_commit_order(&history);

    assert_eq!(
        runs.len(),
        order.len(),
        "one complete Begin…Commit run per committed write txn"
    );
    // (b) The run order — identical to commit-ts order by the WAL's
    // construction under the commit mutex — contradicts no dependency.
    check_order(&history, &order).expect("WAL order is a valid serialization order");

    // And recovery lands on the same state the readers saw: replay the
    // commit order through a fresh store and compare with a reopen.
    let mut base = Store::new(Database::new(schema(), 1), Catalog::new());
    replay(&history, &order, &mut base).expect("commit-order replay");
    let recovered = open_durable(&dir);
    assert_eq!(
        dump(&recovered),
        dump(&base),
        "recovery ≡ commit-order replay"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// The multi-threaded crash sweep: truncate the WAL at every byte; the
/// recovered store must equal the replay of the commit-order prefix
/// whose runs survived the cut — commit-boundary semantics, now with
/// concurrent producers.
#[test]
fn every_truncation_offset_recovers_a_commit_order_prefix() {
    let dir = scratch("sweep");
    let wal_path = segment_path(&dir, 1);
    let history = run_concurrent(&dir, 3, 4, 0xBEEF);
    let scan = scan_wal(&wal_path).expect("scan");
    let runs = commit_runs(&scan);
    let order = writers_in_commit_order(&history);
    assert_eq!(runs.len(), order.len());

    // expected[k] = state after the first k committed write txns.
    let mut expected: Vec<Vec<ObjDump>> = Vec::with_capacity(order.len() + 1);
    let mut base = Store::new(Database::new(schema(), 1), Catalog::new());
    expected.push(dump(&base));
    for &t in &order {
        replay(&history, &[t], &mut base).expect("prefix replay");
        expected.push(dump(&base));
    }

    let pristine = std::fs::read(&wal_path).expect("read wal");
    for cut in 0..=pristine.len() {
        std::fs::write(&wal_path, &pristine[..cut]).expect("truncate");
        let recovered = open_durable(&dir);
        let k = runs.iter().take_while(|&&end| end <= cut as u64).count();
        assert_eq!(
            dump(&recovered),
            expected[k],
            "cut at byte {cut} must recover the {k}-run prefix"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Tentpole sweep extension: **group commit + segment rotation**. A
/// concurrent workload runs under a grouped policy with a tiny segment
/// threshold, so the log rotates several times. Every commit the store
/// *acknowledged* (an `Ok` from `commit()`, i.e. after its covering
/// group sync) must survive recovery of the intact log; and truncating
/// the **active** segment at every byte must recover exactly a
/// commit-order prefix — with every run in the sealed segments always
/// included, since sealing syncs them by construction.
#[test]
fn grouped_multi_segment_sweep_recovers_acknowledged_prefix() {
    let dir = scratch("grouped");
    let store = MvccStore::new(open_durable(&dir));
    store.set_group_commit(GroupCommitPolicy::grouped(8, 200));
    store.set_wal_segment_bytes(256);
    store.record_history(true);

    let mut setup = store.begin();
    let mut seeds = Vec::new();
    for i in 0..4i64 {
        seeds.push(
            setup
                .create(
                    "Item",
                    vec![("k", format!("s{i}").as_str().into()), ("v", i.into())],
                )
                .expect("seed insert"),
        );
    }
    setup.commit().expect("seed commit");

    let acked = std::sync::Mutex::new(Vec::new());
    std::thread::scope(|s| {
        for th in 0..3u64 {
            let store = store.clone();
            let seeds = seeds.clone();
            let acked = &acked;
            s.spawn(move || {
                let mut rng = Rng::new(0xFEED ^ ((th + 1) << 32));
                for n in 0..6u64 {
                    let mut t = store.begin();
                    // Always one unique create (so the txn writes), plus
                    // sometimes a contended seed update (so some commits
                    // lose validation and are *not* acknowledged).
                    let _ = t.create(
                        "Item",
                        vec![
                            ("k", format!("g{th}-{n}").as_str().into()),
                            ("v", (rng.below(100) as i64).into()),
                        ],
                    );
                    if rng.below(2) == 0 {
                        let id = seeds[rng.below(seeds.len() as u64) as usize];
                        let _ = t.update(id, "v", Value::int(rng.below(100) as i64));
                    }
                    if let Ok(ts) = t.commit() {
                        acked.lock().unwrap().push(ts);
                    }
                }
            });
        }
    });
    let history = store.take_history();
    let acked = acked.into_inner().unwrap();
    drop(store.into_store().expect("sole handle after join"));

    let segs = scan_segments(&dir).expect("scan segments");
    assert!(segs.len() > 1, "the workload must rotate the log");
    let (active_seq, active_path) = {
        let last = segs.last().expect("at least one segment");
        (last.seq, last.path.clone())
    };
    let mut sealed_runs = 0usize;
    let mut active_run_ends = Vec::new();
    for seg in &segs {
        for (i, r) in seg.scan.records.iter().enumerate() {
            if matches!(r, WalRecord::Commit { .. }) {
                if seg.seq == active_seq {
                    active_run_ends.push(seg.scan.frame_ends[i]);
                } else {
                    sealed_runs += 1;
                }
            }
        }
    }
    let mut writers: Vec<&TxnRecord> = history.iter().filter(|t| !t.ops.is_empty()).collect();
    writers.sort_by_key(|t| t.commit_ts);
    assert_eq!(
        sealed_runs + active_run_ends.len(),
        writers.len(),
        "one Begin…Commit run per committed write txn, across all segments"
    );
    // Every acknowledged commit is a recorded writer: nothing the group
    // sync acknowledged is missing from the intact log.
    for ts in &acked {
        assert!(
            writers.iter().any(|w| w.commit_ts == *ts),
            "acknowledged ts {ts} must be in the log"
        );
    }

    // expected[k] = state after the first k committed write txns.
    let mut expected: Vec<Vec<ObjDump>> = Vec::with_capacity(writers.len() + 1);
    let mut base = Store::new(Database::new(schema(), 1), Catalog::new());
    expected.push(dump(&base));
    for w in &writers {
        replay(&history, &[w.txn], &mut base).expect("prefix replay");
        expected.push(dump(&base));
    }

    let pristine = std::fs::read(&active_path).expect("read active segment");
    for cut in 0..=pristine.len() {
        std::fs::write(&active_path, &pristine[..cut]).expect("truncate");
        let recovered = open_durable(&dir);
        let k = sealed_runs
            + active_run_ends
                .iter()
                .take_while(|&&end| end <= cut as u64)
                .count();
        assert!(
            k >= sealed_runs,
            "sealed segments are durable: no cut of the active segment loses them"
        );
        assert_eq!(
            dump(&recovered),
            expected[k],
            "cut at byte {cut} of the active segment must recover the {k}-run prefix"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Tentpole: background snapshots. With an [`MvccStore`] over a
/// `WalWithSnapshots` store, the cadence only seals the active segment
/// and hands the published snapshot to a worker thread — committers
/// never write the dump. After a flush, the snapshot file exists, the
/// sealed segments it covers are pruned, no error was recorded, and a
/// reopen recovers snapshot + WAL tail exactly.
#[test]
fn background_snapshots_prune_covered_segments() {
    let dir = scratch("bgsnap");
    let mut base = Store::open(
        Database::new(schema(), 1),
        Catalog::new(),
        &dir,
        DurabilityMode::WalWithSnapshots,
    )
    .expect("open durable");
    base.set_snapshot_every(8);
    base.set_wal_segment_bytes(128);
    let store = MvccStore::new(base);

    for i in 0..20i64 {
        let mut t = store.begin();
        t.create(
            "Item",
            vec![
                ("k", format!("b{i}").as_str().into()),
                ("v", (i % 100).into()),
            ],
        )
        .expect("create");
        t.commit().expect("commit");
    }
    store.flush_snapshots();
    assert!(
        store.take_snapshot_error().is_none(),
        "background snapshots succeeded"
    );
    let snaps = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .filter(|e| e.file_name().to_string_lossy().ends_with(".snap"))
        .count();
    assert!(snaps >= 1, "a cadence snapshot reached the directory");
    let segs = list_segments(&dir).expect("list segments");
    assert!(
        segs.first().expect("an active segment remains").0 > 1,
        "segments fully covered by the snapshot were pruned"
    );

    let before = dump(&store.read_view());
    drop(store.into_store().expect("sole handle"));
    let reopened = Store::open(
        Database::new(schema(), 1),
        Catalog::new(),
        &dir,
        DurabilityMode::WalWithSnapshots,
    )
    .expect("reopen");
    assert_eq!(dump(&reopened), before, "snapshot + tail ≡ pre-close state");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Pipelined group commit: `commit_pipelined` publishes the commit
/// immediately and defers only the durability acknowledgement to the
/// returned ticket. Once every ticket is redeemed, reopening the
/// directory must recover every commit — and ticket timestamps are the
/// commit timestamps, so they increase per session.
#[test]
fn pipelined_commits_recover_after_tickets_are_redeemed() {
    let dir = scratch("pipelined");
    const THREADS: usize = 4;
    const PER_THREAD: usize = 50;
    const DEPTH: usize = 8;
    let mut s = open_durable(&dir);
    s.set_group_commit(GroupCommitPolicy::grouped(64, 0));
    let store = MvccStore::new(s);

    let mut setup = store.begin();
    let mut ids = Vec::new();
    for th in 0..THREADS {
        ids.push(
            setup
                .create(
                    "Item",
                    vec![("k", format!("t{th}").as_str().into()), ("v", 0i64.into())],
                )
                .expect("seed insert"),
        );
    }
    setup.commit().expect("seed commits");

    std::thread::scope(|scope| {
        for (th, &id) in ids.iter().enumerate() {
            let store = &store;
            scope.spawn(move || {
                let mut pending = std::collections::VecDeque::new();
                let mut last_ts = 0;
                for i in 0..PER_THREAD {
                    let mut t = store.begin();
                    t.update(id, "v", Value::Int(((th * 7 + i) % 100) as i64))
                        .expect("disjoint update");
                    let ticket = t.commit_pipelined().expect("disjoint writers commit");
                    assert!(
                        ticket.ts() > last_ts,
                        "commit timestamps increase within a session"
                    );
                    last_ts = ticket.ts();
                    pending.push_back(ticket);
                    if pending.len() >= DEPTH {
                        let oldest = pending.pop_front().expect("non-empty");
                        oldest.wait().expect("covering sync lands");
                    }
                }
                for ticket in pending {
                    ticket.wait().expect("covering sync lands");
                }
            });
        }
    });

    // A read-only transaction's ticket is trivially durable.
    let empty = store.begin().commit_pipelined().expect("empty commit");
    let ts = empty.ts();
    assert_eq!(empty.wait().expect("nothing to sync"), ts);

    let before = dump(&store.read_view());
    drop(store.into_store().expect("sole handle"));
    let reopened = open_durable(&dir);
    assert_eq!(
        dump(&reopened),
        before,
        "every redeemed ticket's commit was recovered"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Dropping a ticket forfeits only the acknowledgement: the commit is
/// still in the log ahead of later commits, so a later ticket's
/// successful wait implies the dropped one is durable too.
#[test]
fn dropped_ticket_commit_still_recovered() {
    let dir = scratch("ticket-drop");
    let mut s = open_durable(&dir);
    s.set_group_commit(GroupCommitPolicy::grouped(8, 0));
    let store = MvccStore::new(s);

    let mut setup = store.begin();
    let id = setup
        .create("Item", vec![("k", "a".into()), ("v", 0i64.into())])
        .expect("seed insert");
    setup.commit().expect("seed commits");

    let mut t = store.begin();
    t.update(id, "v", Value::Int(1)).expect("update");
    drop(t.commit_pipelined().expect("first commit")); // never waited

    let mut t = store.begin();
    t.update(id, "v", Value::Int(2)).expect("update");
    t.commit_pipelined()
        .expect("second commit")
        .wait()
        .expect("covering sync also covers the dropped ticket's run");

    drop(store.into_store().expect("sole handle"));
    let reopened = open_durable(&dir);
    let v = reopened
        .db()
        .object(id)
        .expect("recovered")
        .attrs
        .iter()
        .find(|(a, _)| a.as_str() == "v")
        .map(|(_, v)| v.clone());
    assert_eq!(v, Some(Value::Int(2)), "both commits recovered in order");
    let _ = std::fs::remove_dir_all(&dir);
}
