//! Durability × concurrency: commits from many threads serialize into
//! the WAL under the commit mutex, so the log's `Begin…Commit` run
//! order must be (a) exactly the commit-timestamp order of the write
//! transactions and (b) a valid serialization order of the recorded
//! history — and truncating the log at *any* byte must recover the
//! state of a commit-order prefix, exactly as in the single-threaded
//! crash sweep (`prop_crash_recovery.rs`).

use std::path::PathBuf;

use interop_constraint::{Catalog, CmpOp, Formula};
use interop_model::{ClassDef, Database, ObjectId, Schema, Type, Value};
use interop_storage::wal::{scan_wal, WalScan};
use interop_storage::{
    check_order, replay, DurabilityMode, MvccStore, Store, TxnRecord, WalRecord,
};

fn schema() -> Schema {
    Schema::new(
        "S",
        vec![ClassDef::new("Item")
            .attr("k", Type::Str)
            .attr("v", Type::Range(0, 100))],
    )
    .expect("static schema")
}

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("interop-mvccdur-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn open_durable(dir: &std::path::Path) -> Store {
    Store::open(
        Database::new(schema(), 1),
        Catalog::new(),
        dir,
        DurabilityMode::Wal,
    )
    .expect("open durable")
}

type ObjDump = (ObjectId, Vec<(String, Value)>);

fn dump(s: &Store) -> Vec<ObjDump> {
    let mut out: Vec<_> = s
        .db()
        .objects()
        .map(|o| {
            (
                o.id,
                o.attrs
                    .iter()
                    .map(|(a, v)| (a.to_string(), v.clone()))
                    .collect(),
            )
        })
        .collect();
    out.sort_by_key(|(id, _)| *id);
    out
}

/// Deterministic per-thread randomness, as in the serializability
/// property suite.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed.wrapping_mul(2685821657736338717).max(1))
    }
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(2685821657736338717)
    }
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

/// Runs a concurrent workload over a durable shared store, returning
/// the recorded history (the store handle is consumed and dropped, so
/// the WAL file is free to scan afterwards).
fn run_concurrent(
    dir: &std::path::Path,
    threads: usize,
    per_thread: usize,
    seed: u64,
) -> Vec<TxnRecord> {
    let store = MvccStore::new(open_durable(dir));
    store.record_history(true);

    let mut setup = store.begin();
    let mut seeds = Vec::new();
    for i in 0..4i64 {
        seeds.push(
            setup
                .create(
                    "Item",
                    vec![("k", format!("s{i}").as_str().into()), ("v", i.into())],
                )
                .expect("seed insert"),
        );
    }
    setup.commit().expect("seed commit");

    std::thread::scope(|s| {
        for th in 0..threads {
            let store = store.clone();
            let seeds = seeds.clone();
            s.spawn(move || {
                let mut rng = Rng::new(seed ^ ((th as u64 + 1) << 32));
                for _ in 0..per_thread {
                    let mut t = store.begin();
                    for _ in 0..=rng.below(2) {
                        match rng.below(8) {
                            0..=2 => {
                                let k = format!("w{}", rng.next());
                                let _ = t.create(
                                    "Item",
                                    vec![
                                        ("k", k.as_str().into()),
                                        ("v", (rng.below(100) as i64).into()),
                                    ],
                                );
                            }
                            3..=5 => {
                                let id = seeds[rng.below(seeds.len() as u64) as usize];
                                let _ = t.update(id, "v", Value::int(rng.below(100) as i64));
                            }
                            6 => {
                                let id = seeds[rng.below(seeds.len() as u64) as usize];
                                let _ = t.remove(id);
                            }
                            _ => {
                                let _ = t.query(
                                    "Item",
                                    &Formula::cmp("v", CmpOp::Lt, rng.below(100) as i64),
                                );
                            }
                        }
                    }
                    let _ = t.commit();
                }
            });
        }
    });

    let history = store.take_history();
    let inner = store.into_store().expect("sole handle after join");
    drop(inner); // release the WAL file handle
    history
}

/// The complete `Begin…Commit` runs of a scanned WAL: for each, the
/// byte offset one past its `Commit` frame.
fn commit_runs(scan: &WalScan) -> Vec<u64> {
    let mut runs = Vec::new();
    let mut open = false;
    for (i, r) in scan.records.iter().enumerate() {
        match r {
            WalRecord::Begin { .. } => open = true,
            WalRecord::Commit { .. } => {
                assert!(open, "Commit without Begin at record {i}");
                open = false;
                runs.push(scan.frame_ends[i]);
            }
            _ => {}
        }
    }
    runs
}

/// The history's write transactions in commit-timestamp order — the
/// order the MVCC layer claims to have serialized into the log.
fn writers_in_commit_order(history: &[TxnRecord]) -> Vec<usize> {
    let mut w: Vec<&TxnRecord> = history.iter().filter(|t| !t.ops.is_empty()).collect();
    w.sort_by_key(|t| t.commit_ts);
    w.iter().map(|t| t.txn).collect()
}

/// Satellite: under concurrent committers, the WAL's `Begin…Commit`
/// run order is a valid serialization order of the recorded history.
#[test]
fn concurrent_commits_serialize_into_wal_in_commit_order() {
    let dir = scratch("order");
    let history = run_concurrent(&dir, 4, 8, 0xC0FFEE);
    let scan = scan_wal(&dir.join("wal.log")).expect("scan");
    let runs = commit_runs(&scan);
    let order = writers_in_commit_order(&history);

    assert_eq!(
        runs.len(),
        order.len(),
        "one complete Begin…Commit run per committed write txn"
    );
    // (b) The run order — identical to commit-ts order by the WAL's
    // construction under the commit mutex — contradicts no dependency.
    check_order(&history, &order).expect("WAL order is a valid serialization order");

    // And recovery lands on the same state the readers saw: replay the
    // commit order through a fresh store and compare with a reopen.
    let mut base = Store::new(Database::new(schema(), 1), Catalog::new());
    replay(&history, &order, &mut base).expect("commit-order replay");
    let recovered = open_durable(&dir);
    assert_eq!(
        dump(&recovered),
        dump(&base),
        "recovery ≡ commit-order replay"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// The multi-threaded crash sweep: truncate the WAL at every byte; the
/// recovered store must equal the replay of the commit-order prefix
/// whose runs survived the cut — commit-boundary semantics, now with
/// concurrent producers.
#[test]
fn every_truncation_offset_recovers_a_commit_order_prefix() {
    let dir = scratch("sweep");
    let wal_path = dir.join("wal.log");
    let history = run_concurrent(&dir, 3, 4, 0xBEEF);
    let scan = scan_wal(&wal_path).expect("scan");
    let runs = commit_runs(&scan);
    let order = writers_in_commit_order(&history);
    assert_eq!(runs.len(), order.len());

    // expected[k] = state after the first k committed write txns.
    let mut expected: Vec<Vec<ObjDump>> = Vec::with_capacity(order.len() + 1);
    let mut base = Store::new(Database::new(schema(), 1), Catalog::new());
    expected.push(dump(&base));
    for &t in &order {
        replay(&history, &[t], &mut base).expect("prefix replay");
        expected.push(dump(&base));
    }

    let pristine = std::fs::read(&wal_path).expect("read wal");
    for cut in 0..=pristine.len() {
        std::fs::write(&wal_path, &pristine[..cut]).expect("truncate");
        let recovered = open_durable(&dir);
        let k = runs.iter().take_while(|&&end| end <= cut as u64).count();
        assert_eq!(
            dump(&recovered),
            expected[k],
            "cut at byte {cut} must recover the {k}-run prefix"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}
