//! Deterministic WAL corruption tests: a flipped CRC byte, a truncated
//! length prefix, and a valid-CRC frame *after* a torn one must all
//! stop replay at the last good commit boundary — never a partial
//! transaction, never a frame past the tear.

use std::path::{Path, PathBuf};

use interop_constraint::Catalog;
use interop_model::{ClassDef, ClassName, Database, Object, ObjectId, Schema, Type};
use interop_storage::wal::{frame_bytes, scan_wal};
use interop_storage::{DurabilityMode, Store, WalRecord};

fn schema() -> Schema {
    Schema::new(
        "S",
        vec![ClassDef::new("Item")
            .attr("k", Type::Str)
            .attr("v", Type::Range(0, 1000))],
    )
    .expect("static schema")
}

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("interop-corrupt-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn item(serial: u64, k: &str, v: i64) -> Object {
    Object::new(ObjectId::new(1, serial), ClassName::new("Item"))
        .with("k", k)
        .with("v", v)
}

/// One committed single-insert transaction as raw frame bytes.
fn txn_bytes(seq: u64, obj: Object) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&frame_bytes(&WalRecord::Begin { seq }));
    out.extend_from_slice(&frame_bytes(&WalRecord::DeltaInsert(obj)));
    out.extend_from_slice(&frame_bytes(&WalRecord::Commit { seq }));
    out
}

fn open(dir: &Path) -> Store {
    Store::open(
        Database::new(schema(), 1),
        Catalog::new(),
        dir,
        DurabilityMode::Wal,
    )
    .expect("open")
}

fn recovered_serials(dir: &Path) -> Vec<u64> {
    let s = open(dir);
    let mut out: Vec<u64> = s.db().objects().map(|o| o.id.serial()).collect();
    out.sort_unstable();
    out
}

#[test]
fn flipped_crc_byte_stops_at_last_good_commit() {
    let dir = scratch("crc");
    let mut bytes = txn_bytes(1, item(1, "a", 1));
    let tear_at = bytes.len();
    bytes.extend_from_slice(&txn_bytes(2, item(2, "b", 2)));
    // Flip one payload byte of txn 2's DeltaInsert frame (txn 2's
    // Begin frame is 8 header + 9 payload = 17 bytes, so the insert's
    // payload starts 25 bytes past the boundary): its stored CRC no
    // longer matches.
    bytes[tear_at + 25] ^= 0xFF;
    std::fs::write(dir.join("wal.log"), &bytes).unwrap();

    let scan = scan_wal(&dir.join("wal.log")).unwrap();
    assert_eq!(scan.records.len(), 4, "txn 1 plus txn 2's intact Begin");
    assert_eq!(scan.valid_len as usize, tear_at + 17, "stops at the flip");
    assert_eq!(recovered_serials(&dir), vec![1], "only txn 1 applied");
    // Recovery truncated the log back to the commit boundary: a fresh
    // scan sees exactly txn 1.
    let scan = scan_wal(&dir.join("wal.log")).unwrap();
    assert_eq!(scan.valid_len as usize, tear_at);
    assert_eq!(scan.file_len as usize, tear_at);
}

#[test]
fn truncated_length_prefix_stops_at_last_good_commit() {
    let dir = scratch("lenprefix");
    let mut bytes = txn_bytes(1, item(1, "a", 1));
    let tear_at = bytes.len();
    // A torn header: only 5 of the 8 prefix bytes made it to disk.
    bytes.extend_from_slice(&frame_bytes(&WalRecord::Begin { seq: 2 })[..5]);
    std::fs::write(dir.join("wal.log"), &bytes).unwrap();

    let scan = scan_wal(&dir.join("wal.log")).unwrap();
    assert_eq!(scan.records.len(), 3);
    assert_eq!(scan.valid_len as usize, tear_at);
    assert!(scan.file_len > scan.valid_len);
    assert_eq!(recovered_serials(&dir), vec![1]);
}

#[test]
fn lying_length_prefix_reads_as_torn_payload() {
    let dir = scratch("lyinglen");
    let mut bytes = txn_bytes(1, item(1, "a", 1));
    let tear_at = bytes.len();
    // A full header whose length field promises more payload than the
    // file holds.
    let mut frame = frame_bytes(&WalRecord::Rollback);
    frame[0] = 0xFF; // len = huge
    bytes.extend_from_slice(&frame);
    std::fs::write(dir.join("wal.log"), &bytes).unwrap();

    let scan = scan_wal(&dir.join("wal.log")).unwrap();
    assert_eq!(scan.valid_len as usize, tear_at);
    assert_eq!(recovered_serials(&dir), vec![1]);
}

#[test]
fn valid_frame_after_torn_one_is_discarded() {
    let dir = scratch("aftertear");
    let mut bytes = txn_bytes(1, item(1, "a", 1));
    let tear_at = bytes.len();
    // A torn fragment (half a frame), then a perfectly valid committed
    // transaction. Bytes past a tear are untrusted: txn 3 must NOT be
    // applied even though its frames individually check out.
    let torn = frame_bytes(&WalRecord::Begin { seq: 2 });
    bytes.extend_from_slice(&torn[..torn.len() / 2]);
    bytes.extend_from_slice(&txn_bytes(3, item(3, "c", 3)));
    std::fs::write(dir.join("wal.log"), &bytes).unwrap();

    let scan = scan_wal(&dir.join("wal.log")).unwrap();
    assert_eq!(scan.records.len(), 3, "scan stops at the tear");
    assert_eq!(scan.valid_len as usize, tear_at);
    assert_eq!(
        recovered_serials(&dir),
        vec![1],
        "the valid-looking txn after the tear is discarded"
    );
}

#[test]
fn unterminated_txn_run_is_not_applied_and_truncated() {
    let dir = scratch("unterminated");
    let mut bytes = txn_bytes(1, item(1, "a", 1));
    let boundary = bytes.len();
    // Begin + delta, no Commit — a crash mid-append. The frames are
    // intact, but without the Commit the transaction never happened.
    bytes.extend_from_slice(&frame_bytes(&WalRecord::Begin { seq: 2 }));
    bytes.extend_from_slice(&frame_bytes(&WalRecord::DeltaInsert(item(2, "b", 2))));
    std::fs::write(dir.join("wal.log"), &bytes).unwrap();

    assert_eq!(recovered_serials(&dir), vec![1]);
    // The unterminated run was truncated away, so a new store can
    // append txn 2 afresh without colliding with the stale Begin.
    let mut s = open(&dir);
    s.create("Item", vec![("k", "b2".into()), ("v", 5i64.into())])
        .unwrap();
    drop(s);
    assert_eq!(recovered_serials(&dir), vec![1, 2]);
    assert_eq!(
        std::fs::metadata(dir.join("wal.log")).unwrap().len() as usize,
        boundary + txn_bytes(2, item(2, "b2", 5)).len(),
        "log holds exactly txn 1 plus the fresh txn 2"
    );
}

#[test]
fn crc_valid_but_undecodable_frame_stops_replay() {
    let dir = scratch("undecodable");
    let mut bytes = txn_bytes(1, item(1, "a", 1));
    let tear_at = bytes.len();
    // A frame whose CRC is self-consistent but whose payload is not a
    // record (unknown tag 0xEE): same treatment as a torn frame.
    let payload = [0xEEu8, 1, 2, 3];
    bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    bytes.extend_from_slice(&interop_storage::wal::crc32(&payload).to_le_bytes());
    bytes.extend_from_slice(&payload);
    bytes.extend_from_slice(&txn_bytes(2, item(2, "b", 2)));
    std::fs::write(dir.join("wal.log"), &bytes).unwrap();

    let scan = scan_wal(&dir.join("wal.log")).unwrap();
    assert_eq!(scan.valid_len as usize, tear_at);
    assert_eq!(recovered_serials(&dir), vec![1]);
}

#[test]
fn empty_and_missing_logs_recover_empty() {
    let dir = scratch("empty");
    assert_eq!(recovered_serials(&dir), Vec::<u64>::new());
    std::fs::write(dir.join("wal.log"), b"").unwrap();
    assert_eq!(recovered_serials(&dir), Vec::<u64>::new());
}
