//! Integration tests for the durability layer: reopen replays committed
//! work, snapshots truncate the log, the touched-id log survives a
//! restart without re-logging replayed history, clones are detached,
//! and `DurabilityMode::Off` touches no files.

use std::path::{Path, PathBuf};

use interop_constraint::Catalog;
use interop_model::{ClassDef, Database, ObjectId, Schema, Type, Value};
use interop_storage::{DurabilityMode, Store, Transaction, TxnOutcome};

fn schema() -> Schema {
    Schema::new(
        "S",
        vec![ClassDef::new("Item")
            .attr("k", Type::Str)
            .attr("v", Type::Range(0, 1000))],
    )
    .expect("static schema")
}

/// A fresh scratch directory under the system temp dir, unique per
/// test (and per process, so parallel CI runs don't collide).
fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("interop-dur-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn open(dir: &Path, mode: DurabilityMode) -> Store {
    Store::open(Database::new(schema(), 1), Catalog::new(), dir, mode).expect("open")
}

/// Sorted `(id, attrs)` dump — extent order may legitimately differ
/// after recovery (snapshot order + WAL order), the *set* may not.
fn dump(s: &Store) -> Vec<(ObjectId, Vec<(String, Value)>)> {
    let mut out: Vec<_> = s
        .db()
        .objects()
        .map(|o| {
            (
                o.id,
                o.attrs
                    .iter()
                    .map(|(a, v)| (a.to_string(), v.clone()))
                    .collect(),
            )
        })
        .collect();
    out.sort_by_key(|(id, _)| *id);
    out
}

#[test]
fn reopen_replays_committed_ops() {
    let dir = scratch("reopen");
    let mut s = open(&dir, DurabilityMode::Wal);
    let a = s
        .create("Item", vec![("k", "a".into()), ("v", 1i64.into())])
        .unwrap();
    let b = s
        .create("Item", vec![("k", "b".into()), ("v", 2i64.into())])
        .unwrap();
    s.update(a, "v", Value::int(7)).unwrap();
    s.remove(b).unwrap();
    let before = dump(&s);
    drop(s);

    let mut s = open(&dir, DurabilityMode::Wal);
    assert_eq!(dump(&s), before);
    // Serial continuity: new ids must not collide with recovered ones.
    let c = s
        .create("Item", vec![("k", "c".into()), ("v", 3i64.into())])
        .unwrap();
    assert!(c > a, "fresh id allocated past recovered serials");
    drop(s);
    let s = open(&dir, DurabilityMode::Wal);
    assert_eq!(s.db().len(), 2);
}

#[test]
fn txn_commit_replays_rollback_leaves_no_trace() {
    let dir = scratch("txn");
    let mut s = open(&dir, DurabilityMode::Wal);
    let a = s
        .create("Item", vec![("k", "a".into()), ("v", 1i64.into())])
        .unwrap();
    let txn = Transaction::new().update(a, "v", Value::int(5)).insert(
        interop_model::Object::new(ObjectId::new(1, 900), "Item".into())
            .with("k", "t")
            .with("v", 6i64),
    );
    assert!(matches!(txn.commit(&mut s), TxnOutcome::Committed { .. }));
    // A doomed transaction: the second op violates the schema range, so
    // the first rolls back — and nothing of it may reach the log.
    let txn = Transaction::new()
        .update(a, "v", Value::int(999))
        .update(a, "v", Value::int(-1));
    assert!(matches!(txn.commit(&mut s), TxnOutcome::RolledBack { .. }));
    let before = dump(&s);
    drop(s);

    let s = open(&dir, DurabilityMode::Wal);
    assert_eq!(dump(&s), before);
    assert_eq!(
        s.db().object(a).unwrap().get(&"v".into()),
        &Value::int(5),
        "committed txn survives, rolled-back txn leaves no trace"
    );
}

#[test]
fn snapshots_truncate_wal_and_recover() {
    let dir = scratch("snap");
    let mut s = open(&dir, DurabilityMode::WalWithSnapshots);
    s.set_snapshot_every(4);
    for i in 0..10i64 {
        s.create(
            "Item",
            vec![("k", format!("k{i}").as_str().into()), ("v", i.into())],
        )
        .unwrap();
    }
    let before = dump(&s);
    drop(s);
    // 10 committed txns at cadence 4 → snapshots at 4 and 8; the WAL
    // (the first — and only — segment of a fresh directory) holds only
    // the 2 post-snapshot txns.
    let wal = std::fs::metadata(interop_storage::wal::segment_path(&dir, 1))
        .unwrap()
        .len();
    assert!(wal > 0, "post-snapshot txns remain in the log");
    let snaps: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .filter(|e| e.file_name().to_string_lossy().ends_with(".snap"))
        .collect();
    assert_eq!(snaps.len(), 1, "older snapshots pruned");

    let s = open(&dir, DurabilityMode::WalWithSnapshots);
    assert_eq!(dump(&s), before);
}

/// Review regression: the automatic snapshot cadence runs *after* the
/// commit's WAL append succeeded — a snapshot failure at that point
/// must not report the transaction as rolled back (the log durably
/// holds it; replay would diverge from a memory rollback, and a
/// retried insert would then collide on reopen). The commit stands,
/// the error surfaces via `take_snapshot_error`, and the next commit
/// retries the snapshot.
#[test]
fn snapshot_failure_does_not_roll_back_a_durable_commit() {
    let dir = scratch("snapfail");
    let mut s = open(&dir, DurabilityMode::WalWithSnapshots);
    s.set_snapshot_every(1);
    // Force the snapshot after the first commit (watermark 1) to fail:
    // occupy its tmp path with a directory.
    let blocker = dir.join("snapshot-00000000000000000001.snap.tmp");
    std::fs::create_dir_all(&blocker).unwrap();
    let txn = Transaction::new().insert(
        interop_model::Object::new(ObjectId::new(1, 900), "Item".into())
            .with("k", "t")
            .with("v", 6i64),
    );
    assert!(
        matches!(txn.commit(&mut s), TxnOutcome::Committed { .. }),
        "the WAL append succeeded, so the commit must stand"
    );
    let err = s.take_snapshot_error().expect("snapshot failure surfaced");
    assert!(
        err.to_string().contains("snap.tmp"),
        "points at the file: {err}"
    );
    assert!(s.take_snapshot_error().is_none(), "taken once");
    assert_eq!(s.db().len(), 1, "memory keeps the committed txn");
    // The next commit (watermark 2, free tmp path) retries and succeeds.
    s.create("Item", vec![("k", "u".into()), ("v", 7i64.into())])
        .unwrap();
    assert!(s.take_snapshot_error().is_none(), "retry succeeded");
    let before = dump(&s);
    drop(s);
    let s = open(&dir, DurabilityMode::WalWithSnapshots);
    assert_eq!(dump(&s), before, "both commits recovered");
}

/// Satellite regression: `WalWriter::reset()` used to truncate with no
/// sync — after power loss the filesystem could legally resurrect the
/// pre-truncation length, replaying *stale committed frames the
/// snapshot already holds*. The reset is now durable (`sync_all`,
/// since a size change is metadata), and the replay-side
/// `seq > watermark` filter stays as belt-and-braces. This test
/// simulates the resurrection: it writes the pre-snapshot log bytes
/// back into the truncated segment and demands recovery ignore them.
#[test]
fn resurrected_stale_tail_never_reapplies_snapshotted_txns() {
    let dir = scratch("resurrect");
    let mut s = open(&dir, DurabilityMode::WalWithSnapshots);
    s.set_snapshot_every(100); // only explicit snapshots
    let a = s
        .create("Item", vec![("k", "a".into()), ("v", 1i64.into())])
        .unwrap();
    s.update(a, "v", Value::int(2)).unwrap();
    let wal_path = interop_storage::wal::segment_path(&dir, 1);
    let stale = std::fs::read(&wal_path).unwrap();
    assert!(!stale.is_empty());
    // Snapshot: the two txns move into the snapshot, the log resets.
    s.snapshot_now().unwrap();
    // One post-snapshot commit, so the resurrected tail lands *after*
    // live frames — the worst case, since replay must scan past it.
    s.update(a, "v", Value::int(3)).unwrap();
    let before = dump(&s);
    drop(s);
    // Simulate the un-synced truncate coming back: append the stale
    // pre-snapshot frames after the live tail. Their CRCs are intact —
    // only their `seq <= watermark` marks them as already applied.
    use std::io::Write;
    let mut f = std::fs::OpenOptions::new()
        .append(true)
        .open(&wal_path)
        .unwrap();
    f.write_all(&stale).unwrap();
    drop(f);

    let s = open(&dir, DurabilityMode::WalWithSnapshots);
    assert_eq!(
        dump(&s),
        before,
        "stale resurrected frames must not be reapplied"
    );
    assert_eq!(
        s.db().object(a).unwrap().get(&"v".into()),
        &Value::int(3),
        "the post-snapshot update wins, not the resurrected v=2"
    );
}

/// Satellite regression: a second snapshot failure used to *overwrite*
/// the first unretrieved error, collapsing the history into the newest
/// symptom. Now the first error is kept and every attempt counted.
#[test]
fn snapshot_failures_keep_first_error_and_count_all() {
    let dir = scratch("snapfail2");
    let mut s = open(&dir, DurabilityMode::WalWithSnapshots);
    s.set_snapshot_every(1);
    // Block the tmp paths of the snapshots at watermarks 1 and 2.
    for w in 1..=2 {
        std::fs::create_dir_all(dir.join(format!("snapshot-{w:020}.snap.tmp"))).unwrap();
    }
    s.create("Item", vec![("k", "a".into()), ("v", 1i64.into())])
        .unwrap();
    s.create("Item", vec![("k", "b".into()), ("v", 2i64.into())])
        .unwrap();
    let err = s.take_snapshot_error().expect("failures surfaced");
    assert_eq!(err.failures, 2, "both attempts counted");
    assert!(
        err.first
            .to_string()
            .contains("snapshot-00000000000000000001.snap.tmp"),
        "the FIRST failure is kept, not overwritten by the second: {}",
        err.first
    );
    assert!(s.take_snapshot_error().is_none(), "taken once");
}

#[test]
fn snapshot_now_makes_reopen_replay_free() {
    let dir = scratch("snapnow");
    let mut s = open(&dir, DurabilityMode::Wal);
    for i in 0..5i64 {
        s.create(
            "Item",
            vec![("k", format!("k{i}").as_str().into()), ("v", i.into())],
        )
        .unwrap();
    }
    let before = dump(&s);
    s.snapshot_now().unwrap();
    drop(s);
    assert_eq!(
        std::fs::metadata(interop_storage::wal::segment_path(&dir, 1))
            .unwrap()
            .len(),
        0,
        "snapshot truncates the log"
    );
    let s = open(&dir, DurabilityMode::Wal);
    assert_eq!(dump(&s), before);
}

/// Satellite regression: replay must not re-log replayed mutations, and
/// a drain marker must survive a restart — otherwise a reopened store
/// hands the incremental pipeline the entire database as "touched".
#[test]
fn reopen_does_not_relog_replayed_history() {
    let dir = scratch("touched");
    let mut s = open(&dir, DurabilityMode::Wal);
    s.track_touched(true);
    let a = s
        .create("Item", vec![("k", "a".into()), ("v", 1i64.into())])
        .unwrap();
    let b = s
        .create("Item", vec![("k", "b".into()), ("v", 2i64.into())])
        .unwrap();
    assert_eq!(s.take_touched(), vec![a, b], "drained before shutdown");
    // One more mutation after the drain: the only id a reopened store
    // may report.
    s.update(a, "v", Value::int(3)).unwrap();
    drop(s);

    let mut s = open(&dir, DurabilityMode::Wal);
    assert_eq!(s.db().len(), 2, "replay applied everything");
    assert_eq!(
        s.take_touched(),
        vec![a],
        "only post-drain history is touched — replayed mutations are not re-logged"
    );
    drop(s);

    // Reopen again with nothing new since that drain.
    let mut s = open(&dir, DurabilityMode::Wal);
    assert_eq!(
        s.take_touched(),
        Vec::new(),
        "reopen after a drain reports nothing"
    );
}

#[test]
fn tracking_state_survives_reopen() {
    let dir = scratch("tracking");
    let mut s = open(&dir, DurabilityMode::Wal);
    s.create("Item", vec![("k", "a".into()), ("v", 1i64.into())])
        .unwrap();
    drop(s);
    // Tracking was never enabled: a reopened store stays untracked.
    let mut s = open(&dir, DurabilityMode::Wal);
    assert_eq!(s.take_touched(), Vec::new());
    s.track_touched(true);
    let b = s
        .create("Item", vec![("k", "b".into()), ("v", 2i64.into())])
        .unwrap();
    drop(s);
    // Enabled + one undrained mutation: reopen resumes with exactly it.
    let mut s = open(&dir, DurabilityMode::Wal);
    assert_eq!(s.take_touched(), vec![b]);
}

#[test]
fn detached_clone_is_detached_and_off() {
    // `Store` no longer implements `Clone` — an implicit `.clone()` of
    // a durable store silently dropped durability. The explicit
    // replacement must still be detached, and mutations of the copy
    // must never reach the original's WAL.
    let dir = scratch("clone");
    let mut s = open(&dir, DurabilityMode::Wal);
    s.create("Item", vec![("k", "a".into()), ("v", 1i64.into())])
        .unwrap();
    let mut c = s.detached_clone();
    assert_eq!(c.durability_mode(), DurabilityMode::Off);
    c.create("Item", vec![("k", "clone-only".into()), ("v", 2i64.into())])
        .unwrap();
    drop(c);
    drop(s);
    let s = open(&dir, DurabilityMode::Wal);
    assert_eq!(s.db().len(), 1, "the clone persisted nothing");
}

#[test]
fn off_mode_touches_no_files() {
    let dir = scratch("off");
    let s = open(&dir, DurabilityMode::Off);
    assert_eq!(s.durability_mode(), DurabilityMode::Off);
    assert!(!dir.exists(), "Off creates neither directory nor files");
}
