//! The tentpole crash-point property suite: a random sequence of
//! single-op mutations and multi-op transactions (some of which roll
//! back) runs against a durable store while an in-memory oracle store
//! applies the same operations. The WAL is then truncated at **every
//! byte offset** — every possible crash point — and reopened; the
//! recovered store must equal the oracle's state as of the last
//! transaction whose full `Begin … Commit` run survived the cut, both
//! as an object dump and through planned queries.

use std::path::PathBuf;

use interop_constraint::{Catalog, CmpOp, Formula};
use interop_model::{ClassDef, ClassName, Database, Object, ObjectId, Schema, Type, Value};
use interop_storage::wal::{scan_wal, segment_path, WalRecord};
use interop_storage::{
    replay, DurabilityMode, MvccStore, Optimizer, Store, Transaction, TxnRecord,
};
use proptest::prelude::*;

fn schema() -> Schema {
    Schema::new(
        "S",
        vec![ClassDef::new("Item")
            .attr("k", Type::Str)
            .attr("v", Type::Range(0, 100))],
    )
    .expect("static schema")
}

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("interop-crash-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// One recovered object: id plus its sorted attribute list.
type ObjDump = (ObjectId, Vec<(String, Value)>);

fn dump(s: &Store) -> Vec<ObjDump> {
    let mut out: Vec<_> = s
        .db()
        .objects()
        .map(|o| {
            (
                o.id,
                o.attrs
                    .iter()
                    .map(|(a, v)| (a.to_string(), v.clone()))
                    .collect(),
            )
        })
        .collect();
    out.sort_by_key(|(id, _)| *id);
    out
}

#[derive(Clone, Debug)]
enum Op {
    /// One autocommitted insert.
    Insert { v: i64 },
    /// One autocommitted update of an existing object (no-op when the
    /// population is empty).
    Update { target: u8, v: i64 },
    /// One autocommitted remove.
    Remove { target: u8 },
    /// A multi-op transaction: two inserts and an update. `doom` makes
    /// the final update violate the schema range, rolling the whole
    /// transaction back — recovery must then show no trace of it.
    Txn { v: i64, doom: bool },
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0i64..100).prop_map(|v| Op::Insert { v }),
        (any::<u8>(), 0i64..100).prop_map(|(target, v)| Op::Update { target, v }),
        any::<u8>().prop_map(|target| Op::Remove { target }),
        (0i64..100, any::<bool>()).prop_map(|(v, doom)| Op::Txn { v, doom }),
    ]
}

/// Applies one op identically to both stores.
fn apply(op: &Op, s: &mut Store, fresh: &mut u64) {
    let ids: Vec<ObjectId> = s.db().objects().map(|o| o.id).collect();
    let pick = |t: u8| ids.get(t as usize % ids.len().max(1)).copied();
    match op {
        Op::Insert { v } => {
            *fresh += 1;
            let obj = Object::new(ObjectId::new(1, 1000 + *fresh), ClassName::new("Item"))
                .with("k", format!("k{fresh}").as_str())
                .with("v", *v);
            s.insert(obj).expect("in-range insert");
        }
        Op::Update { target, v } => {
            if let Some(id) = pick(*target) {
                s.update(id, "v", Value::int(*v)).expect("in-range update");
            }
        }
        Op::Remove { target } => {
            if let Some(id) = pick(*target) {
                s.remove(id).expect("existing remove");
            }
        }
        Op::Txn { v, doom } => {
            *fresh += 1;
            let a = Object::new(ObjectId::new(1, 1000 + *fresh), ClassName::new("Item"))
                .with("k", format!("t{fresh}").as_str())
                .with("v", *v);
            *fresh += 1;
            let b = Object::new(ObjectId::new(1, 1000 + *fresh), ClassName::new("Item"))
                .with("k", format!("t{fresh}").as_str())
                .with("v", *v);
            let bad_or_good = if *doom { -1 } else { *v };
            let txn = Transaction::new().insert(a.clone()).insert(b).update(
                a.id,
                "v",
                Value::int(bad_or_good),
            );
            // Committed or rolled back, both stores agree.
            let _ = txn.commit(s);
        }
    }
}

/// The ids `v == needle` should hit, straight off the oracle dump.
fn expected_hits(dump: &[ObjDump], needle: i64) -> Vec<ObjectId> {
    dump.iter()
        .filter(|(_, attrs)| {
            attrs
                .iter()
                .any(|(a, v)| a == "v" && v == &Value::int(needle))
        })
        .map(|(id, _)| *id)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// For every byte-offset truncation of the WAL, recovery yields the
    /// oracle state of the committed prefix.
    #[test]
    fn every_truncation_offset_recovers_committed_prefix(
        ops in prop::collection::vec(arb_op(), 3..8),
        needle in 0i64..100,
    ) {
        let dir = scratch("prop");
        let wal_path = segment_path(&dir, 1);
        let mut durable = Store::open(
            Database::new(schema(), 1),
            Catalog::new(),
            &dir,
            DurabilityMode::Wal,
        )
        .expect("open fresh");
        let mut oracle = Store::new(Database::new(schema(), 1), Catalog::new());
        let mut fresh = 0u64;

        // Checkpoints: (WAL length, oracle dump) after every op. The
        // expected recovery at truncation L is the dump of the largest
        // checkpoint length <= L — commit-boundary semantics.
        let mut checkpoints: Vec<(u64, Vec<ObjDump>)> =
            vec![(0, dump(&oracle))];
        for op in &ops {
            let mut f2 = fresh;
            apply(op, &mut durable, &mut fresh);
            apply(op, &mut oracle, &mut f2);
            prop_assert_eq!(f2, fresh);
            let len = std::fs::metadata(&wal_path).expect("wal exists").len();
            checkpoints.push((len, dump(&oracle)));
        }
        prop_assert_eq!(&dump(&durable), &checkpoints.last().unwrap().1);
        drop(durable);
        let pristine = std::fs::read(&wal_path).expect("read wal");

        for cut in 0..=pristine.len() {
            std::fs::write(&wal_path, &pristine[..cut]).expect("write truncated");
            let recovered = Store::open(
                Database::new(schema(), 1),
                Catalog::new(),
                &dir,
                DurabilityMode::Wal,
            )
            .expect("recovery never errors on truncation");
            let expect = &checkpoints
                .iter()
                .rev()
                .find(|(len, _)| *len <= cut as u64)
                .expect("checkpoint 0 always qualifies")
                .1;
            let got = dump(&recovered);
            prop_assert_eq!(&got, expect, "truncated at byte {}", cut);
            // Differential query check: the recovered store's planner
            // answers match the oracle extension.
            let opt = Optimizer::new(&recovered, "Item", vec![]);
            let pred = Formula::cmp("v", CmpOp::Eq, needle);
            let (mut hits, _) = opt.execute(&recovered, &pred).expect("query");
            hits.sort_unstable();
            prop_assert_eq!(hits, expected_hits(expect, needle), "query at byte {}", cut);
        }
    }

    /// Same crash sweep with snapshots in the mix: the surviving state
    /// is snapshot + committed WAL tail, and a cut can never lose a
    /// snapshotted transaction.
    #[test]
    fn truncation_with_snapshots_never_loses_snapshotted_state(
        ops in prop::collection::vec(arb_op(), 4..8),
    ) {
        let dir = scratch("prop-snap");
        let wal_path = segment_path(&dir, 1);
        let mut durable = Store::open(
            Database::new(schema(), 1),
            Catalog::new(),
            &dir,
            DurabilityMode::WalWithSnapshots,
        )
        .expect("open fresh");
        durable.set_snapshot_every(3);
        let mut oracle = Store::new(Database::new(schema(), 1), Catalog::new());
        let mut fresh = 0u64;
        let mut checkpoints: Vec<(u64, Vec<ObjDump>)> =
            vec![(0, dump(&oracle))];
        let mut last_len = 0u64;
        for op in &ops {
            let mut f2 = fresh;
            apply(op, &mut durable, &mut fresh);
            apply(op, &mut oracle, &mut f2);
            let len = std::fs::metadata(&wal_path).expect("wal exists").len();
            // A shrinking log means a snapshot fired inside this op:
            // every earlier checkpoint described the pre-snapshot file
            // and no longer applies — the snapshot itself now carries
            // that state, so this op's dump becomes the new base (what
            // a cut at offset 0 must recover).
            if len < last_len {
                checkpoints.clear();
            }
            checkpoints.push((len, dump(&oracle)));
            last_len = len;
        }
        drop(durable);
        let pristine = std::fs::read(&wal_path).expect("read wal");

        for cut in 0..=pristine.len() {
            std::fs::write(&wal_path, &pristine[..cut]).expect("write truncated");
            let recovered = Store::open(
                Database::new(schema(), 1),
                Catalog::new(),
                &dir,
                DurabilityMode::WalWithSnapshots,
            )
            .expect("recovery never errors on truncation");
            let expect = &checkpoints
                .iter()
                .rev()
                .find(|(len, _)| *len <= cut as u64)
                .expect("snapshot-era checkpoint")
                .1;
            prop_assert_eq!(&dump(&recovered), expect, "truncated at byte {}", cut);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The crash sweep with **multi-threaded producers**: concurrent
    /// sessions commit through a shared [`MvccStore`] over a durable
    /// store, then the WAL is truncated at every byte offset. The
    /// recovered state must equal the replay of the commit-order prefix
    /// whose `Begin…Commit` runs survived the cut — concurrency must
    /// not weaken commit-boundary recovery semantics.
    #[test]
    fn concurrent_producers_crash_sweep_recovers_commit_prefixes(
        seed in any::<u64>(),
    ) {
        let dir = scratch("mt");
        let wal_path = segment_path(&dir, 1);
        let shared = MvccStore::new(Store::open(
            Database::new(schema(), 1),
            Catalog::new(),
            &dir,
            DurabilityMode::Wal,
        ).expect("open fresh"));
        shared.record_history(true);

        let mut setup = shared.begin();
        let mut pool = Vec::new();
        for i in 0..4i64 {
            pool.push(setup.create(
                "Item",
                vec![("k", format!("s{i}").as_str().into()), ("v", i.into())],
            ).expect("seed insert"));
        }
        setup.commit().expect("seed commit");

        std::thread::scope(|s| {
            for th in 0..3u64 {
                let shared = shared.clone();
                let pool = pool.clone();
                s.spawn(move || {
                    let mut x = (seed ^ ((th + 1) << 32)).max(1);
                    let mut rng = move || {
                        x ^= x << 13;
                        x ^= x >> 7;
                        x ^= x << 17;
                        x.wrapping_mul(2685821657736338717)
                    };
                    for n in 0..4u64 {
                        let mut t = shared.begin();
                        match rng() % 3 {
                            0 => {
                                let _ = t.create("Item", vec![
                                    ("k", format!("w{th}-{n}").as_str().into()),
                                    ("v", ((rng() % 100) as i64).into()),
                                ]);
                            }
                            1 => {
                                let id = pool[(rng() % pool.len() as u64) as usize];
                                let _ = t.update(id, "v", Value::int((rng() % 100) as i64));
                            }
                            _ => {
                                let id = pool[(rng() % pool.len() as u64) as usize];
                                let _ = t.remove(id);
                            }
                        }
                        let _ = t.commit();
                    }
                });
            }
        });

        let history = shared.take_history();
        let inner = shared.into_store().expect("sole handle after join");
        drop(inner); // release the WAL file

        // Write txns in commit order ↔ complete Begin…Commit runs.
        let mut writers: Vec<&TxnRecord> =
            history.iter().filter(|t| !t.ops.is_empty()).collect();
        writers.sort_by_key(|t| t.commit_ts);
        let scan = scan_wal(&wal_path).expect("scan");
        let mut run_ends = Vec::new();
        for (i, r) in scan.records.iter().enumerate() {
            if matches!(r, WalRecord::Commit { .. }) {
                run_ends.push(scan.frame_ends[i]);
            }
        }
        prop_assert_eq!(run_ends.len(), writers.len(), "one run per write commit");

        // expected[k] = commit-order prefix state after k runs.
        let mut expected: Vec<Vec<ObjDump>> = Vec::with_capacity(writers.len() + 1);
        let mut base = Store::new(Database::new(schema(), 1), Catalog::new());
        expected.push(dump(&base));
        for w in &writers {
            replay(&history, &[w.txn], &mut base).expect("prefix replay");
            expected.push(dump(&base));
        }

        let pristine = std::fs::read(&wal_path).expect("read wal");
        for cut in 0..=pristine.len() {
            std::fs::write(&wal_path, &pristine[..cut]).expect("write truncated");
            let recovered = Store::open(
                Database::new(schema(), 1),
                Catalog::new(),
                &dir,
                DurabilityMode::Wal,
            ).expect("recovery never errors on truncation");
            let k = run_ends.iter().take_while(|&&end| end <= cut as u64).count();
            prop_assert_eq!(
                &dump(&recovered), &expected[k],
                "cut at byte {} must recover the {}-run prefix (seed {})",
                cut, k, seed
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// The concurrent crash sweep under **group commit and segment
    /// rotation**: committers share fsyncs behind a grouped policy and
    /// a tiny segment threshold forces rotation, then the *active*
    /// segment is truncated at every byte. Recovery must land on a
    /// commit-order prefix that always contains every run in the sealed
    /// segments (sealing syncs them), and every transaction whose
    /// `commit()` was acknowledged must be present in the intact log.
    #[test]
    fn grouped_rotated_crash_sweep_recovers_commit_prefixes(
        seed in any::<u64>(),
    ) {
        use interop_storage::wal::{scan_segments, GroupCommitPolicy};

        let dir = scratch("grouped");
        let shared = MvccStore::new(Store::open(
            Database::new(schema(), 1),
            Catalog::new(),
            &dir,
            DurabilityMode::Wal,
        ).expect("open fresh"));
        shared.set_group_commit(GroupCommitPolicy::grouped(4, 100));
        shared.set_wal_segment_bytes(200);
        shared.record_history(true);

        let mut setup = shared.begin();
        let mut pool = Vec::new();
        for i in 0..3i64 {
            pool.push(setup.create(
                "Item",
                vec![("k", format!("s{i}").as_str().into()), ("v", i.into())],
            ).expect("seed insert"));
        }
        setup.commit().expect("seed commit");

        let acked = std::sync::Mutex::new(0usize);
        std::thread::scope(|s| {
            for th in 0..3u64 {
                let shared = shared.clone();
                let pool = pool.clone();
                let acked = &acked;
                s.spawn(move || {
                    let mut x = (seed ^ ((th + 1) << 32)).max(1);
                    let mut rng = move || {
                        x ^= x << 13;
                        x ^= x >> 7;
                        x ^= x << 17;
                        x.wrapping_mul(2685821657736338717)
                    };
                    for n in 0..4u64 {
                        let mut t = shared.begin();
                        let _ = t.create("Item", vec![
                            ("k", format!("w{th}-{n}").as_str().into()),
                            ("v", ((rng() % 100) as i64).into()),
                        ]);
                        if rng() % 2 == 0 {
                            let id = pool[(rng() % pool.len() as u64) as usize];
                            let _ = t.update(id, "v", Value::int((rng() % 100) as i64));
                        }
                        if t.commit().is_ok() {
                            *acked.lock().unwrap() += 1;
                        }
                    }
                });
            }
        });

        let history = shared.take_history();
        let acked = *acked.lock().unwrap();
        drop(shared.into_store().expect("sole handle after join"));

        let mut writers: Vec<&TxnRecord> =
            history.iter().filter(|t| !t.ops.is_empty()).collect();
        writers.sort_by_key(|t| t.commit_ts);
        prop_assert_eq!(
            writers.len(), acked + 1,
            "every acknowledged commit (plus the seed) is a recorded writer"
        );

        let segs = scan_segments(&dir).expect("scan segments");
        let (active_seq, active_path) = {
            let last = segs.last().expect("segments exist");
            (last.seq, last.path.clone())
        };
        let mut sealed_runs = 0usize;
        let mut active_run_ends = Vec::new();
        for seg in &segs {
            for (i, r) in seg.scan.records.iter().enumerate() {
                if matches!(r, WalRecord::Commit { .. }) {
                    if seg.seq == active_seq {
                        active_run_ends.push(seg.scan.frame_ends[i]);
                    } else {
                        sealed_runs += 1;
                    }
                }
            }
        }
        prop_assert_eq!(sealed_runs + active_run_ends.len(), writers.len());

        let mut expected: Vec<Vec<ObjDump>> = Vec::with_capacity(writers.len() + 1);
        let mut base = Store::new(Database::new(schema(), 1), Catalog::new());
        expected.push(dump(&base));
        for w in &writers {
            replay(&history, &[w.txn], &mut base).expect("prefix replay");
            expected.push(dump(&base));
        }

        let pristine = std::fs::read(&active_path).expect("read active segment");
        for cut in 0..=pristine.len() {
            std::fs::write(&active_path, &pristine[..cut]).expect("truncate");
            let recovered = Store::open(
                Database::new(schema(), 1),
                Catalog::new(),
                &dir,
                DurabilityMode::Wal,
            ).expect("recovery never errors on truncation");
            let k = sealed_runs + active_run_ends
                .iter()
                .take_while(|&&end| end <= cut as u64)
                .count();
            prop_assert_eq!(
                &dump(&recovered), &expected[k],
                "cut at byte {} must recover the {}-run prefix (seed {}, {} sealed runs)",
                cut, k, seed, sealed_runs
            );
        }
    }
}
