//! Failure-injection property tests for the store: random operation
//! batches either commit fully or roll back to exactly the prior state,
//! and pre-validation never has side effects.

use interop_constraint::{Catalog, CmpOp, ConstraintId, Formula, ObjectConstraint};
use interop_model::{ClassDef, ClassName, Database, DbName, Object, ObjectId, Schema, Type, Value};
use interop_storage::{Store, Transaction, TxnOutcome};
use proptest::prelude::*;

fn store(n: usize) -> Store {
    let schema = Schema::new(
        "S",
        vec![ClassDef::new("Item")
            .attr("k", Type::Str)
            .attr("v", Type::Range(0, 100))],
    )
    .expect("static schema");
    let db_name = DbName::new("S");
    let class = ClassName::new("Item");
    let mut cat = Catalog::new();
    cat.add_class(interop_constraint::ClassConstraint::key(
        ConstraintId::new(&db_name, &class, "key"),
        "Item",
        vec!["k"],
    ));
    // v must stay below 50 — the violation trigger.
    cat.add_object(ObjectConstraint::new(
        ConstraintId::new(&db_name, &class, "bound"),
        "Item",
        Formula::cmp("v", CmpOp::Lt, 50i64),
    ));
    let mut s = Store::new(Database::new(schema, 1), cat);
    for i in 0..n {
        s.create(
            "Item",
            vec![
                ("k", Value::str(format!("k{i}"))),
                ("v", Value::Int((i % 50) as i64)),
            ],
        )
        .expect("seed object");
    }
    s
}

fn snapshot(s: &Store) -> Vec<(ObjectId, Vec<(String, Value)>)> {
    s.db()
        .objects()
        .map(|o| {
            (
                o.id,
                o.attrs
                    .iter()
                    .map(|(a, v)| (a.to_string(), v.clone()))
                    .collect(),
            )
        })
        .collect()
}

#[derive(Clone, Debug)]
enum Op {
    Insert { key_suffix: u8, v: i64 },
    Update { target: u8, v: i64 },
    Delete { target: u8 },
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..30, 0i64..100).prop_map(|(key_suffix, v)| Op::Insert { key_suffix, v }),
        (0u8..10, 0i64..100).prop_map(|(target, v)| Op::Update { target, v }),
        (0u8..10).prop_map(|target| Op::Delete { target }),
    ]
}

fn to_txn(store: &Store, ops: &[Op]) -> Transaction {
    let ids: Vec<ObjectId> = store.db().objects().map(|o| o.id).collect();
    let mut txn = Transaction::new();
    let mut next = 1000u64;
    for op in ops {
        match op {
            Op::Insert { key_suffix, v } => {
                let obj = Object::new(ObjectId::new(1, next), ClassName::new("Item"))
                    .with("k", format!("new{key_suffix}").as_str())
                    .with("v", *v);
                next += 1;
                txn = txn.insert(obj);
            }
            Op::Update { target, v } => {
                let id = ids[*target as usize % ids.len()];
                txn = txn.update(id, "v", Value::Int(*v));
            }
            Op::Delete { target } => {
                let id = ids[*target as usize % ids.len()];
                txn = txn.delete(id);
            }
        }
    }
    txn
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Atomicity: a rolled-back batch leaves the store exactly as before.
    #[test]
    fn rollback_restores_exact_state(ops in prop::collection::vec(arb_op(), 1..12)) {
        let mut s = store(10);
        let before = snapshot(&s);
        let txn = to_txn(&s, &ops);
        match txn.commit(&mut s) {
            TxnOutcome::Committed { .. } => {
                // All constraints hold after a commit.
                prop_assert!(s.check_all().expect("checkable").is_empty());
            }
            TxnOutcome::RolledBack { .. } => {
                prop_assert_eq!(snapshot(&s), before, "rollback must be exact");
            }
        }
    }

    /// Prevalidation is side-effect free and implies object-level safety:
    /// if it accepts, any later rejection stems from extension-level
    /// constraints (keys) only.
    #[test]
    fn prevalidate_side_effect_free(ops in prop::collection::vec(arb_op(), 1..12)) {
        let s = store(10);
        let before = snapshot(&s);
        let txn = to_txn(&s, &ops);
        let _ = txn.prevalidate(&s);
        prop_assert_eq!(snapshot(&s), before);
    }

    /// Agreement: if prevalidation rejects at index i, commit also fails
    /// (at i or earlier — commits see evolving state).
    #[test]
    fn prevalidate_rejections_are_real(ops in prop::collection::vec(arb_op(), 1..12)) {
        let mut s = store(10);
        let txn = to_txn(&s, &ops);
        if let Err((i, _)) = txn.prevalidate(&s) {
            match txn.commit(&mut s) {
                TxnOutcome::RolledBack { failed_at, .. } => {
                    prop_assert!(failed_at <= i, "commit failed later ({failed_at}) than prevalidation predicted ({i})");
                }
                TxnOutcome::Committed { .. } => {
                    // Possible only when an earlier op in the batch changed
                    // the state the rejected op depended on (e.g. an
                    // earlier update lowered v before a later one).
                    // Re-validate the final state instead.
                    prop_assert!(s.check_all().expect("checkable").is_empty());
                }
            }
        }
    }

    /// Constraints are never violated in a committed store, whatever the
    /// batch did.
    #[test]
    fn committed_state_always_consistent(ops in prop::collection::vec(arb_op(), 1..16)) {
        let mut s = store(8);
        let txn = to_txn(&s, &ops);
        let _ = txn.commit(&mut s);
        prop_assert!(s.check_all().expect("checkable").is_empty());
    }
}
