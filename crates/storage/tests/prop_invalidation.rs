//! Index-invalidation property suite: random operation sequences
//! (direct store mutations and multi-op transactions, including ones
//! that roll back) are interleaved with planned queries, and after every
//! step the planner must agree with the naive scan oracle. A stale
//! secondary index surviving a mutation would make the two diverge.
//!
//! With incremental maintenance the suite also asserts:
//!
//! * **statistics consistency** — the incrementally maintained
//!   [`AttrStats`] equal a from-scratch recomputation over the same
//!   histogram boundaries after every interleaving;
//! * **mode equivalence** — a store in `Wholesale` mode (discard and
//!   rebuild) and one in `Incremental` mode (apply deltas) answer every
//!   probe identically under the same op sequence.

use interop_constraint::{Catalog, CmpOp, ConstraintId, Formula, ObjectConstraint};
use interop_model::{
    AttrName, ClassDef, ClassName, Database, DbName, ObjectId, Schema, Type, Value,
};
use interop_storage::{
    check, replay, AttrStats, CompositeIndex, CompositePolicy, IndexMaintenance, MvccStore,
    Optimizer, Query, Store, Transaction, Verdict,
};
use proptest::prelude::*;

fn store(seed_objects: usize) -> Store {
    let schema = Schema::new(
        "S",
        vec![ClassDef::new("Item")
            .attr("k", Type::Str)
            .attr("v", Type::Range(0, 100))
            .attr("w", Type::Int)],
    )
    .expect("static schema");
    let db_name = DbName::new("S");
    let class = ClassName::new("Item");
    let mut cat = Catalog::new();
    cat.add_class(interop_constraint::ClassConstraint::key(
        ConstraintId::new(&db_name, &class, "key"),
        "Item",
        vec!["k"],
    ));
    // Enforced bound — some random updates will violate it and roll back,
    // which must also invalidate (rollback re-mutates state).
    cat.add_object(ObjectConstraint::new(
        ConstraintId::new(&db_name, &class, "bound"),
        "Item",
        Formula::cmp("v", CmpOp::Lt, 80i64),
    ));
    let mut s = Store::new(Database::new(schema, 1), cat);
    for i in 0..seed_objects {
        s.create(
            "Item",
            vec![
                ("k", Value::str(format!("k{i}"))),
                ("v", Value::Int((i % 80) as i64)),
                ("w", Value::Int(i as i64)),
            ],
        )
        .expect("seed object");
    }
    s
}

#[derive(Clone, Debug)]
enum Op {
    Insert { suffix: u8, v: i64 },
    Update { target: u8, v: i64 },
    Delete { target: u8 },
    Txn { target: u8, v1: i64, v2: i64 },
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..40, 0i64..100).prop_map(|(suffix, v)| Op::Insert { suffix, v }),
        (0u8..20, 0i64..100).prop_map(|(target, v)| Op::Update { target, v }),
        (0u8..20).prop_map(|target| Op::Delete { target }),
        // A two-op transaction; when v2 >= 80 the batch rolls back after
        // the first update already mutated (and re-mutates to undo).
        (0u8..20, 0i64..79, 0i64..100).prop_map(|(target, v1, v2)| Op::Txn { target, v1, v2 }),
    ]
}

fn apply(s: &mut Store, op: &Op, fresh: &mut u64) {
    let ids: Vec<ObjectId> = s.db().objects().map(|o| o.id).collect();
    let pick = |t: u8| -> Option<ObjectId> {
        if ids.is_empty() {
            None
        } else {
            Some(ids[t as usize % ids.len()])
        }
    };
    match op {
        Op::Insert { suffix, v } => {
            *fresh += 1;
            let _ = s.create(
                "Item",
                vec![
                    ("k", Value::str(format!("n{suffix}-{fresh}"))),
                    ("v", Value::Int(*v)),
                ],
            );
        }
        Op::Update { target, v } => {
            if let Some(id) = pick(*target) {
                let _ = s.update(id, "v", Value::Int(*v));
            }
        }
        Op::Delete { target } => {
            if let Some(id) = pick(*target) {
                let _ = s.remove(id);
            }
        }
        Op::Txn { target, v1, v2 } => {
            if let Some(id) = pick(*target) {
                let txn = Transaction::new().update(id, "v", Value::Int(*v1)).update(
                    id,
                    "v",
                    Value::Int(*v2),
                );
                let _ = txn.commit(s);
            }
        }
    }
}

/// The queries replayed after every mutation: each exercises a different
/// index kind (hash equality, sorted range, intersection with residual).
fn probes() -> Vec<Formula> {
    vec![
        Formula::cmp("v", CmpOp::Eq, 10i64),
        Formula::cmp("v", CmpOp::Ge, 40i64),
        Formula::cmp("v", CmpOp::Le, 60i64)
            .and(Formula::cmp("w", CmpOp::Ge, 3i64))
            .and(Formula::cmp("k", CmpOp::Ne, "k1")),
    ]
}

/// The recurring equality pair driving composite admission: both atoms
/// hit seeded data (`v = i % 80`, `w = i`), and inserts leave `w` null,
/// so the composite's null-skipping path is exercised too.
fn pair_probe() -> Formula {
    Formula::cmp("v", CmpOp::Eq, 3i64).and(Formula::cmp("w", CmpOp::Eq, 3i64))
}

/// A policy under which every recurring pair qualifies and is admitted
/// on first sighting — the tests drive admission deterministically.
fn eager_composites() -> CompositePolicy {
    CompositePolicy {
        admit_after: 1,
        min_gain: 0.0,
        evict_after: u32::MAX,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// After every mutation (including failed ones and rolled-back
    /// transactions), planned queries agree with the scan oracle — no
    /// stale posting list is ever served.
    #[test]
    fn interleaved_mutations_never_serve_stale_indexes(
        ops in prop::collection::vec(arb_op(), 1..14),
    ) {
        let mut s = store(8);
        let opt = Optimizer::new(&s, "Item", vec![Formula::cmp("v", CmpOp::Lt, 80i64)]);
        let mut fresh = 0u64;
        // Warm the indexes before the first mutation.
        for pred in probes() {
            let _ = opt.execute(&s, &pred).expect("warm-up query");
        }
        for op in &ops {
            apply(&mut s, op, &mut fresh);
            for pred in probes() {
                let (mut hits, _) = opt.execute(&s, &pred).expect("planned query");
                hits.sort_unstable();
                let mut expected = Query::new("Item", pred.clone())
                    .scan(&s)
                    .expect("oracle scan");
                expected.sort_unstable();
                prop_assert_eq!(
                    hits, expected,
                    "stale index after {:?} on pred {}", op, pred
                );
            }
        }
    }

    /// The version counter is monotone across arbitrary op sequences and
    /// the cache never reports a version older than the store's.
    #[test]
    fn cache_version_tracks_store_version(
        ops in prop::collection::vec(arb_op(), 1..10),
    ) {
        let mut s = store(5);
        let opt = Optimizer::new(&s, "Item", vec![]);
        let mut fresh = 0u64;
        let mut last = s.version();
        for op in &ops {
            apply(&mut s, op, &mut fresh);
            prop_assert!(s.version() >= last, "version must be monotone");
            last = s.version();
            let _ = opt.execute(&s, &probes()[0]).expect("query");
            let (cache_v, _) = s.secondary_cache_stats();
            prop_assert_eq!(cache_v, s.version(), "cache rebuilt at current version");
        }
    }

    /// Incrementally maintained statistics equal a from-scratch
    /// recomputation (over the same histogram boundaries) after every
    /// random op/txn interleaving — total, non-null, numeric, distinct,
    /// frequency counts and per-bucket histogram counts are all exact.
    #[test]
    fn incremental_stats_equal_scratch_recomputation(
        ops in prop::collection::vec(arb_op(), 1..14),
    ) {
        // Seed with enough objects that the op sequence cannot drift the
        // extension past the histogram-rebuild threshold mid-test: what
        // we compare is pure delta maintenance, not rebuilds.
        let mut s = store(24);
        let opt = Optimizer::new(&s, "Item", vec![]);
        let mut fresh = 0u64;
        let class = ClassName::new("Item");
        // Warm every probed attribute's statistics.
        for pred in probes() {
            let _ = opt.execute(&s, &pred).expect("warm-up query");
        }
        for attr in ["v", "w", "k"] {
            let _ = s.attr_stats(&class, &AttrName::new(attr));
        }
        for op in &ops {
            apply(&mut s, op, &mut fresh);
            for attr in ["v", "w", "k"] {
                let attr = AttrName::new(attr);
                let maintained = s.attr_stats(&class, &attr);
                let values: Vec<Value> = s
                    .db()
                    .extension(&class)
                    .into_iter()
                    .map(|id| s.db().object(id).expect("live").get(&attr).clone())
                    .collect();
                let scratch = AttrStats::rebuild_like(&maintained, values.iter());
                prop_assert_eq!(
                    &*maintained, &scratch,
                    "stats drifted for {} after {:?}", attr, op
                );
            }
        }
    }

    /// The incrementally maintained composite index equals a
    /// from-scratch rebuild over the live extension after every random
    /// op/txn interleaving (inserts with null components, updates of
    /// either component, deletes, and rolled-back transactions), and
    /// the composite-served pair query agrees with the scan oracle at
    /// every step.
    #[test]
    fn incremental_composite_postings_equal_scratch_rebuild(
        ops in prop::collection::vec(arb_op(), 1..14),
    ) {
        let mut s = store(12);
        s.set_composite_policy(eager_composites());
        let opt = Optimizer::new(&s, "Item", vec![]);
        let mut fresh = 0u64;
        let class = ClassName::new("Item");
        let (v_attr, w_attr) = (AttrName::new("v"), AttrName::new("w"));
        // First run notes + admits the pair; second runs through the
        // composite, materialising it.
        for _ in 0..2 {
            let _ = opt.execute(&s, &pair_probe()).expect("warm-up");
        }
        prop_assert!(
            s.admitted_composites().iter().any(|(c, a, b)| {
                c == &class && a == &v_attr && b == &w_attr
            }),
            "pair admitted during warm-up"
        );
        for op in &ops {
            apply(&mut s, op, &mut fresh);
            let maintained = s.composite_index(&class, &v_attr, &w_attr);
            let scratch = CompositeIndex::build(s.db().extension(&class).into_iter().map(|id| {
                let obj = s.db().object(id).expect("live");
                (obj.get(&v_attr).clone(), obj.get(&w_attr).clone(), id)
            }));
            prop_assert_eq!(
                &*maintained, &scratch,
                "composite drifted from scratch rebuild after {:?}", op
            );
            let (mut hits, _) = opt.execute(&s, &pair_probe()).expect("pair query");
            hits.sort_unstable();
            let mut expected = Query::new("Item", pair_probe()).scan(&s).expect("oracle");
            expected.sort_unstable();
            prop_assert_eq!(hits, expected, "composite answer diverged after {:?}", op);
        }
    }

    /// With composites admitted in both stores, `Wholesale` (discard and
    /// rebuild the composite on every mutation) and `Incremental`
    /// (per-object pair deltas) agree on every probe — including the
    /// composite-served pair probe — after every op.
    #[test]
    fn modes_agree_once_composites_are_admitted(
        ops in prop::collection::vec(arb_op(), 1..14),
    ) {
        let mut inc = store(8);
        let mut whole = store(8);
        inc.set_composite_policy(eager_composites());
        whole.set_composite_policy(eager_composites());
        whole.set_index_maintenance(IndexMaintenance::Wholesale);
        let opt_inc = Optimizer::new(&inc, "Item", vec![]);
        let opt_whole = Optimizer::new(&whole, "Item", vec![]);
        let mut fresh_inc = 0u64;
        let mut fresh_whole = 0u64;
        let mut all = probes();
        all.push(pair_probe());
        for pred in &all {
            let _ = opt_inc.execute(&inc, pred).expect("warm-up");
            let _ = opt_inc.execute(&inc, pred).expect("warm-up");
            let _ = opt_whole.execute(&whole, pred).expect("warm-up");
            let _ = opt_whole.execute(&whole, pred).expect("warm-up");
        }
        prop_assert!(!inc.admitted_composites().is_empty());
        prop_assert_eq!(inc.admitted_composites(), whole.admitted_composites());
        for op in &ops {
            apply(&mut inc, op, &mut fresh_inc);
            apply(&mut whole, op, &mut fresh_whole);
            for pred in &all {
                let (mut a, _) = opt_inc.execute(&inc, pred).expect("incremental");
                let (mut b, _) = opt_whole.execute(&whole, pred).expect("wholesale");
                a.sort_unstable();
                b.sort_unstable();
                prop_assert_eq!(a, b, "modes diverged after {:?} on {}", op, pred);
            }
        }
    }

    /// Mode equivalence lifted to concurrency: a random multi-threaded
    /// history against a shared MVCC store is equivalent to *some*
    /// serial history — the oracle recovers the order, and replaying it
    /// through fresh single-threaded stores in both maintenance modes
    /// reproduces the concurrent run's final dump and answers every
    /// probe identically to the scan oracle over the published view.
    #[test]
    fn concurrent_history_is_equivalent_to_a_serial_one_in_both_modes(
        seed in any::<u64>(),
    ) {
        let shared = MvccStore::new(store(8));
        shared.record_history(true);
        std::thread::scope(|s| {
            for th in 0..3u64 {
                let shared = shared.clone();
                s.spawn(move || {
                    // xorshift64*, seeded per thread: deterministic ops,
                    // nondeterministic interleaving (that's the point).
                    let mut x = (seed ^ ((th + 1) << 32)).max(1);
                    let mut rng = move || {
                        x ^= x << 13;
                        x ^= x >> 7;
                        x ^= x << 17;
                        x.wrapping_mul(2685821657736338717)
                    };
                    for n in 0..4u64 {
                        let mut t = shared.begin();
                        for _ in 0..=rng() % 2 {
                            match rng() % 8 {
                                0..=2 => {
                                    // Thread-tagged key: unique, so only
                                    // genuine conflicts abort commits.
                                    let _ = t.create("Item", vec![
                                        ("k", Value::str(format!("c{th}-{n}-{}", rng()))),
                                        ("v", Value::Int((rng() % 79) as i64)),
                                    ]);
                                }
                                3..=5 => {
                                    let ids: Vec<ObjectId> =
                                        t.query("Item", &Formula::cmp("v", CmpOp::Ge, 0i64))
                                            .unwrap_or_default();
                                    if !ids.is_empty() {
                                        let id = ids[(rng() % ids.len() as u64) as usize];
                                        let _ = t.update(id, "v", Value::Int((rng() % 79) as i64));
                                    }
                                }
                                _ => {
                                    let _ = t.query(
                                        "Item",
                                        &Formula::cmp("v", CmpOp::Lt, (rng() % 100) as i64),
                                    );
                                }
                            }
                        }
                        let _ = t.commit();
                    }
                });
            }
        });
        let history = shared.take_history();
        let order = match check(&history) {
            Verdict::Serializable { order, .. } => order,
            Verdict::Cyclic { cycle, .. } => {
                return Err(TestCaseError::fail(format!(
                    "non-serializable history admitted (seed {seed}): cycle {cycle:?}"
                )));
            }
        };
        let view = shared.read_view();
        let mut concurrent_dump: Vec<(ObjectId, Vec<(AttrName, Value)>)> = view
            .db()
            .objects()
            .map(|o| (o.id, o.attrs.iter().map(|(a, v)| (a.clone(), v.clone())).collect()))
            .collect();
        concurrent_dump.sort_by_key(|(id, _)| *id);
        for mode in [IndexMaintenance::Incremental, IndexMaintenance::Wholesale] {
            let mut base = store(8);
            base.set_index_maintenance(mode);
            replay(&history, &order, &mut base)
                .map_err(|e| TestCaseError::fail(format!("replay ({mode:?}, seed {seed}): {e}")))?;
            let mut replayed: Vec<(ObjectId, Vec<(AttrName, Value)>)> = base
                .db()
                .objects()
                .map(|o| (o.id, o.attrs.iter().map(|(a, v)| (a.clone(), v.clone())).collect()))
                .collect();
            replayed.sort_by_key(|(id, _)| *id);
            prop_assert_eq!(
                &replayed, &concurrent_dump,
                "serial replay ({:?}) diverged from the concurrent state (seed {})",
                mode, seed
            );
            // Planned-query equivalence on the final states.
            let opt = Optimizer::new(&base, "Item", vec![]);
            for pred in probes() {
                let (mut a, _) = opt.execute(&base, &pred).expect("replayed query");
                a.sort_unstable();
                let mut b = Query::new("Item", pred.clone()).scan(&view).expect("view scan");
                b.sort_unstable();
                prop_assert_eq!(a, b, "query diverged on {} (seed {})", pred, seed);
            }
        }
    }

    /// A wholesale-invalidation store and an incremental store given the
    /// same op sequence agree on every probe after every op — the delta
    /// path is observationally equivalent to discard-and-rebuild.
    #[test]
    fn wholesale_and_incremental_modes_agree(
        ops in prop::collection::vec(arb_op(), 1..14),
    ) {
        let mut inc = store(8);
        let mut whole = store(8);
        whole.set_index_maintenance(IndexMaintenance::Wholesale);
        let opt_inc = Optimizer::new(&inc, "Item", vec![Formula::cmp("v", CmpOp::Lt, 80i64)]);
        let opt_whole = Optimizer::new(&whole, "Item", vec![Formula::cmp("v", CmpOp::Lt, 80i64)]);
        let mut fresh_inc = 0u64;
        let mut fresh_whole = 0u64;
        for pred in probes() {
            let _ = opt_inc.execute(&inc, &pred).expect("warm-up");
            let _ = opt_whole.execute(&whole, &pred).expect("warm-up");
        }
        for op in &ops {
            apply(&mut inc, op, &mut fresh_inc);
            apply(&mut whole, op, &mut fresh_whole);
            for pred in probes() {
                // The contract is hit-set equality. Strategies are NOT
                // asserted: incremental mode keeps warm-up histogram
                // boundaries while wholesale rebuilds fresh ones each
                // probe, so on large extensions the keep/demote decision
                // may legitimately differ — with identical answers.
                let (mut a, _) = opt_inc.execute(&inc, &pred).expect("incremental");
                let (mut b, _) = opt_whole.execute(&whole, &pred).expect("wholesale");
                a.sort_unstable();
                b.sort_unstable();
                prop_assert_eq!(a, b, "modes diverged after {:?} on {}", op, pred);
            }
        }
    }
}
