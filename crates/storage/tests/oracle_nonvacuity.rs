//! Non-vacuity for the serializability oracle: the checker must be
//! able to *fail*. Hand-seeded anomalies are rejected, hand-seeded
//! serial histories are accepted and replay cleanly — and a live MVCC
//! run under `ValidationMode::FirstCommitterWins` (snapshot isolation)
//! produces a real write-skew history the oracle catches.

use interop_constraint::{Catalog, CmpOp, Formula};
use interop_model::{ClassDef, Database, Object, ObjectId, Schema, Type, Value};
use interop_storage::{
    check, check_order, replay, serialization_edges, EdgeKind, Item, MvccStore, QueryRecord, Store,
    TxnOp, TxnRecord, ValidationMode, Verdict,
};

fn schema() -> Schema {
    Schema::new(
        "S",
        vec![ClassDef::new("Item")
            .attr("k", Type::Str)
            .attr("v", Type::Range(0, 100))],
    )
    .expect("static schema")
}

fn fresh_store() -> Store {
    Store::new(Database::new(schema(), 1), Catalog::new())
}

fn obj(n: u64) -> Item {
    Item::Obj(ObjectId::new(1, n))
}

fn rec(txn: usize, begin_ts: u64, commit_ts: u64) -> TxnRecord {
    TxnRecord {
        txn,
        begin_ts,
        commit_ts,
        reads: Vec::new(),
        writes: Vec::new(),
        ops: Vec::new(),
        queries: Vec::new(),
    }
}

/// The checker rejects a hand-seeded write-skew history — proof that
/// "every property-suite history passed" is not vacuous acceptance.
#[test]
fn seeded_write_skew_is_rejected() {
    // T0 reads y at version 0 and writes x; T1 reads x at version 0
    // and writes y. Neither saw the other's write: two RW
    // anti-dependencies closing a cycle.
    let mut t0 = rec(0, 0, 1);
    t0.reads.push((obj(2), 0));
    t0.writes.push(obj(1));
    let mut t1 = rec(1, 0, 2);
    t1.reads.push((obj(1), 0));
    t1.writes.push(obj(2));
    let history = [t0, t1];

    let edges = serialization_edges(&history);
    assert_eq!(
        edges
            .iter()
            .filter(|e| e.kind == EdgeKind::ReadWrite)
            .count(),
        2,
        "both anti-dependencies derived"
    );
    match check(&history) {
        Verdict::Cyclic { cycle, .. } => {
            let mut c = cycle;
            c.sort_unstable();
            assert_eq!(c, vec![0, 1], "the cycle names both skewing txns");
        }
        Verdict::Serializable { order, .. } => {
            panic!("write skew accepted with order {order:?}")
        }
    }
    // And no order over both txns validates.
    assert!(check_order(&history, &[0, 1]).is_err());
    assert!(check_order(&history, &[1, 0]).is_err());
}

/// A lost-update history (both read version 0, both write) is cyclic
/// too: WR/RW against the same chain.
#[test]
fn seeded_lost_update_is_rejected() {
    let mut t0 = rec(0, 0, 1);
    t0.reads.push((obj(1), 0));
    t0.writes.push(obj(1));
    let mut t1 = rec(1, 0, 2);
    t1.reads.push((obj(1), 0));
    t1.writes.push(obj(1));
    // T1 read v0 but overwrote T0's version: RW T1→T0? No — T0
    // replaced v0 first, so RW T0←T1 is T1→T0... the graph has
    // WW T0→T1 and RW T1→T0 (T1 read a version T0 replaced): cycle.
    assert!(!check(&[t0, t1]).is_serializable());
}

/// A hand-seeded *serial* history is accepted, its recovered order is
/// the serial order, and `replay` reproduces dumps and query answers.
#[test]
fn seeded_serial_history_is_accepted_and_replays() {
    let id = ObjectId::new(1, 0);
    // T0: insert the object (and a planned query that sees it).
    let mut t0 = rec(0, 0, 1);
    t0.writes.push(obj(0));
    t0.writes.push(Item::Class("Item".into()));
    t0.ops.push(TxnOp::Insert(
        Object::new(id, "Item".into())
            .with("k", "a")
            .with("v", 1i64),
    ));
    t0.queries.push(QueryRecord {
        class: "Item".into(),
        predicate: Formula::cmp("v", CmpOp::Eq, 1i64),
        hits: vec![id],
        at: 1, // after its insert — own write visible
    });
    // T1: read it at version 1, update it.
    let mut t1 = rec(1, 1, 2);
    t1.reads.push((obj(0), 1));
    t1.reads.push((Item::Class("Item".into()), 1));
    t1.writes.push(obj(0));
    t1.writes.push(Item::Class("Item".into()));
    t1.ops.push(TxnOp::Update {
        id,
        attr: "v".into(),
        value: Value::int(2),
    });
    t1.queries.push(QueryRecord {
        class: "Item".into(),
        predicate: Formula::cmp("v", CmpOp::Eq, 2i64),
        hits: vec![id],
        at: 1,
    });
    let history = [t0, t1];

    let order = match check(&history) {
        Verdict::Serializable { order, .. } => order,
        Verdict::Cyclic { cycle, .. } => panic!("serial history rejected: cycle {cycle:?}"),
    };
    assert_eq!(order, vec![0, 1], "recovered order is the serial order");
    assert!(check_order(&history, &[0, 1]).is_ok());
    assert!(
        check_order(&history, &[1, 0]).is_err(),
        "the reversed order contradicts the WR dependency"
    );

    let mut base = fresh_store();
    replay(&history, &order, &mut base).expect("replay reproduces queries");
    assert_eq!(
        base.db().object(id).expect("replayed").get(&"v".into()),
        &Value::int(2)
    );
    // Replaying in the contradicting order diverges visibly: T1's
    // update targets an object T0 has not inserted yet.
    let mut bad = fresh_store();
    assert!(replay(&history, &[1, 0], &mut bad).is_err());
}

/// End-to-end non-vacuity: run a *real* write skew through the MVCC
/// store with read validation off (plain snapshot isolation). Both
/// commits succeed — and the oracle rejects the recorded history.
#[test]
fn live_write_skew_under_snapshot_isolation_is_caught() {
    let store = MvccStore::with_validation(fresh_store(), ValidationMode::FirstCommitterWins);
    store.record_history(true);

    let mut seed = store.begin();
    let a = seed
        .create("Item", vec![("k", "a".into()), ("v", 1i64.into())])
        .expect("seed a");
    let b = seed
        .create("Item", vec![("k", "b".into()), ("v", 1i64.into())])
        .expect("seed b");
    seed.commit().expect("seed");

    // Invariant "v(a) + v(b) >= 1": each txn reads both and zeroes one.
    let mut t1 = store.begin();
    let mut t2 = store.begin();
    assert!(t1.get(b).is_some());
    t1.update(a, "v", Value::int(0)).expect("t1 writes a");
    assert!(t2.get(a).is_some());
    t2.update(b, "v", Value::int(0)).expect("t2 writes b");
    t1.commit().expect("snapshot isolation admits t1");
    t2.commit()
        .expect("snapshot isolation admits t2 — the anomaly");

    let history = store.take_history();
    assert_eq!(history.len(), 3, "seed + two skewing txns recorded");
    match check(&history) {
        Verdict::Cyclic { cycle, .. } => {
            assert!(
                cycle.contains(&1) && cycle.contains(&2),
                "the cycle names the skewing txns, got {cycle:?}"
            );
        }
        Verdict::Serializable { order, .. } => panic!(
            "oracle accepted a live write skew with order {order:?} — \
             the checker is vacuous"
        ),
    }
}

/// The same workload under the default `Serializable` validation never
/// reaches the oracle with an anomaly: the second commit is refused,
/// and the recorded history (winners only) is accepted.
#[test]
fn live_write_skew_under_serializable_is_prevented_and_history_accepted() {
    let store = MvccStore::new(fresh_store());
    store.record_history(true);

    let mut seed = store.begin();
    let a = seed
        .create("Item", vec![("k", "a".into()), ("v", 1i64.into())])
        .expect("seed a");
    let b = seed
        .create("Item", vec![("k", "b".into()), ("v", 1i64.into())])
        .expect("seed b");
    seed.commit().expect("seed");

    let mut t1 = store.begin();
    let mut t2 = store.begin();
    assert!(t1.get(b).is_some());
    t1.update(a, "v", Value::int(0)).expect("t1 writes a");
    assert!(t2.get(a).is_some());
    t2.update(b, "v", Value::int(0)).expect("t2 writes b");
    t1.commit().expect("t1 commits");
    assert!(t2.commit().is_err(), "read validation refuses the skew");

    let history = store.take_history();
    assert_eq!(history.len(), 2, "only committed txns are recorded");
    let verdict = check(&history);
    assert!(verdict.is_serializable());
    if let Verdict::Serializable { order, .. } = verdict {
        // Commit-order replay reproduces the final state.
        let mut base = fresh_store();
        replay(&history, &order, &mut base).expect("replay");
        let view = store.read_view();
        assert_eq!(
            format!("{:?}", base.db()),
            format!("{:?}", view.db()),
            "replayed serial state equals the concurrent final state"
        );
    }
}
