//! Differential oracle suite for the query planner: every random query
//! is answered two ways — through the planner ([`Optimizer::execute`],
//! with lazy secondary indexes, posting intersection, constraint
//! pruning) and through the naive full-scan reference executor
//! ([`Query::scan`], which evaluates the raw predicate on every object
//! of the extension). The hit sets must be identical, and
//! `PrunedEmpty` may only be claimed when the scan agrees the answer is
//! empty.
//!
//! Stores are adversarial: mixed value types, missing (null) attributes,
//! subclass hierarchies, and an always-empty class.

use interop_constraint::{CmpOp, Expr, Formula};
use interop_model::{ClassDef, Database, Schema, Type, Value};
use interop_storage::{CompositePolicy, OptimizeOutcome, Optimizer, Query, Store};
use proptest::prelude::*;

/// One randomly generated object: class selector, attribute values, and
/// a presence mask (bit i clear ⇒ attribute i left null).
type ObjSpec = (u8, i64, u8, i64, i64, u8);

/// One atomic predicate: (kind, attribute selector, operator selector,
/// constant).
type AtomSpec = (u8, u8, u8, i16);

const CLASSES: [&str; 4] = ["Base", "Mid", "Leaf", "Empty"];
const ATTRS: [&str; 4] = ["num", "name", "score", "extra"];
const NAMES: [&str; 5] = ["a", "b", "c", "d", "e"];

fn schema() -> Schema {
    Schema::new(
        "Q",
        vec![
            ClassDef::new("Base")
                .attr("num", Type::Int)
                .attr("name", Type::Str)
                .attr("score", Type::Range(0, 20)),
            ClassDef::new("Mid").isa("Base").attr("extra", Type::Real),
            ClassDef::new("Leaf").isa("Mid"),
            ClassDef::new("Empty")
                .attr("num", Type::Int)
                .attr("name", Type::Str)
                .attr("score", Type::Range(0, 20)),
        ],
    )
    .expect("static schema")
}

/// Builds a store whose objects satisfy `score >= 2` and `num >= 0` by
/// construction — those are the "derived global constraints" handed to
/// the optimizer, and the paper's premise is that supplied constraints
/// are locally enforced.
fn build_store(objs: &[ObjSpec]) -> Store {
    let mut db = Database::new(schema(), 1);
    for (class, num, name, score, extra, mask) in objs {
        let class = CLASSES[(*class as usize) % 3]; // Empty never populated
        let mut attrs: Vec<(&str, Value)> = Vec::new();
        if mask & 1 != 0 {
            attrs.push(("num", Value::int(num.rem_euclid(100))));
        }
        if mask & 2 != 0 {
            attrs.push(("name", Value::str(NAMES[(*name as usize) % NAMES.len()])));
        }
        if mask & 4 != 0 {
            attrs.push(("score", Value::int(2 + score.rem_euclid(19))));
        }
        if mask & 8 != 0 && class != "Base" {
            attrs.push(("extra", Value::real((extra.rem_euclid(50)) as f64 / 2.0)));
        }
        db.create(class, attrs)
            .expect("generated object typechecks");
    }
    Store::new(db, interop_constraint::Catalog::new())
}

fn enforced_constraints() -> Vec<Formula> {
    vec![
        Formula::cmp("score", CmpOp::Ge, 2i64),
        Formula::cmp("num", CmpOp::Ge, 0i64),
    ]
}

fn build_atom(&(kind, attr, op, konst): &AtomSpec) -> Formula {
    let attr_name = ATTRS[(attr as usize) % ATTRS.len()];
    let ops = [
        CmpOp::Eq,
        CmpOp::Ne,
        CmpOp::Lt,
        CmpOp::Le,
        CmpOp::Gt,
        CmpOp::Ge,
    ];
    let cmp_op = ops[(op as usize) % ops.len()];
    match kind % 6 {
        // Numeric comparison (sometimes against a string attr —
        // exercising incomparable-variant semantics).
        0 => Formula::cmp(attr_name, cmp_op, (konst % 30) as i64),
        // Real-constant comparison (cross-type numerics).
        1 => Formula::cmp(attr_name, cmp_op, (konst % 30) as f64 / 2.0),
        // String comparison (sometimes against numeric attrs).
        2 => Formula::cmp(
            attr_name,
            cmp_op,
            NAMES[(konst.unsigned_abs() as usize) % NAMES.len()],
        ),
        // Membership over mixed int/real constants.
        3 => Formula::In(
            Expr::attr(attr_name),
            [
                Value::int((konst % 10) as i64),
                Value::real((konst % 10) as f64),
                Value::int((konst % 7) as i64),
            ]
            .into_iter()
            .collect(),
        ),
        // Substring test.
        4 => Formula::Contains(
            Expr::attr("name"),
            NAMES[(konst.unsigned_abs() as usize) % NAMES.len()].into(),
        ),
        // Null-probing equality against a constant the data never holds.
        _ => Formula::cmp(attr_name, cmp_op, 1000i64),
    }
}

/// Combines atoms into a predicate; `shape` picks the boolean structure
/// so conjunctions (planner fast path), disjunctions, negations and
/// implications (residual-only paths) are all exercised.
fn build_pred(atoms: &[AtomSpec], shape: u8) -> Formula {
    let fs: Vec<Formula> = atoms.iter().map(build_atom).collect();
    match shape % 4 {
        0 => Formula::conj(fs),
        1 => {
            let mut it = fs.into_iter();
            let first = it.next().unwrap_or(Formula::True);
            it.fold(first, |acc, f| acc.or(f))
        }
        2 => {
            let mut it = fs.into_iter();
            let first = it.next().unwrap_or(Formula::True);
            Formula::Not(Box::new(first)).and(Formula::conj(it))
        }
        _ => {
            let mut it = fs.into_iter();
            let first = it.next().unwrap_or(Formula::True);
            first.implies(Formula::conj(it))
        }
    }
}

fn oracle_hits(store: &Store, class: &str, pred: &Formula) -> Vec<interop_model::ObjectId> {
    let mut hits = Query::new(class, pred.clone())
        .scan(store)
        .expect("oracle scans");
    hits.sort_unstable();
    hits
}

/// One composite-heavy object: class selector, two hot attribute value
/// selectors with representation bits (store the numeric as `Real`
/// instead of `Int`, exercising data-side `sem_eq` collisions), and a
/// presence mask (bit clear ⇒ attribute left null).
type HotObjSpec = (u8, u8, bool, u8, bool, u8);

/// One composite-heavy query: two hot probe constants with
/// representation bits, plus a tail selector for an extra conjunct.
type HotQuerySpec = (u8, bool, u8, bool, u8);

/// Adversarial store for the composite planner: both hot attributes
/// draw from tiny domains, so the same equality *pairs* recur across
/// queries and the admission sketch crosses its threshold mid-test.
/// `ha : int` also admits whole reals and `hb : real` admits ints
/// (model numeric coercion), so `Int(k)`/`Real(k.0)` collide in the
/// pair postings exactly as `sem_eq` demands.
fn build_hot_store(objs: &[HotObjSpec]) -> Store {
    let schema = Schema::new(
        "H",
        vec![
            ClassDef::new("HBase")
                .attr("ha", Type::Int)
                .attr("hb", Type::Real)
                .attr("tag", Type::Str),
            ClassDef::new("HSub").isa("HBase"),
            ClassDef::new("HEmpty")
                .attr("ha", Type::Int)
                .attr("hb", Type::Real),
        ],
    )
    .expect("static schema");
    let mut db = Database::new(schema, 1);
    for (class, a, a_real, b, b_real, mask) in objs {
        let class = if class % 3 == 0 { "HSub" } else { "HBase" };
        let mut attrs: Vec<(&str, Value)> = Vec::new();
        if mask & 1 != 0 {
            let k = (*a % 4) as i64;
            attrs.push((
                "ha",
                if *a_real {
                    Value::real(k as f64)
                } else {
                    Value::int(k)
                },
            ));
        }
        if mask & 2 != 0 {
            let k = (*b % 4) as i64;
            attrs.push((
                "hb",
                if *b_real {
                    Value::real(k as f64)
                } else {
                    Value::int(k)
                },
            ));
        }
        if mask & 4 != 0 {
            attrs.push(("tag", Value::str(NAMES[(*mask as usize) % NAMES.len()])));
        }
        db.create(class, attrs).expect("hot object typechecks");
    }
    Store::new(db, interop_constraint::Catalog::new())
}

fn hot_pred(&(a, a_real, b, b_real, tail): &HotQuerySpec) -> Formula {
    let ka = (a % 5) as i64; // one value outside the data domain: null/empty probes
    let kb = (b % 5) as i64;
    let fa = if a_real {
        Formula::cmp("ha", CmpOp::Eq, ka as f64)
    } else {
        Formula::cmp("ha", CmpOp::Eq, ka)
    };
    let fb = if b_real {
        Formula::cmp("hb", CmpOp::Eq, kb as f64)
    } else {
        Formula::cmp("hb", CmpOp::Eq, kb)
    };
    let pred = fa.and(fb);
    match tail % 3 {
        0 => pred,
        1 => pred.and(Formula::cmp("tag", CmpOp::Ne, "a")),
        _ => pred.and(Formula::cmp("ha", CmpOp::Ge, 1i64)),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Composite-heavy sweep: hot equality pairs recur until the store
    /// admits a composite index, and the planner must agree with the
    /// scan oracle before, during, and after admission — across null
    /// paths, `Int`/`Real` collisions, and subclass extensions.
    #[test]
    fn composite_planner_matches_scan_oracle(
        objs in prop::collection::vec(
            (0u8..6, 0u8..8, any::<bool>(), 0u8..8, any::<bool>(), 0u8..8),
            0..30,
        ),
        queries in prop::collection::vec(
            (0u8..8, any::<bool>(), 0u8..8, any::<bool>(), 0u8..6),
            1..5,
        ),
        class_sel in 0u8..4,
        admit_after in 1u32..3,
    ) {
        let mut store = build_hot_store(&objs);
        store.set_composite_policy(CompositePolicy {
            admit_after,
            min_gain: 0.0, // every recurring pair is eligible
            evict_after: u32::MAX,
        });
        let class = ["HBase", "HSub", "HEmpty"][(class_sel as usize) % 3];
        let opt = Optimizer::new(&store, class, vec![]);
        for q in &queries {
            let pred = hot_pred(q);
            // Re-run each query past the admission threshold: the first
            // runs intersect, the later ones probe the composite. Every
            // run must match the oracle.
            for _ in 0..=admit_after {
                let (mut hits, outcome) = opt.execute(&store, &pred).expect("planner executes");
                hits.sort_unstable();
                let expected = oracle_hits(&store, class, &pred);
                prop_assert_eq!(
                    &hits, &expected,
                    "planner and oracle disagree on class {} pred {} (outcome {:?})",
                    class, pred, outcome
                );
            }
        }
    }

    /// Once a composite is admitted, mutating either component of the
    /// pair keeps the composite answer in lockstep with the oracle.
    #[test]
    fn admitted_composite_survives_mutations(
        objs in prop::collection::vec(
            (0u8..6, 0u8..8, any::<bool>(), 0u8..8, any::<bool>(), 0u8..8),
            1..20,
        ),
        flips in prop::collection::vec((0u8..20, 0u8..8, any::<bool>()), 1..8),
    ) {
        let mut store = build_hot_store(&objs);
        store.set_composite_policy(CompositePolicy { admit_after: 1, min_gain: 0.0, evict_after: u32::MAX });
        let opt = Optimizer::new(&store, "HBase", vec![]);
        let pred = Formula::cmp("ha", CmpOp::Eq, 1i64).and(Formula::cmp("hb", CmpOp::Eq, 2.0));
        // Two runs: note + admit, then probe through the composite.
        for _ in 0..2 {
            let _ = opt.execute(&store, &pred).expect("warm-up");
        }
        for (target, v, to_a) in &flips {
            let ids: Vec<_> = store.db().objects().map(|o| o.id).collect();
            if ids.is_empty() { break; }
            let id = ids[(*target as usize) % ids.len()];
            let attr = if *to_a { "ha" } else { "hb" };
            let _ = store.update(id, attr, Value::int((v % 4) as i64));
            let (mut hits, _) = opt.execute(&store, &pred).expect("planner executes");
            hits.sort_unstable();
            prop_assert_eq!(hits, oracle_hits(&store, "HBase", &pred));
        }
    }

    /// The planner and the scan oracle agree on every random query, with
    /// and without the derived constraints armed.
    #[test]
    fn planner_matches_scan_oracle(
        objs in prop::collection::vec(
            (0u8..6, 0i64..200, 0u8..8, 0i64..40, 0i64..100, 0u8..16),
            0..25,
        ),
        atoms in prop::collection::vec((0u8..12, 0u8..8, 0u8..12, -30i16..30), 1..5),
        shape in 0u8..8,
        class_sel in 0u8..8,
        armed in any::<bool>(),
    ) {
        let store = build_store(&objs);
        let class = CLASSES[(class_sel as usize) % CLASSES.len()];
        let pred = build_pred(&atoms, shape);
        let constraints = if armed { enforced_constraints() } else { Vec::new() };
        let opt = Optimizer::new(&store, class, constraints);
        let (mut hits, outcome) = opt.execute(&store, &pred).expect("planner executes");
        hits.sort_unstable();
        let expected = oracle_hits(&store, class, &pred);
        prop_assert_eq!(
            &hits, &expected,
            "planner and scan oracle disagree on class {} pred {} (outcome {:?})",
            class, pred, outcome
        );
        if outcome == OptimizeOutcome::PrunedEmpty {
            prop_assert!(
                expected.is_empty(),
                "PrunedEmpty claimed but the scan finds hits for {}", pred
            );
        }
    }

    /// Conjunctive queries — the planner's index-intersection fast path —
    /// agree with the oracle even when every conjunct is index-satisfiable.
    #[test]
    fn conjunctive_index_path_matches_oracle(
        objs in prop::collection::vec(
            (0u8..6, 0i64..200, 0u8..8, 0i64..40, 0i64..100, 0u8..16),
            0..25,
        ),
        atoms in prop::collection::vec((0u8..4, 0u8..8, 0u8..12, -30i16..30), 1..4),
        class_sel in 0u8..8,
    ) {
        let store = build_store(&objs);
        let class = CLASSES[(class_sel as usize) % CLASSES.len()];
        let pred = Formula::conj(atoms.iter().map(build_atom));
        let opt = Optimizer::new(&store, class, enforced_constraints());
        let (mut hits, _) = opt.execute(&store, &pred).expect("planner executes");
        hits.sort_unstable();
        prop_assert_eq!(hits, oracle_hits(&store, class, &pred));
    }

    /// Non-vacuity guard for the composite sweep: a recurring hot pair
    /// on the sweep's store shape really is admitted, really executes
    /// through the composite strategy, and still matches the oracle.
    #[test]
    fn hot_pair_reaches_composite_strategy(seed in 0u8..8) {
        let objs: Vec<HotObjSpec> = (0..16u8)
            .map(|i| (1u8, (i + seed) % 4, i % 2 == 0, (i / 2) % 4, i % 3 == 0, 7u8))
            .collect();
        let mut store = build_hot_store(&objs);
        store.set_composite_policy(CompositePolicy { admit_after: 1, min_gain: 0.0, evict_after: u32::MAX });
        let opt = Optimizer::new(&store, "HBase", vec![]);
        let pred = Formula::cmp("ha", CmpOp::Eq, 1i64).and(Formula::cmp("hb", CmpOp::Eq, 1.0));
        let _ = opt.execute(&store, &pred).expect("warm-up");
        let plan = opt.costed_plan(&store, &pred);
        prop_assert!(plan.composite_probe().is_some(), "sweep shape admits composites");
        let rendered = opt.explain(&store, &pred).to_string();
        prop_assert!(rendered.contains("composite["), "{}", rendered);
        let (mut hits, _) = opt.execute(&store, &pred).expect("composite run");
        hits.sort_unstable();
        prop_assert_eq!(hits, oracle_hits(&store, "HBase", &pred));
    }

    /// Repeating a query against warm indexes returns identical results
    /// (the lazy cache itself is deterministic).
    #[test]
    fn warm_indexes_are_stable(
        objs in prop::collection::vec(
            (0u8..6, 0i64..200, 0u8..8, 0i64..40, 0i64..100, 0u8..16),
            0..20,
        ),
        atoms in prop::collection::vec((0u8..4, 0u8..8, 0u8..12, -30i16..30), 1..4),
    ) {
        let store = build_store(&objs);
        let pred = Formula::conj(atoms.iter().map(build_atom));
        let opt = Optimizer::new(&store, "Base", enforced_constraints());
        let (first, o1) = opt.execute(&store, &pred).expect("cold run");
        let (second, o2) = opt.execute(&store, &pred).expect("warm run");
        prop_assert_eq!(first, second);
        prop_assert_eq!(o1, o2);
    }
}
