//! The tentpole concurrency property suite: random multi-threaded
//! transaction mixes — inserts, updates, removes, rollbacks and
//! planned queries — run against one shared [`MvccStore`] under the
//! default `Serializable` validation. Every history the store admits
//! must pass the black-box serializability oracle, and the recovered
//! serial order must *replay*: re-executing it through fresh
//! single-threaded stores (in both index-maintenance modes) reproduces
//! the concurrent run's final state and every recorded planned-query
//! answer.
//!
//! Failures print the seed tuple and the recorded history — the
//! schedule that actually executed — so a run is replayable.

use interop_constraint::{Catalog, CmpOp, Formula};
use interop_model::{ClassDef, Database, ObjectId, Schema, Type, Value};
use interop_storage::{check, replay, IndexMaintenance, MvccStore, Store, TxnRecord, Verdict};
use proptest::prelude::*;

fn schema() -> Schema {
    Schema::new(
        "S",
        vec![ClassDef::new("Item")
            .attr("k", Type::Str)
            .attr("v", Type::Range(0, 100))],
    )
    .expect("static schema")
}

fn fresh_store() -> Store {
    Store::new(Database::new(schema(), 1), Catalog::new())
}

type ObjDump = (ObjectId, Vec<(String, Value)>);

fn dump(s: &Store) -> Vec<ObjDump> {
    let mut out: Vec<_> = s
        .db()
        .objects()
        .map(|o| {
            (
                o.id,
                o.attrs
                    .iter()
                    .map(|(a, v)| (a.to_string(), v.clone()))
                    .collect(),
            )
        })
        .collect();
    out.sort_by_key(|(id, _)| *id);
    out
}

/// Deterministic per-thread randomness (xorshift64*), so a failing
/// case is fully described by its seed tuple.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed.wrapping_mul(2685821657736338717).max(1))
    }
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(2685821657736338717)
    }
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

/// One worker thread's run: `per_thread` transactions, each a random
/// mix of creates, updates/removes of the seeded population, and
/// planned queries; some roll back deliberately. Doomed operations and
/// refused commits are expected — the property is about the histories
/// that *are* admitted.
fn worker(store: &MvccStore, seeds: &[ObjectId], rng_seed: u64, per_thread: usize) {
    let mut rng = Rng::new(rng_seed);
    for _ in 0..per_thread {
        let mut t = store.begin();
        let n_ops = 1 + rng.below(3) as usize;
        for _ in 0..n_ops {
            match rng.below(10) {
                0..=2 => {
                    let v = rng.below(100) as i64;
                    let k = format!("w{}", rng.next());
                    let _ = t.create("Item", vec![("k", k.as_str().into()), ("v", v.into())]);
                }
                3..=5 => {
                    let id = seeds[rng.below(seeds.len() as u64) as usize];
                    let _ = t.update(id, "v", Value::int(rng.below(100) as i64));
                }
                6 => {
                    let id = seeds[rng.below(seeds.len() as u64) as usize];
                    let _ = t.remove(id);
                }
                _ => {
                    let op = match rng.below(3) {
                        0 => CmpOp::Eq,
                        1 => CmpOp::Lt,
                        _ => CmpOp::Ge,
                    };
                    let _ = t.query("Item", &Formula::cmp("v", op, rng.below(100) as i64));
                }
            }
        }
        if rng.below(8) == 0 {
            t.rollback();
        } else {
            // WriteConflict / ReadConflict / Rejected are all legal
            // outcomes under contention; the loser simply aborts.
            let _ = t.commit();
        }
    }
}

/// Runs one random concurrent schedule and returns the recorded
/// history plus the final published state's dump.
fn run_schedule(seed: u64, threads: usize, per_thread: usize) -> (Vec<TxnRecord>, Vec<ObjDump>) {
    let store = MvccStore::new(fresh_store());
    store.record_history(true);

    // Seeded population the workers contend over.
    let mut setup = store.begin();
    let mut seeds = Vec::new();
    for i in 0..6i64 {
        let id = setup
            .create(
                "Item",
                vec![("k", format!("s{i}").as_str().into()), ("v", i.into())],
            )
            .expect("seed insert");
        seeds.push(id);
    }
    setup.commit().expect("seed commit");

    std::thread::scope(|s| {
        for th in 0..threads {
            let store = store.clone();
            let seeds = seeds.clone();
            s.spawn(move || worker(&store, &seeds, seed ^ (th as u64 + 1) << 32, per_thread));
        }
    });

    let history = store.take_history();
    let view = store.read_view();
    let final_dump = dump(&view);
    (history, final_dump)
}

/// Pretty-prints a history as the replayable schedule it is.
fn describe(history: &[TxnRecord]) -> String {
    let mut s = String::new();
    for t in history {
        s.push_str(&format!(
            "T{} [begin {} commit {}] reads={:?} writes={:?} ops={:?}\n",
            t.txn, t.begin_ts, t.commit_ts, t.reads, t.writes, t.ops
        ));
    }
    s
}

proptest! {
    // ≥100 random multi-threaded histories (the acceptance bar), each
    // with threads × txns concurrent transactions.
    #![proptest_config(ProptestConfig::with_cases(110))]

    /// Every admitted history is serializable, and its recovered
    /// serial order replays — same dumps, same planned-query answers —
    /// through fresh single-threaded stores in BOTH index-maintenance
    /// modes (the concurrent ≡ serial mode-equivalence bridge).
    #[test]
    fn admitted_histories_are_serializable_and_replayable(
        seed in any::<u64>(),
        threads in 2usize..=5,
        per_thread in 3usize..=10,
    ) {
        let (history, final_dump) = run_schedule(seed, threads, per_thread);
        prop_assert!(
            !history.is_empty(),
            "at least the seed txn commits (seed {seed}, {threads}x{per_thread})"
        );

        let order = match check(&history) {
            Verdict::Serializable { order, .. } => order,
            Verdict::Cyclic { cycle, edges } => {
                return Err(TestCaseError::fail(format!(
                    "non-serializable history admitted!\n\
                     seed={seed} threads={threads} per_thread={per_thread}\n\
                     cycle={cycle:?}\nedges={edges:?}\nschedule:\n{}",
                    describe(&history)
                )));
            }
        };

        // Replay the recovered order in both maintenance modes.
        for mode in [IndexMaintenance::Incremental, IndexMaintenance::Wholesale] {
            let mut base = fresh_store();
            base.set_index_maintenance(mode);
            if let Err(e) = replay(&history, &order, &mut base) {
                return Err(TestCaseError::fail(format!(
                    "replay diverged ({mode:?}): {e}\n\
                     seed={seed} threads={threads} per_thread={per_thread}\n\
                     order={order:?}\nschedule:\n{}",
                    describe(&history)
                )));
            }
            prop_assert_eq!(
                &dump(&base),
                &final_dump,
                "serial replay ({:?}) must land on the concurrent final state \
                 (seed {}, {}x{})",
                mode, seed, threads, per_thread
            );
        }
    }
}
