//! MVCC semantics, deterministically: snapshot isolation, conflict
//! detection, validation modes, and the regression pinning the
//! single-threaded `DurabilityMode::Off` path byte-identical to the
//! plain (pre-MVCC) store.

use interop_constraint::{Catalog, CmpOp, ConstraintId, Formula, ObjectConstraint};
use interop_model::{ClassDef, ClassName, Database, DbName, ObjectId, Schema, Type, Value};
use interop_storage::{
    CommitError, DurabilityMode, MvccStore, Optimizer, RetryPolicy, RunTxnError, Store, StoreError,
    ValidationMode,
};

fn schema() -> Schema {
    Schema::new(
        "S",
        vec![ClassDef::new("Item")
            .attr("k", Type::Str)
            .attr("v", Type::Range(0, 100))
            .attr("w", Type::Int)],
    )
    .expect("static schema")
}

/// Catalog with an object constraint (`v < 80`) so some operations are
/// rejected, plus a key on `k`.
fn catalog() -> Catalog {
    let dbn = DbName::new("S");
    let mut cat = Catalog::new();
    cat.add_object(ObjectConstraint::new(
        ConstraintId::new(&dbn, &ClassName::new("Item"), "vcap"),
        "Item",
        Formula::cmp("v", CmpOp::Lt, 80i64),
    ));
    cat.add_class(interop_constraint::ClassConstraint::key(
        ConstraintId::new(&dbn, &ClassName::new("Item"), "kkey"),
        "Item",
        vec!["k"],
    ));
    cat
}

fn fresh() -> MvccStore {
    MvccStore::new(Store::new(Database::new(schema(), 1), Catalog::new()))
}

type ObjDump = (ObjectId, Vec<(String, Value)>);

fn dump(s: &Store) -> Vec<ObjDump> {
    let mut out: Vec<_> = s
        .db()
        .objects()
        .map(|o| {
            (
                o.id,
                o.attrs
                    .iter()
                    .map(|(a, v)| (a.to_string(), v.clone()))
                    .collect(),
            )
        })
        .collect();
    out.sort_by_key(|(id, _)| *id);
    out
}

#[test]
fn single_session_matches_plain_store_byte_for_byte() {
    // The same operation sequence through (a) a plain store and (b) one
    // MVCC session per transaction must leave identical dumps, versions
    // and planned-query answers — the single-threaded Off-mode path has
    // not drifted from the PR-8 store.
    let mut plain = Store::new(Database::new(schema(), 1), catalog());
    let shared = MvccStore::new(Store::new(Database::new(schema(), 1), catalog()));

    // Mixed workload: creates, updates, a remove, a rejected op, a
    // planned query mid-stream.
    let p1 = plain
        .create("Item", vec![("k", "a".into()), ("v", 5i64.into())])
        .expect("plain create");
    let mut t = shared.begin();
    let m1 = t
        .create("Item", vec![("k", "a".into()), ("v", 5i64.into())])
        .expect("mvcc create");
    t.commit().expect("commit");
    assert_eq!(p1, m1, "id allocation agrees");

    let p2 = plain
        .create("Item", vec![("k", "b".into()), ("v", 7i64.into())])
        .expect("plain create");
    let mut t = shared.begin();
    let m2 = t
        .create("Item", vec![("k", "b".into()), ("v", 7i64.into())])
        .expect("mvcc create");
    t.commit().expect("commit");
    assert_eq!(p2, m2);

    plain.update(p1, "v", Value::int(9)).expect("plain update");
    let mut t = shared.begin();
    t.update(m1, "v", Value::int(9)).expect("mvcc update");
    t.commit().expect("commit");

    // A rejected op (v >= 80) leaves both unchanged.
    assert!(plain.update(p1, "v", Value::int(90)).is_err());
    let mut t = shared.begin();
    assert!(t.update(m1, "v", Value::int(90)).is_err());
    t.rollback();

    plain.remove(p2).expect("plain remove");
    let mut t = shared.begin();
    t.remove(m2).expect("mvcc remove");
    t.commit().expect("commit");

    // Identical dumps, and identical planned-query answers.
    let view = shared.read_view();
    assert_eq!(dump(&plain), dump(&view));
    let pred = Formula::cmp("v", CmpOp::Eq, 9i64);
    let opt = Optimizer::new(&plain, "Item", vec![]);
    let (mut ph, _) = opt.execute(&plain, &pred).expect("plain query");
    ph.sort_unstable();
    let opt = Optimizer::new(&view, "Item", vec![]);
    let (mut mh, _) = opt.execute(&view, &pred).expect("mvcc query");
    mh.sort_unstable();
    assert_eq!(ph, mh);
}

#[test]
fn snapshot_reads_are_stable_across_concurrent_commits() {
    let store = fresh();
    let mut t = store.begin();
    let id = t
        .create("Item", vec![("k", "a".into()), ("v", 1i64.into())])
        .expect("create");
    t.commit().expect("commit");

    // Reader begins, then a writer commits.
    let mut reader = store.begin();
    assert_eq!(
        reader.get(id).expect("visible").get(&"v".into()),
        &Value::int(1)
    );
    let mut writer = store.begin();
    writer.update(id, "v", Value::int(2)).expect("update");
    writer.commit().expect("commit");

    // The in-flight reader still sees its snapshot...
    assert_eq!(
        reader.get(id).expect("still visible").get(&"v".into()),
        &Value::int(1)
    );
    reader.commit().expect("read-only commits always succeed");
    // ...and a fresh transaction sees the new state.
    let mut after = store.begin();
    assert_eq!(
        after.get(id).expect("visible").get(&"v".into()),
        &Value::int(2)
    );
}

#[test]
fn first_committer_wins_on_overlapping_write_sets() {
    let store = fresh();
    let mut t = store.begin();
    let id = t
        .create("Item", vec![("k", "a".into()), ("v", 1i64.into())])
        .expect("create");
    t.commit().expect("commit");

    let mut t1 = store.begin();
    let mut t2 = store.begin();
    t1.update(id, "v", Value::int(2)).expect("t1 update");
    t2.update(id, "v", Value::int(3)).expect("t2 update");
    let ts = t1.commit().expect("first committer wins");
    match t2.commit() {
        Err(CommitError::WriteConflict {
            object,
            committed_ts,
            begin_ts,
        }) => {
            assert_eq!(object, id);
            assert_eq!(committed_ts, ts);
            assert!(begin_ts < ts);
        }
        other => panic!("expected WriteConflict, got {other:?}"),
    }
    // The loser's write never reached the store.
    let mut check = store.begin();
    assert_eq!(
        check.get(id).expect("object").get(&"v".into()),
        &Value::int(2)
    );
}

#[test]
fn own_writes_are_visible_before_commit() {
    let store = fresh();
    let mut t = store.begin();
    let id = t
        .create("Item", vec![("k", "a".into()), ("v", 1i64.into())])
        .expect("create");
    assert_eq!(
        t.get(id).expect("own insert visible").get(&"v".into()),
        &Value::int(1)
    );
    t.update(id, "v", Value::int(2)).expect("update own insert");
    assert_eq!(
        t.get(id).expect("own update visible").get(&"v".into()),
        &Value::int(2)
    );
    // A planned query inside the txn sees the buffered state too.
    let hits = t
        .query("Item", &Formula::cmp("v", CmpOp::Eq, 2i64))
        .expect("query");
    assert_eq!(hits, vec![id]);
    // But nothing is shared until commit.
    assert!(store.read_view().db().object(id).is_none());
    t.commit().expect("commit");
    assert!(store.read_view().db().object(id).is_some());
}

#[test]
fn rollback_discards_everything() {
    let store = fresh();
    let mut t = store.begin();
    t.create("Item", vec![("k", "a".into()), ("v", 1i64.into())])
        .expect("create");
    t.rollback();
    assert_eq!(store.read_view().db().len(), 0);
    assert_eq!(store.last_commit_ts(), 0);
}

#[test]
fn constraint_rejection_at_commit_is_a_clean_abort() {
    // Two sessions insert the same key concurrently: no object-level
    // conflict (different fresh ids), so first-committer-wins cannot
    // see it — the canonical store's key index rejects the second at
    // commit, and the abort leaves no trace.
    let store = MvccStore::new(Store::new(Database::new(schema(), 1), catalog()));
    let mut t1 = store.begin();
    let mut t2 = store.begin();
    t1.create("Item", vec![("k", "dup".into()), ("v", 1i64.into())])
        .expect("t1 create");
    t2.create("Item", vec![("k", "dup".into()), ("v", 2i64.into())])
        .expect("t2 create (its snapshot has no such key)");
    t1.commit().expect("first insert commits");
    match t2.commit() {
        Err(CommitError::Rejected { error, .. }) => {
            assert!(matches!(error, StoreError::KeyViolation { .. }));
        }
        other => panic!("expected Rejected, got {other:?}"),
    }
    assert_eq!(store.read_view().db().len(), 1);
}

#[test]
fn write_skew_prevented_under_serializable_allowed_under_fcw() {
    // The classic anomaly: invariant "at least one of a, b is on
    // call" (w == 1); each txn reads both and switches one off.
    let seed = |store: &MvccStore| -> (ObjectId, ObjectId) {
        let mut t = store.begin();
        let a = t
            .create(
                "Item",
                vec![("k", "a".into()), ("v", 1i64.into()), ("w", 1i64.into())],
            )
            .expect("create a");
        let b = t
            .create(
                "Item",
                vec![("k", "b".into()), ("v", 1i64.into()), ("w", 1i64.into())],
            )
            .expect("create b");
        t.commit().expect("seed");
        (a, b)
    };

    // Serializable (default): the second commit sees its read of the
    // partner object invalidated.
    let store = fresh();
    let (a, b) = seed(&store);
    let mut t1 = store.begin();
    let mut t2 = store.begin();
    assert!(t1.get(b).is_some(), "t1 reads b");
    t1.update(a, "w", Value::int(0)).expect("t1 writes a");
    assert!(t2.get(a).is_some(), "t2 reads a");
    t2.update(b, "w", Value::int(0)).expect("t2 writes b");
    t1.commit().expect("t1 commits first");
    match t2.commit() {
        Err(CommitError::ReadConflict { .. }) => {}
        other => panic!("expected ReadConflict, got {other:?}"),
    }

    // FirstCommitterWins (snapshot isolation): both commit — write
    // skew admitted, invariant broken. (prop suite + oracle show the
    // oracle rejects such histories; see oracle_nonvacuity.rs.)
    let store = MvccStore::with_validation(
        Store::new(Database::new(schema(), 1), Catalog::new()),
        ValidationMode::FirstCommitterWins,
    );
    let (a, b) = seed(&store);
    let mut t1 = store.begin();
    let mut t2 = store.begin();
    assert!(t1.get(b).is_some());
    t1.update(a, "w", Value::int(0)).expect("t1 writes a");
    assert!(t2.get(a).is_some());
    t2.update(b, "w", Value::int(0)).expect("t2 writes b");
    t1.commit().expect("t1 commits");
    t2.commit().expect("snapshot isolation admits write skew");
    let view = store.read_view();
    let on_call = [a, b]
        .iter()
        .filter(|&&id| view.db().object(id).map(|o| o.get(&"w".into())) == Some(&Value::int(1)))
        .count();
    assert_eq!(on_call, 0, "the anomaly really broke the invariant");
}

#[test]
fn read_only_txn_commits_at_begin_ts() {
    let store = fresh();
    let mut t = store.begin();
    t.create("Item", vec![("k", "a".into()), ("v", 1i64.into())])
        .expect("create");
    t.commit().expect("commit");
    let mut ro = store.begin();
    let _ = ro.query("Item", &Formula::cmp("v", CmpOp::Eq, 1i64));
    let begin = ro.begin_ts();
    assert_eq!(ro.commit().expect("read-only"), begin);
}

#[test]
fn fresh_ids_are_unique_across_concurrent_sessions() {
    let store = fresh();
    let ids: Vec<ObjectId> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let store = store.clone();
                s.spawn(move || (0..50).map(|_| store.fresh_id()).collect::<Vec<_>>())
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("no panics"))
            .collect()
    });
    let mut sorted = ids.clone();
    sorted.sort_unstable();
    sorted.dedup();
    assert_eq!(sorted.len(), ids.len(), "no id handed out twice");
}

#[test]
fn concurrent_smoke_many_writers_one_object_each() {
    // 4 threads × disjoint objects: every commit must succeed, and the
    // final state holds all writes.
    let store = fresh();
    std::thread::scope(|s| {
        for th in 0..4 {
            let store = store.clone();
            s.spawn(move || {
                for i in 0..10 {
                    let mut t = store.begin();
                    t.create(
                        "Item",
                        vec![
                            ("k", format!("t{th}-{i}").as_str().into()),
                            ("v", (th as i64).into()),
                        ],
                    )
                    .expect("disjoint create");
                    t.commit().expect("disjoint commits never conflict");
                }
            });
        }
    });
    assert_eq!(store.read_view().db().len(), 40);
    assert_eq!(store.last_commit_ts(), 40);
}

#[test]
fn durable_mvcc_store_persists_commits() {
    let dir = std::env::temp_dir().join(format!("interop-mvcc-basic-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = MvccStore::new(
        Store::open(
            Database::new(schema(), 1),
            Catalog::new(),
            &dir,
            DurabilityMode::Wal,
        )
        .expect("open"),
    );
    let mut t = store.begin();
    let id = t
        .create("Item", vec![("k", "a".into()), ("v", 1i64.into())])
        .expect("create");
    t.commit().expect("commit");
    assert_eq!(store.durability_mode(), DurabilityMode::Wal);
    let inner = store.into_store().expect("sole handle");
    drop(inner);
    let reopened = Store::open(
        Database::new(schema(), 1),
        Catalog::new(),
        &dir,
        DurabilityMode::Wal,
    )
    .expect("reopen");
    assert!(reopened.db().object(id).is_some(), "commit recovered");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Satellite: `run_txn` retries conflict losers on fresh snapshots —
/// N contending increment closures must all make progress, with no
/// manual retry loop and no lost updates.
#[test]
fn run_txn_makes_progress_under_contention() {
    let store = fresh();
    let mut setup = store.begin();
    let id = setup
        .create("Item", vec![("k", "c".into()), ("v", 0i64.into())])
        .expect("seed");
    setup.commit().expect("seed commit");

    std::thread::scope(|s| {
        for _ in 0..6 {
            let store = &store;
            s.spawn(move || {
                let (_, _ts) = store
                    .run_txn(RetryPolicy::default(), |t| {
                        let v = match t.get(id).map(|o| o.get(&"v".into()).clone()) {
                            Some(Value::Int(v)) => v,
                            other => panic!("seeded int, got {other:?}"),
                        };
                        t.update(id, "v", Value::int(v + 1))?;
                        Ok::<_, StoreError>(())
                    })
                    .expect("bounded retry absorbs the conflicts");
            });
        }
    });
    let view = store.read_view();
    assert_eq!(
        view.db().object(id).unwrap().get(&"v".into()),
        &Value::int(6),
        "every increment landed exactly once"
    );
}

/// Satellite: the attempt budget is honoured — a closure that always
/// loses gives up with `RunTxnError::Contention` after exactly N
/// attempts, and the last conflict is attached.
#[test]
fn run_txn_gives_up_after_budget() {
    let store = fresh();
    let mut setup = store.begin();
    let id = setup
        .create("Item", vec![("k", "c".into()), ("v", 0i64.into())])
        .expect("seed");
    setup.commit().expect("seed commit");

    let mut attempts = 0u32;
    let result = store.run_txn(RetryPolicy::attempts(3), |t| {
        attempts += 1;
        t.update(id, "v", Value::int(1))?;
        // Sabotage: a competing commit lands between the closure and
        // this transaction's commit, so it always loses.
        let mut rival = store.begin();
        rival.update(id, "v", Value::int(2)).expect("rival update");
        rival.commit().expect("rival wins");
        Ok::<_, StoreError>(())
    });
    match result {
        Err(RunTxnError::Contention { attempts: n, last }) => {
            assert_eq!(n, 3, "gave up after the budget");
            assert!(matches!(last, CommitError::WriteConflict { .. }));
        }
        other => panic!("expected contention give-up, got {other:?}"),
    }
    assert_eq!(attempts, 3, "the closure ran once per attempt");
}

/// A closure error aborts immediately (no retry), and a non-conflict
/// commit failure is final.
#[test]
fn run_txn_aborts_on_closure_error_and_rejection() {
    let store = MvccStore::new(Store::new(Database::new(schema(), 1), catalog()));
    let mut calls = 0u32;
    let r = store.run_txn(RetryPolicy::default(), |_t| {
        calls += 1;
        Err::<(), &str>("domain failure")
    });
    assert!(matches!(r, Err(RunTxnError::Txn("domain failure"))));
    assert_eq!(calls, 1, "closure errors are not retried");

    // Two run_txn calls inserting the same key `k`: the second commit
    // is Rejected by the key constraint (a collision no object-level
    // conflict check can see) — final, not retried.
    let (_, _) = store
        .run_txn(RetryPolicy::default(), |t| {
            t.create("Item", vec![("k", "dup".into()), ("v", 1i64.into())])?;
            Ok::<_, StoreError>(())
        })
        .expect("first insert");
    let mut calls = 0u32;
    let r = store.run_txn(RetryPolicy::attempts(5), |t| {
        calls += 1;
        // A fresh id each attempt, same unique key.
        t.create("Item", vec![("k", "dup".into()), ("v", 2i64.into())])?;
        Ok::<_, StoreError>(())
    });
    match r {
        Err(RunTxnError::Txn(StoreError::KeyViolation { .. })) => {
            // The overlay already holds the committed "dup" key, so the
            // closure itself fails — equally final.
            assert_eq!(calls, 1);
        }
        Err(RunTxnError::Commit(CommitError::Rejected { .. })) => {
            assert_eq!(calls, 1, "rejections are not retried");
        }
        other => panic!("expected a final failure, got {other:?}"),
    }
}
