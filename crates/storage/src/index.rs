//! Key indexes: one map per keyed class, from key tuple to object id.

use std::collections::BTreeMap;

use interop_model::{AttrName, ClassName, Object, ObjectId, Value};

/// A unique index over the key attributes of one class (covering its
/// whole extension, i.e. including subclass instances).
#[derive(Clone, Debug, Default)]
pub struct KeyIndex {
    attrs: Vec<AttrName>,
    map: BTreeMap<Vec<Value>, ObjectId>,
}

impl KeyIndex {
    /// Creates an empty index over the given key attributes.
    pub fn new(attrs: Vec<AttrName>) -> Self {
        KeyIndex {
            attrs,
            map: BTreeMap::new(),
        }
    }

    /// The key attributes.
    pub fn attrs(&self) -> &[AttrName] {
        &self.attrs
    }

    /// Extracts the key tuple of an object; `None` when any component is
    /// null (null keys are not indexed, mirroring the evaluator's
    /// null-tolerant key check).
    pub fn key_of(&self, obj: &Object) -> Option<Vec<Value>> {
        let tuple: Vec<Value> = self.attrs.iter().map(|a| obj.get(a).clone()).collect();
        if tuple.iter().any(Value::is_null) {
            None
        } else {
            Some(tuple)
        }
    }

    /// Inserts an object; returns the previous holder on key collision
    /// (the caller rejects the insert in that case).
    pub fn insert(&mut self, obj: &Object) -> Result<(), ObjectId> {
        if let Some(key) = self.key_of(obj) {
            if let Some(&prev) = self.map.get(&key) {
                if prev != obj.id {
                    return Err(prev);
                }
            }
            self.map.insert(key, obj.id);
        }
        Ok(())
    }

    /// Removes an object's key entry.
    pub fn remove(&mut self, obj: &Object) {
        if let Some(key) = self.key_of(obj) {
            if self.map.get(&key) == Some(&obj.id) {
                self.map.remove(&key);
            }
        }
    }

    /// Point lookup.
    pub fn get(&self, key: &[Value]) -> Option<ObjectId> {
        self.map.get(key).copied()
    }

    /// Number of indexed keys.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing is indexed.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// The set of key indexes of a store, keyed by class name.
pub type IndexSet = BTreeMap<ClassName, KeyIndex>;

#[cfg(test)]
mod tests {
    use super::*;

    fn obj(serial: u64, isbn: &str) -> Object {
        Object::new(ObjectId::new(1, serial), ClassName::new("Item")).with("isbn", isbn)
    }

    #[test]
    fn insert_lookup_remove() {
        let mut idx = KeyIndex::new(vec![AttrName::new("isbn")]);
        let a = obj(1, "X");
        idx.insert(&a).unwrap();
        assert_eq!(idx.get(&[Value::str("X")]), Some(a.id));
        assert_eq!(idx.len(), 1);
        idx.remove(&a);
        assert!(idx.is_empty());
    }

    #[test]
    fn collision_reports_previous_holder() {
        let mut idx = KeyIndex::new(vec![AttrName::new("isbn")]);
        let a = obj(1, "X");
        idx.insert(&a).unwrap();
        let b = obj(2, "X");
        assert_eq!(idx.insert(&b), Err(a.id));
    }

    #[test]
    fn reinsert_same_object_is_fine() {
        let mut idx = KeyIndex::new(vec![AttrName::new("isbn")]);
        let a = obj(1, "X");
        idx.insert(&a).unwrap();
        idx.insert(&a).unwrap();
        assert_eq!(idx.len(), 1);
    }

    #[test]
    fn null_keys_not_indexed() {
        let mut idx = KeyIndex::new(vec![AttrName::new("isbn")]);
        let a = Object::new(ObjectId::new(1, 1), ClassName::new("Item"));
        idx.insert(&a).unwrap();
        assert!(idx.is_empty());
    }

    #[test]
    fn composite_keys() {
        let mut idx = KeyIndex::new(vec![AttrName::new("isbn"), AttrName::new("title")]);
        let a = Object::new(ObjectId::new(1, 1), ClassName::new("Item"))
            .with("isbn", "X")
            .with("title", "T");
        idx.insert(&a).unwrap();
        assert_eq!(idx.get(&[Value::str("X"), Value::str("T")]), Some(a.id));
        assert_eq!(idx.get(&[Value::str("X")]), None);
    }
}
