//! Indexes: the unique key index enforcing key constraints, plus the
//! secondary indexes backing the query planner — hash postings for
//! equality predicates and sorted numeric entries for range predicates.
//!
//! Secondary indexes cover one `(class, attribute)` pair over the class
//! *extension* (subclass instances included) and are built lazily by the
//! store on first use. Once built they are maintained **incrementally**:
//! every committed mutation applies a per-object delta
//! ([`HashIndex::insert`]/[`HashIndex::remove`] and the [`SortedIndex`]
//! equivalents) instead of discarding the index (see `Store` for the
//! delta routing and the wholesale-invalidation fallback mode).
//!
//! Invariant: every posting list is sorted by object id and duplicate
//! free — the batch intersection in `optimize` relies on it, and the
//! delta operations preserve it by binary-searched insertion.

use std::collections::BTreeMap;
use std::ops::Bound;

use interop_model::fx::FxHashMap;
use interop_model::{AttrName, ClassName, Object, ObjectId, Value, R64};

/// A unique index over the key attributes of one class (covering its
/// whole extension, i.e. including subclass instances).
#[derive(Clone, Debug, Default)]
pub struct KeyIndex {
    attrs: Vec<AttrName>,
    map: BTreeMap<Vec<Value>, ObjectId>,
}

impl KeyIndex {
    /// Creates an empty index over the given key attributes.
    pub fn new(attrs: Vec<AttrName>) -> Self {
        KeyIndex {
            attrs,
            map: BTreeMap::new(),
        }
    }

    /// The key attributes.
    pub fn attrs(&self) -> &[AttrName] {
        &self.attrs
    }

    /// Extracts the key tuple of an object; `None` when any component is
    /// null (null keys are not indexed, mirroring the evaluator's
    /// null-tolerant key check).
    pub fn key_of(&self, obj: &Object) -> Option<Vec<Value>> {
        let tuple: Vec<Value> = self.attrs.iter().map(|a| obj.get(a).clone()).collect();
        if tuple.iter().any(Value::is_null) {
            None
        } else {
            Some(tuple)
        }
    }

    /// Inserts an object; returns the previous holder on key collision
    /// (the caller rejects the insert in that case).
    pub fn insert(&mut self, obj: &Object) -> Result<(), ObjectId> {
        if let Some(key) = self.key_of(obj) {
            if let Some(&prev) = self.map.get(&key) {
                if prev != obj.id {
                    return Err(prev);
                }
            }
            self.map.insert(key, obj.id);
        }
        Ok(())
    }

    /// Removes an object's key entry.
    pub fn remove(&mut self, obj: &Object) {
        if let Some(key) = self.key_of(obj) {
            if self.map.get(&key) == Some(&obj.id) {
                self.map.remove(&key);
            }
        }
    }

    /// Point lookup.
    pub fn get(&self, key: &[Value]) -> Option<ObjectId> {
        self.map.get(key).copied()
    }

    /// Number of indexed keys.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing is indexed.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// The set of key indexes of a store, keyed by class name.
pub type IndexSet = BTreeMap<ClassName, KeyIndex>;

/// Canonicalises a value for equality-posting lookups: numerics collapse
/// to `Real` so `Int(3)` and `Real(3.0)` share a posting list (matching
/// the evaluator's `sem_eq`, which compares numerically across the two
/// variants). `None` for nulls — a null never satisfies an equality.
pub fn canon_key(v: &Value) -> Option<Value> {
    if v.is_null() {
        return None;
    }
    let key = match v.as_num() {
        Some(n) => Value::Real(n),
        None => v.clone(),
    };
    // Canonicalisation must agree with the evaluator: postings collide
    // exactly where `sem_eq` holds, or index probes return wrong rows.
    debug_assert!(
        key.sem_eq(v),
        "canon_key must preserve sem_eq: {v:?} -> {key:?}"
    );
    Some(key)
}

/// Equality postings for one `(class, attr)`: canonical value → sorted
/// object ids. An object appears under its attribute's canonical value;
/// nulls are not indexed (a null equality is `Unknown`, never a hit).
#[derive(Clone, Debug, Default)]
pub struct HashIndex {
    map: FxHashMap<Value, Vec<ObjectId>>,
}

impl HashIndex {
    /// Builds from `(value, id)` pairs (any order; ids deduplicated by
    /// construction since each object contributes one value).
    pub fn build<I: IntoIterator<Item = (Value, ObjectId)>>(pairs: I) -> Self {
        let mut map: FxHashMap<Value, Vec<ObjectId>> = FxHashMap::default();
        for (v, id) in pairs {
            if let Some(key) = canon_key(&v) {
                map.entry(key).or_default().push(id);
            }
        }
        for ids in map.values_mut() {
            ids.sort_unstable();
        }
        HashIndex { map }
    }

    /// The sorted posting list for a canonical key.
    pub fn postings(&self, key: &Value) -> &[ObjectId] {
        self.map.get(key).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// Number of distinct indexed values.
    pub fn distinct(&self) -> usize {
        self.map.len()
    }

    /// Delta: adds `id` under `v`'s canonical key (no-op for nulls),
    /// keeping the posting list sorted.
    pub fn insert(&mut self, v: &Value, id: ObjectId) {
        if let Some(key) = canon_key(v) {
            let ids = self.map.entry(key).or_default();
            if let Err(pos) = ids.binary_search(&id) {
                ids.insert(pos, id);
            }
        }
    }

    /// Delta: removes `id` from `v`'s posting list; an emptied list is
    /// dropped so [`HashIndex::distinct`] stays exact.
    pub fn remove(&mut self, v: &Value, id: ObjectId) {
        if let Some(key) = canon_key(v) {
            if let Some(ids) = self.map.get_mut(&key) {
                if let Ok(pos) = ids.binary_search(&id) {
                    ids.remove(pos);
                }
                if ids.is_empty() {
                    self.map.remove(&key);
                }
            }
        }
    }
}

/// Equality postings over a canonicalised value *pair* for one
/// `(class, attr_a, attr_b)` with `attr_a < attr_b` — the planner's
/// composite secondary index. One lookup answers the conjunction
/// `attr_a = x ∧ attr_b = y` that would otherwise intersect two
/// [`HashIndex`] posting lists.
///
/// Invariants mirror the single-attribute indexes: each component is
/// canonicalised by [`canon_key`] (so `Int(3)`/`Real(3.0)` collide per
/// `sem_eq`), an object with a null in *either* component is not indexed
/// (a null equality is `Unknown`, so the conjunction can never be
/// `True`), and posting lists stay sorted by id and duplicate-free under
/// deltas.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CompositeIndex {
    map: FxHashMap<(Value, Value), Vec<ObjectId>>,
}

impl CompositeIndex {
    /// Builds from `(value_a, value_b, id)` triples (any order; each
    /// object contributes one pair).
    pub fn build<I: IntoIterator<Item = (Value, Value, ObjectId)>>(triples: I) -> Self {
        let mut map: FxHashMap<(Value, Value), Vec<ObjectId>> = FxHashMap::default();
        for (va, vb, id) in triples {
            if let (Some(ka), Some(kb)) = (canon_key(&va), canon_key(&vb)) {
                map.entry((ka, kb)).or_default().push(id);
            }
        }
        for ids in map.values_mut() {
            ids.sort_unstable();
        }
        CompositeIndex { map }
    }

    /// The sorted posting list for a canonical key pair (`ka`/`kb` must
    /// already be canonical, as produced by the planner).
    pub fn postings(&self, ka: &Value, kb: &Value) -> &[ObjectId] {
        // One clone pair per probe; probes are rare (one per executed
        // composite step) and the tuple key keeps the map allocation-free
        // on the much hotter build/delta paths.
        self.map
            .get(&(ka.clone(), kb.clone()))
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// Number of distinct indexed value pairs.
    pub fn distinct(&self) -> usize {
        self.map.len()
    }

    /// Delta: adds `id` under the canonical pair of `(va, vb)` (no-op
    /// when either component is null), keeping the posting list sorted.
    /// Idempotent, like the single-attribute deltas.
    pub fn insert(&mut self, va: &Value, vb: &Value, id: ObjectId) {
        if let (Some(ka), Some(kb)) = (canon_key(va), canon_key(vb)) {
            let ids = self.map.entry((ka, kb)).or_default();
            if let Err(pos) = ids.binary_search(&id) {
                ids.insert(pos, id);
            }
        }
    }

    /// Delta: removes `id` from the pair's posting list; an emptied list
    /// is dropped so [`CompositeIndex::distinct`] stays exact.
    pub fn remove(&mut self, va: &Value, vb: &Value, id: ObjectId) {
        if let (Some(ka), Some(kb)) = (canon_key(va), canon_key(vb)) {
            let key = (ka, kb);
            if let Some(ids) = self.map.get_mut(&key) {
                if let Ok(pos) = ids.binary_search(&id) {
                    ids.remove(pos);
                }
                if ids.is_empty() {
                    self.map.remove(&key);
                }
            }
        }
    }
}

/// Sorted numeric entries for one `(class, attr)`: `(value, id)` ordered
/// by value then id. Only numeric values are indexed — a range predicate
/// compares `Some` only against numbers, so non-numeric and null values
/// can never satisfy it.
#[derive(Clone, Debug, Default)]
pub struct SortedIndex {
    entries: Vec<(R64, ObjectId)>,
}

impl SortedIndex {
    /// Builds from `(value, id)` pairs, keeping numeric values only.
    pub fn build<'a, I: IntoIterator<Item = (&'a Value, ObjectId)>>(pairs: I) -> Self {
        let mut entries: Vec<(R64, ObjectId)> = pairs
            .into_iter()
            .filter_map(|(v, id)| v.as_num().map(|n| (n, id)))
            .collect();
        entries.sort_unstable_by(|a, b| a.0.cmp(&b.0).then(a.1.cmp(&b.1)));
        SortedIndex { entries }
    }

    /// Number of indexed (numeric) entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing numeric is indexed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Delta: adds a `(value, id)` entry when the value is numeric,
    /// keeping the entries ordered by `(value, id)`. Idempotent like
    /// [`HashIndex::insert`] — a repeated delta must not duplicate an
    /// entry.
    pub fn insert(&mut self, v: &Value, id: ObjectId) {
        if let Some(n) = v.as_num() {
            if let Err(pos) = self.entries.binary_search(&(n, id)) {
                self.entries.insert(pos, (n, id));
            }
        }
    }

    /// Delta: removes the `(value, id)` entry if present.
    pub fn remove(&mut self, v: &Value, id: ObjectId) {
        if let Some(n) = v.as_num() {
            if let Ok(pos) = self.entries.binary_search(&(n, id)) {
                self.entries.remove(pos);
            }
        }
    }

    /// Ids whose value falls within the bounds, **sorted by id** (ready
    /// for posting-list intersection).
    pub fn range_ids(&self, lo: Bound<R64>, hi: Bound<R64>) -> Vec<ObjectId> {
        let start = match lo {
            Bound::Unbounded => 0,
            Bound::Included(v) => self.entries.partition_point(|(x, _)| *x < v),
            Bound::Excluded(v) => self.entries.partition_point(|(x, _)| *x <= v),
        };
        let end = match hi {
            Bound::Unbounded => self.entries.len(),
            Bound::Included(v) => self.entries.partition_point(|(x, _)| *x <= v),
            Bound::Excluded(v) => self.entries.partition_point(|(x, _)| *x < v),
        };
        let mut ids: Vec<ObjectId> = self.entries[start..end.max(start)]
            .iter()
            .map(|(_, id)| *id)
            .collect();
        ids.sort_unstable();
        ids
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj(serial: u64, isbn: &str) -> Object {
        Object::new(ObjectId::new(1, serial), ClassName::new("Item")).with("isbn", isbn)
    }

    #[test]
    fn insert_lookup_remove() {
        let mut idx = KeyIndex::new(vec![AttrName::new("isbn")]);
        let a = obj(1, "X");
        idx.insert(&a).unwrap();
        assert_eq!(idx.get(&[Value::str("X")]), Some(a.id));
        assert_eq!(idx.len(), 1);
        idx.remove(&a);
        assert!(idx.is_empty());
    }

    #[test]
    fn collision_reports_previous_holder() {
        let mut idx = KeyIndex::new(vec![AttrName::new("isbn")]);
        let a = obj(1, "X");
        idx.insert(&a).unwrap();
        let b = obj(2, "X");
        assert_eq!(idx.insert(&b), Err(a.id));
    }

    #[test]
    fn reinsert_same_object_is_fine() {
        let mut idx = KeyIndex::new(vec![AttrName::new("isbn")]);
        let a = obj(1, "X");
        idx.insert(&a).unwrap();
        idx.insert(&a).unwrap();
        assert_eq!(idx.len(), 1);
    }

    #[test]
    fn huge_real_key_collides_with_no_int() {
        // Int/Real unification is via `as_num` (Int -> f64). A real far
        // outside i64's range must map to a key no Int can produce:
        // `Real(1e300)` postings and any Int postings stay disjoint.
        let huge = Value::real(1e300);
        for i in [0i64, 1, -1, i64::MAX, i64::MIN] {
            assert_ne!(canon_key(&huge), canon_key(&Value::Int(i)));
            assert!(!huge.sem_eq(&Value::Int(i)));
        }
        let idx = HashIndex::build(vec![
            (Value::Int(i64::MAX), ObjectId::new(1, 1)),
            (huge.clone(), ObjectId::new(1, 2)),
        ]);
        let key = canon_key(&huge).unwrap();
        assert_eq!(idx.postings(&key), &[ObjectId::new(1, 2)]);
        let int_key = canon_key(&Value::Int(i64::MAX)).unwrap();
        assert_eq!(idx.postings(&int_key), &[ObjectId::new(1, 1)]);
    }

    #[test]
    fn null_keys_not_indexed() {
        let mut idx = KeyIndex::new(vec![AttrName::new("isbn")]);
        let a = Object::new(ObjectId::new(1, 1), ClassName::new("Item"));
        idx.insert(&a).unwrap();
        assert!(idx.is_empty());
    }

    #[test]
    fn canon_key_unifies_numerics_and_skips_nulls() {
        assert_eq!(canon_key(&Value::int(3)), Some(Value::real(3.0)));
        assert_eq!(canon_key(&Value::real(3.0)), Some(Value::real(3.0)));
        assert_eq!(canon_key(&Value::str("x")), Some(Value::str("x")));
        assert_eq!(canon_key(&Value::Null), None);
    }

    #[test]
    fn hash_index_postings_sorted_and_cross_type() {
        let idx = HashIndex::build([
            (Value::int(5), ObjectId::new(1, 9)),
            (Value::real(5.0), ObjectId::new(1, 2)),
            (Value::int(7), ObjectId::new(1, 4)),
            (Value::Null, ObjectId::new(1, 5)),
        ]);
        // Int(5) and Real(5.0) land in one posting, sorted by id.
        assert_eq!(
            idx.postings(&Value::real(5.0)),
            &[ObjectId::new(1, 2), ObjectId::new(1, 9)]
        );
        assert_eq!(idx.postings(&Value::real(7.0)).len(), 1);
        assert_eq!(idx.postings(&Value::real(6.0)).len(), 0);
        assert_eq!(idx.distinct(), 2, "null not indexed");
    }

    #[test]
    fn sorted_index_range_bounds() {
        let vals: Vec<Value> = vec![
            Value::int(1),
            Value::real(2.5),
            Value::int(4),
            Value::str("not numeric"),
            Value::Null,
        ];
        let idx = SortedIndex::build(
            vals.iter()
                .enumerate()
                .map(|(i, v)| (v, ObjectId::new(1, i as u64))),
        );
        assert_eq!(idx.len(), 3, "only numerics indexed");
        use std::ops::Bound::*;
        assert_eq!(idx.range_ids(Unbounded, Unbounded).len(), 3);
        assert_eq!(
            idx.range_ids(Included(R64::new(2.5)), Unbounded),
            vec![ObjectId::new(1, 1), ObjectId::new(1, 2)]
        );
        assert_eq!(
            idx.range_ids(Excluded(R64::new(2.5)), Unbounded),
            vec![ObjectId::new(1, 2)]
        );
        assert_eq!(
            idx.range_ids(Unbounded, Excluded(R64::new(1.0))),
            Vec::<ObjectId>::new()
        );
        assert_eq!(
            idx.range_ids(Included(R64::new(10.0)), Included(R64::new(0.0))),
            Vec::<ObjectId>::new(),
            "inverted range is empty, not a panic"
        );
    }

    #[test]
    fn hash_index_deltas_keep_postings_sorted() {
        let mut idx = HashIndex::build([
            (Value::int(5), ObjectId::new(1, 9)),
            (Value::int(5), ObjectId::new(1, 2)),
        ]);
        idx.insert(&Value::real(5.0), ObjectId::new(1, 4));
        assert_eq!(
            idx.postings(&Value::real(5.0)),
            &[
                ObjectId::new(1, 2),
                ObjectId::new(1, 4),
                ObjectId::new(1, 9)
            ]
        );
        // Re-inserting an existing id is a no-op (idempotent deltas).
        idx.insert(&Value::int(5), ObjectId::new(1, 4));
        assert_eq!(idx.postings(&Value::real(5.0)).len(), 3);
        idx.insert(&Value::Null, ObjectId::new(1, 7));
        assert_eq!(idx.distinct(), 1, "null delta not indexed");
        idx.remove(&Value::int(5), ObjectId::new(1, 4));
        idx.remove(&Value::int(5), ObjectId::new(1, 2));
        idx.remove(&Value::int(5), ObjectId::new(1, 9));
        assert_eq!(idx.distinct(), 0, "emptied posting list dropped");
    }

    #[test]
    fn sorted_index_deltas_keep_entries_ordered() {
        let vals = [Value::int(3), Value::int(1)];
        let mut idx = SortedIndex::build(
            vals.iter()
                .enumerate()
                .map(|(i, v)| (v, ObjectId::new(1, i as u64))),
        );
        idx.insert(&Value::real(2.0), ObjectId::new(1, 9));
        idx.insert(&Value::str("nope"), ObjectId::new(1, 8));
        assert_eq!(idx.len(), 3, "non-numeric delta not indexed");
        idx.insert(&Value::real(2.0), ObjectId::new(1, 9));
        assert_eq!(idx.len(), 3, "idempotent deltas");
        use std::ops::Bound::*;
        assert_eq!(
            idx.range_ids(Included(R64::new(2.0)), Unbounded),
            vec![ObjectId::new(1, 0), ObjectId::new(1, 9)]
        );
        idx.remove(&Value::real(2.0), ObjectId::new(1, 9));
        idx.remove(&Value::real(99.0), ObjectId::new(1, 9)); // absent: no-op
        assert_eq!(idx.len(), 2);
    }

    #[test]
    fn composite_index_canonicalises_pairs_and_skips_nulls() {
        let idx = CompositeIndex::build([
            (Value::int(5), Value::str("x"), ObjectId::new(1, 9)),
            (Value::real(5.0), Value::str("x"), ObjectId::new(1, 2)),
            (Value::int(5), Value::str("y"), ObjectId::new(1, 4)),
            (Value::Null, Value::str("x"), ObjectId::new(1, 5)),
            (Value::int(5), Value::Null, ObjectId::new(1, 6)),
        ]);
        // Int(5) and Real(5.0) share one pair posting, sorted by id.
        assert_eq!(
            idx.postings(&Value::real(5.0), &Value::str("x")),
            &[ObjectId::new(1, 2), ObjectId::new(1, 9)]
        );
        assert_eq!(idx.postings(&Value::real(5.0), &Value::str("y")).len(), 1);
        assert_eq!(idx.distinct(), 2, "null-in-either-component not indexed");
    }

    #[test]
    fn composite_index_deltas_keep_postings_sorted() {
        let mut idx = CompositeIndex::build([
            (Value::int(1), Value::int(2), ObjectId::new(1, 9)),
            (Value::int(1), Value::int(2), ObjectId::new(1, 3)),
        ]);
        idx.insert(&Value::real(1.0), &Value::int(2), ObjectId::new(1, 5));
        assert_eq!(
            idx.postings(&Value::real(1.0), &Value::real(2.0)),
            &[
                ObjectId::new(1, 3),
                ObjectId::new(1, 5),
                ObjectId::new(1, 9)
            ]
        );
        // Idempotent insert; null deltas are no-ops.
        idx.insert(&Value::int(1), &Value::real(2.0), ObjectId::new(1, 5));
        assert_eq!(idx.postings(&Value::real(1.0), &Value::real(2.0)).len(), 3);
        idx.insert(&Value::Null, &Value::int(2), ObjectId::new(1, 7));
        assert_eq!(idx.distinct(), 1);
        idx.remove(&Value::int(1), &Value::int(2), ObjectId::new(1, 3));
        idx.remove(&Value::int(1), &Value::int(2), ObjectId::new(1, 5));
        idx.remove(&Value::int(1), &Value::int(2), ObjectId::new(1, 9));
        assert_eq!(idx.distinct(), 0, "emptied pair posting dropped");
        // Removing from an absent pair is a no-op, not a panic.
        idx.remove(&Value::int(9), &Value::int(9), ObjectId::new(1, 1));
    }

    #[test]
    fn composite_keys() {
        let mut idx = KeyIndex::new(vec![AttrName::new("isbn"), AttrName::new("title")]);
        let a = Object::new(ObjectId::new(1, 1), ClassName::new("Item"))
            .with("isbn", "X")
            .with("title", "T");
        idx.insert(&a).unwrap();
        assert_eq!(idx.get(&[Value::str("X"), Value::str("T")]), Some(a.id));
        assert_eq!(idx.get(&[Value::str("X")]), None);
    }
}
