//! The query planner: classifies each conjunct of a selection predicate
//! as index-satisfiable, constraint-pruned, or residual.
//!
//! The paper's §1 payoff is that derived global constraints optimise
//! queries against the integrated view. Two forms of constraint pruning
//! appear here:
//!
//! * **implied-empty** — the whole predicate contradicts the known
//!   constraints; the query is answered empty without touching an object
//!   (decided by the [`crate::optimize::Optimizer`] before planning);
//! * **implied-true** — a conjunct is entailed by the constraints and can
//!   be dropped from evaluation. Soundness under three-valued semantics
//!   requires (a) the entailment to use only premises over the conjunct's
//!   own paths ([`interop_constraint::solve::implied_by_restricted`]) and
//!   (b) every such path to be covered by a remaining index conjunct,
//!   whose posting lists contain only objects with that path non-null.
//!
//! Index-satisfiable conjuncts execute as posting-list intersections
//! (hash postings for equality/membership, sorted-index ranges for
//! comparisons); whatever remains is evaluated per candidate object.

use std::ops::Bound;

use interop_constraint::solve::{implied_by_restricted, TypeEnv};
use interop_constraint::{CmpOp, Expr, Formula, Path};
use interop_model::{AttrName, ClassName, Value, R64};

use crate::index::canon_key;

/// An atom answerable from a secondary index.
#[derive(Clone, Debug, PartialEq)]
pub enum IndexAtom {
    /// `attr = const`: one hash posting list.
    Eq {
        /// The indexed attribute.
        attr: AttrName,
        /// The canonicalised probe value.
        key: Value,
    },
    /// `attr in {consts}`: union of hash posting lists.
    In {
        /// The indexed attribute.
        attr: AttrName,
        /// Canonicalised, deduplicated probe values.
        keys: Vec<Value>,
    },
    /// `attr op numeric-const` for an ordering `op`: a sorted-index range.
    Range {
        /// The indexed attribute.
        attr: AttrName,
        /// Lower bound.
        lo: Bound<R64>,
        /// Upper bound.
        hi: Bound<R64>,
    },
}

impl IndexAtom {
    /// The attribute the atom probes.
    pub fn attr(&self) -> &AttrName {
        match self {
            IndexAtom::Eq { attr, .. }
            | IndexAtom::In { attr, .. }
            | IndexAtom::Range { attr, .. } => attr,
        }
    }
}

/// One planned conjunct.
#[derive(Clone, Debug)]
pub enum Step {
    /// Satisfied by intersecting a posting list.
    Index(IndexAtom),
    /// Entailed by the known constraints on every candidate the index
    /// steps produce; dropped from evaluation.
    ImpliedTrue(Formula),
    /// Evaluated per candidate object.
    Residual(Formula),
}

/// A compiled selection plan over one class.
#[derive(Clone, Debug)]
pub struct QueryPlan {
    /// The queried class (candidates range over its extension).
    pub class: ClassName,
    /// The planned conjuncts.
    pub steps: Vec<Step>,
}

impl QueryPlan {
    /// `(index, implied_true, residual)` step counts — handy in tests and
    /// for explain-style diagnostics.
    pub fn counts(&self) -> (usize, usize, usize) {
        let mut c = (0, 0, 0);
        for s in &self.steps {
            match s {
                Step::Index(_) => c.0 += 1,
                Step::ImpliedTrue(_) => c.1 += 1,
                Step::Residual(_) => c.2 += 1,
            }
        }
        c
    }

    /// True when at least one conjunct is answered from an index.
    pub fn uses_index(&self) -> bool {
        self.steps.iter().any(|s| matches!(s, Step::Index(_)))
    }
}

/// Splits a predicate into top-level conjuncts (`And` flattens; anything
/// else is a single conjunct).
fn conjuncts(pred: &Formula) -> Vec<&Formula> {
    match pred {
        Formula::And(fs) => fs.iter().collect(),
        other => vec![other],
    }
}

/// Recognises an index-satisfiable atom. Only single-segment paths are
/// indexable (multi-segment paths navigate references and need the
/// object graph).
fn index_atom(f: &Formula) -> Option<IndexAtom> {
    fn single(p: &Path) -> Option<&AttrName> {
        if p.len() == 1 {
            p.head()
        } else {
            None
        }
    }
    match f {
        Formula::Cmp(Expr::Attr(p), op, Expr::Const(v)) => cmp_atom(single(p)?, *op, v),
        Formula::Cmp(Expr::Const(v), op, Expr::Attr(p)) => cmp_atom(single(p)?, op.flip(), v),
        Formula::In(Expr::Attr(p), set) => {
            let attr = single(p)?;
            let mut keys: Vec<Value> = set.iter().filter_map(canon_key).collect();
            keys.sort_unstable();
            keys.dedup();
            // An all-null (or empty) set still plans as an empty posting:
            // the conjunct can never evaluate True.
            Some(IndexAtom::In {
                attr: attr.clone(),
                keys,
            })
        }
        _ => None,
    }
}

fn cmp_atom(attr: &AttrName, op: CmpOp, v: &Value) -> Option<IndexAtom> {
    match op {
        CmpOp::Eq => Some(IndexAtom::Eq {
            attr: attr.clone(),
            key: canon_key(v)?,
        }),
        CmpOp::Lt => Some(IndexAtom::Range {
            attr: attr.clone(),
            lo: Bound::Unbounded,
            hi: Bound::Excluded(v.as_num()?),
        }),
        CmpOp::Le => Some(IndexAtom::Range {
            attr: attr.clone(),
            lo: Bound::Unbounded,
            hi: Bound::Included(v.as_num()?),
        }),
        CmpOp::Gt => Some(IndexAtom::Range {
            attr: attr.clone(),
            lo: Bound::Excluded(v.as_num()?),
            hi: Bound::Unbounded,
        }),
        CmpOp::Ge => Some(IndexAtom::Range {
            attr: attr.clone(),
            lo: Bound::Included(v.as_num()?),
            hi: Bound::Unbounded,
        }),
        // `<>` needs a complement, which posting lists cannot express
        // (and is True even for incomparable variants): residual.
        CmpOp::Ne => None,
    }
}

/// Builds the plan for `pred` over `class`, given the constraints known
/// to hold for every object of the class and the class's type
/// environment. Pure classification — no store access; posting lists are
/// resolved at execution time against the store's lazy indexes.
pub fn build_plan(
    class: &ClassName,
    pred: &Formula,
    constraints: &[Formula],
    env: &TypeEnv,
) -> QueryPlan {
    let parts = conjuncts(pred);
    let atoms: Vec<Option<IndexAtom>> = parts.iter().map(|f| index_atom(f)).collect();
    let implied: Vec<bool> = parts
        .iter()
        .map(|f| !constraints.is_empty() && implied_by_restricted(constraints, f, env))
        .collect();
    // Paths guaranteed non-null on every candidate: attributes probed by
    // index atoms that are *kept* (an implied atom may itself be dropped,
    // so it cannot vouch for anyone else's coverage).
    let coverage: Vec<Path> = parts
        .iter()
        .zip(&atoms)
        .zip(&implied)
        .filter_map(|((_, atom), imp)| {
            if *imp {
                None
            } else {
                atom.as_ref().map(|a| Path::attr(a.attr().clone()))
            }
        })
        .collect();
    let steps = parts
        .iter()
        .zip(atoms)
        .zip(implied)
        .map(|((f, atom), imp)| {
            if imp && f.paths().iter().all(|p| coverage.contains(p)) {
                Step::ImpliedTrue((*f).clone())
            } else if let Some(a) = atom {
                Step::Index(a)
            } else {
                Step::Residual((*f).clone())
            }
        })
        .collect();
    QueryPlan {
        class: class.clone(),
        steps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use interop_model::Type;

    fn env() -> TypeEnv {
        TypeEnv::new()
            .with("rating", Type::Range(1, 10))
            .with("price", Type::Real)
            .with("isbn", Type::Str)
    }

    #[test]
    fn equality_and_range_atoms_recognised() {
        let plan = build_plan(
            &ClassName::new("Item"),
            &Formula::cmp("isbn", CmpOp::Eq, "x").and(Formula::cmp("price", CmpOp::Le, 10.0)),
            &[],
            &env(),
        );
        assert_eq!(plan.counts(), (2, 0, 0));
        assert!(plan.uses_index());
    }

    #[test]
    fn flipped_constant_side_normalises() {
        let f = Formula::Cmp(Expr::val(10.0), CmpOp::Ge, Expr::attr("price"));
        let plan = build_plan(&ClassName::new("Item"), &f, &[], &env());
        match &plan.steps[0] {
            Step::Index(IndexAtom::Range { lo, hi, .. }) => {
                assert_eq!(*lo, Bound::Unbounded);
                assert_eq!(*hi, Bound::Included(R64::new(10.0)));
            }
            other => panic!("expected range atom, got {other:?}"),
        }
    }

    #[test]
    fn ne_multiseg_and_disjunction_stay_residual() {
        let pred = Formula::cmp("isbn", CmpOp::Ne, "x")
            .and(Formula::cmp("publisher.name", CmpOp::Eq, "ACM"))
            .and(Formula::cmp("rating", CmpOp::Ge, 5i64).or(Formula::cmp("price", CmpOp::Le, 1.0)));
        let plan = build_plan(&ClassName::new("Item"), &pred, &[], &env());
        assert_eq!(plan.counts(), (0, 0, 3));
        assert!(!plan.uses_index());
    }

    #[test]
    fn implied_conjunct_dropped_only_under_coverage() {
        let constraints = vec![Formula::cmp("rating", CmpOp::Ge, 5i64)];
        // rating = 7 covers the rating path, so rating >= 2 (implied by
        // rating >= 5) is dropped.
        let covered =
            Formula::cmp("rating", CmpOp::Eq, 7i64).and(Formula::cmp("rating", CmpOp::Ge, 2i64));
        let plan = build_plan(&ClassName::new("Item"), &covered, &constraints, &env());
        assert_eq!(plan.counts(), (1, 1, 0));
        // Without a covering index conjunct the implied atom must stay:
        // a null rating would otherwise be wrongly admitted.
        let uncovered =
            Formula::cmp("isbn", CmpOp::Eq, "x").and(Formula::cmp("rating", CmpOp::Ge, 2i64));
        let plan = build_plan(&ClassName::new("Item"), &uncovered, &constraints, &env());
        assert_eq!(plan.counts(), (2, 0, 0));
    }

    #[test]
    fn mutually_implied_conjuncts_do_not_vouch_for_each_other() {
        // Both conjuncts are implied by the constraint; if each covered
        // the other, a null rating object would slip through. Neither may
        // be dropped.
        let constraints = vec![Formula::cmp("rating", CmpOp::Ge, 5i64)];
        let pred =
            Formula::cmp("rating", CmpOp::Ge, 4i64).and(Formula::cmp("rating", CmpOp::Ge, 3i64));
        let plan = build_plan(&ClassName::new("Item"), &pred, &constraints, &env());
        assert_eq!(plan.counts(), (2, 0, 0), "no self-vouching");
    }

    #[test]
    fn in_set_canonicalises_probe_keys() {
        let f = Formula::isin("rating", [Value::int(5), Value::real(5.0), Value::int(9)]);
        let plan = build_plan(&ClassName::new("Item"), &f, &[], &env());
        match &plan.steps[0] {
            Step::Index(IndexAtom::In { keys, .. }) => {
                assert_eq!(keys.len(), 2, "Int(5) and Real(5.0) collapse");
            }
            other => panic!("expected In atom, got {other:?}"),
        }
    }
}
