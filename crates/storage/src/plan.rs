//! The query planner: classifies each conjunct of a selection predicate
//! as index-satisfiable, constraint-pruned, or residual.
//!
//! The paper's §1 payoff is that derived global constraints optimise
//! queries against the integrated view. Two forms of constraint pruning
//! appear here:
//!
//! * **implied-empty** — the whole predicate contradicts the known
//!   constraints; the query is answered empty without touching an object
//!   (decided by the [`crate::optimize::Optimizer`] before planning);
//! * **implied-true** — a conjunct is entailed by the constraints and can
//!   be dropped from evaluation. Soundness under three-valued semantics
//!   requires (a) the entailment to use only premises over the conjunct's
//!   own paths ([`interop_constraint::solve::implied_by_restricted`]) and
//!   (b) every such path to be covered by a remaining index conjunct,
//!   whose posting lists contain only objects with that path non-null.
//!
//! Index-satisfiable conjuncts execute as posting-list intersections
//! (hash postings for equality/membership, sorted-index ranges for
//! comparisons); whatever remains is evaluated per candidate object.
//!
//! On top of the classification sits the **cost model**
//! ([`build_costed_plan`]): per-`(class, attr)` statistics estimate the
//! cardinality of every index atom *at plan time*, the kept atoms are
//! ordered cheapest-first for the batch intersection, and atoms whose
//! estimated selectivity is poor are demoted to residual evaluation —
//! falling back to a plain extension scan when no atom prunes enough to
//! pay for itself. The decision is exposed through
//! [`crate::optimize::Optimizer::explain`].

use std::ops::Bound;
use std::sync::Arc;

use interop_constraint::solve::{implied_by_restricted, selectivity_hint, TypeEnv};
use interop_constraint::{CmpOp, Expr, Formula, Path};
use interop_model::{AttrName, ClassName, Value, R64};

use crate::index::canon_key;
use crate::stats::AttrStats;

/// An atom answerable from a secondary index.
#[derive(Clone, Debug, PartialEq)]
pub enum IndexAtom {
    /// `attr = const`: one hash posting list.
    Eq {
        /// The indexed attribute.
        attr: AttrName,
        /// The canonicalised probe value.
        key: Value,
    },
    /// `attr in {consts}`: union of hash posting lists.
    In {
        /// The indexed attribute.
        attr: AttrName,
        /// Canonicalised, deduplicated probe values.
        keys: Vec<Value>,
    },
    /// `attr op numeric-const` for an ordering `op`: a sorted-index range.
    Range {
        /// The indexed attribute.
        attr: AttrName,
        /// Lower bound.
        lo: Bound<R64>,
        /// Upper bound.
        hi: Bound<R64>,
    },
}

impl IndexAtom {
    /// The attribute the atom probes.
    pub fn attr(&self) -> &AttrName {
        match self {
            IndexAtom::Eq { attr, .. }
            | IndexAtom::In { attr, .. }
            | IndexAtom::Range { attr, .. } => attr,
        }
    }
}

/// One planned conjunct.
#[derive(Clone, Debug)]
pub enum Step {
    /// Satisfied by intersecting a posting list.
    Index(IndexAtom),
    /// Entailed by the known constraints on every candidate the index
    /// steps produce; dropped from evaluation.
    ImpliedTrue(Formula),
    /// Evaluated per candidate object.
    Residual(Formula),
}

/// A compiled selection plan over one class.
#[derive(Clone, Debug)]
pub struct QueryPlan {
    /// The queried class (candidates range over its extension).
    pub class: ClassName,
    /// The planned conjuncts.
    pub steps: Vec<Step>,
}

impl QueryPlan {
    /// `(index, implied_true, residual)` step counts — handy in tests and
    /// for explain-style diagnostics.
    pub fn counts(&self) -> (usize, usize, usize) {
        let mut c = (0, 0, 0);
        for s in &self.steps {
            match s {
                Step::Index(_) => c.0 += 1,
                Step::ImpliedTrue(_) => c.1 += 1,
                Step::Residual(_) => c.2 += 1,
            }
        }
        c
    }

    /// True when at least one conjunct is answered from an index.
    pub fn uses_index(&self) -> bool {
        self.steps.iter().any(|s| matches!(s, Step::Index(_)))
    }
}

/// Splits a predicate into top-level conjuncts (`And` flattens; anything
/// else is a single conjunct).
fn conjuncts(pred: &Formula) -> Vec<&Formula> {
    match pred {
        Formula::And(fs) => fs.iter().collect(),
        other => vec![other],
    }
}

/// Recognises an index-satisfiable atom. Only single-segment paths are
/// indexable (multi-segment paths navigate references and need the
/// object graph).
fn index_atom(f: &Formula) -> Option<IndexAtom> {
    fn single(p: &Path) -> Option<&AttrName> {
        if p.len() == 1 {
            p.head()
        } else {
            None
        }
    }
    match f {
        Formula::Cmp(Expr::Attr(p), op, Expr::Const(v)) => cmp_atom(single(p)?, *op, v),
        Formula::Cmp(Expr::Const(v), op, Expr::Attr(p)) => cmp_atom(single(p)?, op.flip(), v),
        Formula::In(Expr::Attr(p), set) => {
            let attr = single(p)?;
            let mut keys: Vec<Value> = set.iter().filter_map(canon_key).collect();
            keys.sort_unstable();
            keys.dedup();
            // An all-null (or empty) set still plans as an empty posting:
            // the conjunct can never evaluate True.
            Some(IndexAtom::In {
                attr: attr.clone(),
                keys,
            })
        }
        _ => None,
    }
}

fn cmp_atom(attr: &AttrName, op: CmpOp, v: &Value) -> Option<IndexAtom> {
    match op {
        CmpOp::Eq => Some(IndexAtom::Eq {
            attr: attr.clone(),
            key: canon_key(v)?,
        }),
        CmpOp::Lt => Some(IndexAtom::Range {
            attr: attr.clone(),
            lo: Bound::Unbounded,
            hi: Bound::Excluded(v.as_num()?),
        }),
        CmpOp::Le => Some(IndexAtom::Range {
            attr: attr.clone(),
            lo: Bound::Unbounded,
            hi: Bound::Included(v.as_num()?),
        }),
        CmpOp::Gt => Some(IndexAtom::Range {
            attr: attr.clone(),
            lo: Bound::Excluded(v.as_num()?),
            hi: Bound::Unbounded,
        }),
        CmpOp::Ge => Some(IndexAtom::Range {
            attr: attr.clone(),
            lo: Bound::Included(v.as_num()?),
            hi: Bound::Unbounded,
        }),
        // `<>` needs a complement, which posting lists cannot express
        // (and is True even for incomparable variants): residual.
        CmpOp::Ne => None,
    }
}

/// The index-answerable atoms among `pred`'s top-level conjuncts, in
/// conjunct order. Pure shape classification (the same recogniser
/// [`build_plan`] uses) with no store access — the static analyzer's
/// plan-lint hook: a predicate yielding no atoms here always executes as
/// a full scan, whatever the data.
pub fn indexable_atoms(pred: &Formula) -> Vec<IndexAtom> {
    conjuncts(pred)
        .iter()
        .filter_map(|f| index_atom(f))
        .collect()
}

/// Static composite-pair gain estimate from two equality atoms'
/// selectivity fractions (`interop_constraint::solve::selectivity_hint`).
/// Mirrors the admission gate in `Store::note_composite_candidate` under
/// attribute independence, with the extension size cancelled out:
/// `joint = s_a·s_b·N`, `min_single = min(s_a, s_b)·N`, so the gain
/// factor is `min(s_a, s_b) / (s_a·s_b)`. A pair whose hint reaches
/// [`crate::store::CompositePolicy::min_gain`] would qualify for
/// admission on every sighting.
pub fn composite_gain_hint(sel_a: f64, sel_b: f64) -> f64 {
    let joint = (sel_a * sel_b).max(f64::EPSILON);
    sel_a.min(sel_b).max(0.0) / joint
}

/// Builds the plan for `pred` over `class`, given the constraints known
/// to hold for every object of the class and the class's type
/// environment. Pure classification — no store access; posting lists are
/// resolved at execution time against the store's lazy indexes.
pub fn build_plan(
    class: &ClassName,
    pred: &Formula,
    constraints: &[Formula],
    env: &TypeEnv,
) -> QueryPlan {
    let parts = conjuncts(pred);
    let atoms: Vec<Option<IndexAtom>> = parts.iter().map(|f| index_atom(f)).collect();
    let implied: Vec<bool> = parts
        .iter()
        .map(|f| !constraints.is_empty() && implied_by_restricted(constraints, f, env))
        .collect();
    // Paths guaranteed non-null on every candidate: attributes probed by
    // index atoms that are *kept* (an implied atom may itself be dropped,
    // so it cannot vouch for anyone else's coverage).
    let coverage: Vec<Path> = parts
        .iter()
        .zip(&atoms)
        .zip(&implied)
        .filter_map(|((_, atom), imp)| {
            if *imp {
                None
            } else {
                atom.as_ref().map(|a| Path::attr(a.attr().clone()))
            }
        })
        .collect();
    let steps = parts
        .iter()
        .zip(atoms)
        .zip(implied)
        .map(|((f, atom), imp)| {
            if imp && f.paths().iter().all(|p| coverage.contains(p)) {
                Step::ImpliedTrue((*f).clone())
            } else if let Some(a) = atom {
                Step::Index(a)
            } else {
                Step::Residual((*f).clone())
            }
        })
        .collect();
    QueryPlan {
        class: class.clone(),
        steps,
    }
}

/// A source of per-`(class, attr)` statistics for plan-time costing —
/// implemented by [`crate::store::Store`] (which builds them lazily) and
/// by in-memory fixtures in tests. The two composite hooks drive the
/// store's lazy composite-index admission; their defaults make a plain
/// statistics fixture composite-free.
pub trait StatsSource {
    /// Statistics over `class`'s extension for `attr`.
    fn attr_stats(&self, class: &ClassName, attr: &AttrName) -> Arc<AttrStats>;

    /// Reports that a plan kept two equality atoms over the (sorted,
    /// distinct) attribute `pair` whose joint estimate is `joint_est`
    /// and whose cheaper single-atom estimate is `min_single_est`. The
    /// source applies its admission policy (recurrence + gain factor);
    /// the planner reports unconditionally.
    fn note_composite_candidate(
        &self,
        _class: &ClassName,
        _pair: (&AttrName, &AttrName),
        _joint_est: usize,
        _min_single_est: usize,
    ) {
    }

    /// True when a composite index over `pair` is admitted for `class`
    /// — the planner then replaces the two-way intersection with one
    /// composite probe.
    fn composite_admitted(&self, _class: &ClassName, _pair: (&AttrName, &AttrName)) -> bool {
        false
    }
}

/// A composite pair probe: one lookup in a materialised
/// [`crate::index::CompositeIndex`] answering `attr_a = x ∧ attr_b = y`.
/// The attribute pair is canonicalised (sorted ascending) so the probe,
/// the admission sketch, and the store's index cache all agree on one
/// key per unordered pair; the values are canonical per
/// [`crate::index::canon_key`].
#[derive(Clone, Debug, PartialEq)]
pub struct CompositeProbe {
    attrs: (AttrName, AttrName),
    keys: (Value, Value),
}

impl CompositeProbe {
    /// Builds a probe from two `(attr, canonical key)` pairs, sorting
    /// the components so `attrs.0 < attrs.1`.
    pub fn new(a: AttrName, ka: Value, b: AttrName, kb: Value) -> Self {
        if a <= b {
            CompositeProbe {
                attrs: (a, b),
                keys: (ka, kb),
            }
        } else {
            CompositeProbe {
                attrs: (b, a),
                keys: (kb, ka),
            }
        }
    }

    /// The probed attribute pair, ascending.
    pub fn attr_pair(&self) -> (&AttrName, &AttrName) {
        (&self.attrs.0, &self.attrs.1)
    }

    /// The canonical probe values, aligned with [`CompositeProbe::attr_pair`].
    pub fn key_pair(&self) -> (&Value, &Value) {
        (&self.keys.0, &self.keys.1)
    }
}

/// Below this estimated cardinality an index atom is always kept:
/// intersecting a short posting list is cheaper than any bookkeeping
/// that would decide otherwise.
pub const KEEP_FLOOR: usize = 64;

/// An index atom is *demoted* to residual evaluation when its estimated
/// cardinality exceeds both [`KEEP_FLOOR`] and this fraction of the
/// extension — resolving and intersecting most of the extension costs
/// more than evaluating the conjunct on whatever the other steps leave.
pub const POOR_SELECTIVITY: f64 = 0.5;

/// How one conjunct participates in a costed plan.
#[derive(Clone, Debug)]
pub enum CostedRole {
    /// Intersected as a posting list, `order`-th cheapest-first.
    Index {
        /// The probe.
        atom: IndexAtom,
        /// Estimated matching rows.
        est: usize,
        /// Position in the execution order (0 = first intersected).
        order: usize,
    },
    /// Index-satisfiable but too unselective: evaluated per candidate.
    Demoted {
        /// The recognised (unused) probe.
        atom: IndexAtom,
        /// Estimated matching rows that caused the demotion.
        est: usize,
    },
    /// Not index-satisfiable: evaluated per candidate. `hint` is the
    /// domain-algebra selectivity prior, when one exists.
    Residual {
        /// Statistics-free selectivity prior from the attribute's typed
        /// domain ([`interop_constraint::solve::selectivity_hint`]).
        hint: Option<f64>,
    },
    /// Entailed by the constraints on every surviving candidate: dropped.
    ImpliedTrue,
    /// This equality atom and the one at conjunct `covers` are answered
    /// together by one admitted composite-index lookup, replacing their
    /// two-way posting intersection.
    Composite {
        /// The canonicalised pair probe.
        probe: CompositeProbe,
        /// Joint estimate (independence assumption) for the pair.
        est: usize,
        /// Position in the execution order (shared with kept atoms).
        order: usize,
        /// The single-atom estimates of the replaced intersection, in
        /// conjunct order (`self`, then `covers`).
        replaced: (usize, usize),
        /// Conjunct index of the partner equality the probe also answers.
        covers: usize,
    },
    /// Answered by the composite probe at conjunct `by`; not executed
    /// on its own.
    CoveredByComposite {
        /// Conjunct index of the [`CostedRole::Composite`] carrier.
        by: usize,
    },
}

/// One conjunct of a costed plan.
#[derive(Clone, Debug)]
pub struct CostedConjunct {
    /// The original conjunct.
    pub formula: Formula,
    /// Its role in execution.
    pub role: CostedRole,
}

/// A cost-based selection plan: classification plus plan-time estimates,
/// intersection order, and demotion decisions.
#[derive(Clone, Debug)]
pub struct CostedPlan {
    /// The queried class.
    pub class: ClassName,
    /// Extension size according to statistics (0 when no atom was costed
    /// — the plan then scans, and never consulted statistics).
    pub extension: usize,
    /// The conjuncts in original predicate order.
    pub conjuncts: Vec<CostedConjunct>,
}

/// One resolved probe of a costed plan's execution order: either a
/// single-attribute atom or an admitted composite pair lookup.
#[derive(Clone, Copy, Debug)]
pub enum ProbeStep<'a> {
    /// A single-attribute posting-list probe.
    Atom {
        /// The probe.
        atom: &'a IndexAtom,
        /// Its plan-time estimate.
        est: usize,
    },
    /// A composite pair probe answering two equality conjuncts at once.
    Composite {
        /// The pair probe.
        probe: &'a CompositeProbe,
        /// The joint plan-time estimate.
        est: usize,
    },
}

impl CostedPlan {
    /// The kept single-attribute index atoms with their estimates, in
    /// execution order. Composite probes are *not* included — use
    /// [`CostedPlan::probe_steps`] for the full execution order.
    pub fn index_steps(&self) -> Vec<(&IndexAtom, usize)> {
        let mut steps: Vec<(usize, &IndexAtom, usize)> = self
            .conjuncts
            .iter()
            .filter_map(|c| match &c.role {
                CostedRole::Index { atom, est, order } => Some((*order, atom, *est)),
                _ => None,
            })
            .collect();
        steps.sort_unstable_by_key(|(order, _, _)| *order);
        steps
            .into_iter()
            .map(|(_, atom, est)| (atom, est))
            .collect()
    }

    /// Every probe of the plan — kept atoms and composite pair lookups —
    /// in execution order (cheapest estimate first).
    pub fn probe_steps(&self) -> Vec<ProbeStep<'_>> {
        let mut steps: Vec<(usize, ProbeStep<'_>)> = self
            .conjuncts
            .iter()
            .filter_map(|c| match &c.role {
                CostedRole::Index { atom, est, order } => {
                    Some((*order, ProbeStep::Atom { atom, est: *est }))
                }
                CostedRole::Composite {
                    probe, est, order, ..
                } => Some((*order, ProbeStep::Composite { probe, est: *est })),
                _ => None,
            })
            .collect();
        steps.sort_unstable_by_key(|(order, _)| *order);
        steps.into_iter().map(|(_, s)| s).collect()
    }

    /// The admitted composite probe, when the plan uses one (at most one
    /// per plan — the two cheapest kept equality atoms).
    pub fn composite_probe(&self) -> Option<&CompositeProbe> {
        self.conjuncts.iter().find_map(|c| match &c.role {
            CostedRole::Composite { probe, .. } => Some(probe),
            _ => None,
        })
    }

    /// The conjuncts evaluated per candidate (plain residuals plus
    /// demoted atoms), in original order.
    pub fn residuals(&self) -> Vec<&Formula> {
        self.conjuncts
            .iter()
            .filter(|c| {
                matches!(
                    c.role,
                    CostedRole::Residual { .. } | CostedRole::Demoted { .. }
                )
            })
            .map(|c| &c.formula)
            .collect()
    }

    /// True when at least one posting list (single or composite) is
    /// probed.
    pub fn uses_index(&self) -> bool {
        self.conjuncts.iter().any(|c| {
            matches!(
                c.role,
                CostedRole::Index { .. } | CostedRole::Composite { .. }
            )
        })
    }

    /// `(index, demoted, residual, implied_true)` role counts. Both
    /// conjuncts answered by a composite probe count as index-answered.
    pub fn counts(&self) -> (usize, usize, usize, usize) {
        let mut c = (0, 0, 0, 0);
        for s in &self.conjuncts {
            match s.role {
                CostedRole::Index { .. }
                | CostedRole::Composite { .. }
                | CostedRole::CoveredByComposite { .. } => c.0 += 1,
                CostedRole::Demoted { .. } => c.1 += 1,
                CostedRole::Residual { .. } => c.2 += 1,
                CostedRole::ImpliedTrue => c.3 += 1,
            }
        }
        c
    }

    /// Estimated result rows under the independence assumption:
    /// `N · Π (estᵢ/N)` over the evaluated atoms, narrowed further by
    /// residual selectivity hints. `None` when nothing is intersected
    /// (scan).
    pub fn est_rows(&self) -> Option<usize> {
        if !self.uses_index() {
            return None;
        }
        let n = self.extension;
        if n == 0 {
            return Some(0);
        }
        let mut frac = 1.0f64;
        for c in &self.conjuncts {
            match &c.role {
                CostedRole::Index { est, .. }
                | CostedRole::Demoted { est, .. }
                // The joint estimate already composes both covered
                // conjuncts, so it contributes once and the covered
                // partner contributes nothing.
                | CostedRole::Composite { est, .. } => {
                    frac *= *est as f64 / n as f64;
                }
                CostedRole::Residual { hint: Some(h) } => frac *= h,
                CostedRole::Residual { hint: None }
                | CostedRole::ImpliedTrue
                | CostedRole::CoveredByComposite { .. } => {}
            }
        }
        Some((frac * n as f64).round() as usize)
    }
}

/// Builds a cost-based plan for `pred` over `class`. Classification
/// mirrors [`build_plan`]; on top of it, statistics from `stats` decide
/// which index atoms are worth intersecting and in what order (see
/// [`KEEP_FLOOR`] / [`POOR_SELECTIVITY`]). Implied-true conjuncts are
/// dropped only when every path is covered by an atom that *is*
/// evaluated — kept or demoted both qualify, since an atom excludes
/// null-valued candidates whether it runs as a posting list or as a
/// residual check.
pub fn build_costed_plan(
    class: &ClassName,
    pred: &Formula,
    constraints: &[Formula],
    env: &TypeEnv,
    stats: &dyn StatsSource,
) -> CostedPlan {
    let parts = conjuncts(pred);
    let atoms: Vec<Option<IndexAtom>> = parts.iter().map(|f| index_atom(f)).collect();
    let implied: Vec<bool> = parts
        .iter()
        .map(|f| !constraints.is_empty() && implied_by_restricted(constraints, f, env))
        .collect();
    // Paths guaranteed non-null on every candidate: attributes of every
    // evaluated non-implied atom (an implied atom may itself be dropped,
    // so it cannot vouch for anyone else's coverage; kept and demoted
    // atoms both qualify — either way the atom's evaluation excludes
    // candidates where the attribute is null).
    let coverage: Vec<Path> = atoms
        .iter()
        .zip(&implied)
        .filter_map(|(atom, imp)| {
            if *imp {
                None
            } else {
                atom.as_ref().map(|a| Path::attr(a.attr().clone()))
            }
        })
        .collect();
    let dropped: Vec<bool> = parts
        .iter()
        .zip(&implied)
        .map(|(f, imp)| *imp && f.paths().iter().all(|p| coverage.contains(p)))
        .collect();
    // Estimate every atom that will be evaluated (dropped ones are never
    // probed; estimating them would build statistics for nothing).
    let mut extension = 0usize;
    let ests: Vec<Option<usize>> = atoms
        .iter()
        .zip(&dropped)
        .map(|(atom, drop)| match atom {
            Some(a) if !*drop => {
                let st = stats.attr_stats(class, a.attr());
                extension = st.total();
                Some(est_atom(&st, a))
            }
            _ => None,
        })
        .collect();
    // Keep an atom when it prunes: small in absolute terms, or below the
    // poor-selectivity fraction of the extension.
    let keep_bound = (POOR_SELECTIVITY * extension as f64) as usize;
    let keeps = |est: usize| est <= KEEP_FLOOR || est <= keep_bound;
    // Execution order of the kept atoms: cheapest first, ties broken by
    // attribute name then original position (stable and deterministic
    // for the Explain snapshots).
    let mut order_key: Vec<(usize, String, usize)> = Vec::new();
    for (i, (atom, est)) in atoms.iter().zip(&ests).enumerate() {
        if let (Some(atom), Some(est)) = (atom, est) {
            if keeps(*est) {
                order_key.push((*est, atom.attr().to_string(), i));
            }
        }
    }
    order_key.sort();
    // Composite pair detection: the two cheapest kept equality atoms
    // over *distinct* single attributes. Every sighting is reported to
    // the statistics source (whose sketch + gain policy decide
    // admission); once the pair is admitted, its two-way intersection is
    // replaced by one composite-index lookup carrying the joint
    // (independence-assumption) estimate.
    let mut composite: Option<(usize, usize, CompositeProbe, usize)> = None;
    let kept_eq: Vec<(usize, usize)> = order_key
        .iter()
        .filter(|&&(_, _, p)| matches!(atoms[p], Some(IndexAtom::Eq { .. })))
        .map(|&(est, _, p)| (est, p))
        .collect();
    if let Some(&(est_a, pos_a)) = kept_eq.first() {
        let attr_of = |p: usize| atoms[p].as_ref().expect("kept atom exists").attr();
        if let Some(&(est_b, pos_b)) = kept_eq[1..]
            .iter()
            .find(|&&(_, p)| attr_of(p) != attr_of(pos_a))
        {
            let key_of = |p: usize| match &atoms[p] {
                Some(IndexAtom::Eq { key, .. }) => key.clone(),
                _ => unreachable!("kept_eq holds Eq atoms only"),
            };
            let probe = CompositeProbe::new(
                attr_of(pos_a).clone(),
                key_of(pos_a),
                attr_of(pos_b).clone(),
                key_of(pos_b),
            );
            let joint = ((est_a as f64 * est_b as f64) / extension.max(1) as f64).round() as usize;
            stats.note_composite_candidate(class, probe.attr_pair(), joint, est_a.min(est_b));
            if stats.composite_admitted(class, probe.attr_pair()) {
                // The earlier conjunct carries the probe; the later one
                // is covered. The probe takes one order slot at the
                // joint estimate.
                let (first, second) = (pos_a.min(pos_b), pos_a.max(pos_b));
                order_key.retain(|&(_, _, p)| p != first && p != second);
                let pair_label = format!("{}+{}", probe.attrs.0, probe.attrs.1);
                order_key.push((joint, pair_label, first));
                order_key.sort();
                composite = Some((first, second, probe, joint));
            }
        }
    }
    let order_of = |i: usize| order_key.iter().position(|&(_, _, p)| p == i);
    // The role a conjunct gets when no composite replaces it.
    let plain_role = |i: usize, f: &Formula| -> CostedRole {
        if let Some(atom) = atoms[i].clone() {
            let est = ests[i].expect("evaluated atoms were estimated");
            match order_of(i) {
                Some(order) => CostedRole::Index { atom, est, order },
                None => CostedRole::Demoted { atom, est },
            }
        } else {
            CostedRole::Residual {
                hint: selectivity_hint(f, env),
            }
        }
    };

    let conjuncts = parts
        .iter()
        .enumerate()
        .map(|(i, f)| {
            let role = if dropped[i] {
                CostedRole::ImpliedTrue
            } else if let Some((first, second, probe, joint)) = &composite {
                if i == *first {
                    CostedRole::Composite {
                        probe: probe.clone(),
                        est: *joint,
                        order: order_of(i).expect("composite probe is ordered"),
                        replaced: (
                            ests[*first].expect("kept atom was estimated"),
                            ests[*second].expect("kept atom was estimated"),
                        ),
                        covers: *second,
                    }
                } else if i == *second {
                    CostedRole::CoveredByComposite { by: *first }
                } else {
                    plain_role(i, f)
                }
            } else {
                plain_role(i, f)
            };
            CostedConjunct {
                formula: (*f).clone(),
                role,
            }
        })
        .collect();
    CostedPlan {
        class: class.clone(),
        extension,
        conjuncts,
    }
}

/// Estimated matching rows for one atom.
fn est_atom(st: &AttrStats, atom: &IndexAtom) -> usize {
    match atom {
        IndexAtom::Eq { key, .. } => st.est_eq(key),
        IndexAtom::In { keys, .. } => st.est_in(keys),
        IndexAtom::Range { lo, hi, .. } => st.est_range(*lo, *hi),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use interop_model::Type;

    fn env() -> TypeEnv {
        TypeEnv::new()
            .with("rating", Type::Range(1, 10))
            .with("price", Type::Real)
            .with("isbn", Type::Str)
    }

    #[test]
    fn equality_and_range_atoms_recognised() {
        let plan = build_plan(
            &ClassName::new("Item"),
            &Formula::cmp("isbn", CmpOp::Eq, "x").and(Formula::cmp("price", CmpOp::Le, 10.0)),
            &[],
            &env(),
        );
        assert_eq!(plan.counts(), (2, 0, 0));
        assert!(plan.uses_index());
    }

    #[test]
    fn flipped_constant_side_normalises() {
        let f = Formula::Cmp(Expr::val(10.0), CmpOp::Ge, Expr::attr("price"));
        let plan = build_plan(&ClassName::new("Item"), &f, &[], &env());
        match &plan.steps[0] {
            Step::Index(IndexAtom::Range { lo, hi, .. }) => {
                assert_eq!(*lo, Bound::Unbounded);
                assert_eq!(*hi, Bound::Included(R64::new(10.0)));
            }
            other => panic!("expected range atom, got {other:?}"),
        }
    }

    #[test]
    fn ne_multiseg_and_disjunction_stay_residual() {
        let pred = Formula::cmp("isbn", CmpOp::Ne, "x")
            .and(Formula::cmp("publisher.name", CmpOp::Eq, "ACM"))
            .and(Formula::cmp("rating", CmpOp::Ge, 5i64).or(Formula::cmp("price", CmpOp::Le, 1.0)));
        let plan = build_plan(&ClassName::new("Item"), &pred, &[], &env());
        assert_eq!(plan.counts(), (0, 0, 3));
        assert!(!plan.uses_index());
    }

    #[test]
    fn implied_conjunct_dropped_only_under_coverage() {
        let constraints = vec![Formula::cmp("rating", CmpOp::Ge, 5i64)];
        // rating = 7 covers the rating path, so rating >= 2 (implied by
        // rating >= 5) is dropped.
        let covered =
            Formula::cmp("rating", CmpOp::Eq, 7i64).and(Formula::cmp("rating", CmpOp::Ge, 2i64));
        let plan = build_plan(&ClassName::new("Item"), &covered, &constraints, &env());
        assert_eq!(plan.counts(), (1, 1, 0));
        // Without a covering index conjunct the implied atom must stay:
        // a null rating would otherwise be wrongly admitted.
        let uncovered =
            Formula::cmp("isbn", CmpOp::Eq, "x").and(Formula::cmp("rating", CmpOp::Ge, 2i64));
        let plan = build_plan(&ClassName::new("Item"), &uncovered, &constraints, &env());
        assert_eq!(plan.counts(), (2, 0, 0));
    }

    #[test]
    fn mutually_implied_conjuncts_do_not_vouch_for_each_other() {
        // Both conjuncts are implied by the constraint; if each covered
        // the other, a null rating object would slip through. Neither may
        // be dropped.
        let constraints = vec![Formula::cmp("rating", CmpOp::Ge, 5i64)];
        let pred =
            Formula::cmp("rating", CmpOp::Ge, 4i64).and(Formula::cmp("rating", CmpOp::Ge, 3i64));
        let plan = build_plan(&ClassName::new("Item"), &pred, &constraints, &env());
        assert_eq!(plan.counts(), (2, 0, 0), "no self-vouching");
    }

    #[test]
    fn in_set_canonicalises_probe_keys() {
        let f = Formula::isin("rating", [Value::int(5), Value::real(5.0), Value::int(9)]);
        let plan = build_plan(&ClassName::new("Item"), &f, &[], &env());
        match &plan.steps[0] {
            Step::Index(IndexAtom::In { keys, .. }) => {
                assert_eq!(keys.len(), 2, "Int(5) and Real(5.0) collapse");
            }
            other => panic!("expected In atom, got {other:?}"),
        }
    }

    /// In-memory statistics fixture: each attribute's extension values.
    struct FakeStats {
        attrs: Vec<(AttrName, Arc<AttrStats>)>,
    }

    impl FakeStats {
        fn new(attrs: Vec<(&str, Vec<Value>)>) -> Self {
            FakeStats {
                attrs: attrs
                    .into_iter()
                    .map(|(a, vs)| (AttrName::new(a), Arc::new(AttrStats::build(vs.iter()))))
                    .collect(),
            }
        }
    }

    impl StatsSource for FakeStats {
        fn attr_stats(&self, _class: &ClassName, attr: &AttrName) -> Arc<AttrStats> {
            self.attrs
                .iter()
                .find(|(a, _)| a == attr)
                .map(|(_, st)| Arc::clone(st))
                .expect("fixture covers attr")
        }
    }

    /// 1000 objects: rating uniform over 1..=10, price uniform 0..100.
    fn stats_1000() -> FakeStats {
        let rating: Vec<Value> = (0..1000).map(|i| Value::int(1 + (i % 10))).collect();
        let price: Vec<Value> = (0..1000).map(|i| Value::real((i % 100) as f64)).collect();
        FakeStats::new(vec![("rating", rating), ("price", price)])
    }

    #[test]
    fn costed_plan_orders_by_estimated_cardinality() {
        // price <= 4.5 (~50 rows) is cheaper than rating = 7 (100 rows),
        // and rating >= 3 (800 rows) is demoted outright.
        let pred = Formula::cmp("rating", CmpOp::Eq, 7i64)
            .and(Formula::cmp("price", CmpOp::Le, 4.5))
            .and(Formula::cmp("rating", CmpOp::Ge, 3i64));
        let plan = build_costed_plan(&ClassName::new("Item"), &pred, &[], &env(), &stats_1000());
        assert_eq!(plan.extension, 1000);
        assert_eq!(plan.counts(), (2, 1, 0, 0), "two kept, one demoted");
        let steps = plan.index_steps();
        assert_eq!(steps.len(), 2);
        assert_eq!(steps[0].0.attr().as_str(), "price");
        assert_eq!(steps[1].0.attr().as_str(), "rating");
        assert!(steps[0].1 <= steps[1].1, "cheapest first");
        assert_eq!(plan.residuals().len(), 1, "demoted atom re-checked");
    }

    #[test]
    fn poor_selectivity_everywhere_falls_back_to_scan() {
        let pred =
            Formula::cmp("rating", CmpOp::Ge, 2i64).and(Formula::cmp("price", CmpOp::Ge, 10.0));
        let plan = build_costed_plan(&ClassName::new("Item"), &pred, &[], &env(), &stats_1000());
        assert!(!plan.uses_index(), "both atoms ~90% of the extension");
        assert_eq!(plan.counts(), (0, 2, 0, 0));
        assert_eq!(plan.est_rows(), None);
        assert_eq!(plan.residuals().len(), 2);
    }

    #[test]
    fn keep_floor_protects_small_extensions() {
        // 20 objects: even an atom matching everything stays indexed —
        // intersecting 20 postings is cheaper than deciding not to.
        let rating: Vec<Value> = (0..20).map(|_| Value::int(7)).collect();
        let stats = FakeStats::new(vec![("rating", rating)]);
        let pred = Formula::cmp("rating", CmpOp::Eq, 7i64);
        let plan = build_costed_plan(&ClassName::new("Item"), &pred, &[], &env(), &stats);
        assert!(plan.uses_index());
        assert_eq!(plan.index_steps()[0].1, 20);
    }

    #[test]
    fn demoted_atom_still_vouches_for_implied_coverage() {
        // rating >= 3 is implied by the constraint and its only path is
        // covered by the (demoted) rating-atom: it is dropped, and the
        // demoted atom is evaluated as a residual.
        let constraints = vec![Formula::cmp("rating", CmpOp::Ge, 5i64)];
        let pred =
            Formula::cmp("rating", CmpOp::Ge, 6i64).and(Formula::cmp("rating", CmpOp::Ge, 3i64));
        let plan = build_costed_plan(
            &ClassName::new("Item"),
            &pred,
            &constraints,
            &env(),
            &stats_1000(),
        );
        let (index, demoted, residual, implied) = plan.counts();
        assert_eq!(implied, 1, "covered implied conjunct dropped");
        assert_eq!(index + demoted, 1);
        assert_eq!(residual, 0);
    }

    /// A statistics fixture with a real admission policy: qualifying
    /// pair sightings are counted and admitted after `admit_after`.
    struct CompositeStats {
        inner: FakeStats,
        admit_after: u32,
        min_gain: f64,
        seen: std::cell::RefCell<Vec<(String, u32)>>,
    }

    impl CompositeStats {
        fn new(inner: FakeStats, admit_after: u32, min_gain: f64) -> Self {
            CompositeStats {
                inner,
                admit_after,
                min_gain,
                seen: std::cell::RefCell::new(Vec::new()),
            }
        }
    }

    impl StatsSource for CompositeStats {
        fn attr_stats(&self, class: &ClassName, attr: &AttrName) -> Arc<AttrStats> {
            self.inner.attr_stats(class, attr)
        }

        fn note_composite_candidate(
            &self,
            _class: &ClassName,
            pair: (&AttrName, &AttrName),
            joint_est: usize,
            min_single_est: usize,
        ) {
            if (min_single_est as f64) < self.min_gain * joint_est.max(1) as f64 {
                return;
            }
            let key = format!("{}+{}", pair.0, pair.1);
            let mut seen = self.seen.borrow_mut();
            match seen.iter_mut().find(|(k, _)| *k == key) {
                Some((_, n)) => *n += 1,
                None => seen.push((key, 1)),
            }
        }

        fn composite_admitted(&self, _class: &ClassName, pair: (&AttrName, &AttrName)) -> bool {
            let key = format!("{}+{}", pair.0, pair.1);
            self.seen
                .borrow()
                .iter()
                .any(|(k, n)| *k == key && *n >= self.admit_after)
        }
    }

    /// 1000 objects, two hot equality attrs: rating 10 distinct values,
    /// shade 20 distinct values.
    fn pair_stats_1000() -> FakeStats {
        let rating: Vec<Value> = (0..1000).map(|i| Value::int(1 + (i % 10))).collect();
        let shade: Vec<Value> = (0..1000).map(|i| Value::int(i % 20)).collect();
        let price: Vec<Value> = (0..1000).map(|i| Value::real((i % 100) as f64)).collect();
        FakeStats::new(vec![("rating", rating), ("shade", shade), ("price", price)])
    }

    fn pair_pred() -> Formula {
        Formula::cmp("rating", CmpOp::Eq, 7i64).and(Formula::cmp("shade", CmpOp::Eq, 3i64))
    }

    #[test]
    fn composite_admitted_after_recurrences_and_replaces_intersection() {
        let stats = CompositeStats::new(pair_stats_1000(), 2, 2.0);
        let class = ClassName::new("Item");
        // rating = 7 est 100, shade = 3 est 50 → joint = 100·50/1000 = 5;
        // min_single 50 >= 2·5: qualifies.
        let p1 = build_costed_plan(&class, &pair_pred(), &[], &env(), &stats);
        assert!(p1.composite_probe().is_none(), "first sighting: isect");
        assert_eq!(p1.counts(), (2, 0, 0, 0));
        let p2 = build_costed_plan(&class, &pair_pred(), &[], &env(), &stats);
        let probe = p2.composite_probe().expect("second sighting admits");
        assert_eq!(
            probe.attr_pair().0.as_str(),
            "rating",
            "pair sorted ascending"
        );
        assert_eq!(probe.attr_pair().1.as_str(), "shade");
        assert_eq!(probe.key_pair().0, &Value::real(7.0), "canonical key");
        // Both conjuncts count as index-answered; one probe step total.
        assert_eq!(p2.counts(), (2, 0, 0, 0));
        let steps = p2.probe_steps();
        assert_eq!(steps.len(), 1);
        match steps[0] {
            ProbeStep::Composite { est, .. } => assert_eq!(est, 5),
            other => panic!("expected composite step, got {other:?}"),
        }
        assert!(p2.index_steps().is_empty(), "no single-atom steps remain");
        // The roles carry the replaced intersection and the partner.
        match &p2.conjuncts[0].role {
            CostedRole::Composite {
                est,
                replaced,
                covers,
                ..
            } => {
                assert_eq!(*est, 5);
                assert_eq!(*replaced, (100, 50));
                assert_eq!(*covers, 1);
            }
            other => panic!("expected composite carrier, got {other:?}"),
        }
        assert!(matches!(
            p2.conjuncts[1].role,
            CostedRole::CoveredByComposite { by: 0 }
        ));
        // est_rows counts the joint estimate exactly once.
        assert_eq!(p2.est_rows(), Some(5));
        assert!(p2.residuals().is_empty());
    }

    #[test]
    fn composite_orders_with_remaining_atoms_by_joint_estimate() {
        let stats = CompositeStats::new(pair_stats_1000(), 1, 1.0);
        let class = ClassName::new("Item");
        // A third kept atom (price <= 0.0, est 0) is cheaper than the
        // joint estimate (5): it must be intersected first.
        let pred = pair_pred().and(Formula::cmp("price", CmpOp::Le, 0.0));
        let _ = build_costed_plan(&class, &pred, &[], &env(), &stats);
        let plan = build_costed_plan(&class, &pred, &[], &env(), &stats);
        let steps = plan.probe_steps();
        assert_eq!(steps.len(), 2);
        assert!(
            matches!(steps[0], ProbeStep::Atom { .. }),
            "cheap range atom first"
        );
        assert!(matches!(steps[1], ProbeStep::Composite { .. }));
    }

    #[test]
    fn same_attribute_equalities_never_pair() {
        let stats = CompositeStats::new(pair_stats_1000(), 1, 0.0);
        let class = ClassName::new("Item");
        let pred =
            Formula::cmp("rating", CmpOp::Eq, 7i64).and(Formula::cmp("rating", CmpOp::Eq, 8i64));
        for _ in 0..3 {
            let plan = build_costed_plan(&class, &pred, &[], &env(), &stats);
            assert!(plan.composite_probe().is_none());
        }
        assert!(stats.seen.borrow().is_empty(), "no candidate reported");
    }

    #[test]
    fn range_atoms_do_not_form_composites() {
        let stats = CompositeStats::new(pair_stats_1000(), 1, 0.0);
        let class = ClassName::new("Item");
        let pred =
            Formula::cmp("rating", CmpOp::Eq, 7i64).and(Formula::cmp("price", CmpOp::Le, 30.0));
        for _ in 0..3 {
            let plan = build_costed_plan(&class, &pred, &[], &env(), &stats);
            assert!(plan.composite_probe().is_none(), "needs two Eq atoms");
        }
    }

    #[test]
    fn poor_gain_pair_is_never_reported() {
        // price = 42 est ~10, rating = 7 est 100 → joint = 1; with
        // min_gain 2.0 the cheaper atom (10) clears 2·1, so swap in a
        // pair where it does not: rating = 7 (100) with shade = 3 (50)
        // at min_gain 20 → 50 < 20·5.
        let stats = CompositeStats::new(pair_stats_1000(), 1, 20.0);
        let class = ClassName::new("Item");
        for _ in 0..3 {
            let plan = build_costed_plan(&class, &pair_pred(), &[], &env(), &stats);
            assert!(plan.composite_probe().is_none());
        }
        assert!(stats.seen.borrow().is_empty(), "gain gate filtered it");
    }

    #[test]
    fn est_rows_composes_independent_selectivities() {
        let pred = Formula::cmp("rating", CmpOp::Eq, 7i64)
            .and(Formula::cmp("price", CmpOp::Le, 9.5))
            .and(Formula::cmp("rating", CmpOp::Ne, 0i64));
        let plan = build_costed_plan(&ClassName::new("Item"), &pred, &[], &env(), &stats_1000());
        let est = plan.est_rows().expect("indexed plan estimates rows");
        // ~0.1 * ~0.1 * hint(rating <> 0 → 1.0) * 1000 ≈ 10.
        assert!((5..=20).contains(&est), "estimate near 10, got {est}");
    }
}
