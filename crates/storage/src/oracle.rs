//! A black-box serializability oracle over recorded transaction
//! histories, in the style of *Vbox: Efficient Black-Box
//! Serializability Verification* (arxiv 2503.05163).
//!
//! The MVCC layer ([`crate::mvcc`]) can record, for every transaction
//! it commits, the *items* it read (with the commit timestamp of the
//! version it observed) and the items it wrote — object slots plus
//! class-level "predicate" items that stand in for the extension a
//! planned query scanned. From those records alone — no knowledge of
//! the store's internals — [`check`] builds the **direct serialization
//! graph**:
//!
//! * **WR** (write→read): T₁ wrote the version T₂ read,
//! * **WW** (write→write): T₁ wrote the version T₂ overwrote,
//! * **RW** (read→write, anti-dependency): T₁ read a version T₂
//!   replaced,
//!
//! and accepts the history **iff the graph is acyclic**, returning a
//! recovered serial order (a topological sort) that every edge
//! respects. [`check_order`] additionally validates an externally
//! observed order — e.g. the WAL's `Begin…Commit` run order — against
//! the graph, and [`replay`] re-executes a history's operations in a
//! serial order through a fresh single-threaded [`Store`], re-running
//! each recorded planned query and comparing its answer, which turns
//! "some serial history exists" into "this serial history produces the
//! same dumps and query answers".
//!
//! The oracle is deliberately independent of the MVCC commit path: it
//! never looks at timestamps to decide acceptance (timestamps only
//! dedupe version identity), so a concurrency-control bug that lets a
//! non-serializable interleaving commit shows up as a cycle here —
//! `tests/oracle_nonvacuity.rs` proves the checker can actually fail
//! by feeding it a hand-seeded write-skew history.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use interop_constraint::Formula;
use interop_model::{ClassName, ObjectId};

use crate::optimize::Optimizer;
use crate::store::Store;
use crate::txn::TxnOp;

/// One versioned item a transaction can read or write.
///
/// `Obj` is an object slot. `Class` is the predicate-level item for a
/// class extension: a planned query records a read of the queried
/// class, and every mutation records a write of the object's class and
/// all its ancestors — so a query's *absence* observations (objects it
/// did not see) still conflict with concurrent inserts/deletes that
/// would have changed its answer (phantom protection).
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Item {
    /// An object slot.
    Obj(ObjectId),
    /// A class extension (predicate item).
    Class(ClassName),
}

impl fmt::Display for Item {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Item::Obj(id) => write!(f, "obj {id}"),
            Item::Class(c) => write!(f, "class {c}"),
        }
    }
}

/// One planned query a transaction ran, with the answer it observed —
/// replayed verbatim by [`replay`] to check that the recovered serial
/// order reproduces it. `at` is the number of buffered write
/// operations the transaction had issued when the query ran, so replay
/// can interleave queries and writes exactly as the session did.
#[derive(Clone, Debug)]
pub struct QueryRecord {
    /// The queried class.
    pub class: ClassName,
    /// The predicate.
    pub predicate: Formula,
    /// The ids the planner returned, sorted.
    pub hits: Vec<ObjectId>,
    /// Buffered-op count at query time (own-writes visibility point).
    pub at: usize,
}

/// The record of one *committed* transaction: everything the oracle
/// needs, nothing the store's internals leak.
#[derive(Clone, Debug)]
pub struct TxnRecord {
    /// Index of this transaction in the history (graph node id).
    pub txn: usize,
    /// Published commit timestamp at begin (the snapshot it read).
    pub begin_ts: u64,
    /// Commit timestamp (`== begin_ts` for read-only transactions).
    pub commit_ts: u64,
    /// Items read, each with the commit timestamp of the version
    /// observed (0 = the initial, never-written version).
    pub reads: Vec<(Item, u64)>,
    /// Items written (their new version is `commit_ts`).
    pub writes: Vec<Item>,
    /// The committed operations, for [`replay`].
    pub ops: Vec<TxnOp>,
    /// Planned queries run inside the transaction, for [`replay`].
    pub queries: Vec<QueryRecord>,
}

/// The kind of a direct-serialization-graph edge.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum EdgeKind {
    /// `from` wrote the version `to` read.
    WriteRead,
    /// `from` wrote the version `to` overwrote.
    WriteWrite,
    /// `from` read a version `to` replaced (anti-dependency).
    ReadWrite,
}

impl fmt::Display for EdgeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EdgeKind::WriteRead => write!(f, "WR"),
            EdgeKind::WriteWrite => write!(f, "WW"),
            EdgeKind::ReadWrite => write!(f, "RW"),
        }
    }
}

/// One dependency edge: `from` must precede `to` in any equivalent
/// serial order.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Edge {
    /// Preceding transaction (history index).
    pub from: usize,
    /// Following transaction (history index).
    pub to: usize,
    /// Dependency kind.
    pub kind: EdgeKind,
    /// The item the dependency is on.
    pub item: Item,
}

impl fmt::Display for Edge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "T{} -{}-> T{} on {}",
            self.from, self.kind, self.to, self.item
        )
    }
}

/// The oracle's verdict on a history.
#[derive(Clone, Debug)]
pub enum Verdict {
    /// The graph is acyclic: the history is serializable, equivalent to
    /// executing `order` serially.
    Serializable {
        /// A topological order of the history (indices into it).
        order: Vec<usize>,
        /// The full edge set, for diagnostics.
        edges: Vec<Edge>,
    },
    /// The graph has a cycle: no serial order exists.
    Cyclic {
        /// The transactions on one dependency cycle.
        cycle: Vec<usize>,
        /// The full edge set.
        edges: Vec<Edge>,
    },
}

impl Verdict {
    /// True for [`Verdict::Serializable`].
    pub fn is_serializable(&self) -> bool {
        matches!(self, Verdict::Serializable { .. })
    }
}

/// Builds the direct serialization graph of `history`: WR, WW and RW
/// edges between distinct transactions, deduplicated and sorted.
///
/// Version identity comes from the recorded timestamps: the writers of
/// an item, ordered by commit timestamp, form its version chain;
/// version 0 is the initial state. A read of version `v` depends on
/// the writer that committed at `v` (WR) and anti-depends on the next
/// writer after `v` (RW); consecutive writers form WW edges.
pub fn serialization_edges(history: &[TxnRecord]) -> Vec<Edge> {
    // Item → its writers as (commit_ts, txn), in version-chain order.
    let mut writers: BTreeMap<&Item, Vec<(u64, usize)>> = BTreeMap::new();
    for t in history {
        for w in &t.writes {
            writers.entry(w).or_default().push((t.commit_ts, t.txn));
        }
    }
    for chain in writers.values_mut() {
        chain.sort_unstable();
    }

    let mut edges: BTreeSet<Edge> = BTreeSet::new();
    for (item, chain) in &writers {
        for pair in chain.windows(2) {
            let (from, to) = (pair[0].1, pair[1].1);
            if from != to {
                edges.insert(Edge {
                    from,
                    to,
                    kind: EdgeKind::WriteWrite,
                    item: (*item).clone(),
                });
            }
        }
    }
    for t in history {
        for (item, v) in &t.reads {
            let Some(chain) = writers.get(item) else {
                continue;
            };
            if *v > 0 {
                // The writer that produced the observed version.
                if let Ok(i) = chain.binary_search_by(|(ts, _)| ts.cmp(v)) {
                    let w = chain[i].1;
                    if w != t.txn {
                        edges.insert(Edge {
                            from: w,
                            to: t.txn,
                            kind: EdgeKind::WriteRead,
                            item: item.clone(),
                        });
                    }
                }
            }
            // The first writer past the observed version replaced it.
            if let Some((_, w)) = chain.iter().find(|(ts, _)| ts > v) {
                if *w != t.txn {
                    edges.insert(Edge {
                        from: t.txn,
                        to: *w,
                        kind: EdgeKind::ReadWrite,
                        item: item.clone(),
                    });
                }
            }
        }
    }
    edges.into_iter().collect()
}

/// Accepts `history` iff its direct serialization graph is acyclic,
/// returning a recovered serial order (or one offending cycle).
///
/// Ties in the topological sort are broken by commit timestamp, so the
/// recovered order is deterministic and — for histories produced by a
/// correct first-committer-wins MVCC — coincides with commit order.
pub fn check(history: &[TxnRecord]) -> Verdict {
    let edges = serialization_edges(history);
    let n = history.len();
    let mut indeg = vec![0usize; n];
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for e in &edges {
        adj[e.from].push(e.to);
        indeg[e.to] += 1;
    }

    // Kahn's algorithm with a commit-ts tie-break.
    let mut ready: BTreeSet<(u64, usize)> = (0..n)
        .filter(|&i| indeg[i] == 0)
        .map(|i| (history[i].commit_ts, i))
        .collect();
    let mut order = Vec::with_capacity(n);
    while let Some(&(ts, i)) = ready.iter().next() {
        ready.remove(&(ts, i));
        order.push(i);
        for &j in &adj[i] {
            indeg[j] -= 1;
            if indeg[j] == 0 {
                ready.insert((history[j].commit_ts, j));
            }
        }
    }
    if order.len() == n {
        return Verdict::Serializable { order, edges };
    }

    // Extract one cycle from the leftover subgraph: walk successors
    // with positive in-degree until a node repeats.
    let mut cycle = Vec::new();
    let mut seen = vec![usize::MAX; n];
    if let Some(start) = (0..n).find(|&i| indeg[i] > 0) {
        let mut cur = start;
        loop {
            if seen[cur] != usize::MAX {
                cycle = cycle.split_off(seen[cur]);
                break;
            }
            seen[cur] = cycle.len();
            cycle.push(cur);
            match adj[cur].iter().find(|&&j| indeg[j] > 0) {
                Some(&next) => cur = next,
                None => break,
            }
        }
    }
    Verdict::Cyclic { cycle, edges }
}

/// Validates an externally observed order (e.g. the WAL's
/// `Begin…Commit` run order) against the history's dependency graph:
/// the order — which may cover only a subset of the history, such as
/// its write transactions — must not contradict any dependency path.
///
/// Returns `Err` with a human-readable violation when some transaction
/// placed earlier in `order` is reachable (via dependency edges) *from*
/// one placed later.
pub fn check_order(history: &[TxnRecord], order: &[usize]) -> Result<(), String> {
    let edges = serialization_edges(history);
    let n = history.len();
    for &i in order {
        if i >= n {
            return Err(format!("order names T{i}, but the history has {n} txns"));
        }
    }
    // Transitive closure by DFS from every ordered node (histories the
    // test suites feed in are a few thousand nodes at most).
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for e in &edges {
        adj[e.from].push(e.to);
    }
    let mut pos = vec![usize::MAX; n];
    for (p, &i) in order.iter().enumerate() {
        pos[i] = p;
    }
    for &start in order {
        let mut stack = vec![start];
        let mut seen = vec![false; n];
        seen[start] = true;
        while let Some(i) = stack.pop() {
            for &j in &adj[i] {
                if !seen[j] {
                    seen[j] = true;
                    stack.push(j);
                    if pos[j] != usize::MAX && pos[j] < pos[start] {
                        return Err(format!(
                            "T{start} (position {}) must precede T{j} (position {}): \
                             a dependency path runs T{start} → … → T{j}",
                            pos[start], pos[j]
                        ));
                    }
                }
            }
        }
    }
    Ok(())
}

/// Replays `history` in `order` through `base` — a fresh
/// single-threaded store holding the same initial state the concurrent
/// run began from — re-running every recorded planned query at its
/// recorded position and comparing answers.
///
/// A serializable history replayed in a valid serial order must apply
/// cleanly (every op re-commits) and reproduce every query answer;
/// any divergence is returned as a human-readable error.
pub fn replay(history: &[TxnRecord], order: &[usize], base: &mut Store) -> Result<(), String> {
    for &i in order {
        let Some(t) = history.get(i) else {
            return Err(format!("order names T{i}, beyond the history"));
        };
        let mut queries: Vec<&QueryRecord> = t.queries.iter().collect();
        queries.sort_by_key(|q| q.at);
        let mut applied = 0;
        let mut run_ops = |upto: usize, base: &mut Store| -> Result<(), String> {
            while applied < upto.min(t.ops.len()) {
                apply_op(&t.ops[applied], base)
                    .map_err(|e| format!("T{i} op {applied} failed on replay: {e}"))?;
                applied += 1;
            }
            Ok(())
        };
        for q in queries {
            run_ops(q.at, base)?;
            let opt = Optimizer::new(base, q.class.clone(), Vec::new());
            let (mut hits, _) = opt
                .execute(base, &q.predicate)
                .map_err(|e| format!("T{i} query failed on replay: {e}"))?;
            hits.sort_unstable();
            if hits != q.hits {
                return Err(format!(
                    "T{i} query on {} diverged: recorded {:?}, replay found {:?}",
                    q.class, q.hits, hits
                ));
            }
        }
        run_ops(t.ops.len(), base)?;
    }
    Ok(())
}

fn apply_op(op: &TxnOp, s: &mut Store) -> Result<(), crate::store::StoreError> {
    match op {
        TxnOp::Insert(obj) => s.insert(obj.clone()),
        TxnOp::Update { id, attr, value } => s.update(*id, attr.clone(), value.clone()),
        TxnOp::Delete(id) => s.remove(*id).map(|_| ()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(txn: usize, begin_ts: u64, commit_ts: u64) -> TxnRecord {
        TxnRecord {
            txn,
            begin_ts,
            commit_ts,
            reads: Vec::new(),
            writes: Vec::new(),
            ops: Vec::new(),
            queries: Vec::new(),
        }
    }

    fn obj(n: u64) -> Item {
        Item::Obj(ObjectId::new(1, n))
    }

    #[test]
    fn empty_and_independent_histories_are_serializable() {
        assert!(check(&[]).is_serializable());
        let mut a = rec(0, 0, 1);
        a.writes.push(obj(1));
        let mut b = rec(1, 0, 2);
        b.writes.push(obj(2));
        let v = check(&[a, b]);
        match v {
            Verdict::Serializable { order, edges } => {
                assert_eq!(order, vec![0, 1]);
                assert!(edges.is_empty());
            }
            Verdict::Cyclic { .. } => panic!("independent txns can't cycle"),
        }
    }

    #[test]
    fn wr_ww_rw_edges_are_derived() {
        // T0 writes x@1; T1 reads x@1 and writes x@2.
        let mut t0 = rec(0, 0, 1);
        t0.writes.push(obj(1));
        let mut t1 = rec(1, 1, 2);
        t1.reads.push((obj(1), 1));
        t1.writes.push(obj(1));
        // T2 read x@1 before T1 replaced it: RW anti-dependency.
        let mut t2 = rec(2, 1, 3);
        t2.reads.push((obj(1), 1));
        let edges = serialization_edges(&[t0, t1, t2]);
        let kinds: Vec<(usize, usize, EdgeKind)> =
            edges.iter().map(|e| (e.from, e.to, e.kind)).collect();
        assert!(kinds.contains(&(0, 1, EdgeKind::WriteRead)));
        assert!(kinds.contains(&(0, 1, EdgeKind::WriteWrite)));
        assert!(kinds.contains(&(0, 2, EdgeKind::WriteRead)));
        assert!(kinds.contains(&(2, 1, EdgeKind::ReadWrite)));
    }

    #[test]
    fn rw_cycle_is_rejected() {
        // Classic write skew: T0 reads y@0 writes x; T1 reads x@0
        // writes y. Two anti-dependency edges, one cycle.
        let mut t0 = rec(0, 0, 1);
        t0.reads.push((obj(2), 0));
        t0.writes.push(obj(1));
        let mut t1 = rec(1, 0, 2);
        t1.reads.push((obj(1), 0));
        t1.writes.push(obj(2));
        match check(&[t0, t1]) {
            Verdict::Cyclic { cycle, edges } => {
                assert_eq!(edges.len(), 2);
                let mut c = cycle;
                c.sort_unstable();
                assert_eq!(c, vec![0, 1]);
            }
            Verdict::Serializable { .. } => panic!("write skew must be rejected"),
        }
    }

    #[test]
    fn check_order_flags_contradictions() {
        let mut t0 = rec(0, 0, 1);
        t0.writes.push(obj(1));
        let mut t1 = rec(1, 1, 2);
        t1.reads.push((obj(1), 1));
        t1.writes.push(obj(1));
        let h = [t0, t1];
        assert!(check_order(&h, &[0, 1]).is_ok());
        let err = check_order(&h, &[1, 0]).expect_err("reversed order contradicts WR");
        assert!(err.contains("must precede"));
        // A subset order is fine as long as it's consistent.
        assert!(check_order(&h, &[0]).is_ok());
        assert!(check_order(&h, &[1]).is_ok());
    }
}
