//! The write-ahead log: an append-only file of CRC32-framed, length-
//! prefixed records serialized from the same per-object deltas the
//! store's incremental index maintenance already computes.
//!
//! # Frame format
//!
//! ```text
//! +----------------+----------------+=================+
//! | len: u32 LE    | crc: u32 LE    | payload (len B) |
//! +----------------+----------------+=================+
//! ```
//!
//! `crc` is the CRC-32 (IEEE) of the payload bytes. A frame whose
//! header is short, whose payload is short, or whose CRC mismatches is
//! *torn*: replay stops at the end of the previous frame and the tail —
//! including any later frames that would individually validate — is
//! discarded and physically truncated on open. Replay therefore never
//! resurrects bytes written after a corruption point.
//!
//! # Commit-boundary atomicity
//!
//! A committed transaction is appended as one contiguous byte run:
//! `Begin{seq}`, its delta records, `Commit{seq}`. Replay buffers
//! deltas between `Begin` and the matching `Commit` and applies them
//! only when the `Commit` frame is intact — a crash mid-append loses
//! the whole transaction, never a prefix of it. Autocommitted single
//! operations are logged as one-delta transactions. A rolled-back
//! transaction contributes nothing but a [`WalRecord::Rollback`]
//! marker: its deltas (and the inverse deltas its undo operations
//! produce) are discarded before anything reaches the file.

use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::path::Path;

use interop_model::{AttrName, ClassName, Object, ObjectId, Value, R64};

/// Errors from the durability layer (WAL append/replay, snapshots).
#[derive(Clone, Debug, PartialEq)]
pub enum DurabilityError {
    /// An operating-system I/O failure (message includes the path).
    Io(String),
    /// A structurally invalid file: a CRC-valid frame whose payload
    /// does not decode, or a snapshot failing its integrity checks.
    /// (A *torn tail* is not an error — it is discarded silently.)
    Corrupt(String),
    /// Replayed data the model layer rejected — the log and the schema
    /// disagree (e.g. a schema change since the log was written).
    Model(String),
}

impl fmt::Display for DurabilityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DurabilityError::Io(m) => write!(f, "durability I/O error: {m}"),
            DurabilityError::Corrupt(m) => write!(f, "corrupt durability file: {m}"),
            DurabilityError::Model(m) => write!(f, "replayed data rejected: {m}"),
        }
    }
}

impl std::error::Error for DurabilityError {}

fn io_err(path: &Path, e: std::io::Error) -> DurabilityError {
    DurabilityError::Io(format!("{}: {e}", path.display()))
}

/// Flushes directory metadata so a file just created in (or renamed
/// into) `dir` survives power loss — a data fsync alone does not make
/// the *name* durable. No-op on platforms without directory handles.
pub(crate) fn fsync_dir(dir: &Path) -> Result<(), DurabilityError> {
    #[cfg(unix)]
    {
        let f = File::open(dir).map_err(|e| io_err(dir, e))?;
        f.sync_all().map_err(|e| io_err(dir, e))?;
    }
    #[cfg(not(unix))]
    let _ = dir;
    Ok(())
}

/// One logical WAL record. Delta records mirror the store's per-object
/// incremental deltas; the bracketing records carry transaction
/// structure; the tracking records persist the touched-id watermark the
/// incremental pipeline resumes from.
#[derive(Clone, Debug, PartialEq)]
pub enum WalRecord {
    /// Opens transaction `seq` (monotonically increasing).
    Begin {
        /// The transaction sequence number.
        seq: u64,
    },
    /// A committed object insertion.
    DeltaInsert(Object),
    /// A committed single-attribute update.
    DeltaUpdate {
        /// Target object.
        id: ObjectId,
        /// Updated attribute.
        attr: AttrName,
        /// Value before the update (for diagnostics/audit; forward
        /// replay applies `new`).
        old: Value,
        /// Value after the update.
        new: Value,
    },
    /// A committed object removal.
    DeltaRemove {
        /// The removed object's id.
        id: ObjectId,
    },
    /// Closes transaction `seq`; replay applies the buffered deltas.
    Commit {
        /// The transaction sequence number (must match the open `Begin`).
        seq: u64,
    },
    /// A rolled-back transaction: nothing was committed (the marker
    /// exists for audit; replay discards any open transaction).
    Rollback,
    /// The touched-id log was drained ([`crate::Store::take_touched`]):
    /// the incremental-pipeline watermark advances past every commit
    /// before this record.
    TouchedDrain,
    /// Touched-id tracking was switched on or off.
    TrackTouched {
        /// The new tracking state.
        on: bool,
    },
}

// ---------------------------------------------------------------------
// CRC-32 (IEEE 802.3), table-driven. Vendored: the build environment
// has no crates.io access.
// ---------------------------------------------------------------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc32_table();

/// CRC-32 (IEEE) of `bytes` — the frame checksum.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

// ---------------------------------------------------------------------
// Binary codec (shared with the snapshot module).
// ---------------------------------------------------------------------

pub(crate) fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

pub(crate) fn put_id(out: &mut Vec<u8>, id: ObjectId) {
    put_u32(out, id.space());
    put_u64(out, id.serial());
}

pub(crate) fn put_value(out: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Null => out.push(0),
        Value::Bool(b) => {
            out.push(1);
            out.push(u8::from(*b));
        }
        Value::Int(i) => {
            out.push(2);
            out.extend_from_slice(&i.to_le_bytes());
        }
        Value::Real(r) => {
            out.push(3);
            put_u64(out, r.get().to_bits());
        }
        Value::Str(s) => {
            out.push(4);
            put_str(out, s);
        }
        Value::Set(items) => {
            out.push(5);
            put_u32(out, items.len() as u32);
            for item in items {
                put_value(out, item);
            }
        }
        Value::Ref(id) => {
            out.push(6);
            put_id(out, *id);
        }
    }
}

pub(crate) fn put_object(out: &mut Vec<u8>, obj: &Object) {
    put_id(out, obj.id);
    put_str(out, obj.class.as_str());
    put_u32(out, obj.attrs.len() as u32);
    for (attr, value) in &obj.attrs {
        put_str(out, attr.as_str());
        put_value(out, value);
    }
}

/// A bounds-checked payload reader; every accessor reports `None` past
/// the end (decoded into [`DurabilityError::Corrupt`] by callers).
pub(crate) struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.pos >= self.buf.len()
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        if end > self.buf.len() {
            return None;
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Some(s)
    }

    pub(crate) fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|s| s[0])
    }

    pub(crate) fn u32(&mut self) -> Option<u32> {
        self.take(4)
            .map(|s| u32::from_le_bytes([s[0], s[1], s[2], s[3]]))
    }

    pub(crate) fn u64(&mut self) -> Option<u64> {
        self.take(8)
            .and_then(|s| Some(u64::from_le_bytes(s.try_into().ok()?)))
    }

    pub(crate) fn i64(&mut self) -> Option<i64> {
        self.take(8)
            .and_then(|s| Some(i64::from_le_bytes(s.try_into().ok()?)))
    }

    pub(crate) fn str(&mut self) -> Option<String> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).ok()
    }

    pub(crate) fn id(&mut self) -> Option<ObjectId> {
        let space = self.u32()?;
        let serial = self.u64()?;
        Some(ObjectId::new(space, serial))
    }

    pub(crate) fn value(&mut self) -> Option<Value> {
        match self.u8()? {
            0 => Some(Value::Null),
            1 => Some(Value::Bool(self.u8()? != 0)),
            2 => Some(Value::Int(self.i64()?)),
            3 => {
                let bits = self.u64()?;
                Some(Value::Real(R64::try_new(f64::from_bits(bits))?))
            }
            4 => Some(Value::str(self.str()?)),
            5 => {
                let n = self.u32()?;
                let mut items = std::collections::BTreeSet::new();
                for _ in 0..n {
                    items.insert(self.value()?);
                }
                Some(Value::Set(items))
            }
            6 => Some(Value::Ref(self.id()?)),
            _ => None,
        }
    }

    pub(crate) fn object(&mut self) -> Option<Object> {
        let id = self.id()?;
        let class = ClassName::new(self.str()?);
        let mut obj = Object::new(id, class);
        let n = self.u32()?;
        for _ in 0..n {
            let attr = AttrName::new(self.str()?);
            let value = self.value()?;
            obj.attrs.insert(attr, value);
        }
        Some(obj)
    }
}

// ---------------------------------------------------------------------
// Record <-> payload
// ---------------------------------------------------------------------

const TAG_BEGIN: u8 = 1;
const TAG_DELTA_INSERT: u8 = 2;
const TAG_DELTA_UPDATE: u8 = 3;
const TAG_DELTA_REMOVE: u8 = 4;
const TAG_COMMIT: u8 = 5;
const TAG_ROLLBACK: u8 = 6;
const TAG_TOUCHED_DRAIN: u8 = 7;
const TAG_TRACK_TOUCHED: u8 = 8;

fn encode_record(rec: &WalRecord) -> Vec<u8> {
    let mut out = Vec::new();
    match rec {
        WalRecord::Begin { seq } => {
            out.push(TAG_BEGIN);
            put_u64(&mut out, *seq);
        }
        WalRecord::DeltaInsert(obj) => {
            out.push(TAG_DELTA_INSERT);
            put_object(&mut out, obj);
        }
        WalRecord::DeltaUpdate { id, attr, old, new } => {
            out.push(TAG_DELTA_UPDATE);
            put_id(&mut out, *id);
            put_str(&mut out, attr.as_str());
            put_value(&mut out, old);
            put_value(&mut out, new);
        }
        WalRecord::DeltaRemove { id } => {
            out.push(TAG_DELTA_REMOVE);
            put_id(&mut out, *id);
        }
        WalRecord::Commit { seq } => {
            out.push(TAG_COMMIT);
            put_u64(&mut out, *seq);
        }
        WalRecord::Rollback => out.push(TAG_ROLLBACK),
        WalRecord::TouchedDrain => out.push(TAG_TOUCHED_DRAIN),
        WalRecord::TrackTouched { on } => {
            out.push(TAG_TRACK_TOUCHED);
            out.push(u8::from(*on));
        }
    }
    out
}

fn decode_record(payload: &[u8]) -> Option<WalRecord> {
    let mut c = Cursor::new(payload);
    let rec = match c.u8()? {
        TAG_BEGIN => WalRecord::Begin { seq: c.u64()? },
        TAG_DELTA_INSERT => WalRecord::DeltaInsert(c.object()?),
        TAG_DELTA_UPDATE => WalRecord::DeltaUpdate {
            id: c.id()?,
            attr: AttrName::new(c.str()?),
            old: c.value()?,
            new: c.value()?,
        },
        TAG_DELTA_REMOVE => WalRecord::DeltaRemove { id: c.id()? },
        TAG_COMMIT => WalRecord::Commit { seq: c.u64()? },
        TAG_ROLLBACK => WalRecord::Rollback,
        TAG_TOUCHED_DRAIN => WalRecord::TouchedDrain,
        TAG_TRACK_TOUCHED => WalRecord::TrackTouched { on: c.u8()? != 0 },
        _ => return None,
    };
    if !c.is_empty() {
        return None; // trailing garbage inside a CRC-valid frame
    }
    Some(rec)
}

/// Encodes one record as a complete frame (`len`, `crc`, payload) —
/// also the corruption-test hook for crafting adversarial files.
pub fn frame_bytes(rec: &WalRecord) -> Vec<u8> {
    let payload = encode_record(rec);
    let mut out = Vec::with_capacity(8 + payload.len());
    put_u32(&mut out, payload.len() as u32);
    put_u32(&mut out, crc32(&payload));
    out.extend_from_slice(&payload);
    out
}

/// The result of scanning a WAL file: every record up to the first torn
/// or corrupt frame, and the byte length of that valid prefix.
#[derive(Debug)]
pub struct WalScan {
    /// Decoded records of the valid prefix, in file order.
    pub records: Vec<WalRecord>,
    /// Byte offset one past each decoded frame (parallel to `records`) —
    /// replay truncates to the offset after the last frame that closes a
    /// transaction, discarding an unterminated `Begin …` run along with
    /// the torn tail.
    pub frame_ends: Vec<u64>,
    /// Byte offset one past the last intact frame.
    pub valid_len: u64,
    /// Total file length as read (equal to `valid_len` for a clean log).
    pub file_len: u64,
}

/// Reads a WAL file, stopping at the first torn or undecodable frame.
/// A missing file scans as empty. Frames *after* a torn one are
/// discarded even if individually valid — bytes past a corruption point
/// are not trusted.
pub fn scan_wal(path: &Path) -> Result<WalScan, DurabilityError> {
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(io_err(path, e)),
    };
    let file_len = bytes.len() as u64;
    let mut records = Vec::new();
    let mut frame_ends = Vec::new();
    let mut pos = 0usize;
    loop {
        let rest = &bytes[pos..];
        if rest.len() < 8 {
            break; // torn or clean end
        }
        let len = u32::from_le_bytes([rest[0], rest[1], rest[2], rest[3]]) as usize;
        let crc = u32::from_le_bytes([rest[4], rest[5], rest[6], rest[7]]);
        let Some(payload) = rest.get(8..8 + len) else {
            break; // torn payload
        };
        if crc32(payload) != crc {
            break; // flipped bits
        }
        let Some(rec) = decode_record(payload) else {
            break; // CRC-valid but undecodable: stop, same as torn
        };
        records.push(rec);
        pos += 8 + len;
        frame_ends.push(pos as u64);
    }
    Ok(WalScan {
        records,
        frame_ends,
        valid_len: pos as u64,
        file_len,
    })
}

/// An append handle over the WAL file. Opening truncates the file to
/// `valid_len` (discarding any torn tail found by [`scan_wal`]) and
/// positions at the end; every [`WalWriter::append`] writes its frames
/// as one contiguous run and flushes before returning.
#[derive(Debug)]
pub struct WalWriter {
    file: File,
    path: std::path::PathBuf,
    /// Set when a failed append left bytes in the file that could not
    /// be truncated away: the tail may be torn, and a later successful
    /// append would put valid frames *after* the tear — frames replay
    /// silently discards. A poisoned writer refuses all appends.
    poisoned: bool,
}

impl WalWriter {
    /// Opens (creating if absent) the log at `path`, truncated to
    /// `valid_len` bytes. The parent directory is fsynced so a freshly
    /// created log file survives power loss.
    pub fn open(path: &Path, valid_len: u64) -> Result<Self, DurabilityError> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)
            .map_err(|e| io_err(path, e))?;
        file.set_len(valid_len).map_err(|e| io_err(path, e))?;
        if let Some(parent) = path.parent() {
            fsync_dir(parent)?;
        }
        let mut w = WalWriter {
            file,
            path: path.to_path_buf(),
            poisoned: false,
        };
        w.file
            .seek(SeekFrom::End(0))
            .map_err(|e| io_err(&w.path, e))?;
        Ok(w)
    }

    /// Appends `records` as one contiguous frame run and flushes. On
    /// failure the file is truncated back to its pre-append length, so
    /// the log never holds valid frames after torn bytes; if even the
    /// truncation fails the writer poisons itself and refuses further
    /// appends.
    pub fn append(&mut self, records: &[WalRecord]) -> Result<(), DurabilityError> {
        if self.poisoned {
            return Err(DurabilityError::Io(format!(
                "{}: writer poisoned by an unrecovered append failure",
                self.path.display()
            )));
        }
        let start = self.len()?;
        let mut buf = Vec::new();
        for rec in records {
            buf.extend_from_slice(&frame_bytes(rec));
        }
        let written = self
            .file
            .write_all(&buf)
            .and_then(|()| self.file.sync_data());
        if let Err(e) = written {
            let restored = self
                .file
                .set_len(start)
                .and_then(|()| self.file.seek(SeekFrom::Start(start)).map(|_| ()));
            if restored.is_err() {
                self.poisoned = true;
            }
            return Err(io_err(&self.path, e));
        }
        Ok(())
    }

    /// Swaps the underlying file handle — test hook for forcing append
    /// failures (e.g. a read-only handle) against a real log file.
    #[cfg(test)]
    fn swap_file_for_test(&mut self, file: File) -> File {
        std::mem::replace(&mut self.file, file)
    }

    /// Discards the entire log (after a successful snapshot captured
    /// everything it held).
    pub fn reset(&mut self) -> Result<(), DurabilityError> {
        self.file.set_len(0).map_err(|e| io_err(&self.path, e))?;
        self.file
            .seek(SeekFrom::Start(0))
            .map_err(|e| io_err(&self.path, e))?;
        Ok(())
    }

    /// Current byte length of the log.
    pub fn len(&mut self) -> Result<u64, DurabilityError> {
        let mut f = &self.file;
        f.seek(SeekFrom::End(0)).map_err(|e| io_err(&self.path, e))
    }

    /// True when the log holds no frames.
    pub fn is_empty(&mut self) -> Result<bool, DurabilityError> {
        Ok(self.len()? == 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj() -> Object {
        Object::new(ObjectId::new(7, 42), ClassName::new("Item"))
            .with("isbn", "90-6196-001")
            .with("price", 29.5)
            .with("stock", 3i64)
            .with("ref?", true)
            .with("tags", Value::str_set(["a", "b"]))
            .with("pub", Value::Ref(ObjectId::new(1, 9)))
    }

    #[test]
    fn crc32_known_vector() {
        // The canonical IEEE check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn records_roundtrip() {
        let records = vec![
            WalRecord::Begin { seq: 3 },
            WalRecord::DeltaInsert(obj()),
            WalRecord::DeltaUpdate {
                id: ObjectId::new(7, 42),
                attr: AttrName::new("price"),
                old: Value::real(29.5),
                new: Value::Null,
            },
            WalRecord::DeltaRemove {
                id: ObjectId::new(7, 42),
            },
            WalRecord::Commit { seq: 3 },
            WalRecord::Rollback,
            WalRecord::TouchedDrain,
            WalRecord::TrackTouched { on: true },
            WalRecord::TrackTouched { on: false },
        ];
        for rec in &records {
            let payload = encode_record(rec);
            assert_eq!(decode_record(&payload).as_ref(), Some(rec));
        }
    }

    #[test]
    fn decode_rejects_trailing_garbage_and_bad_tags() {
        let mut payload = encode_record(&WalRecord::Rollback);
        payload.push(0);
        assert_eq!(decode_record(&payload), None, "trailing garbage");
        assert_eq!(decode_record(&[99]), None, "unknown tag");
        assert_eq!(decode_record(&[]), None, "empty payload");
        // Truncated object payload.
        let full = encode_record(&WalRecord::DeltaInsert(obj()));
        assert_eq!(decode_record(&full[..full.len() - 3]), None);
    }

    #[test]
    fn failed_append_never_leaves_bytes_ahead_of_acknowledged_frames() {
        let dir = std::env::temp_dir().join(format!("interop-wal-poison-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("wal.log");
        let mut w = WalWriter::open(&path, 0).unwrap();
        w.append(&[WalRecord::Begin { seq: 1 }, WalRecord::Commit { seq: 1 }])
            .unwrap();
        let good_len = w.len().unwrap();
        // Swap in a read-only handle: the write fails, the truncate-back
        // fails too, and the writer must poison itself rather than let a
        // later append land after a possible tear.
        let real = w.swap_file_for_test(File::open(&path).unwrap());
        assert!(matches!(
            w.append(&[WalRecord::Rollback]),
            Err(DurabilityError::Io(_))
        ));
        drop(w.swap_file_for_test(real));
        let err = w.append(&[WalRecord::Rollback]).unwrap_err();
        assert!(
            matches!(&err, DurabilityError::Io(m) if m.contains("poisoned")),
            "writable again, but the writer stays poisoned: {err}"
        );
        // The acknowledged prefix is untouched on disk.
        let scan = scan_wal(&path).unwrap();
        assert_eq!(scan.valid_len, good_len);
        assert_eq!(scan.file_len, good_len, "no torn bytes were persisted");
        assert_eq!(scan.records.len(), 2);
    }

    #[test]
    fn nan_real_refuses_to_decode() {
        // A hand-crafted Real(NaN) payload must not produce a Value —
        // R64's NaN-freedom invariant holds even for hostile files.
        let mut payload = vec![TAG_DELTA_UPDATE];
        put_id(&mut payload, ObjectId::new(0, 0));
        put_str(&mut payload, "a");
        put_value(&mut payload, &Value::Null);
        payload.push(3); // Real tag
        put_u64(&mut payload, f64::NAN.to_bits());
        assert_eq!(decode_record(&payload), None);
    }
}
