//! The write-ahead log: an append-only file of CRC32-framed, length-
//! prefixed records serialized from the same per-object deltas the
//! store's incremental index maintenance already computes.
//!
//! # Frame format
//!
//! ```text
//! +----------------+----------------+=================+
//! | len: u32 LE    | crc: u32 LE    | payload (len B) |
//! +----------------+----------------+=================+
//! ```
//!
//! `crc` is the CRC-32 (IEEE) of the payload bytes. A frame whose
//! header is short, whose payload is short, or whose CRC mismatches is
//! *torn*: replay stops at the end of the previous frame and the tail —
//! including any later frames that would individually validate — is
//! discarded and physically truncated on open. Replay therefore never
//! resurrects bytes written after a corruption point.
//!
//! # Commit-boundary atomicity
//!
//! A committed transaction is appended as one contiguous byte run:
//! `Begin{seq}`, its delta records, `Commit{seq}`. Replay buffers
//! deltas between `Begin` and the matching `Commit` and applies them
//! only when the `Commit` frame is intact — a crash mid-append loses
//! the whole transaction, never a prefix of it. Autocommitted single
//! operations are logged as one-delta transactions. A rolled-back
//! transaction contributes nothing but a [`WalRecord::Rollback`]
//! marker: its deltas (and the inverse deltas its undo operations
//! produce) are discarded before anything reaches the file.
//!
//! # Segments
//!
//! The log is a sequence of files `wal-{seq:020}.log` ([`SegmentedWal`]);
//! the pre-rotation layout's single `wal.log` is still read as segment 0.
//! Appends go to the highest (*active*) segment; when it crosses the
//! size threshold it is *sealed* — one final `sync_data`, so every byte
//! of a sealed segment is durable by construction — and the next
//! segment is created (and the directory fsynced, so the new name
//! survives power loss). Recovery scans segments in ascending order
//! with the single-file torn-tail rules applied per segment, and stops
//! at the first torn segment or sequence gap: bytes past a corruption
//! point are not trusted, even when they live in a later file. A
//! snapshot at watermark `W` makes every sealed segment whose
//! transactions all have `seq <= W` redundant; pruning deletes those
//! files and fsyncs the directory.
//!
//! # Group commit
//!
//! [`WalWriter::append_buffered`] writes frames without syncing;
//! [`GroupSync`] tracks which appends a `sync_data` has covered.
//! Committers enqueue their frame runs (serialized by the store's
//! commit path), then [`WalAck::wait`]: the first uncovered waiter
//! elects itself leader, optionally dwells for up to
//! [`GroupCommitPolicy::max_delay_us`] or until
//! [`GroupCommitPolicy::max_batch`] runs are pending, issues **one**
//! `sync_data` for the whole batch, and wakes every covered waiter. A
//! commit is acknowledged only after its covering sync, so
//! *acknowledged ≠ lost* is preserved: a crash can lose only
//! unacknowledged tail transactions. The default policy (batch 1,
//! no delay) reproduces the historical sync-per-commit behaviour
//! exactly.

use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use interop_model::{AttrName, ClassName, Object, ObjectId, Value, R64};

/// Errors from the durability layer (WAL append/replay, snapshots).
#[derive(Clone, Debug, PartialEq)]
pub enum DurabilityError {
    /// An operating-system I/O failure (message includes the path).
    Io(String),
    /// A structurally invalid file: a CRC-valid frame whose payload
    /// does not decode, or a snapshot failing its integrity checks.
    /// (A *torn tail* is not an error — it is discarded silently.)
    Corrupt(String),
    /// Replayed data the model layer rejected — the log and the schema
    /// disagree (e.g. a schema change since the log was written).
    Model(String),
}

impl fmt::Display for DurabilityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DurabilityError::Io(m) => write!(f, "durability I/O error: {m}"),
            DurabilityError::Corrupt(m) => write!(f, "corrupt durability file: {m}"),
            DurabilityError::Model(m) => write!(f, "replayed data rejected: {m}"),
        }
    }
}

impl std::error::Error for DurabilityError {}

fn io_err(path: &Path, e: std::io::Error) -> DurabilityError {
    DurabilityError::Io(format!("{}: {e}", path.display()))
}

/// Flushes directory metadata so a file just created in (or renamed
/// into) `dir` survives power loss — a data fsync alone does not make
/// the *name* durable. No-op on platforms without directory handles.
pub(crate) fn fsync_dir(dir: &Path) -> Result<(), DurabilityError> {
    #[cfg(unix)]
    {
        let f = File::open(dir).map_err(|e| io_err(dir, e))?;
        f.sync_all().map_err(|e| io_err(dir, e))?;
    }
    #[cfg(not(unix))]
    let _ = dir;
    Ok(())
}

/// One logical WAL record. Delta records mirror the store's per-object
/// incremental deltas; the bracketing records carry transaction
/// structure; the tracking records persist the touched-id watermark the
/// incremental pipeline resumes from.
#[derive(Clone, Debug, PartialEq)]
pub enum WalRecord {
    /// Opens transaction `seq` (monotonically increasing).
    Begin {
        /// The transaction sequence number.
        seq: u64,
    },
    /// A committed object insertion.
    DeltaInsert(Object),
    /// A committed single-attribute update.
    DeltaUpdate {
        /// Target object.
        id: ObjectId,
        /// Updated attribute.
        attr: AttrName,
        /// Value before the update (for diagnostics/audit; forward
        /// replay applies `new`).
        old: Value,
        /// Value after the update.
        new: Value,
    },
    /// A committed object removal.
    DeltaRemove {
        /// The removed object's id.
        id: ObjectId,
    },
    /// Closes transaction `seq`; replay applies the buffered deltas.
    Commit {
        /// The transaction sequence number (must match the open `Begin`).
        seq: u64,
    },
    /// A rolled-back transaction: nothing was committed (the marker
    /// exists for audit; replay discards any open transaction).
    Rollback,
    /// The touched-id log was drained ([`crate::Store::take_touched`]):
    /// the incremental-pipeline watermark advances past every commit
    /// before this record.
    TouchedDrain,
    /// Touched-id tracking was switched on or off.
    TrackTouched {
        /// The new tracking state.
        on: bool,
    },
}

// ---------------------------------------------------------------------
// CRC-32 (IEEE 802.3), table-driven. Vendored: the build environment
// has no crates.io access.
// ---------------------------------------------------------------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc32_table();

/// CRC-32 (IEEE) of `bytes` — the frame checksum.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

// ---------------------------------------------------------------------
// Binary codec (shared with the snapshot module).
// ---------------------------------------------------------------------

pub(crate) fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

pub(crate) fn put_id(out: &mut Vec<u8>, id: ObjectId) {
    put_u32(out, id.space());
    put_u64(out, id.serial());
}

pub(crate) fn put_value(out: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Null => out.push(0),
        Value::Bool(b) => {
            out.push(1);
            out.push(u8::from(*b));
        }
        Value::Int(i) => {
            out.push(2);
            out.extend_from_slice(&i.to_le_bytes());
        }
        Value::Real(r) => {
            out.push(3);
            put_u64(out, r.get().to_bits());
        }
        Value::Str(s) => {
            out.push(4);
            put_str(out, s);
        }
        Value::Set(items) => {
            out.push(5);
            put_u32(out, items.len() as u32);
            for item in items {
                put_value(out, item);
            }
        }
        Value::Ref(id) => {
            out.push(6);
            put_id(out, *id);
        }
    }
}

pub(crate) fn put_object(out: &mut Vec<u8>, obj: &Object) {
    put_id(out, obj.id);
    put_str(out, obj.class.as_str());
    put_u32(out, obj.attrs.len() as u32);
    for (attr, value) in &obj.attrs {
        put_str(out, attr.as_str());
        put_value(out, value);
    }
}

/// A bounds-checked payload reader; every accessor reports `None` past
/// the end (decoded into [`DurabilityError::Corrupt`] by callers).
pub(crate) struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.pos >= self.buf.len()
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        if end > self.buf.len() {
            return None;
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Some(s)
    }

    pub(crate) fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|s| s[0])
    }

    pub(crate) fn u32(&mut self) -> Option<u32> {
        self.take(4)
            .map(|s| u32::from_le_bytes([s[0], s[1], s[2], s[3]]))
    }

    pub(crate) fn u64(&mut self) -> Option<u64> {
        self.take(8)
            .and_then(|s| Some(u64::from_le_bytes(s.try_into().ok()?)))
    }

    pub(crate) fn i64(&mut self) -> Option<i64> {
        self.take(8)
            .and_then(|s| Some(i64::from_le_bytes(s.try_into().ok()?)))
    }

    pub(crate) fn str(&mut self) -> Option<String> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).ok()
    }

    pub(crate) fn id(&mut self) -> Option<ObjectId> {
        let space = self.u32()?;
        let serial = self.u64()?;
        Some(ObjectId::new(space, serial))
    }

    pub(crate) fn value(&mut self) -> Option<Value> {
        match self.u8()? {
            0 => Some(Value::Null),
            1 => Some(Value::Bool(self.u8()? != 0)),
            2 => Some(Value::Int(self.i64()?)),
            3 => {
                let bits = self.u64()?;
                Some(Value::Real(R64::try_new(f64::from_bits(bits))?))
            }
            4 => Some(Value::str(self.str()?)),
            5 => {
                let n = self.u32()?;
                let mut items = std::collections::BTreeSet::new();
                for _ in 0..n {
                    items.insert(self.value()?);
                }
                Some(Value::Set(items))
            }
            6 => Some(Value::Ref(self.id()?)),
            _ => None,
        }
    }

    pub(crate) fn object(&mut self) -> Option<Object> {
        let id = self.id()?;
        let class = ClassName::new(self.str()?);
        let mut obj = Object::new(id, class);
        let n = self.u32()?;
        for _ in 0..n {
            let attr = AttrName::new(self.str()?);
            let value = self.value()?;
            obj.attrs.insert(attr, value);
        }
        Some(obj)
    }
}

// ---------------------------------------------------------------------
// Record <-> payload
// ---------------------------------------------------------------------

const TAG_BEGIN: u8 = 1;
const TAG_DELTA_INSERT: u8 = 2;
const TAG_DELTA_UPDATE: u8 = 3;
const TAG_DELTA_REMOVE: u8 = 4;
const TAG_COMMIT: u8 = 5;
const TAG_ROLLBACK: u8 = 6;
const TAG_TOUCHED_DRAIN: u8 = 7;
const TAG_TRACK_TOUCHED: u8 = 8;

#[cfg(test)]
fn encode_record(rec: &WalRecord) -> Vec<u8> {
    let mut out = Vec::new();
    encode_record_into(rec, &mut out);
    out
}

fn encode_record_into(rec: &WalRecord, out: &mut Vec<u8>) {
    match rec {
        WalRecord::Begin { seq } => {
            out.push(TAG_BEGIN);
            put_u64(out, *seq);
        }
        WalRecord::DeltaInsert(obj) => {
            out.push(TAG_DELTA_INSERT);
            put_object(out, obj);
        }
        WalRecord::DeltaUpdate { id, attr, old, new } => {
            out.push(TAG_DELTA_UPDATE);
            put_id(out, *id);
            put_str(out, attr.as_str());
            put_value(out, old);
            put_value(out, new);
        }
        WalRecord::DeltaRemove { id } => {
            out.push(TAG_DELTA_REMOVE);
            put_id(out, *id);
        }
        WalRecord::Commit { seq } => {
            out.push(TAG_COMMIT);
            put_u64(out, *seq);
        }
        WalRecord::Rollback => out.push(TAG_ROLLBACK),
        WalRecord::TouchedDrain => out.push(TAG_TOUCHED_DRAIN),
        WalRecord::TrackTouched { on } => {
            out.push(TAG_TRACK_TOUCHED);
            out.push(u8::from(*on));
        }
    }
}

fn decode_record(payload: &[u8]) -> Option<WalRecord> {
    let mut c = Cursor::new(payload);
    let rec = match c.u8()? {
        TAG_BEGIN => WalRecord::Begin { seq: c.u64()? },
        TAG_DELTA_INSERT => WalRecord::DeltaInsert(c.object()?),
        TAG_DELTA_UPDATE => WalRecord::DeltaUpdate {
            id: c.id()?,
            attr: AttrName::new(c.str()?),
            old: c.value()?,
            new: c.value()?,
        },
        TAG_DELTA_REMOVE => WalRecord::DeltaRemove { id: c.id()? },
        TAG_COMMIT => WalRecord::Commit { seq: c.u64()? },
        TAG_ROLLBACK => WalRecord::Rollback,
        TAG_TOUCHED_DRAIN => WalRecord::TouchedDrain,
        TAG_TRACK_TOUCHED => WalRecord::TrackTouched { on: c.u8()? != 0 },
        _ => return None,
    };
    if !c.is_empty() {
        return None; // trailing garbage inside a CRC-valid frame
    }
    Some(rec)
}

/// Encodes one record as a complete frame (`len`, `crc`, payload) —
/// also the corruption-test hook for crafting adversarial files.
pub fn frame_bytes(rec: &WalRecord) -> Vec<u8> {
    let mut out = Vec::new();
    frame_bytes_into(rec, &mut out);
    out
}

/// [`frame_bytes`] into a caller-supplied buffer, so a multi-record
/// run encodes with no per-frame allocation: the payload is written in
/// place after a hole for the header, which is then backfilled with
/// the real length and CRC.
pub fn frame_bytes_into(rec: &WalRecord, out: &mut Vec<u8>) {
    let base = out.len();
    out.extend_from_slice(&[0u8; 8]);
    encode_record_into(rec, out);
    let payload_len = out.len() - base - 8;
    let crc = crc32(&out[base + 8..]);
    out[base..base + 4].copy_from_slice(&(payload_len as u32).to_le_bytes());
    out[base + 4..base + 8].copy_from_slice(&crc.to_le_bytes());
}

/// The result of scanning a WAL file: every record up to the first torn
/// or corrupt frame, and the byte length of that valid prefix.
#[derive(Debug)]
pub struct WalScan {
    /// Decoded records of the valid prefix, in file order.
    pub records: Vec<WalRecord>,
    /// Byte offset one past each decoded frame (parallel to `records`) —
    /// replay truncates to the offset after the last frame that closes a
    /// transaction, discarding an unterminated `Begin …` run along with
    /// the torn tail.
    pub frame_ends: Vec<u64>,
    /// Byte offset one past the last intact frame.
    pub valid_len: u64,
    /// Total file length as read (equal to `valid_len` for a clean log).
    pub file_len: u64,
}

/// Reads a WAL file, stopping at the first torn or undecodable frame.
/// A missing file scans as empty. Frames *after* a torn one are
/// discarded even if individually valid — bytes past a corruption point
/// are not trusted.
pub fn scan_wal(path: &Path) -> Result<WalScan, DurabilityError> {
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(io_err(path, e)),
    };
    let file_len = bytes.len() as u64;
    let mut records = Vec::new();
    let mut frame_ends = Vec::new();
    let mut pos = 0usize;
    loop {
        let rest = &bytes[pos..];
        if rest.len() < 8 {
            break; // torn or clean end
        }
        let len = u32::from_le_bytes([rest[0], rest[1], rest[2], rest[3]]) as usize;
        let crc = u32::from_le_bytes([rest[4], rest[5], rest[6], rest[7]]);
        let Some(payload) = rest.get(8..8 + len) else {
            break; // torn payload
        };
        if crc32(payload) != crc {
            break; // flipped bits
        }
        let Some(rec) = decode_record(payload) else {
            break; // CRC-valid but undecodable: stop, same as torn
        };
        records.push(rec);
        pos += 8 + len;
        frame_ends.push(pos as u64);
    }
    Ok(WalScan {
        records,
        frame_ends,
        valid_len: pos as u64,
        file_len,
    })
}

/// An append handle over one WAL segment file. Opening truncates the
/// file to `valid_len` (discarding any torn tail found by [`scan_wal`])
/// and positions at the end. [`WalWriter::append_buffered`] writes a
/// frame run without syncing (group commit syncs later through
/// [`GroupSync`]); [`WalWriter::append`] is the historical
/// write-then-`sync_data` combination.
#[derive(Debug)]
pub struct WalWriter {
    /// Shared so a group-commit leader can `sync_data` the segment
    /// without holding the store's commit path.
    file: Arc<File>,
    path: std::path::PathBuf,
    /// Set when a failed append left bytes in the file that could not
    /// be truncated away: the tail may be torn, and a later successful
    /// append would put valid frames *after* the tear — frames replay
    /// silently discards. A poisoned writer refuses all appends.
    poisoned: bool,
    /// The file length, maintained in memory so the append hot path
    /// does not pay a `seek` syscall per run. Every mutation of the
    /// file's length goes through this writer, which keeps it exact.
    cached_len: u64,
}

impl WalWriter {
    /// Opens (creating if absent) the log at `path`, truncated to
    /// `valid_len` bytes. The parent directory is fsynced so a freshly
    /// created log file survives power loss.
    pub fn open(path: &Path, valid_len: u64) -> Result<Self, DurabilityError> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)
            .map_err(|e| io_err(path, e))?;
        file.set_len(valid_len).map_err(|e| io_err(path, e))?;
        if let Some(parent) = path.parent() {
            fsync_dir(parent)?;
        }
        let mut w = WalWriter {
            file: Arc::new(file),
            path: path.to_path_buf(),
            poisoned: false,
            cached_len: 0,
        };
        w.cached_len = (&*w.file)
            .seek(SeekFrom::End(0))
            .map_err(|e| io_err(&w.path, e))?;
        Ok(w)
    }

    /// Writes `records` as one contiguous frame run **without syncing**
    /// and returns the file length after the run. On failure the file
    /// is truncated back to its pre-append length, so the log never
    /// holds valid frames after torn bytes; if even the truncation
    /// fails the writer poisons itself and refuses further appends.
    pub fn append_buffered(&mut self, records: &[WalRecord]) -> Result<u64, DurabilityError> {
        if self.poisoned {
            return Err(DurabilityError::Io(format!(
                "{}: writer poisoned by an unrecovered append failure",
                self.path.display()
            )));
        }
        let start = self.cached_len;
        let mut buf = Vec::new();
        for rec in records {
            frame_bytes_into(rec, &mut buf);
        }
        if let Err(e) = (&*self.file).write_all(&buf) {
            let restored = self
                .file
                .set_len(start)
                .and_then(|()| (&*self.file).seek(SeekFrom::Start(start)).map(|_| ()));
            if restored.is_err() {
                self.poisoned = true;
            }
            return Err(io_err(&self.path, e));
        }
        self.cached_len = start + buf.len() as u64;
        Ok(self.cached_len)
    }

    /// Flushes previously buffered appends to stable storage.
    pub fn sync(&self) -> Result<(), DurabilityError> {
        self.file.sync_data().map_err(|e| io_err(&self.path, e))
    }

    /// Appends `records` as one contiguous frame run and `sync_data`s
    /// before returning — the pre-group-commit behaviour. On sync
    /// failure the file is truncated back so the log never acknowledges
    /// bytes it could not flush.
    pub fn append(&mut self, records: &[WalRecord]) -> Result<(), DurabilityError> {
        let start = self.cached_len;
        self.append_buffered(records)?;
        if let Err(e) = self.sync() {
            let restored = self
                .file
                .set_len(start)
                .and_then(|()| (&*self.file).seek(SeekFrom::Start(start)).map(|_| ()));
            if restored.is_err() {
                self.poisoned = true;
            } else {
                self.cached_len = start;
            }
            return Err(e);
        }
        Ok(())
    }

    /// The shared handle of the underlying segment file, for the
    /// group-commit leader's out-of-band `sync_data`.
    pub(crate) fn file(&self) -> &Arc<File> {
        &self.file
    }

    /// Swaps the underlying file handle — test hook for forcing append
    /// failures (e.g. a read-only handle) against a real log file.
    #[cfg(test)]
    fn swap_file_for_test(&mut self, file: Arc<File>) -> Arc<File> {
        std::mem::replace(&mut self.file, file)
    }

    /// Discards the entire log (after a successful snapshot captured
    /// everything it held).
    ///
    /// **Invariant: the truncation is itself durable.** `set_len(0)`
    /// alone lives only in the page cache; after power loss the old
    /// length — and the stale committed frames inside it — could come
    /// back, and only the `seq > watermark` replay filter would stand
    /// between those resurrected frames and a double-apply. `sync_all`
    /// (size is metadata, so `sync_data` is not enough) forces the
    /// truncation to disk before the reset is acknowledged.
    pub fn reset(&mut self) -> Result<(), DurabilityError> {
        self.file.set_len(0).map_err(|e| io_err(&self.path, e))?;
        (&*self.file)
            .seek(SeekFrom::Start(0))
            .map_err(|e| io_err(&self.path, e))?;
        self.file.sync_all().map_err(|e| io_err(&self.path, e))?;
        self.cached_len = 0;
        Ok(())
    }

    /// Current byte length of the log.
    pub fn len(&mut self) -> Result<u64, DurabilityError> {
        Ok(self.cached_len)
    }

    /// True when the log holds no frames.
    pub fn is_empty(&mut self) -> Result<bool, DurabilityError> {
        Ok(self.len()? == 0)
    }
}

// ---------------------------------------------------------------------
// Group commit
// ---------------------------------------------------------------------

/// How commits share fsyncs. The default (`max_batch: 1`,
/// `max_delay_us: 0`) syncs every commit before acknowledging it —
/// byte-for-byte the historical behaviour, so grouping is strictly
/// opt-in. A grouped policy lets the sync leader dwell until
/// `max_batch` commit runs are buffered or `max_delay_us` has elapsed,
/// then cover the whole batch with **one** `sync_data`.
///
/// Grouping never weakens *acknowledged ≠ lost*: a commit is
/// acknowledged only after a sync covering its bytes, so a crash can
/// lose only transactions that were never acknowledged — and recovery
/// still lands on a commit-order prefix.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GroupCommitPolicy {
    /// Sync as soon as this many commit runs are awaiting one.
    pub max_batch: usize,
    /// Sync no later than this after the leader started waiting.
    pub max_delay_us: u64,
}

impl Default for GroupCommitPolicy {
    fn default() -> Self {
        GroupCommitPolicy {
            max_batch: 1,
            max_delay_us: 0,
        }
    }
}

impl GroupCommitPolicy {
    /// A grouped policy (`max_batch` is clamped to at least 1).
    pub fn grouped(max_batch: usize, max_delay_us: u64) -> Self {
        GroupCommitPolicy {
            max_batch: max_batch.max(1),
            max_delay_us,
        }
    }

    /// True when this policy can defer the covering sync past the
    /// append (anything beyond sync-per-commit-before-ack).
    pub fn is_grouped(&self) -> bool {
        self.max_batch > 1 || self.max_delay_us > 0
    }
}

/// The group-commit sync coordinator. Appends are serialized by the
/// store's commit path and numbered; `synced` is the highest append
/// index a `sync_data` (or a segment seal, or a snapshot reset) has
/// covered. Waiters for uncovered indexes elect a leader that issues
/// one sync for everything appended so far.
///
/// A failed `sync_data` is **sticky**: after an fsync error the page
/// cache state of the file is unknowable, so the coordinator records
/// the first error, every uncovered waiter (present and future) gets
/// it, and the owning log refuses further appends. Already-covered
/// indexes stay acknowledged — their bytes were flushed before the
/// failure.
#[derive(Debug)]
pub struct GroupSync {
    state: Mutex<GroupState>,
    /// Waiters parked until a covering sync; notified when `synced`
    /// advances (or the sticky error lands).
    cv_ack: Condvar,
    /// The dwelling leader, parked until its batch fills; notified
    /// (once per batch) when `pending` reaches `policy.max_batch`.
    /// Separate from `cv_ack` so an append never stampedes the parked
    /// ack waiters — on one core that stampede dominated the commit
    /// path.
    cv_batch: Condvar,
}

#[derive(Debug)]
struct GroupState {
    policy: GroupCommitPolicy,
    /// The active segment's shared handle — what the leader syncs.
    file: Option<Arc<File>>,
    /// Total appends so far (monotonic; 1-based).
    appended: u64,
    /// Highest append index known durable.
    synced: u64,
    /// Appends not yet covered by a sync — the leader's batch-size
    /// trigger.
    pending: usize,
    /// A leader is currently dwelling or syncing.
    leader: bool,
    /// First sync failure, sticky.
    error: Option<DurabilityError>,
}

/// A claim ticket for one appended commit run: [`WalAck::wait`] blocks
/// until a covering sync makes the run durable (or reports the sticky
/// sync failure). Dropping an ack without waiting leaves the run to be
/// covered by whichever sync comes next — it is never lost, only
/// unacknowledged.
#[derive(Debug)]
pub struct WalAck {
    gc: Arc<GroupSync>,
    idx: u64,
}

impl WalAck {
    /// Blocks until the covering sync completes; one waiter becomes the
    /// leader and issues it.
    pub fn wait(&self) -> Result<(), DurabilityError> {
        self.gc.wait_durable(self.idx)
    }
}

impl GroupSync {
    pub(crate) fn new(policy: GroupCommitPolicy) -> Arc<GroupSync> {
        Arc::new(GroupSync {
            state: Mutex::new(GroupState {
                policy,
                file: None,
                appended: 0,
                synced: 0,
                pending: 0,
                leader: false,
                error: None,
            }),
            cv_ack: Condvar::new(),
            cv_batch: Condvar::new(),
        })
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, GroupState> {
        // The mutex is never held across a panic-capable section.
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub(crate) fn set_policy(&self, policy: GroupCommitPolicy) {
        self.lock().policy = policy;
        self.cv_ack.notify_all();
        self.cv_batch.notify_all();
    }

    pub(crate) fn policy(&self) -> GroupCommitPolicy {
        self.lock().policy
    }

    /// Fails once a sync has failed — the gate that stops a log from
    /// accepting appends it could never acknowledge.
    pub(crate) fn check(&self) -> Result<(), DurabilityError> {
        match &self.lock().error {
            Some(e) => Err(e.clone()),
            None => Ok(()),
        }
    }

    /// Registers one buffered commit run in `file` and returns its ack.
    pub(crate) fn note_append(self: &Arc<Self>, file: &Arc<File>) -> WalAck {
        let mut s = self.lock();
        s.appended += 1;
        s.pending += 1;
        s.file = Some(Arc::clone(file));
        let idx = s.appended;
        // Nudge a dwelling leader exactly when its batch trigger fires;
        // earlier appends let it keep dwelling, and a zero-delay leader
        // is never parked (it is either off syncing or done).
        let batch_full = s.leader && s.policy.max_delay_us > 0 && s.pending >= s.policy.max_batch;
        drop(s);
        if batch_full {
            self.cv_batch.notify_one();
        }
        WalAck {
            gc: Arc::clone(self),
            idx,
        }
    }

    /// Everything appended so far just became durable by other means (a
    /// segment seal's sync, or a snapshot that captured the log's whole
    /// contents before it was reset).
    pub(crate) fn mark_all_synced(&self) {
        let mut s = self.lock();
        s.synced = s.appended;
        s.pending = 0;
        drop(s);
        self.cv_ack.notify_all();
        self.cv_batch.notify_all();
    }

    fn wait_durable(&self, idx: u64) -> Result<(), DurabilityError> {
        let mut s = self.lock();
        loop {
            if s.synced >= idx {
                return Ok(());
            }
            if let Some(e) = &s.error {
                return Err(e.clone());
            }
            if s.leader {
                s = self.cv_ack.wait(s).unwrap_or_else(|e| e.into_inner());
                continue;
            }
            // Leader election: dwell for the batch, then sync once.
            s.leader = true;
            if s.policy.max_delay_us > 0 {
                let deadline = Instant::now() + Duration::from_micros(s.policy.max_delay_us);
                while s.pending < s.policy.max_batch && s.synced < idx && s.error.is_none() {
                    let now = Instant::now();
                    if now >= deadline {
                        break;
                    }
                    let (ns, _) = self
                        .cv_batch
                        .wait_timeout(s, deadline - now)
                        .unwrap_or_else(|e| e.into_inner());
                    s = ns;
                }
                if s.synced >= idx || s.error.is_some() {
                    s.leader = false;
                    drop(s);
                    self.cv_ack.notify_all();
                    s = self.lock();
                    continue;
                }
            }
            let target = s.appended;
            let covered = s.pending;
            let file = s.file.clone();
            drop(s);
            let res = match &file {
                Some(f) => f
                    .sync_data()
                    .map_err(|e| DurabilityError::Io(format!("wal sync: {e}"))),
                None => Ok(()),
            };
            s = self.lock();
            s.leader = false;
            match res {
                Ok(()) => {
                    if target > s.synced {
                        s.synced = target;
                    }
                    s.pending = s.pending.saturating_sub(covered);
                }
                Err(e) => {
                    s.error.get_or_insert(e);
                }
            }
            drop(s);
            self.cv_ack.notify_all();
            s = self.lock();
        }
    }
}

// ---------------------------------------------------------------------
// Segments
// ---------------------------------------------------------------------

/// The single-file layout's log name, still read as segment 0.
pub const LEGACY_WAL_FILE: &str = "wal.log";

/// Rotate the active segment once it crosses this many bytes.
pub const DEFAULT_SEGMENT_BYTES: u64 = 8 * 1024 * 1024;

/// The file name of WAL segment `seq` inside the durability directory.
pub fn segment_path(dir: &Path, seq: u64) -> PathBuf {
    if seq == 0 {
        dir.join(LEGACY_WAL_FILE)
    } else {
        dir.join(format!("wal-{seq:020}.log"))
    }
}

fn parse_segment_name(name: &str) -> Option<u64> {
    if name == LEGACY_WAL_FILE {
        return Some(0);
    }
    let digits = name.strip_prefix("wal-")?.strip_suffix(".log")?;
    if digits.len() != 20 || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

/// Every WAL segment in `dir`, ascending by sequence. A missing
/// directory lists as empty.
pub fn list_segments(dir: &Path) -> Result<Vec<(u64, PathBuf)>, DurabilityError> {
    let mut out = Vec::new();
    let rd = match std::fs::read_dir(dir) {
        Ok(rd) => rd,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(out),
        Err(e) => return Err(io_err(dir, e)),
    };
    for entry in rd {
        let entry = entry.map_err(|e| io_err(dir, e))?;
        if let Some(seq) = entry.file_name().to_str().and_then(parse_segment_name) {
            out.push((seq, entry.path()));
        }
    }
    out.sort_by_key(|(seq, _)| *seq);
    Ok(out)
}

/// One scanned segment of a multi-file log.
#[derive(Debug)]
pub struct SegmentScan {
    /// The segment sequence number.
    pub seq: u64,
    /// The segment file's path.
    pub path: PathBuf,
    /// Its single-file scan (torn-tail rules apply per segment).
    pub scan: WalScan,
}

/// Scans the log's segments in ascending order. The scan stops after
/// the first *torn* segment (later files are bytes past a corruption
/// point and cannot be trusted) and at the first sequence **gap** (a
/// vanished middle segment means the surviving tail is not a prefix);
/// segments beyond the stop point are not returned — recovery deletes
/// their files.
pub fn scan_segments(dir: &Path) -> Result<Vec<SegmentScan>, DurabilityError> {
    let mut out: Vec<SegmentScan> = Vec::new();
    for (seq, path) in list_segments(dir)? {
        if let Some(prev) = out.last() {
            if seq != prev.seq + 1 {
                break; // gap: the tail is not a prefix
            }
        }
        let scan = scan_wal(&path)?;
        let torn = scan.valid_len < scan.file_len;
        out.push(SegmentScan { seq, path, scan });
        if torn {
            break; // nothing after a corruption point is trusted
        }
    }
    Ok(out)
}

/// A sealed (no-longer-active) segment and the highest transaction
/// sequence it can contain — the pruning criterion.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SealedSegment {
    /// The segment's sequence number.
    pub seq: u64,
    /// Every transaction in the segment has `seq <= last_txn`.
    pub last_txn: u64,
}

/// The multi-segment write-ahead log: an append handle over the active
/// segment, rotation, pruning, and the shared [`GroupSync`] that
/// acknowledges appends. All mutating calls are serialized by the
/// owning store's commit path; only [`WalAck::wait`] and the sync
/// leader run outside it.
#[derive(Debug)]
pub struct SegmentedWal {
    dir: PathBuf,
    active_seq: u64,
    active_len: u64,
    /// Highest transaction sequence appended to the active segment.
    active_last_txn: u64,
    writer: WalWriter,
    sealed: Vec<SealedSegment>,
    segment_bytes: u64,
    gc: Arc<GroupSync>,
}

impl SegmentedWal {
    /// Opens the log with `active_seq` as the active segment (created
    /// if absent, truncated to `valid_len`), over the already-recovered
    /// `sealed` list. `last_txn` is an upper bound on the transaction
    /// sequences already inside the active segment (recovery passes the
    /// recovered sequence counter; too high only delays pruning, never
    /// corrupts it).
    pub fn open(
        dir: &Path,
        active_seq: u64,
        valid_len: u64,
        sealed: Vec<SealedSegment>,
        last_txn: u64,
    ) -> Result<Self, DurabilityError> {
        let writer = WalWriter::open(&segment_path(dir, active_seq), valid_len)?;
        Ok(SegmentedWal {
            dir: dir.to_path_buf(),
            active_seq,
            active_len: valid_len,
            active_last_txn: last_txn,
            writer,
            sealed,
            segment_bytes: DEFAULT_SEGMENT_BYTES,
            gc: GroupSync::new(GroupCommitPolicy::default()),
        })
    }

    /// The shared sync coordinator (for acks and policy).
    pub fn group(&self) -> &Arc<GroupSync> {
        &self.gc
    }

    /// Sets the rotation threshold (clamped to at least 1 byte).
    pub fn set_segment_bytes(&mut self, bytes: u64) {
        self.segment_bytes = bytes.max(1);
    }

    /// The active segment's sequence number.
    pub fn active_seq(&self) -> u64 {
        self.active_seq
    }

    /// The sealed segments still on disk, ascending.
    pub fn sealed(&self) -> &[SealedSegment] {
        &self.sealed
    }

    /// Appends one transaction's frame run (or a standalone marker) to
    /// the active segment, rotating first when the threshold is
    /// crossed, and returns the ack to wait on. `last_txn` is the
    /// highest transaction sequence in `records` (the current counter
    /// for markers).
    pub fn append_run(
        &mut self,
        records: &[WalRecord],
        last_txn: u64,
    ) -> Result<WalAck, DurabilityError> {
        self.gc.check()?;
        if self.active_len >= self.segment_bytes {
            self.rotate()?;
        }
        let end = self.writer.append_buffered(records)?;
        self.active_len = end;
        self.active_last_txn = self.active_last_txn.max(last_txn);
        Ok(self.gc.note_append(self.writer.file()))
    }

    /// The single-writer variant of [`SegmentedWal::append_run`]:
    /// appends and `sync_data`s before returning, with the historical
    /// failure contract — on any failure the file is restored to its
    /// pre-append length (there is no later append to protect), so the
    /// caller may roll its in-memory state back and the log agrees.
    pub fn append_run_synced(
        &mut self,
        records: &[WalRecord],
        last_txn: u64,
    ) -> Result<(), DurabilityError> {
        self.gc.check()?;
        if self.active_len >= self.segment_bytes {
            self.rotate()?;
        }
        self.writer.append(records)?;
        self.active_len = self.writer.len()?;
        self.active_last_txn = self.active_last_txn.max(last_txn);
        self.gc.mark_all_synced();
        Ok(())
    }

    /// Seals the active segment — one final `sync_data`, making every
    /// byte of it durable — and creates the next one (fsyncing the
    /// directory so the new name survives power loss).
    pub fn rotate(&mut self) -> Result<(), DurabilityError> {
        self.writer.sync()?;
        self.gc.mark_all_synced();
        self.sealed.push(SealedSegment {
            seq: self.active_seq,
            last_txn: self.active_last_txn,
        });
        self.active_seq += 1;
        self.writer = WalWriter::open(&segment_path(&self.dir, self.active_seq), 0)?;
        self.active_len = 0;
        Ok(())
    }

    /// The sealed segments a snapshot at `watermark` makes redundant:
    /// every transaction in them replays as `seq <= watermark`.
    pub fn prunable(&self, watermark: u64) -> Vec<u64> {
        self.sealed
            .iter()
            .filter(|s| s.last_txn <= watermark)
            .map(|s| s.seq)
            .collect()
    }

    /// Deletes the given sealed segments and fsyncs the directory so
    /// the removal is durable. Unknown sequences are ignored (already
    /// pruned).
    pub fn prune_sealed(&mut self, seqs: &[u64]) -> Result<(), DurabilityError> {
        let mut removed = false;
        for &seq in seqs {
            if let Some(i) = self.sealed.iter().position(|s| s.seq == seq) {
                let path = segment_path(&self.dir, seq);
                std::fs::remove_file(&path).map_err(|e| io_err(&path, e))?;
                self.sealed.remove(i);
                removed = true;
            }
        }
        if removed {
            fsync_dir(&self.dir)?;
        }
        Ok(())
    }

    /// Discards the entire log after a snapshot captured everything it
    /// held: durably truncates the active segment ([`WalWriter::reset`])
    /// and deletes every sealed segment, fsyncing the directory. All
    /// outstanding appends are marked durable — the snapshot holds
    /// them now.
    pub fn reset_all(&mut self) -> Result<(), DurabilityError> {
        self.writer.reset()?;
        self.active_len = 0;
        let had_sealed = !self.sealed.is_empty();
        for s in std::mem::take(&mut self.sealed) {
            let path = segment_path(&self.dir, s.seq);
            std::fs::remove_file(&path).map_err(|e| io_err(&path, e))?;
        }
        if had_sealed {
            fsync_dir(&self.dir)?;
        }
        self.gc.mark_all_synced();
        Ok(())
    }

    /// Byte length of the active segment.
    pub fn active_len(&self) -> u64 {
        self.active_len
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj() -> Object {
        Object::new(ObjectId::new(7, 42), ClassName::new("Item"))
            .with("isbn", "90-6196-001")
            .with("price", 29.5)
            .with("stock", 3i64)
            .with("ref?", true)
            .with("tags", Value::str_set(["a", "b"]))
            .with("pub", Value::Ref(ObjectId::new(1, 9)))
    }

    #[test]
    fn crc32_known_vector() {
        // The canonical IEEE check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn records_roundtrip() {
        let records = vec![
            WalRecord::Begin { seq: 3 },
            WalRecord::DeltaInsert(obj()),
            WalRecord::DeltaUpdate {
                id: ObjectId::new(7, 42),
                attr: AttrName::new("price"),
                old: Value::real(29.5),
                new: Value::Null,
            },
            WalRecord::DeltaRemove {
                id: ObjectId::new(7, 42),
            },
            WalRecord::Commit { seq: 3 },
            WalRecord::Rollback,
            WalRecord::TouchedDrain,
            WalRecord::TrackTouched { on: true },
            WalRecord::TrackTouched { on: false },
        ];
        for rec in &records {
            let payload = encode_record(rec);
            assert_eq!(decode_record(&payload).as_ref(), Some(rec));
        }
    }

    #[test]
    fn decode_rejects_trailing_garbage_and_bad_tags() {
        let mut payload = encode_record(&WalRecord::Rollback);
        payload.push(0);
        assert_eq!(decode_record(&payload), None, "trailing garbage");
        assert_eq!(decode_record(&[99]), None, "unknown tag");
        assert_eq!(decode_record(&[]), None, "empty payload");
        // Truncated object payload.
        let full = encode_record(&WalRecord::DeltaInsert(obj()));
        assert_eq!(decode_record(&full[..full.len() - 3]), None);
    }

    #[test]
    fn failed_append_never_leaves_bytes_ahead_of_acknowledged_frames() {
        let dir = std::env::temp_dir().join(format!("interop-wal-poison-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("wal.log");
        let mut w = WalWriter::open(&path, 0).unwrap();
        w.append(&[WalRecord::Begin { seq: 1 }, WalRecord::Commit { seq: 1 }])
            .unwrap();
        let good_len = w.len().unwrap();
        // Swap in a read-only handle: the write fails, the truncate-back
        // fails too, and the writer must poison itself rather than let a
        // later append land after a possible tear.
        let real = w.swap_file_for_test(Arc::new(File::open(&path).unwrap()));
        assert!(matches!(
            w.append(&[WalRecord::Rollback]),
            Err(DurabilityError::Io(_))
        ));
        drop(w.swap_file_for_test(real));
        let err = w.append(&[WalRecord::Rollback]).unwrap_err();
        assert!(
            matches!(&err, DurabilityError::Io(m) if m.contains("poisoned")),
            "writable again, but the writer stays poisoned: {err}"
        );
        // The acknowledged prefix is untouched on disk.
        let scan = scan_wal(&path).unwrap();
        assert_eq!(scan.valid_len, good_len);
        assert_eq!(scan.file_len, good_len, "no torn bytes were persisted");
        assert_eq!(scan.records.len(), 2);
    }

    fn scratch(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("interop-wal-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn run(seq: u64) -> Vec<WalRecord> {
        vec![WalRecord::Begin { seq }, WalRecord::Commit { seq }]
    }

    #[test]
    fn grouped_acks_are_covered_by_one_leader_sync() {
        let dir = scratch("group");
        let mut wal = SegmentedWal::open(&dir, 1, 0, Vec::new(), 0).unwrap();
        wal.group()
            .set_policy(GroupCommitPolicy::grouped(3, 50_000));
        let acks: Vec<WalAck> = (1..=3)
            .map(|seq| wal.append_run(&run(seq), seq).unwrap())
            .collect();
        // Three appended, none synced yet. Waiting from several threads
        // elects one leader; the batch is full, so it syncs immediately
        // and every ack is covered by that one sync.
        std::thread::scope(|s| {
            for ack in &acks {
                s.spawn(move || ack.wait().expect("covered by the group sync"));
            }
        });
        // A later waiter finds its index already durable.
        acks[0].wait().unwrap();
        let scan = scan_wal(&segment_path(&dir, 1)).unwrap();
        assert_eq!(scan.records.len(), 6, "all three runs on disk");
    }

    #[test]
    fn ack_epochs_survive_rotation_and_reset() {
        let dir = scratch("epochs");
        let mut wal = SegmentedWal::open(&dir, 1, 0, Vec::new(), 0).unwrap();
        wal.group()
            .set_policy(GroupCommitPolicy::grouped(64, 10_000));
        let a1 = wal.append_run(&run(1), 1).unwrap();
        // Rotation syncs the sealed segment — the pending ack is
        // durable even though no waiter ever became leader, and the
        // epoch counters must say so despite the file position of the
        // *new* segment restarting at 0.
        wal.rotate().unwrap();
        a1.wait().expect("sealed segments are durable");
        let a2 = wal.append_run(&run(2), 2).unwrap();
        // A durable reset (snapshot) truncates in place: same story —
        // offset reuse must not resurrect or orphan ack indexes.
        wal.reset_all().unwrap();
        a2.wait().expect("reset syncs everything it discards");
        let a3 = wal.append_run(&run(3), 3).unwrap();
        a3.wait().expect("post-reset appends get fresh epochs");
        assert_eq!(wal.sealed(), &[], "reset deleted the sealed segment");
    }

    #[test]
    fn rotation_seals_prunes_and_lists_in_order() {
        let dir = scratch("rotate");
        let mut wal = SegmentedWal::open(&dir, 1, 0, Vec::new(), 0).unwrap();
        wal.append_run_synced(&run(1), 1).unwrap();
        wal.rotate().unwrap();
        wal.append_run_synced(&run(2), 2).unwrap();
        wal.rotate().unwrap();
        wal.append_run_synced(&run(3), 3).unwrap();
        assert_eq!(wal.active_seq(), 3);
        let listed: Vec<u64> = list_segments(&dir)
            .unwrap()
            .into_iter()
            .map(|(s, _)| s)
            .collect();
        assert_eq!(listed, vec![1, 2, 3], "ascending sequence order");
        // Everything up to txn 2 is snapshotted: both sealed segments
        // qualify and are deleted; the active segment never does.
        assert_eq!(wal.prunable(2), vec![1, 2]);
        wal.prune_sealed(&[1, 2]).unwrap();
        let listed: Vec<u64> = list_segments(&dir)
            .unwrap()
            .into_iter()
            .map(|(s, _)| s)
            .collect();
        assert_eq!(listed, vec![3], "covered sealed segments deleted");
        assert_eq!(wal.prunable(99), Vec::<u64>::new());
    }

    #[test]
    fn scan_segments_stops_at_gap_and_torn_segment() {
        let dir = scratch("gap");
        let mut wal = SegmentedWal::open(&dir, 1, 0, Vec::new(), 0).unwrap();
        wal.append_run_synced(&run(1), 1).unwrap();
        wal.rotate().unwrap();
        wal.append_run_synced(&run(2), 2).unwrap();
        wal.rotate().unwrap();
        wal.append_run_synced(&run(3), 3).unwrap();
        // Tear the middle segment: everything after it is unreachable.
        let mid = segment_path(&dir, 2);
        let bytes = std::fs::read(&mid).unwrap();
        std::fs::write(&mid, &bytes[..bytes.len() - 1]).unwrap();
        let scans = scan_segments(&dir).unwrap();
        assert_eq!(
            scans.iter().map(|s| s.seq).collect::<Vec<_>>(),
            vec![1, 2],
            "the torn segment is the last one scanned"
        );
        // A sequence gap has the same effect.
        std::fs::remove_file(&mid).unwrap();
        let scans = scan_segments(&dir).unwrap();
        assert_eq!(
            scans.iter().map(|s| s.seq).collect::<Vec<_>>(),
            vec![1],
            "nothing past a missing sequence number is trusted"
        );
    }

    #[test]
    fn nan_real_refuses_to_decode() {
        // A hand-crafted Real(NaN) payload must not produce a Value —
        // R64's NaN-freedom invariant holds even for hostile files.
        let mut payload = vec![TAG_DELTA_UPDATE];
        put_id(&mut payload, ObjectId::new(0, 0));
        put_str(&mut payload, "a");
        put_value(&mut payload, &Value::Null);
        payload.push(3); // Real tag
        put_u64(&mut payload, f64::NAN.to_bits());
        assert_eq!(decode_record(&payload), None);
    }
}
