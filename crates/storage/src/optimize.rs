//! Constraint-based query optimisation and the planned executor.
//!
//! The paper's first motivating use-case (§1): "Global integrity
//! constraints thus obtained could for example be used in optimising
//! queries against the integrated view, eliminating subqueries which are
//! known to yield empty results." The [`Optimizer`] holds the (derived)
//! constraints known to hold for a class and answers a predicate in
//! stages:
//!
//! 1. **Pruning** — `pred ∧ constraints` unsatisfiable ⇒ empty without
//!    touching an object ([`OptimizeOutcome::PrunedEmpty`]).
//! 2. **Key fast path** — `key = const` probes the unique key index.
//! 3. **Planned execution** — the predicate is compiled by
//!    [`crate::plan::build_plan`]; index-satisfiable conjuncts resolve to
//!    sorted posting lists (lazy per-class secondary indexes: hash for
//!    equality, sorted for ranges) which are intersected *batch-wise*,
//!    implied-true conjuncts are dropped, and only residual conjuncts are
//!    evaluated per surviving candidate.
//! 4. **Scan** — with no usable index atom, the extension is scanned with
//!    the residual conjuncts.

use interop_constraint::eval::{eval_formula, Truth};
use interop_constraint::solve::{is_satisfiable, TypeEnv};
use interop_constraint::{CmpOp, Expr, Formula, Path};
use interop_model::{intersect_sorted, ClassName, ModelError, ObjectId, Value};

use crate::plan::{build_plan, IndexAtom, QueryPlan, Step};
use crate::store::Store;

/// How a query was answered.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum OptimizeOutcome {
    /// The predicate contradicts known constraints: empty without a scan.
    PrunedEmpty,
    /// Answered via the key index (at most one candidate probed).
    KeyLookup,
    /// Answered by intersecting secondary-index posting lists (residual
    /// conjuncts evaluated on the surviving candidates only).
    IndexScan,
    /// Full extension scan (with implied-true conjuncts dropped).
    Scanned,
}

/// A per-class query optimiser armed with known-valid constraints.
#[derive(Clone, Debug)]
pub struct Optimizer {
    class: ClassName,
    /// Constraints known to hold for every object of the class (locally
    /// enforced ones, or global constraints derived by `interop-core`).
    constraints: Vec<Formula>,
    env: TypeEnv,
}

impl Optimizer {
    /// Creates an optimiser for `class`, deriving the type environment
    /// from the store's schema.
    pub fn new(store: &Store, class: impl Into<ClassName>, constraints: Vec<Formula>) -> Self {
        let class = class.into();
        let env = TypeEnv::for_class(&store.db().schema, &class);
        Optimizer {
            class,
            constraints,
            env,
        }
    }

    /// The constraints in use.
    pub fn constraints(&self) -> &[Formula] {
        &self.constraints
    }

    /// Compiles `pred` into a [`QueryPlan`] (no store access; useful for
    /// explain-style inspection and tests).
    pub fn plan(&self, pred: &Formula) -> QueryPlan {
        build_plan(&self.class, pred, &self.constraints, &self.env)
    }

    /// Answers `pred` over the class, using constraint pruning, the key
    /// index, and planned posting-list execution before falling back to a
    /// scan. Hits are returned in ascending id order.
    pub fn execute(
        &self,
        store: &Store,
        pred: &Formula,
    ) -> Result<(Vec<ObjectId>, OptimizeOutcome), ModelError> {
        // 1. Pruning: pred ∧ known constraints unsatisfiable ⇒ empty.
        let mut conj = pred.clone();
        for c in &self.constraints {
            conj = conj.and(c.clone());
        }
        if !is_satisfiable(&conj, &self.env) {
            return Ok((Vec::new(), OptimizeOutcome::PrunedEmpty));
        }
        // 2. Key fast path: `key = const` predicates probe the index.
        if let Some(key_attrs) = store.key_attrs(&self.class) {
            if key_attrs.len() == 1 {
                if let Some(v) = key_eq_value(pred, &Path::attr(key_attrs[0].clone())) {
                    let mut out = Vec::new();
                    if let Some(id) = store.lookup_key(&self.class, &[v]) {
                        // The index spans the keyed ancestor's extension;
                        // re-check class membership and the full predicate.
                        let obj = store.db().object_req(id)?;
                        let in_class = store.db().schema.is_subclass(&obj.class, &self.class);
                        if in_class && eval_formula(store.db(), obj, pred)? == Truth::True {
                            out.push(id);
                        }
                    }
                    return Ok((out, OptimizeOutcome::KeyLookup));
                }
            }
        }
        // 3. Planned execution.
        let plan = self.plan(pred);
        execute_plan(store, &plan)
    }
}

/// Executes a compiled plan: resolves index atoms to sorted posting
/// lists, intersects them (smallest first), and evaluates residual
/// conjuncts on the surviving candidates. With no index atom the class
/// extension is scanned instead. Hits are in ascending id order.
pub fn execute_plan(
    store: &Store,
    plan: &QueryPlan,
) -> Result<(Vec<ObjectId>, OptimizeOutcome), ModelError> {
    let mut postings: Vec<Vec<ObjectId>> = Vec::new();
    let mut residuals: Vec<&Formula> = Vec::new();
    for step in &plan.steps {
        match step {
            Step::Index(atom) => postings.push(resolve_atom(store, &plan.class, atom)),
            Step::ImpliedTrue(_) => {}
            Step::Residual(f) => residuals.push(f),
        }
    }
    if postings.is_empty() {
        // Scan with the residual conjuncts (implied-true ones already
        // dropped; with no index steps they can only be path-free).
        let mut hits = Vec::new();
        let mut ids = store.db().extension(&plan.class);
        ids.sort_unstable();
        for id in ids {
            let obj = store.db().object_req(id)?;
            if passes(store, obj, &residuals)? {
                hits.push(id);
            }
        }
        return Ok((hits, OptimizeOutcome::Scanned));
    }
    // Batch intersection of sorted posting lists, smallest first.
    postings.sort_unstable_by_key(Vec::len);
    let mut candidates = postings.remove(0);
    for list in &postings {
        if candidates.is_empty() {
            break;
        }
        candidates = intersect_sorted(&candidates, list);
    }
    let mut hits = Vec::new();
    for id in candidates {
        let obj = store.db().object_req(id)?;
        if passes(store, obj, &residuals)? {
            hits.push(id);
        }
    }
    Ok((hits, OptimizeOutcome::IndexScan))
}

fn passes(
    store: &Store,
    obj: &interop_model::Object,
    residuals: &[&Formula],
) -> Result<bool, ModelError> {
    for f in residuals {
        if eval_formula(store.db(), obj, f)? != Truth::True {
            return Ok(false);
        }
    }
    Ok(true)
}

/// Resolves one index atom to a sorted posting list against the store's
/// lazy secondary indexes.
fn resolve_atom(store: &Store, class: &ClassName, atom: &IndexAtom) -> Vec<ObjectId> {
    match atom {
        IndexAtom::Eq { attr, key } => store.hash_index(class, attr).postings(key).to_vec(),
        IndexAtom::In { attr, keys } => {
            let idx = store.hash_index(class, attr);
            // Canonical keys are distinct, so posting lists are disjoint:
            // concatenating and sorting yields a duplicate-free union.
            let mut out: Vec<ObjectId> = keys
                .iter()
                .flat_map(|k| idx.postings(k).iter().copied())
                .collect();
            out.sort_unstable();
            out
        }
        IndexAtom::Range { attr, lo, hi } => store.sorted_index(class, attr).range_ids(*lo, *hi),
    }
}

/// If `pred` is (a conjunction containing) `key = const`, returns the
/// constant.
fn key_eq_value(pred: &Formula, key: &Path) -> Option<Value> {
    match pred {
        Formula::Cmp(Expr::Attr(p), CmpOp::Eq, Expr::Const(v)) if p == key => Some(v.clone()),
        Formula::Cmp(Expr::Const(v), CmpOp::Eq, Expr::Attr(p)) if p == key => Some(v.clone()),
        Formula::And(fs) => fs.iter().find_map(|f| key_eq_value(f, key)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::Query;
    use interop_constraint::{Catalog, ClassConstraint, ConstraintId};
    use interop_model::{ClassDef, Database, DbName, Schema, Type};

    fn store_with_items(n: i64) -> Store {
        let schema = Schema::new(
            "B",
            vec![ClassDef::new("Item")
                .attr("isbn", Type::Str)
                .attr("libprice", Type::Real)
                .attr("rating", Type::Range(1, 10))],
        )
        .unwrap();
        let mut cat = Catalog::new();
        cat.add_class(ClassConstraint::key(
            ConstraintId::new(&DbName::new("B"), &ClassName::new("Item"), "cc1"),
            "Item",
            vec!["isbn"],
        ));
        let mut s = Store::new(Database::new(schema, 1), cat);
        for i in 0..n {
            s.create(
                "Item",
                vec![
                    ("isbn", Value::str(format!("isbn-{i}"))),
                    ("libprice", Value::real(10.0 + i as f64)),
                    ("rating", Value::int(1 + (i % 10))),
                ],
            )
            .unwrap();
        }
        s
    }

    #[test]
    fn pruning_detects_contradiction_with_constraints() {
        let s = store_with_items(100);
        // Derived global constraint: rating >= 5 (say, from integration).
        let opt = Optimizer::new(&s, "Item", vec![Formula::cmp("rating", CmpOp::Ge, 5i64)]);
        let (hits, outcome) = opt
            .execute(&s, &Formula::cmp("rating", CmpOp::Lt, 5i64))
            .unwrap();
        assert_eq!(outcome, OptimizeOutcome::PrunedEmpty);
        assert!(hits.is_empty());
    }

    #[test]
    fn pruning_respects_type_ranges() {
        let s = store_with_items(10);
        let opt = Optimizer::new(&s, "Item", vec![]);
        let (hits, outcome) = opt
            .execute(&s, &Formula::cmp("rating", CmpOp::Gt, 10i64))
            .unwrap();
        assert_eq!(outcome, OptimizeOutcome::PrunedEmpty);
        assert!(hits.is_empty());
    }

    #[test]
    fn key_lookup_path() {
        let s = store_with_items(50);
        let opt = Optimizer::new(&s, "Item", vec![]);
        let (hits, outcome) = opt
            .execute(&s, &Formula::cmp("isbn", CmpOp::Eq, "isbn-7"))
            .unwrap();
        assert_eq!(outcome, OptimizeOutcome::KeyLookup);
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn key_lookup_respects_extra_conjuncts() {
        let s = store_with_items(50);
        let opt = Optimizer::new(&s, "Item", vec![]);
        let pred = Formula::cmp("isbn", CmpOp::Eq, "isbn-7").and(Formula::cmp(
            "libprice",
            CmpOp::Gt,
            1000.0,
        ));
        let (hits, outcome) = opt.execute(&s, &pred).unwrap();
        assert_eq!(outcome, OptimizeOutcome::KeyLookup);
        assert!(hits.is_empty(), "extra conjunct filters the probe");
    }

    #[test]
    fn range_predicate_uses_index_and_matches_scan() {
        let s = store_with_items(30);
        let opt = Optimizer::new(&s, "Item", vec![]);
        let pred = Formula::cmp("libprice", CmpOp::Ge, 30.0);
        let (hits, outcome) = opt.execute(&s, &pred).unwrap();
        assert_eq!(outcome, OptimizeOutcome::IndexScan);
        let mut scanned = Query::new("Item", pred).scan(&s).unwrap();
        scanned.sort_unstable();
        assert_eq!(hits, scanned);
    }

    #[test]
    fn satisfiable_predicate_not_pruned() {
        let s = store_with_items(10);
        let opt = Optimizer::new(&s, "Item", vec![Formula::cmp("rating", CmpOp::Ge, 5i64)]);
        let (_, outcome) = opt
            .execute(&s, &Formula::cmp("rating", CmpOp::Ge, 7i64))
            .unwrap();
        assert_eq!(outcome, OptimizeOutcome::IndexScan);
    }

    #[test]
    fn residual_predicates_scan_without_index() {
        let s = store_with_items(20);
        let opt = Optimizer::new(&s, "Item", vec![]);
        // A disjunction is not index-satisfiable: scans, same answer.
        let pred =
            Formula::cmp("rating", CmpOp::Le, 2i64).or(Formula::cmp("rating", CmpOp::Ge, 9i64));
        let (hits, outcome) = opt.execute(&s, &pred).unwrap();
        assert_eq!(outcome, OptimizeOutcome::Scanned);
        let mut scanned = Query::new("Item", pred).scan(&s).unwrap();
        scanned.sort_unstable();
        assert_eq!(hits, scanned);
    }

    #[test]
    fn conjunction_intersects_postings_and_keeps_residuals() {
        let s = store_with_items(60);
        let opt = Optimizer::new(&s, "Item", vec![]);
        // rating = 3 (hash) ∧ libprice <= 40 (sorted) ∧ isbn <> 'isbn-2'
        // (residual).
        let pred = Formula::cmp("rating", CmpOp::Eq, 3i64)
            .and(Formula::cmp("libprice", CmpOp::Le, 40.0))
            .and(Formula::cmp("isbn", CmpOp::Ne, "isbn-2"));
        let plan = opt.plan(&pred);
        assert_eq!(plan.counts(), (2, 0, 1));
        let (hits, outcome) = opt.execute(&s, &pred).unwrap();
        assert_eq!(outcome, OptimizeOutcome::IndexScan);
        let mut scanned = Query::new("Item", pred).scan(&s).unwrap();
        scanned.sort_unstable();
        assert_eq!(hits, scanned);
    }

    #[test]
    fn implied_true_conjunct_dropped_with_same_answer() {
        let s = store_with_items(40);
        let constraint = Formula::cmp("rating", CmpOp::Ge, 1i64);
        let opt = Optimizer::new(&s, "Item", vec![constraint]);
        let pred =
            Formula::cmp("rating", CmpOp::Eq, 4i64).and(Formula::cmp("rating", CmpOp::Ge, 1i64));
        let plan = opt.plan(&pred);
        assert_eq!(plan.counts(), (1, 1, 0), "implied conjunct dropped");
        let (hits, outcome) = opt.execute(&s, &pred).unwrap();
        assert_eq!(outcome, OptimizeOutcome::IndexScan);
        let mut scanned = Query::new("Item", pred).scan(&s).unwrap();
        scanned.sort_unstable();
        assert_eq!(hits, scanned);
    }

    #[test]
    fn empty_in_set_short_circuits_to_empty() {
        let s = store_with_items(10);
        let opt = Optimizer::new(&s, "Item", vec![]);
        let pred = Formula::In(Expr::attr("isbn"), std::collections::BTreeSet::new());
        let (hits, outcome) = opt.execute(&s, &pred).unwrap();
        // The solver already refutes an empty membership set.
        assert!(hits.is_empty());
        assert_eq!(outcome, OptimizeOutcome::PrunedEmpty);
    }

    #[test]
    fn stale_secondary_index_never_served() {
        let mut s = store_with_items(10);
        let opt = Optimizer::new(&s, "Item", vec![]);
        let pred = Formula::cmp("rating", CmpOp::Eq, 1i64);
        let (hits_before, _) = opt.execute(&s, &pred).unwrap();
        let (v0, n0) = s.secondary_cache_stats();
        assert!(n0 > 0, "index cached after first planned query");
        // Mutate: every rating-1 item switches to rating 2.
        for id in hits_before.clone() {
            s.update(id, "rating", Value::int(2)).unwrap();
        }
        let (hits_after, _) = opt.execute(&s, &pred).unwrap();
        assert!(hits_after.is_empty(), "stale postings must not be read");
        let (v1, _) = s.secondary_cache_stats();
        assert!(v1 > v0, "cache rebuilt at the new store version");
    }
}
