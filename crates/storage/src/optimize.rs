//! Constraint-based query optimisation.
//!
//! The paper's first motivating use-case (§1): "Global integrity
//! constraints thus obtained could for example be used in optimising
//! queries against the integrated view, eliminating subqueries which are
//! known to yield empty results." The [`Optimizer`] holds the (derived)
//! constraints known to hold for a class and, before scanning, checks
//! whether `pred ∧ constraints` is unsatisfiable — if so the answer is
//! empty without touching a single object. A key-equality fast path uses
//! the store's key index instead of scanning.

use interop_constraint::solve::{is_satisfiable, TypeEnv};
use interop_constraint::{CmpOp, Expr, Formula, Path};
use interop_model::{ClassName, ModelError, ObjectId, Value};

use crate::query::Query;
use crate::store::Store;

/// How a query was answered.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum OptimizeOutcome {
    /// The predicate contradicts known constraints: empty without a scan.
    PrunedEmpty,
    /// Answered via the key index (at most one candidate probed).
    KeyLookup,
    /// Full extension scan.
    Scanned,
}

/// A per-class query optimiser armed with known-valid constraints.
#[derive(Clone, Debug)]
pub struct Optimizer {
    class: ClassName,
    /// Constraints known to hold for every object of the class (locally
    /// enforced ones, or global constraints derived by `interop-core`).
    constraints: Vec<Formula>,
    env: TypeEnv,
}

impl Optimizer {
    /// Creates an optimiser for `class`, deriving the type environment
    /// from the store's schema.
    pub fn new(store: &Store, class: impl Into<ClassName>, constraints: Vec<Formula>) -> Self {
        let class = class.into();
        let env = TypeEnv::for_class(&store.db().schema, &class);
        Optimizer {
            class,
            constraints,
            env,
        }
    }

    /// The constraints in use.
    pub fn constraints(&self) -> &[Formula] {
        &self.constraints
    }

    /// Answers `pred` over the class, using constraint pruning and the
    /// key index before falling back to a scan.
    pub fn execute(
        &self,
        store: &Store,
        pred: &Formula,
    ) -> Result<(Vec<ObjectId>, OptimizeOutcome), ModelError> {
        // 1. Pruning: pred ∧ known constraints unsatisfiable ⇒ empty.
        let mut conj = pred.clone();
        for c in &self.constraints {
            conj = conj.and(c.clone());
        }
        if !is_satisfiable(&conj, &self.env) {
            return Ok((Vec::new(), OptimizeOutcome::PrunedEmpty));
        }
        // 2. Key fast path: `key = const` predicates probe the index.
        if let Some(key_attrs) = store.key_attrs(&self.class) {
            if key_attrs.len() == 1 {
                if let Some(v) = key_eq_value(pred, &Path::attr(key_attrs[0].clone())) {
                    let mut out = Vec::new();
                    if let Some(id) = store.lookup_key(&self.class, &[v]) {
                        // The index spans the keyed ancestor's extension;
                        // re-check class membership and the full predicate.
                        let obj = store.db().object_req(id)?;
                        let in_class = store.db().schema.is_subclass(&obj.class, &self.class);
                        if in_class
                            && interop_constraint::eval::eval_formula(store.db(), obj, pred)?
                                == interop_constraint::eval::Truth::True
                        {
                            out.push(id);
                        }
                    }
                    return Ok((out, OptimizeOutcome::KeyLookup));
                }
            }
        }
        // 3. Scan.
        let hits = Query::new(self.class.clone(), pred.clone()).scan(store)?;
        Ok((hits, OptimizeOutcome::Scanned))
    }
}

/// If `pred` is (a conjunction containing) `key = const`, returns the
/// constant.
fn key_eq_value(pred: &Formula, key: &Path) -> Option<Value> {
    match pred {
        Formula::Cmp(Expr::Attr(p), CmpOp::Eq, Expr::Const(v)) if p == key => Some(v.clone()),
        Formula::Cmp(Expr::Const(v), CmpOp::Eq, Expr::Attr(p)) if p == key => Some(v.clone()),
        Formula::And(fs) => fs.iter().find_map(|f| key_eq_value(f, key)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use interop_constraint::{Catalog, ClassConstraint, ConstraintId};
    use interop_model::{ClassDef, Database, DbName, Schema, Type};

    fn store_with_items(n: i64) -> Store {
        let schema = Schema::new(
            "B",
            vec![ClassDef::new("Item")
                .attr("isbn", Type::Str)
                .attr("libprice", Type::Real)
                .attr("rating", Type::Range(1, 10))],
        )
        .unwrap();
        let mut cat = Catalog::new();
        cat.add_class(ClassConstraint::key(
            ConstraintId::new(&DbName::new("B"), &ClassName::new("Item"), "cc1"),
            "Item",
            vec!["isbn"],
        ));
        let mut s = Store::new(Database::new(schema, 1), cat);
        for i in 0..n {
            s.create(
                "Item",
                vec![
                    ("isbn", Value::str(format!("isbn-{i}"))),
                    ("libprice", Value::real(10.0 + i as f64)),
                    ("rating", Value::int(1 + (i % 10))),
                ],
            )
            .unwrap();
        }
        s
    }

    #[test]
    fn pruning_detects_contradiction_with_constraints() {
        let s = store_with_items(100);
        // Derived global constraint: rating >= 5 (say, from integration).
        let opt = Optimizer::new(&s, "Item", vec![Formula::cmp("rating", CmpOp::Ge, 5i64)]);
        let (hits, outcome) = opt
            .execute(&s, &Formula::cmp("rating", CmpOp::Lt, 5i64))
            .unwrap();
        assert_eq!(outcome, OptimizeOutcome::PrunedEmpty);
        assert!(hits.is_empty());
    }

    #[test]
    fn pruning_respects_type_ranges() {
        let s = store_with_items(10);
        let opt = Optimizer::new(&s, "Item", vec![]);
        let (hits, outcome) = opt
            .execute(&s, &Formula::cmp("rating", CmpOp::Gt, 10i64))
            .unwrap();
        assert_eq!(outcome, OptimizeOutcome::PrunedEmpty);
        assert!(hits.is_empty());
    }

    #[test]
    fn key_lookup_path() {
        let s = store_with_items(50);
        let opt = Optimizer::new(&s, "Item", vec![]);
        let (hits, outcome) = opt
            .execute(&s, &Formula::cmp("isbn", CmpOp::Eq, "isbn-7"))
            .unwrap();
        assert_eq!(outcome, OptimizeOutcome::KeyLookup);
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn key_lookup_respects_extra_conjuncts() {
        let s = store_with_items(50);
        let opt = Optimizer::new(&s, "Item", vec![]);
        let pred = Formula::cmp("isbn", CmpOp::Eq, "isbn-7").and(Formula::cmp(
            "libprice",
            CmpOp::Gt,
            1000.0,
        ));
        let (hits, outcome) = opt.execute(&s, &pred).unwrap();
        assert_eq!(outcome, OptimizeOutcome::KeyLookup);
        assert!(hits.is_empty(), "extra conjunct filters the probe");
    }

    #[test]
    fn fallback_scan_matches_query() {
        let s = store_with_items(30);
        let opt = Optimizer::new(&s, "Item", vec![]);
        let pred = Formula::cmp("libprice", CmpOp::Ge, 30.0);
        let (hits, outcome) = opt.execute(&s, &pred).unwrap();
        assert_eq!(outcome, OptimizeOutcome::Scanned);
        assert_eq!(hits.len(), Query::new("Item", pred).scan(&s).unwrap().len());
    }

    #[test]
    fn satisfiable_predicate_not_pruned() {
        let s = store_with_items(10);
        let opt = Optimizer::new(&s, "Item", vec![Formula::cmp("rating", CmpOp::Ge, 5i64)]);
        let (_, outcome) = opt
            .execute(&s, &Formula::cmp("rating", CmpOp::Ge, 7i64))
            .unwrap();
        assert_eq!(outcome, OptimizeOutcome::Scanned);
    }
}
