//! Constraint-based query optimisation, the costed executor, and the
//! `EXPLAIN` surface.
//!
//! The paper's first motivating use-case (§1): "Global integrity
//! constraints thus obtained could for example be used in optimising
//! queries against the integrated view, eliminating subqueries which are
//! known to yield empty results." The [`Optimizer`] holds the (derived)
//! constraints known to hold for a class and answers a predicate in
//! stages:
//!
//! 1. **Pruning** — `pred ∧ constraints` unsatisfiable ⇒ empty without
//!    touching an object ([`OptimizeOutcome::PrunedEmpty`]).
//! 2. **Key fast path** — `key = const` probes the unique key index.
//! 3. **Costed execution** — the predicate is compiled by
//!    [`crate::plan::build_costed_plan`]: per-`(class, attr)` statistics
//!    estimate every index atom, the kept atoms resolve to sorted posting
//!    lists (lazy per-class secondary indexes: hash for equality, sorted
//!    for ranges) intersected **in plan order, cheapest first**,
//!    implied-true conjuncts are dropped, and residual conjuncts
//!    (including atoms demoted for poor selectivity) are evaluated per
//!    surviving candidate.
//! 4. **Scan** — when no atom is worth intersecting, the extension is
//!    scanned with the residual conjuncts.
//!
//! Every decision is observable: [`Optimizer::explain`] returns an
//! [`Explain`] whose `Display` rendering is stable and snapshot-tested
//! (`tests/explain_snapshot.rs`).

use std::fmt;

use interop_constraint::eval::{eval_formula, Truth};
use interop_constraint::solve::{is_satisfiable, TypeEnv};
use interop_constraint::{CmpOp, Expr, Formula, Path};
use interop_model::{intersect_sorted, AttrName, ClassName, ModelError, ObjectId, Value};

use crate::plan::{
    build_costed_plan, build_plan, CostedPlan, CostedRole, IndexAtom, ProbeStep, QueryPlan, Step,
};
use crate::store::Store;

/// How a query was answered.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum OptimizeOutcome {
    /// The predicate contradicts known constraints: empty without a scan.
    PrunedEmpty,
    /// Answered via the key index (at most one candidate probed).
    KeyLookup,
    /// Answered by intersecting secondary-index posting lists (residual
    /// conjuncts evaluated on the surviving candidates only).
    IndexScan,
    /// Full extension scan (with implied-true conjuncts dropped).
    Scanned,
}

/// A per-class query optimiser armed with known-valid constraints.
#[derive(Clone, Debug)]
pub struct Optimizer {
    class: ClassName,
    /// Constraints known to hold for every object of the class (locally
    /// enforced ones, or global constraints derived by `interop-core`).
    constraints: Vec<Formula>,
    env: TypeEnv,
}

/// How the optimiser decided to answer a predicate (shared by
/// [`Optimizer::execute`] and [`Optimizer::explain`], so what `EXPLAIN`
/// reports is exactly what execution does).
enum Decision {
    Pruned,
    Key { attr: AttrName, value: Value },
    Costed(CostedPlan),
}

impl Optimizer {
    /// Creates an optimiser for `class`, deriving the type environment
    /// from the store's schema.
    pub fn new(store: &Store, class: impl Into<ClassName>, constraints: Vec<Formula>) -> Self {
        let class = class.into();
        let env = TypeEnv::for_class(&store.db().schema, &class);
        Optimizer {
            class,
            constraints,
            env,
        }
    }

    /// The constraints in use.
    pub fn constraints(&self) -> &[Formula] {
        &self.constraints
    }

    /// Compiles `pred` into a statistics-free [`QueryPlan`] (pure
    /// classification, no store access).
    pub fn plan(&self, pred: &Formula) -> QueryPlan {
        build_plan(&self.class, pred, &self.constraints, &self.env)
    }

    /// Compiles `pred` into a [`CostedPlan`] against the store's
    /// statistics (built lazily on first use).
    pub fn costed_plan(&self, store: &Store, pred: &Formula) -> CostedPlan {
        build_costed_plan(&self.class, pred, &self.constraints, &self.env, store)
    }

    fn decide(&self, store: &Store, pred: &Formula) -> Decision {
        // 1. Pruning: pred ∧ known constraints unsatisfiable ⇒ empty.
        let mut conj = pred.clone();
        for c in &self.constraints {
            conj = conj.and(c.clone());
        }
        if !is_satisfiable(&conj, &self.env) {
            return Decision::Pruned;
        }
        // 2. Key fast path: `key = const` predicates probe the index.
        if let Some(key_attrs) = store.key_attrs(&self.class) {
            if key_attrs.len() == 1 {
                if let Some(v) = key_eq_value(pred, &Path::attr(key_attrs[0].clone())) {
                    return Decision::Key {
                        attr: key_attrs[0].clone(),
                        value: v,
                    };
                }
            }
        }
        // 3. Cost-based planning.
        Decision::Costed(self.costed_plan(store, pred))
    }

    /// Answers `pred` over the class, using constraint pruning, the key
    /// index, and costed posting-list execution before falling back to a
    /// scan. Hits are returned in ascending id order.
    pub fn execute(
        &self,
        store: &Store,
        pred: &Formula,
    ) -> Result<(Vec<ObjectId>, OptimizeOutcome), ModelError> {
        match self.decide(store, pred) {
            Decision::Pruned => Ok((Vec::new(), OptimizeOutcome::PrunedEmpty)),
            Decision::Key { value, .. } => {
                let mut out = Vec::new();
                if let Some(id) = store.lookup_key(&self.class, &[value]) {
                    // The index spans the keyed ancestor's extension;
                    // re-check class membership and the full predicate.
                    let obj = store.db().object_req(id)?;
                    let in_class = store.db().schema.is_subclass(&obj.class, &self.class);
                    if in_class && eval_formula(store.db(), obj, pred)? == Truth::True {
                        out.push(id);
                    }
                }
                Ok((out, OptimizeOutcome::KeyLookup))
            }
            Decision::Costed(plan) => execute_costed(store, &plan),
        }
    }

    /// Explains how `pred` would be answered, without answering it: the
    /// chosen strategy, the per-conjunct classification, the plan-time
    /// cardinality estimates, and the intersection order. The rendering
    /// ([`Explain`]'s `Display`) is stable across runs for a given store
    /// state and is pinned by snapshot tests.
    pub fn explain(&self, store: &Store, pred: &Formula) -> Explain {
        let strategy = match self.decide(store, pred) {
            Decision::Pruned => ExplainStrategy::PrunedEmpty,
            Decision::Key { attr, .. } => ExplainStrategy::KeyLookup { attr },
            Decision::Costed(plan) => {
                if plan.uses_index() {
                    ExplainStrategy::IndexScan { plan }
                } else {
                    ExplainStrategy::Scan { plan }
                }
            }
        };
        Explain {
            class: self.class.clone(),
            extension: store.db().extension(&self.class).len(),
            strategy,
        }
    }
}

/// How a predicate would be answered, with the evidence: the paper's
/// derived-constraint pruning and the cost model's decisions made
/// inspectable. Obtained from [`Optimizer::explain`]; render with
/// `Display` for a stable, snapshot-testable plan description.
#[derive(Clone, Debug)]
pub struct Explain {
    /// The queried class.
    pub class: ClassName,
    /// Exact extension size at explain time.
    pub extension: usize,
    /// The chosen strategy with its plan, when one was compiled.
    pub strategy: ExplainStrategy,
}

/// The strategy arm of an [`Explain`].
#[derive(Clone, Debug)]
pub enum ExplainStrategy {
    /// The predicate contradicts the known constraints.
    PrunedEmpty,
    /// A unique-key probe answers the query.
    KeyLookup {
        /// The key attribute probed.
        attr: AttrName,
    },
    /// Posting-list intersection with residual evaluation.
    IndexScan {
        /// The costed plan (at least one atom kept).
        plan: CostedPlan,
    },
    /// Extension scan: no atom was estimated worth intersecting.
    Scan {
        /// The costed plan (every atom demoted or residual).
        plan: CostedPlan,
    },
}

impl Explain {
    /// The costed plan, when the strategy compiled one.
    pub fn plan(&self) -> Option<&CostedPlan> {
        match &self.strategy {
            ExplainStrategy::IndexScan { plan } | ExplainStrategy::Scan { plan } => Some(plan),
            _ => None,
        }
    }

    /// The [`OptimizeOutcome`] execution would report.
    pub fn outcome(&self) -> OptimizeOutcome {
        match &self.strategy {
            ExplainStrategy::PrunedEmpty => OptimizeOutcome::PrunedEmpty,
            ExplainStrategy::KeyLookup { .. } => OptimizeOutcome::KeyLookup,
            ExplainStrategy::IndexScan { .. } => OptimizeOutcome::IndexScan,
            ExplainStrategy::Scan { .. } => OptimizeOutcome::Scanned,
        }
    }
}

fn pct(est: usize, n: usize) -> String {
    if n == 0 {
        "-".to_string()
    } else {
        format!("{:.1}%", est as f64 * 100.0 / n as f64)
    }
}

impl fmt::Display for Explain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "class {} (extension {})", self.class, self.extension)?;
        match &self.strategy {
            ExplainStrategy::PrunedEmpty => {
                writeln!(
                    f,
                    "strategy: pruned-empty (predicate contradicts known constraints)"
                )
            }
            ExplainStrategy::KeyLookup { attr } => {
                writeln!(f, "strategy: key-lookup ({attr})")
            }
            ExplainStrategy::IndexScan { plan } => {
                match plan.est_rows() {
                    Some(est) => writeln!(f, "strategy: index-scan (est. {est} rows)")?,
                    None => writeln!(f, "strategy: index-scan")?,
                }
                render_conjuncts(f, plan)
            }
            ExplainStrategy::Scan { plan } => {
                writeln!(f, "strategy: scan")?;
                render_conjuncts(f, plan)
            }
        }
    }
}

/// The execution-order slot of the composite probe at conjunct `at` —
/// for the `covered` rendering, which points back at its carrier.
fn composite_order(plan: &CostedPlan, at: usize) -> usize {
    match &plan.conjuncts[at].role {
        CostedRole::Composite { order, .. } => *order,
        other => unreachable!("covered conjunct points at a composite, found {other:?}"),
    }
}

fn render_conjuncts(f: &mut fmt::Formatter<'_>, plan: &CostedPlan) -> fmt::Result {
    let n = plan.extension;
    for c in &plan.conjuncts {
        match &c.role {
            CostedRole::Index { est, order, .. } => writeln!(
                f,
                "  isect[{order}]  {}  est {est} rows ({})",
                c.formula,
                pct(*est, n)
            )?,
            CostedRole::Composite {
                probe,
                est,
                order,
                replaced,
                covers,
            } => {
                let (a, b) = probe.attr_pair();
                writeln!(
                    f,
                    "  composite[{order}]({a}, {b})  {} and {}  est {est} rows ({}) — replaces isect est {} ∩ {}",
                    c.formula,
                    plan.conjuncts[*covers].formula,
                    pct(*est, n),
                    replaced.0,
                    replaced.1
                )?;
            }
            CostedRole::CoveredByComposite { by } => writeln!(
                f,
                "  covered   {}  (answered by composite[{}])",
                c.formula,
                composite_order(plan, *by)
            )?,
            CostedRole::Demoted { est, .. } => writeln!(
                f,
                "  demoted   {}  est {est} rows ({}) — poor selectivity",
                c.formula,
                pct(*est, n)
            )?,
            CostedRole::Residual { hint: Some(h) } => writeln!(
                f,
                "  residual  {}  (domain prior {:.1}%)",
                c.formula,
                h * 100.0
            )?,
            CostedRole::Residual { hint: None } => writeln!(f, "  residual  {}", c.formula)?,
            CostedRole::ImpliedTrue => writeln!(
                f,
                "  implied   {}  (entailed by constraints; dropped)",
                c.formula
            )?,
        }
    }
    Ok(())
}

/// Executes a costed plan: resolves the probes — kept index atoms and
/// admitted composite pair lookups — to sorted posting lists **in plan
/// order** (cheapest estimate first), intersects them batch-wise with
/// early exit, and evaluates residual conjuncts — including demoted
/// atoms — on the surviving candidates. With no probe the class
/// extension is scanned instead. Hits are in ascending id order.
pub fn execute_costed(
    store: &Store,
    plan: &CostedPlan,
) -> Result<(Vec<ObjectId>, OptimizeOutcome), ModelError> {
    let steps = plan.probe_steps();
    let residuals = plan.residuals();
    if steps.is_empty() {
        let mut hits = Vec::new();
        let mut ids = store.db().extension(&plan.class);
        ids.sort_unstable();
        for id in ids {
            let obj = store.db().object_req(id)?;
            if passes(store, obj, &residuals)? {
                hits.push(id);
            }
        }
        return Ok((hits, OptimizeOutcome::Scanned));
    }
    let mut candidates: Option<Vec<ObjectId>> = None;
    for step in steps {
        if candidates.as_ref().is_some_and(Vec::is_empty) {
            break;
        }
        let postings = match step {
            ProbeStep::Atom { atom, .. } => resolve_atom(store, &plan.class, atom),
            ProbeStep::Composite { probe, .. } => {
                let (a, b) = probe.attr_pair();
                let (ka, kb) = probe.key_pair();
                store
                    .composite_index(&plan.class, a, b)
                    .postings(ka, kb)
                    .to_vec()
            }
        };
        candidates = Some(match candidates {
            None => postings,
            Some(cur) => intersect_sorted(&cur, &postings),
        });
    }
    let mut hits = Vec::new();
    for id in candidates.unwrap_or_default() {
        let obj = store.db().object_req(id)?;
        if passes(store, obj, &residuals)? {
            hits.push(id);
        }
    }
    Ok((hits, OptimizeOutcome::IndexScan))
}

/// Executes a statistics-free compiled plan: resolves index atoms to
/// sorted posting lists, intersects them (smallest actual size first),
/// and evaluates residual conjuncts on the surviving candidates. With no
/// index atom the class extension is scanned instead. Hits are in
/// ascending id order. Kept alongside [`execute_costed`] as the
/// plan-introspection executor for [`QueryPlan`]s.
pub fn execute_plan(
    store: &Store,
    plan: &QueryPlan,
) -> Result<(Vec<ObjectId>, OptimizeOutcome), ModelError> {
    let mut postings: Vec<Vec<ObjectId>> = Vec::new();
    let mut residuals: Vec<&Formula> = Vec::new();
    for step in &plan.steps {
        match step {
            Step::Index(atom) => postings.push(resolve_atom(store, &plan.class, atom)),
            Step::ImpliedTrue(_) => {}
            Step::Residual(f) => residuals.push(f),
        }
    }
    if postings.is_empty() {
        // Scan with the residual conjuncts (implied-true ones already
        // dropped; with no index steps they can only be path-free).
        let mut hits = Vec::new();
        let mut ids = store.db().extension(&plan.class);
        ids.sort_unstable();
        for id in ids {
            let obj = store.db().object_req(id)?;
            if passes(store, obj, &residuals)? {
                hits.push(id);
            }
        }
        return Ok((hits, OptimizeOutcome::Scanned));
    }
    // Batch intersection of sorted posting lists, smallest first.
    postings.sort_unstable_by_key(Vec::len);
    let mut candidates = postings.remove(0);
    for list in &postings {
        if candidates.is_empty() {
            break;
        }
        candidates = intersect_sorted(&candidates, list);
    }
    let mut hits = Vec::new();
    for id in candidates {
        let obj = store.db().object_req(id)?;
        if passes(store, obj, &residuals)? {
            hits.push(id);
        }
    }
    Ok((hits, OptimizeOutcome::IndexScan))
}

fn passes(
    store: &Store,
    obj: &interop_model::Object,
    residuals: &[&Formula],
) -> Result<bool, ModelError> {
    for f in residuals {
        if eval_formula(store.db(), obj, f)? != Truth::True {
            return Ok(false);
        }
    }
    Ok(true)
}

/// Resolves one index atom to a sorted posting list against the store's
/// lazy secondary indexes.
fn resolve_atom(store: &Store, class: &ClassName, atom: &IndexAtom) -> Vec<ObjectId> {
    match atom {
        IndexAtom::Eq { attr, key } => store.hash_index(class, attr).postings(key).to_vec(),
        IndexAtom::In { attr, keys } => {
            let idx = store.hash_index(class, attr);
            // Canonical keys are distinct, so posting lists are disjoint:
            // concatenating and sorting yields a duplicate-free union.
            let mut out: Vec<ObjectId> = keys
                .iter()
                .flat_map(|k| idx.postings(k).iter().copied())
                .collect();
            out.sort_unstable();
            out
        }
        IndexAtom::Range { attr, lo, hi } => store.sorted_index(class, attr).range_ids(*lo, *hi),
    }
}

/// If `pred` is (a conjunction containing) `key = const`, returns the
/// constant.
fn key_eq_value(pred: &Formula, key: &Path) -> Option<Value> {
    match pred {
        Formula::Cmp(Expr::Attr(p), CmpOp::Eq, Expr::Const(v)) if p == key => Some(v.clone()),
        Formula::Cmp(Expr::Const(v), CmpOp::Eq, Expr::Attr(p)) if p == key => Some(v.clone()),
        Formula::And(fs) => fs.iter().find_map(|f| key_eq_value(f, key)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::Query;
    use interop_constraint::{Catalog, ClassConstraint, ConstraintId};
    use interop_model::{ClassDef, Database, DbName, Schema, Type};

    fn store_with_items(n: i64) -> Store {
        let schema = Schema::new(
            "B",
            vec![ClassDef::new("Item")
                .attr("isbn", Type::Str)
                .attr("libprice", Type::Real)
                .attr("rating", Type::Range(1, 10))],
        )
        .unwrap();
        let mut cat = Catalog::new();
        cat.add_class(ClassConstraint::key(
            ConstraintId::new(&DbName::new("B"), &ClassName::new("Item"), "cc1"),
            "Item",
            vec!["isbn"],
        ));
        let mut s = Store::new(Database::new(schema, 1), cat);
        for i in 0..n {
            s.create(
                "Item",
                vec![
                    ("isbn", Value::str(format!("isbn-{i}"))),
                    ("libprice", Value::real(10.0 + i as f64)),
                    ("rating", Value::int(1 + (i % 10))),
                ],
            )
            .unwrap();
        }
        s
    }

    #[test]
    fn pruning_detects_contradiction_with_constraints() {
        let s = store_with_items(100);
        // Derived global constraint: rating >= 5 (say, from integration).
        let opt = Optimizer::new(&s, "Item", vec![Formula::cmp("rating", CmpOp::Ge, 5i64)]);
        let (hits, outcome) = opt
            .execute(&s, &Formula::cmp("rating", CmpOp::Lt, 5i64))
            .unwrap();
        assert_eq!(outcome, OptimizeOutcome::PrunedEmpty);
        assert!(hits.is_empty());
    }

    #[test]
    fn pruning_respects_type_ranges() {
        let s = store_with_items(10);
        let opt = Optimizer::new(&s, "Item", vec![]);
        let (hits, outcome) = opt
            .execute(&s, &Formula::cmp("rating", CmpOp::Gt, 10i64))
            .unwrap();
        assert_eq!(outcome, OptimizeOutcome::PrunedEmpty);
        assert!(hits.is_empty());
    }

    #[test]
    fn key_lookup_path() {
        let s = store_with_items(50);
        let opt = Optimizer::new(&s, "Item", vec![]);
        let (hits, outcome) = opt
            .execute(&s, &Formula::cmp("isbn", CmpOp::Eq, "isbn-7"))
            .unwrap();
        assert_eq!(outcome, OptimizeOutcome::KeyLookup);
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn key_lookup_respects_extra_conjuncts() {
        let s = store_with_items(50);
        let opt = Optimizer::new(&s, "Item", vec![]);
        let pred = Formula::cmp("isbn", CmpOp::Eq, "isbn-7").and(Formula::cmp(
            "libprice",
            CmpOp::Gt,
            1000.0,
        ));
        let (hits, outcome) = opt.execute(&s, &pred).unwrap();
        assert_eq!(outcome, OptimizeOutcome::KeyLookup);
        assert!(hits.is_empty(), "extra conjunct filters the probe");
    }

    #[test]
    fn range_predicate_uses_index_and_matches_scan() {
        let s = store_with_items(30);
        let opt = Optimizer::new(&s, "Item", vec![]);
        let pred = Formula::cmp("libprice", CmpOp::Ge, 30.0);
        let (hits, outcome) = opt.execute(&s, &pred).unwrap();
        assert_eq!(outcome, OptimizeOutcome::IndexScan);
        let mut scanned = Query::new("Item", pred).scan(&s).unwrap();
        scanned.sort_unstable();
        assert_eq!(hits, scanned);
    }

    #[test]
    fn satisfiable_predicate_not_pruned() {
        let s = store_with_items(10);
        let opt = Optimizer::new(&s, "Item", vec![Formula::cmp("rating", CmpOp::Ge, 5i64)]);
        let (_, outcome) = opt
            .execute(&s, &Formula::cmp("rating", CmpOp::Ge, 7i64))
            .unwrap();
        assert_eq!(outcome, OptimizeOutcome::IndexScan);
    }

    #[test]
    fn residual_predicates_scan_without_index() {
        let s = store_with_items(20);
        let opt = Optimizer::new(&s, "Item", vec![]);
        // A disjunction is not index-satisfiable: scans, same answer.
        let pred =
            Formula::cmp("rating", CmpOp::Le, 2i64).or(Formula::cmp("rating", CmpOp::Ge, 9i64));
        let (hits, outcome) = opt.execute(&s, &pred).unwrap();
        assert_eq!(outcome, OptimizeOutcome::Scanned);
        let mut scanned = Query::new("Item", pred).scan(&s).unwrap();
        scanned.sort_unstable();
        assert_eq!(hits, scanned);
    }

    #[test]
    fn conjunction_intersects_postings_and_keeps_residuals() {
        let s = store_with_items(60);
        let opt = Optimizer::new(&s, "Item", vec![]);
        // rating = 3 (hash) ∧ libprice <= 40 (sorted) ∧ isbn <> 'isbn-2'
        // (residual).
        let pred = Formula::cmp("rating", CmpOp::Eq, 3i64)
            .and(Formula::cmp("libprice", CmpOp::Le, 40.0))
            .and(Formula::cmp("isbn", CmpOp::Ne, "isbn-2"));
        let plan = opt.plan(&pred);
        assert_eq!(plan.counts(), (2, 0, 1));
        let (hits, outcome) = opt.execute(&s, &pred).unwrap();
        assert_eq!(outcome, OptimizeOutcome::IndexScan);
        let mut scanned = Query::new("Item", pred).scan(&s).unwrap();
        scanned.sort_unstable();
        assert_eq!(hits, scanned);
    }

    #[test]
    fn implied_true_conjunct_dropped_with_same_answer() {
        let s = store_with_items(40);
        let constraint = Formula::cmp("rating", CmpOp::Ge, 1i64);
        let opt = Optimizer::new(&s, "Item", vec![constraint]);
        let pred =
            Formula::cmp("rating", CmpOp::Eq, 4i64).and(Formula::cmp("rating", CmpOp::Ge, 1i64));
        let plan = opt.plan(&pred);
        assert_eq!(plan.counts(), (1, 1, 0), "implied conjunct dropped");
        let (hits, outcome) = opt.execute(&s, &pred).unwrap();
        assert_eq!(outcome, OptimizeOutcome::IndexScan);
        let mut scanned = Query::new("Item", pred).scan(&s).unwrap();
        scanned.sort_unstable();
        assert_eq!(hits, scanned);
    }

    #[test]
    fn empty_in_set_short_circuits_to_empty() {
        let s = store_with_items(10);
        let opt = Optimizer::new(&s, "Item", vec![]);
        let pred = Formula::In(Expr::attr("isbn"), std::collections::BTreeSet::new());
        let (hits, outcome) = opt.execute(&s, &pred).unwrap();
        // The solver already refutes an empty membership set.
        assert!(hits.is_empty());
        assert_eq!(outcome, OptimizeOutcome::PrunedEmpty);
    }

    #[test]
    fn poor_selectivity_demotes_to_scan_on_large_extensions() {
        let s = store_with_items(500);
        let opt = Optimizer::new(&s, "Item", vec![]);
        // rating >= 2 matches ~90% of 500 items: intersecting 450
        // postings prunes nothing; the cost model scans instead.
        let pred = Formula::cmp("rating", CmpOp::Ge, 2i64);
        let plan = opt.costed_plan(&s, &pred);
        assert!(!plan.uses_index(), "poor-selectivity atom demoted");
        let (hits, outcome) = opt.execute(&s, &pred).unwrap();
        assert_eq!(outcome, OptimizeOutcome::Scanned);
        let mut scanned = Query::new("Item", pred.clone()).scan(&s).unwrap();
        scanned.sort_unstable();
        assert_eq!(hits, scanned);
        // A selective conjunct flips the same shape back to the index.
        let selective = Formula::cmp("rating", CmpOp::Eq, 3i64);
        let (_, outcome) = opt.execute(&s, &selective).unwrap();
        assert_eq!(outcome, OptimizeOutcome::IndexScan);
    }

    #[test]
    fn intersection_ordered_by_plan_time_estimate() {
        let s = store_with_items(600);
        let opt = Optimizer::new(&s, "Item", vec![]);
        // rating = 3 matches 60 rows; libprice <= 259.5 matches ~250 —
        // the equality must be intersected first.
        let pred =
            Formula::cmp("libprice", CmpOp::Le, 259.5).and(Formula::cmp("rating", CmpOp::Eq, 3i64));
        let plan = opt.costed_plan(&s, &pred);
        let steps = plan.index_steps();
        assert_eq!(steps.len(), 2);
        assert_eq!(steps[0].0.attr().as_str(), "rating");
        assert!(steps[0].1 < steps[1].1);
        let (hits, outcome) = opt.execute(&s, &pred).unwrap();
        assert_eq!(outcome, OptimizeOutcome::IndexScan);
        let mut scanned = Query::new("Item", pred).scan(&s).unwrap();
        scanned.sort_unstable();
        assert_eq!(hits, scanned);
    }

    #[test]
    fn explain_matches_execution_for_every_strategy() {
        let s = store_with_items(200);
        let opt = Optimizer::new(&s, "Item", vec![Formula::cmp("rating", CmpOp::Ge, 1i64)]);
        for pred in [
            Formula::cmp("rating", CmpOp::Gt, 10i64),  // pruned
            Formula::cmp("isbn", CmpOp::Eq, "isbn-7"), // key lookup
            Formula::cmp("rating", CmpOp::Eq, 4i64),   // index scan
            Formula::cmp("rating", CmpOp::Ge, 2i64),   // demoted scan
            Formula::cmp("rating", CmpOp::Le, 2i64).or(Formula::cmp("rating", CmpOp::Ge, 9i64)), // residual scan
        ] {
            let ex = opt.explain(&s, &pred);
            let (_, outcome) = opt.execute(&s, &pred).unwrap();
            assert_eq!(ex.outcome(), outcome, "explain diverged on {pred}");
        }
    }

    #[test]
    fn explain_renders_stable_description() {
        let s = store_with_items(200);
        let opt = Optimizer::new(&s, "Item", vec![Formula::cmp("rating", CmpOp::Ge, 1i64)]);
        let pred = Formula::cmp("rating", CmpOp::Eq, 4i64)
            .and(Formula::cmp("libprice", CmpOp::Le, 19.5))
            .and(Formula::cmp("isbn", CmpOp::Ne, "isbn-3"))
            .and(Formula::cmp("rating", CmpOp::Ge, 1i64));
        let ex = opt.explain(&s, &pred);
        let rendered = ex.to_string();
        assert!(rendered.starts_with("class Item (extension 200)"));
        assert!(rendered.contains("strategy: index-scan"), "{rendered}");
        assert!(rendered.contains("isect[0]"), "{rendered}");
        assert!(rendered.contains("isect[1]"), "{rendered}");
        assert!(rendered.contains("residual"), "{rendered}");
        assert!(
            rendered.contains("implied") && rendered.contains("dropped"),
            "{rendered}"
        );
        // Deterministic: a second explain renders byte-identically.
        assert_eq!(rendered, opt.explain(&s, &pred).to_string());
    }

    #[test]
    fn admitted_composite_executes_identically_to_intersection() {
        use crate::store::CompositePolicy;
        let mut s = store_with_items(100);
        s.set_composite_policy(CompositePolicy {
            admit_after: 1,
            min_gain: 0.0,
            evict_after: u32::MAX,
        });
        let opt = Optimizer::new(&s, "Item", vec![]);
        let pred =
            Formula::cmp("rating", CmpOp::Eq, 3i64).and(Formula::cmp("libprice", CmpOp::Eq, 12.0));
        // First execution intersects two postings and notes the pair.
        let (hits1, o1) = opt.execute(&s, &pred).unwrap();
        assert_eq!(o1, OptimizeOutcome::IndexScan);
        let plan = opt.costed_plan(&s, &pred);
        let probe = plan.composite_probe().expect("pair admitted");
        assert_eq!(probe.attr_pair().0.as_str(), "libprice");
        assert_eq!(probe.attr_pair().1.as_str(), "rating");
        // The composite answer equals the intersection answer and the
        // scan oracle.
        let (hits2, o2) = opt.execute(&s, &pred).unwrap();
        assert_eq!(o2, OptimizeOutcome::IndexScan);
        assert_eq!(hits1, hits2);
        let mut scanned = Query::new("Item", pred.clone()).scan(&s).unwrap();
        scanned.sort_unstable();
        assert_eq!(hits2, scanned);
        assert_eq!(hits2.len(), 1);
        // A mutation re-keys the composite posting; no stale pair served.
        s.update(hits2[0], "rating", Value::int(4)).unwrap();
        let (hits3, _) = opt.execute(&s, &pred).unwrap();
        assert!(hits3.is_empty(), "composite followed the update");
        // EXPLAIN renders the composite and covered lines and reports
        // exactly what execution does.
        let ex = opt.explain(&s, &pred);
        let rendered = ex.to_string();
        assert!(
            rendered.contains("composite[0](libprice, rating)"),
            "{rendered}"
        );
        assert!(rendered.contains("replaces isect est"), "{rendered}");
        assert!(rendered.contains("answered by composite[0]"), "{rendered}");
        assert_eq!(ex.outcome(), OptimizeOutcome::IndexScan);
    }

    #[test]
    fn stale_secondary_index_never_served() {
        let mut s = store_with_items(10);
        let opt = Optimizer::new(&s, "Item", vec![]);
        let pred = Formula::cmp("rating", CmpOp::Eq, 1i64);
        let (hits_before, _) = opt.execute(&s, &pred).unwrap();
        let (v0, n0) = s.secondary_cache_stats();
        assert!(n0 > 0, "index cached after first planned query");
        // Mutate: every rating-1 item switches to rating 2.
        for id in hits_before.clone() {
            s.update(id, "rating", Value::int(2)).unwrap();
        }
        let (hits_after, _) = opt.execute(&s, &pred).unwrap();
        assert!(hits_after.is_empty(), "stale postings must not be read");
        let (v1, _) = s.secondary_cache_stats();
        assert!(v1 > v0, "cache rebuilt at the new store version");
    }
}
