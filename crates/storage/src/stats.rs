//! Per-`(class, attribute)` cardinality statistics backing the planner's
//! cost model.
//!
//! [`AttrStats`] summarises the attribute values of one class *extension*
//! (subclass instances included): the extension size, the number of
//! non-null values, exact per-value frequencies (whose key count is the
//! distinct-count), and a small **equi-depth histogram** over the numeric
//! values for range-selectivity estimates.
//!
//! Statistics are built lazily by the store on first use — in the same
//! pass that would build a secondary index — and from then on maintained
//! **incrementally**: every committed insert/update/remove applies a
//! per-object delta ([`AttrStats::insert`] / [`AttrStats::remove`])
//! instead of discarding the summary. The frequency counts, `total`,
//! `non_null` and per-bucket histogram counts stay *exact* under deltas;
//! only the histogram's bucket *boundaries* are as of build time. When
//! the extension drifts to less than half or more than double its size at
//! build, [`AttrStats::hist_stale`] reports `true` and the store rebuilds
//! the summary on next access, re-balancing the buckets.
//!
//! `storage/tests/prop_invalidation.rs` asserts the maintenance is exact:
//! after random op/txn interleavings, the incrementally maintained stats
//! equal a from-scratch recomputation over the same bucket boundaries.

use std::hash::Hash;
use std::ops::Bound;

use interop_model::fx::FxHashMap;
use interop_model::{Value, R64};

use crate::index::canon_key;

/// A small bounded frequency sketch (Misra–Gries) over hot keys — used
/// by the store to count how often an eligible equality-atom *pair*
/// recurs in planned queries before a composite index is admitted for
/// it. At most `cap` keys are tracked; observing an untracked key while
/// full decays every tracked count by one (dropping zeros) instead of
/// growing, so a handful of genuinely hot pairs survive arbitrary
/// streams of one-off pairs while memory stays O(cap).
///
/// Counts are therefore *lower bounds* on true frequencies — exact
/// until the sketch first fills, never over-counted after. Admission
/// only needs "seen at least N times", so a lower bound is the safe
/// direction: a composite is admitted late, never spuriously.
#[derive(Clone, Debug)]
pub struct PairSketch<K: Eq + Hash + Clone> {
    counts: FxHashMap<K, u32>,
    cap: usize,
}

impl<K: Eq + Hash + Clone> PairSketch<K> {
    /// An empty sketch tracking at most `cap` keys (`cap >= 1`).
    pub fn new(cap: usize) -> Self {
        PairSketch {
            counts: FxHashMap::default(),
            cap: cap.max(1),
        }
    }

    /// Counts one observation of `key`; returns the key's tracked count
    /// after the observation (0 when the sketch was full of other keys
    /// and decayed instead of tracking).
    pub fn observe(&mut self, key: K) -> u32 {
        if let Some(c) = self.counts.get_mut(&key) {
            *c += 1;
            return *c;
        }
        if self.counts.len() < self.cap {
            self.counts.insert(key, 1);
            return 1;
        }
        self.counts.retain(|_, c| {
            *c -= 1;
            *c > 0
        });
        0
    }

    /// The tracked count for `key` (a lower bound on its frequency).
    pub fn count(&self, key: &K) -> u32 {
        self.counts.get(key).copied().unwrap_or(0)
    }

    /// Drops a key's tracked count entirely. Used when an admitted
    /// composite pair is evicted: re-admission must take fresh
    /// qualifying sightings, not coast on the pre-eviction count.
    pub fn forget(&mut self, key: &K) {
        self.counts.remove(key);
    }

    /// Number of currently tracked keys.
    pub fn tracked(&self) -> usize {
        self.counts.len()
    }
}

/// Number of equi-depth buckets per histogram. Small on purpose: the
/// histogram answers "roughly how selective is this range", not point
/// queries (those use the exact frequency map).
pub const HISTOGRAM_BUCKETS: usize = 8;

/// Decrements a counter that must be positive. A zero counter here
/// means a delta-maintenance bug — something is being counted *out*
/// that was never counted *in* — so this refuses loudly under debug
/// assertions (the `release-with-asserts` CI variant included) instead
/// of letting `saturating_sub` silently absorb the bug into skewed
/// estimates. Plain release builds clamp at zero: estimates degrade,
/// counters never wrap.
macro_rules! checked_dec {
    ($counter:expr, $what:expr) => {
        if $counter > 0 {
            $counter -= 1;
        } else {
            debug_assert!(
                false,
                concat!(
                    "stats underflow: ",
                    $what,
                    " decremented at zero (delta-maintenance bug)"
                )
            );
        }
    };
}

/// An equi-depth histogram over the numeric values of one attribute.
///
/// Bucket `i` covers `(edge(i-1), bounds[i]]` where `edge(-1) = lo`;
/// values inserted later that fall below `lo` count into bucket 0 and
/// values above the last bound into the last bucket, so per-bucket counts
/// remain exact for the (fixed) boundaries while the depth balance may
/// drift until a rebuild.
#[derive(Clone, Debug, PartialEq)]
pub struct Histogram {
    /// Lower edge of bucket 0 (the minimum at build time).
    lo: R64,
    /// Ascending upper edges, one per bucket.
    bounds: Vec<R64>,
    /// Exact number of values currently in each bucket.
    counts: Vec<u32>,
}

impl Histogram {
    /// Builds an equi-depth histogram from an **ascending** slice of
    /// numeric values. Returns `None` for an empty slice.
    pub fn build(sorted: &[R64]) -> Option<Self> {
        if sorted.is_empty() {
            return None;
        }
        let n = sorted.len();
        let buckets = HISTOGRAM_BUCKETS.min(n);
        let mut bounds = Vec::with_capacity(buckets);
        for b in 1..=buckets {
            // Upper edge of bucket b-1: the value at its depth quantile.
            bounds.push(sorted[b * n / buckets - 1]);
        }
        // Duplicate-heavy data can repeat edges; dedup keeps bucket
        // assignment (first bucket whose bound admits the value)
        // unambiguous and the bounds strictly ascending.
        bounds.dedup();
        let mut hist = Histogram {
            lo: sorted[0],
            counts: vec![0; bounds.len()],
            bounds,
        };
        for &v in sorted {
            let b = hist.bucket_of(v);
            hist.counts[b] += 1;
        }
        Some(hist)
    }

    /// The bucket a value counts into: the first bucket whose upper edge
    /// admits it, clamped into range so out-of-build-range values stay
    /// countable.
    fn bucket_of(&self, v: R64) -> usize {
        self.bounds
            .partition_point(|b| *b < v)
            .min(self.bounds.len() - 1)
    }

    /// Counts a value in.
    pub fn insert(&mut self, v: R64) {
        let b = self.bucket_of(v);
        self.counts[b] += 1;
    }

    /// Counts a value out.
    pub fn remove(&mut self, v: R64) {
        let b = self.bucket_of(v);
        checked_dec!(self.counts[b], "histogram bucket count");
    }

    /// `(lower edge, upper edges, per-bucket counts)` — exposed for the
    /// stats-consistency property suite.
    pub fn parts(&self) -> (R64, &[R64], &[u32]) {
        (self.lo, &self.bounds, &self.counts)
    }

    /// Estimated number of values in the given range, by linear
    /// interpolation within partially-overlapped buckets. A provably
    /// empty query interval — inverted, or collapsed to a point one of
    /// whose endpoints is excluded — estimates exactly `0.0`, as does a
    /// range touching a point bucket's edge only through an excluded
    /// endpoint (`x < min` over duplicate-heavy minima must not count
    /// the minimum's bucket).
    pub fn est_range(&self, lo: Bound<R64>, hi: Bound<R64>) -> f64 {
        let (q_lo, lo_inc) = match lo {
            Bound::Unbounded => (f64::NEG_INFINITY, true),
            Bound::Included(v) => (v.get(), true),
            Bound::Excluded(v) => (v.get(), false),
        };
        let (q_hi, hi_inc) = match hi {
            Bound::Unbounded => (f64::INFINITY, true),
            Bound::Included(v) => (v.get(), true),
            Bound::Excluded(v) => (v.get(), false),
        };
        if q_lo > q_hi || (q_lo == q_hi && !(lo_inc && hi_inc)) {
            return 0.0;
        }
        let mut est = 0.0;
        let mut lower = self.lo.get();
        for (i, &bound) in self.bounds.iter().enumerate() {
            let count = f64::from(self.counts[i]);
            if count > 0.0 {
                est += count * overlap_fraction(lower, bound.get(), q_lo, q_hi, lo_inc, hi_inc);
            }
            lower = bound.get();
        }
        est
    }
}

/// Fraction of the bucket interval `[b_lo, b_hi]` covered by the query
/// interval `q_lo..q_hi` (endpoint inclusivity per `lo_inc`/`hi_inc`),
/// assuming values are uniform in the bucket. A degenerate (zero-width)
/// bucket — the duplicate-heavy-minimum case, where every value sits at
/// one edge — counts fully iff the query interval actually contains
/// that edge: strictly inside, or at an *inclusive* endpoint. Endpoint
/// exclusivity on non-degenerate buckets is ignored (a single point has
/// zero measure under the uniform assumption).
fn overlap_fraction(b_lo: f64, b_hi: f64, q_lo: f64, q_hi: f64, lo_inc: bool, hi_inc: bool) -> f64 {
    let lo = b_lo.max(q_lo);
    let hi = b_hi.min(q_hi);
    if lo > hi {
        return 0.0;
    }
    let width = b_hi - b_lo;
    if width <= 0.0 {
        // Point bucket at edge `b_hi`: in or out, nothing in between.
        let edge = b_hi;
        let above_lo = q_lo < edge || (q_lo == edge && lo_inc);
        let below_hi = edge < q_hi || (edge == q_hi && hi_inc);
        return if above_lo && below_hi { 1.0 } else { 0.0 };
    }
    ((hi - lo) / width).clamp(0.0, 1.0)
}

/// Cardinality statistics for one `(class, attribute)` over the class
/// extension. See the module docs for the exactness guarantees.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct AttrStats {
    /// Objects in the extension (null-valued ones included).
    total: usize,
    /// Objects whose value is non-null.
    non_null: usize,
    /// Objects whose value is numeric.
    numeric: usize,
    /// Exact frequency per canonical value (`Int(3)`/`Real(3.0)` share a
    /// key, mirroring the hash index). `distinct == counts.len()`.
    counts: FxHashMap<Value, u32>,
    /// Equi-depth histogram over the numeric values; `None` when the
    /// extension had no numeric values at build time.
    hist: Option<Histogram>,
    /// Extension size when the histogram was (re)built — the drift
    /// reference for [`AttrStats::hist_stale`].
    built_total: usize,
}

impl AttrStats {
    /// Builds statistics from the attribute values of an extension.
    pub fn build<'a, I: IntoIterator<Item = &'a Value>>(values: I) -> Self {
        let mut s = AttrStats::default();
        let mut numerics: Vec<R64> = Vec::new();
        for v in values {
            s.total += 1;
            if let Some(key) = canon_key(v) {
                s.non_null += 1;
                *s.counts.entry(key).or_insert(0) += 1;
            }
            if let Some(n) = v.as_num() {
                s.numeric += 1;
                numerics.push(n);
            }
        }
        numerics.sort_unstable();
        s.hist = Histogram::build(&numerics);
        s.built_total = s.total;
        s
    }

    /// Rebuilds from the same values but **reusing `like`'s histogram
    /// boundaries** — the scratch recomputation the consistency property
    /// suite compares incremental maintenance against.
    pub fn rebuild_like<'a, I: IntoIterator<Item = &'a Value>>(
        like: &AttrStats,
        values: I,
    ) -> Self {
        let mut s = AttrStats {
            hist: like.hist.clone().map(|mut h| {
                h.counts.iter_mut().for_each(|c| *c = 0);
                h
            }),
            built_total: like.built_total,
            ..AttrStats::default()
        };
        for v in values {
            s.total += 1;
            if let Some(key) = canon_key(v) {
                s.non_null += 1;
                *s.counts.entry(key).or_insert(0) += 1;
            }
            if let Some(n) = v.as_num() {
                s.numeric += 1;
                if let Some(h) = &mut s.hist {
                    h.insert(n);
                }
            }
        }
        s
    }

    /// Extension size.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Objects with a non-null value.
    pub fn non_null(&self) -> usize {
        self.non_null
    }

    /// Objects with a numeric value.
    pub fn numeric(&self) -> usize {
        self.numeric
    }

    /// Number of distinct (canonical) non-null values.
    pub fn distinct(&self) -> usize {
        self.counts.len()
    }

    /// The numeric histogram, if any values were numeric at build time.
    pub fn histogram(&self) -> Option<&Histogram> {
        self.hist.as_ref()
    }

    /// Counts one object's value in (a committed insert).
    pub fn insert(&mut self, v: &Value) {
        self.total += 1;
        if let Some(key) = canon_key(v) {
            self.non_null += 1;
            *self.counts.entry(key).or_insert(0) += 1;
        }
        if let Some(n) = v.as_num() {
            self.numeric += 1;
            if let Some(h) = &mut self.hist {
                h.insert(n);
            }
        }
    }

    /// Counts one object's value out (a committed remove).
    pub fn remove(&mut self, v: &Value) {
        checked_dec!(self.total, "extension total");
        if let Some(key) = canon_key(v) {
            checked_dec!(self.non_null, "non-null count");
            match self.counts.get_mut(&key) {
                Some(c) if *c > 1 => *c -= 1,
                Some(_) => {
                    self.counts.remove(&key);
                }
                None => debug_assert!(
                    false,
                    "stats underflow: frequency of an uncounted value \
                     decremented (delta-maintenance bug)"
                ),
            }
        }
        if let Some(n) = v.as_num() {
            checked_dec!(self.numeric, "numeric count");
            if let Some(h) = &mut self.hist {
                h.remove(n);
            }
        }
    }

    /// Applies a committed single-attribute update (extension size is
    /// unchanged; the value flips from `old` to `new`).
    pub fn update(&mut self, old: &Value, new: &Value) {
        self.remove(old);
        self.insert(new);
    }

    /// True when the summary should be rebuilt before serving estimates:
    /// numeric values appeared after a numeric-free build (no histogram
    /// to route them into), or the extension drifted to less than half /
    /// more than double its build-time size (equi-depth balance lost).
    /// The small slack keeps tiny extensions from rebuilding every op.
    pub fn hist_stale(&self) -> bool {
        (self.hist.is_none() && self.numeric > 0)
            || self.total > 2 * self.built_total + 8
            || 2 * self.total + 8 < self.built_total
    }

    /// Estimated rows matching `attr = key` — exact, from the frequency
    /// map (`key` must already be canonical, as produced by the planner).
    pub fn est_eq(&self, key: &Value) -> usize {
        self.counts.get(key).copied().unwrap_or(0) as usize
    }

    /// Estimated rows matching `attr in keys` — exact sum of frequencies
    /// (canonical keys are distinct, so the posting lists are disjoint).
    pub fn est_in(&self, keys: &[Value]) -> usize {
        keys.iter().map(|k| self.est_eq(k)).sum()
    }

    /// Estimated rows matching a numeric range, from the histogram
    /// (rounded; at least 1 when the histogram reports any overlap, so a
    /// nonempty answer is never estimated at zero cost).
    pub fn est_range(&self, lo: Bound<R64>, hi: Bound<R64>) -> usize {
        match &self.hist {
            None => 0,
            Some(h) => {
                let est = h.est_range(lo, hi);
                if est > 0.0 {
                    (est.round() as usize).max(1).min(self.numeric)
                } else {
                    0
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vals(xs: &[i64]) -> Vec<Value> {
        xs.iter().map(|&x| Value::int(x)).collect()
    }

    #[test]
    fn build_counts_total_nonnull_distinct() {
        let mut vs = vals(&[1, 1, 2, 3]);
        vs.push(Value::Null);
        vs.push(Value::str("x"));
        let s = AttrStats::build(vs.iter());
        assert_eq!(s.total(), 6);
        assert_eq!(s.non_null(), 5);
        assert_eq!(s.numeric(), 4);
        assert_eq!(s.distinct(), 4, "1, 2, 3, \"x\"");
        assert_eq!(s.est_eq(&Value::real(1.0)), 2, "canonical numeric key");
    }

    #[test]
    fn deltas_match_scratch_rebuild() {
        let base = vals(&[5, 9, 9, 2, 7, 7, 7]);
        let mut s = AttrStats::build(base.iter());
        s.insert(&Value::int(4));
        s.insert(&Value::Null);
        s.remove(&Value::int(9));
        s.update(&Value::int(2), &Value::str("two"));
        let now: Vec<Value> = vals(&[5, 9, 7, 7, 7, 4])
            .into_iter()
            .chain([Value::Null, Value::str("two")])
            .collect();
        let scratch = AttrStats::rebuild_like(&s, now.iter());
        assert_eq!(s, scratch);
    }

    #[test]
    fn histogram_est_range_brackets_truth() {
        let xs: Vec<Value> = (0..100).map(Value::int).collect();
        let s = AttrStats::build(xs.iter());
        use Bound::*;
        let est = s.est_range(Included(R64::new(0.0)), Included(R64::new(99.0)));
        assert_eq!(est, 100, "full range is exact");
        let est = s.est_range(Included(R64::new(90.0)), Unbounded);
        assert!((5..=20).contains(&est), "tail estimate near 10, got {est}");
        assert_eq!(s.est_range(Included(R64::new(500.0)), Unbounded), 0);
        assert_eq!(
            s.est_range(Included(R64::new(10.0)), Included(R64::new(5.0))),
            0,
            "inverted range"
        );
    }

    #[test]
    fn histogram_none_without_numerics_then_stale() {
        let vs = [Value::str("a"), Value::str("b")];
        let mut s = AttrStats::build(vs.iter());
        assert!(s.histogram().is_none());
        assert!(!s.hist_stale());
        s.insert(&Value::int(3));
        assert!(s.hist_stale(), "numeric arrived with no histogram");
    }

    #[test]
    fn drift_marks_stale() {
        let vs = vals(&(0..32).collect::<Vec<_>>());
        let mut s = AttrStats::build(vs.iter());
        assert!(!s.hist_stale());
        for i in 0..100 {
            s.insert(&Value::int(i));
        }
        assert!(s.hist_stale(), "doubled since build");
    }

    #[test]
    fn est_in_sums_disjoint_keys() {
        let s = AttrStats::build(vals(&[1, 1, 2, 2, 2, 3]).iter());
        let keys = [Value::real(1.0), Value::real(2.0)];
        assert_eq!(s.est_in(&keys), 5);
    }

    #[test]
    fn pair_sketch_counts_exactly_until_full() {
        let mut s = PairSketch::new(2);
        assert_eq!(s.observe("a"), 1);
        assert_eq!(s.observe("a"), 2);
        assert_eq!(s.observe("b"), 1);
        assert_eq!(s.count(&"a"), 2);
        assert_eq!(s.tracked(), 2);
    }

    #[test]
    fn pair_sketch_decays_instead_of_growing() {
        let mut s = PairSketch::new(2);
        s.observe("hot");
        s.observe("hot");
        s.observe("hot");
        s.observe("warm");
        // Sketch full: a new key decays everyone by one; "warm" drops out.
        assert_eq!(s.observe("cold"), 0);
        assert_eq!(s.count(&"hot"), 2, "hot key survives the decay");
        assert_eq!(s.count(&"warm"), 0);
        assert_eq!(s.count(&"cold"), 0, "one-off key never tracked");
        assert_eq!(s.tracked(), 1);
        // Counts are lower bounds: "hot" was seen 3 times, tracked at 2.
        assert_eq!(s.observe("hot"), 3);
    }

    #[test]
    fn provably_empty_ranges_estimate_zero() {
        use Bound::*;
        // Duplicate-heavy minimum: bucket 0 degenerates to the point
        // [1, 1] holding four values.
        let s = AttrStats::build(vals(&[1, 1, 1, 1, 2, 3]).iter());
        assert_eq!(
            s.est_range(Unbounded, Excluded(R64::new(1.0))),
            0,
            "x < min is provably empty"
        );
        assert_eq!(
            s.est_range(Unbounded, Included(R64::new(1.0))),
            4,
            "x <= min still counts the point bucket"
        );
        // All-equal extension: the whole histogram is one point bucket.
        let s = AttrStats::build(vals(&[3, 3, 3]).iter());
        assert_eq!(s.est_range(Excluded(R64::new(3.0)), Unbounded), 0);
        assert_eq!(s.est_range(Unbounded, Excluded(R64::new(3.0))), 0);
        assert_eq!(s.est_range(Included(R64::new(3.0)), Unbounded), 3);
        // A point interval with an excluded endpoint is empty by
        // construction.
        let s = AttrStats::build(vals(&[0, 10, 20, 30]).iter());
        assert_eq!(
            s.est_range(Included(R64::new(10.0)), Excluded(R64::new(10.0))),
            0
        );
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "stats underflow")]
    fn underflow_is_loud_total() {
        let mut s = AttrStats::default();
        s.remove(&Value::int(1));
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "stats underflow")]
    fn underflow_is_loud_uncounted_value() {
        let mut s = AttrStats::build(vals(&[1]).iter());
        s.remove(&Value::int(2));
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "stats underflow")]
    fn underflow_is_loud_histogram_bucket() {
        let mut h = Histogram::build(&[R64::new(1.0)]).unwrap();
        h.remove(R64::new(1.0));
        h.remove(R64::new(1.0));
    }

    #[test]
    fn remove_to_zero_drops_distinct() {
        let mut s = AttrStats::build(vals(&[4, 4]).iter());
        assert_eq!(s.distinct(), 1);
        s.remove(&Value::int(4));
        assert_eq!(s.distinct(), 1);
        s.remove(&Value::int(4));
        assert_eq!(s.distinct(), 0);
        assert_eq!(s.total(), 0);
    }
}
