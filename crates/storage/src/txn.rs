//! Multi-operation transactions with validate-then-commit semantics.
//!
//! The paper's update-validation use-case (§1): a global transaction
//! manager decomposes a view update into per-database subtransactions;
//! knowing the local constraints, it can *pre-validate* a subtransaction
//! and skip submitting one "which will certainly be rejected by the local
//! transaction manager". [`Transaction::prevalidate`] is that check —
//! object-level, cheap, and side-effect free — while
//! [`Transaction::commit`] is the full submit-with-rollback path.
//!
//! Transactions need no index bookkeeping of their own: every applied
//! operation — and every *undo* operation during a rollback — goes
//! through [`Store::insert`]/[`Store::update`]/[`Store::remove`], so the
//! incremental index/statistics deltas — composite pair postings
//! included — (and, in wholesale mode, the cache discards) happen
//! exactly once per state change. A rolled-back transaction therefore
//! leaves postings, composites and statistics identical to never having
//! run, which `tests/prop_invalidation.rs` asserts under random
//! interleavings.

use interop_model::{AttrName, Object, ObjectId, Value};

use crate::store::{Store, StoreError};
use crate::wal::WalAck;

/// One operation of a transaction.
#[derive(Clone, Debug)]
pub enum TxnOp {
    /// Insert a fully-formed object.
    Insert(Object),
    /// Update one attribute of an existing object.
    Update {
        /// Target object.
        id: ObjectId,
        /// Attribute to set.
        attr: AttrName,
        /// New value.
        value: Value,
    },
    /// Delete an object.
    Delete(ObjectId),
}

/// A batch of operations applied atomically.
#[derive(Clone, Debug, Default)]
pub struct Transaction {
    ops: Vec<TxnOp>,
}

/// The result of a commit attempt.
#[derive(Debug)]
pub enum TxnOutcome {
    /// All operations applied.
    Committed {
        /// Number of operations applied.
        applied: usize,
    },
    /// A violation occurred at `failed_at`; every earlier operation was
    /// rolled back.
    RolledBack {
        /// Index of the failing operation.
        failed_at: usize,
        /// The error raised.
        error: StoreError,
    },
}

impl Transaction {
    /// An empty transaction.
    pub fn new() -> Self {
        Transaction::default()
    }

    /// Builds a transaction from pre-recorded operations — the MVCC
    /// commit path ([`crate::mvcc`]) re-submits a session's buffered
    /// ops through the canonical store this way, and the
    /// serializability oracle replays recorded histories with it.
    pub fn from_ops(ops: Vec<TxnOp>) -> Self {
        Transaction { ops }
    }

    /// Appends an insert.
    pub fn insert(mut self, obj: Object) -> Self {
        self.ops.push(TxnOp::Insert(obj));
        self
    }

    /// Appends an update.
    pub fn update(mut self, id: ObjectId, attr: impl Into<AttrName>, value: Value) -> Self {
        self.ops.push(TxnOp::Update {
            id,
            attr: attr.into(),
            value,
        });
        self
    }

    /// Appends a delete.
    pub fn delete(mut self, id: ObjectId) -> Self {
        self.ops.push(TxnOp::Delete(id));
        self
    }

    /// The operations.
    pub fn ops(&self) -> &[TxnOp] {
        &self.ops
    }

    /// Number of operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True when the transaction is empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Cheap, side-effect-free pre-validation against *object-level*
    /// constraints: type checks plus effective object constraints on the
    /// written state. Catches the violations a local DBMS would reject
    /// outright, without simulating extension-level effects (those are
    /// checked at commit). Returns the index of the first doomed
    /// operation.
    pub fn prevalidate(&self, store: &Store) -> Result<(), (usize, StoreError)> {
        for (i, op) in self.ops.iter().enumerate() {
            match op {
                TxnOp::Insert(obj) => {
                    store.validate_object(obj).map_err(|e| (i, e))?;
                }
                TxnOp::Update { id, attr, value } => {
                    let before = store
                        .db()
                        .object_req(*id)
                        .map_err(|e| (i, StoreError::Model(e)))?;
                    let mut after = before.clone();
                    after.set(attr.clone(), value.clone());
                    store.validate_object(&after).map_err(|e| (i, e))?;
                }
                TxnOp::Delete(id) => {
                    store
                        .db()
                        .object_req(*id)
                        .map_err(|e| (i, StoreError::Model(e)))?;
                }
            }
        }
        Ok(())
    }

    /// Applies all operations; on the first violation, rolls back every
    /// previously applied operation and reports the failure.
    ///
    /// On a durable store the whole transaction reaches the write-ahead
    /// log as **one contiguous `Begin … Commit` run, appended only on
    /// success**: per-operation deltas are buffered while the
    /// transaction runs, a rollback discards them (crash recovery then
    /// sees nothing of the transaction), and a WAL append failure rolls
    /// the in-memory state back too, so memory never claims a commit
    /// the log doesn't hold.
    pub fn commit(self, store: &mut Store) -> TxnOutcome {
        self.commit_inner(store, false).0
    }

    /// The group-commit variant of [`Transaction::commit`]: identical
    /// up to the WAL append, but the run is only *buffered* into the
    /// log — the covering `sync_data` is left to the group-commit
    /// leader, and the returned [`WalAck`] (present only when
    /// durability actually logged something) blocks until it lands.
    ///
    /// An **append** failure still rolls the in-memory state back,
    /// exactly like [`Transaction::commit`]. A failure of the deferred
    /// sync, by contrast, is reported through [`WalAck::wait`] while
    /// the in-memory commit stands — the frames sit in the file ahead
    /// of later committers' frames, so they cannot be truncated away;
    /// the MVCC layer surfaces this as a loud commit error.
    pub(crate) fn commit_deferred(self, store: &mut Store) -> (TxnOutcome, Option<WalAck>) {
        self.commit_inner(store, true)
    }

    fn commit_inner(self, store: &mut Store, deferred: bool) -> (TxnOutcome, Option<WalAck>) {
        /// A recorded inverse operation, applied newest-first on
        /// rollback. A plain enum (not a boxed closure) keeps the
        /// commit hot path free of one heap allocation per operation.
        enum Undo {
            Insert(ObjectId),
            Update {
                id: ObjectId,
                attr: AttrName,
                old: Value,
            },
            Delete(Object),
        }
        impl Undo {
            fn apply(self, s: &mut Store) {
                match self {
                    Undo::Insert(id) => {
                        s.remove(id).ok();
                    }
                    Undo::Update { id, attr, old } => {
                        s.update(id, attr, old).ok();
                    }
                    Undo::Delete(obj) => {
                        s.insert(obj).ok();
                    }
                }
            }
        }
        store.wal_txn_begin();
        let mut undo: Vec<Undo> = Vec::new();
        for (i, op) in self.ops.into_iter().enumerate() {
            let result: Result<Undo, StoreError> = match op {
                TxnOp::Insert(obj) => {
                    let id = obj.id;
                    store.insert(obj).map(|()| Undo::Insert(id))
                }
                TxnOp::Update { id, attr, value } => match store.db().object_req(id) {
                    Err(e) => Err(StoreError::Model(e)),
                    Ok(before) => {
                        let old = before.get(&attr).clone();
                        store
                            .update(id, attr.clone(), value)
                            .map(|()| Undo::Update { id, attr, old })
                    }
                },
                TxnOp::Delete(id) => store.remove(id).map(Undo::Delete),
            };
            match result {
                Ok(u) => undo.push(u),
                Err(error) => {
                    // Undo mutations push their inverse deltas into the
                    // still-open WAL bracket; the rollback below throws
                    // the whole bracket away, so nothing of this
                    // transaction reaches the log.
                    for u in undo.into_iter().rev() {
                        u.apply(store);
                    }
                    store.wal_txn_rollback();
                    return (
                        TxnOutcome::RolledBack {
                            failed_at: i,
                            error,
                        },
                        None,
                    );
                }
            }
        }
        let applied = undo.len();
        let finish = if deferred {
            store.wal_txn_commit_deferred()
        } else {
            store.wal_txn_commit().map(|()| None)
        };
        match finish {
            Ok(ack) => (TxnOutcome::Committed { applied }, ack),
            Err(error) => {
                // The log refused the transaction: roll memory back so
                // the two agree, and report the durability failure.
                store.wal_txn_begin();
                for u in undo.into_iter().rev() {
                    u.apply(store);
                }
                store.wal_txn_rollback();
                (
                    TxnOutcome::RolledBack {
                        failed_at: applied,
                        error,
                    },
                    None,
                )
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use interop_constraint::{Catalog, CmpOp, ConstraintId, Formula, ObjectConstraint};
    use interop_model::{ClassDef, ClassName, Database, DbName, Schema, Type};

    fn store() -> Store {
        let schema = Schema::new(
            "DB1",
            vec![ClassDef::new("Employee")
                .attr("ssn", Type::Str)
                .attr("salary", Type::Real)
                .attr("trav_reimb", Type::Int)],
        )
        .unwrap();
        let dbn = DbName::new("DB1");
        let mut cat = Catalog::new();
        // The paper's intro constraints: trav_reimb in {10,20}, salary < 1500.
        cat.add_object(ObjectConstraint::new(
            ConstraintId::new(&dbn, &ClassName::new("Employee"), "c1"),
            "Employee",
            Formula::isin("trav_reimb", [10i64, 20]),
        ));
        cat.add_object(ObjectConstraint::new(
            ConstraintId::new(&dbn, &ClassName::new("Employee"), "c2"),
            "Employee",
            Formula::cmp("salary", CmpOp::Lt, 1500.0),
        ));
        Store::new(Database::new(schema, 1), cat)
    }

    fn emp(store: &mut Store, ssn: &str, salary: f64, reimb: i64) -> Object {
        let id = store.db().clone().fresh_id();
        let _ = id;
        let mut db = store.db().clone();
        let id = db.fresh_id();
        Object::new(id, ClassName::new("Employee"))
            .with("ssn", ssn)
            .with("salary", salary)
            .with("trav_reimb", reimb)
    }

    #[test]
    fn commit_applies_all() {
        let mut s = store();
        let a = emp(&mut s, "1", 1000.0, 10);
        let txn = Transaction::new().insert(a.clone());
        match txn.commit(&mut s) {
            TxnOutcome::Committed { applied } => assert_eq!(applied, 1),
            other => panic!("expected commit, got {other:?}"),
        }
        assert_eq!(s.db().len(), 1);
    }

    #[test]
    fn violation_rolls_back_everything() {
        let mut s = store();
        let good = emp(&mut s, "1", 1000.0, 10);
        let mut bad = emp(&mut s, "2", 2000.0, 10); // salary >= 1500
        bad.id = interop_model::ObjectId::new(1, 99);
        let txn = Transaction::new().insert(good).insert(bad);
        match txn.commit(&mut s) {
            TxnOutcome::RolledBack { failed_at, error } => {
                assert_eq!(failed_at, 1);
                assert!(matches!(error, StoreError::ObjectConstraintViolated { .. }));
            }
            other => panic!("expected rollback, got {other:?}"),
        }
        assert_eq!(s.db().len(), 0, "first insert must be undone");
    }

    #[test]
    fn prevalidate_rejects_doomed_subtransaction() {
        let mut s = store();
        let id = s
            .create(
                "Employee",
                vec![
                    ("ssn", "1".into()),
                    ("salary", 1000.0.into()),
                    ("trav_reimb", 10i64.into()),
                ],
            )
            .unwrap();
        // An update pushing salary past the local business rule is doomed:
        // the paper's point is we can know this *before* submitting.
        let txn = Transaction::new().update(id, "salary", Value::real(1600.0));
        let (at, err) = txn.prevalidate(&s).unwrap_err();
        assert_eq!(at, 0);
        assert!(matches!(err, StoreError::ObjectConstraintViolated { .. }));
        // Pre-validation touched nothing.
        assert_eq!(
            s.db().object(id).unwrap().get(&AttrName::new("salary")),
            &Value::real(1000.0)
        );
    }

    #[test]
    fn prevalidate_accepts_valid_batch() {
        let mut s = store();
        let a = emp(&mut s, "1", 100.0, 10);
        let txn = Transaction::new().insert(a);
        assert!(txn.prevalidate(&s).is_ok());
        assert_eq!(s.db().len(), 0);
    }

    #[test]
    fn update_rollback_restores_value() {
        let mut s = store();
        let id = s
            .create(
                "Employee",
                vec![
                    ("ssn", "1".into()),
                    ("salary", 1000.0.into()),
                    ("trav_reimb", 10i64.into()),
                ],
            )
            .unwrap();
        let txn = Transaction::new()
            .update(id, "salary", Value::real(1200.0))
            .update(id, "trav_reimb", Value::int(15)); // not in {10,20}
        match txn.commit(&mut s) {
            TxnOutcome::RolledBack { failed_at, .. } => assert_eq!(failed_at, 1),
            other => panic!("expected rollback, got {other:?}"),
        }
        assert_eq!(
            s.db().object(id).unwrap().get(&AttrName::new("salary")),
            &Value::real(1000.0),
            "first update must be rolled back"
        );
    }

    #[test]
    fn delete_and_restore_on_rollback() {
        let mut s = store();
        let id = s
            .create(
                "Employee",
                vec![
                    ("ssn", "1".into()),
                    ("salary", 1000.0.into()),
                    ("trav_reimb", 10i64.into()),
                ],
            )
            .unwrap();
        let mut bad = Object::new(
            interop_model::ObjectId::new(1, 50),
            ClassName::new("Employee"),
        );
        bad.set("trav_reimb", Value::int(99));
        let txn = Transaction::new().delete(id).insert(bad);
        match txn.commit(&mut s) {
            TxnOutcome::RolledBack { failed_at, .. } => assert_eq!(failed_at, 1),
            other => panic!("expected rollback, got {other:?}"),
        }
        assert!(s.db().object(id).is_some(), "deleted object restored");
    }

    #[test]
    fn txn_interleaved_queries_never_see_stale_postings() {
        let mut s = store();
        let id = s
            .create(
                "Employee",
                vec![
                    ("ssn", "1".into()),
                    ("salary", 1000.0.into()),
                    ("trav_reimb", 10i64.into()),
                ],
            )
            .unwrap();
        let opt = interop_constraint_optimizer(&s);
        let pred = Formula::cmp("trav_reimb", CmpOp::Eq, 10i64);
        let (hits, _) = opt.execute(&s, &pred).unwrap();
        assert_eq!(hits, vec![id], "warm the index");
        // A committed transaction flips the tariff; the same query must
        // not read the stale posting list.
        let txn = Transaction::new().update(id, "trav_reimb", Value::int(20));
        assert!(matches!(txn.commit(&mut s), TxnOutcome::Committed { .. }));
        let (hits, _) = opt.execute(&s, &pred).unwrap();
        assert!(hits.is_empty());
        // A rolled-back transaction restores state; the query must see
        // the restored value (rollback mutations also bump the version).
        let txn = Transaction::new()
            .update(id, "trav_reimb", Value::int(10))
            .update(id, "salary", Value::real(9999.0)); // violates c2
        assert!(matches!(txn.commit(&mut s), TxnOutcome::RolledBack { .. }));
        let (hits, _) = opt.execute(&s, &pred).unwrap();
        assert!(hits.is_empty(), "rollback left tariff at 20");
        let (hits, _) = opt
            .execute(&s, &Formula::cmp("trav_reimb", CmpOp::Eq, 20i64))
            .unwrap();
        assert_eq!(hits, vec![id]);
    }

    fn interop_constraint_optimizer(s: &Store) -> crate::optimize::Optimizer {
        crate::optimize::Optimizer::new(s, "Employee", vec![])
    }

    #[test]
    fn empty_transaction_commits() {
        let mut s = store();
        match Transaction::new().commit(&mut s) {
            TxnOutcome::Committed { applied } => assert_eq!(applied, 0),
            other => panic!("unexpected {other:?}"),
        }
        assert!(Transaction::new().is_empty());
    }
}
