//! The constraint-enforcing store.
//!
//! Besides enforcement, the store owns the planner's auxiliary state:
//! lazily built secondary indexes (single-attribute and composite
//! pair), per-`(class, attr)` statistics, and the composite-admission
//! tracker. All cached structures are maintained **incrementally** — a
//! committed insert/update/remove applies per-object deltas to every
//! already-built index and statistics summary covering the object,
//! instead of discarding them — so write-heavy interleaved workloads
//! stop rebuilding from scratch. [`IndexMaintenance::Wholesale`]
//! restores the old discard-everything behaviour for benchmarking and
//! differential testing. Composite indexes are materialised lazily once
//! the [`CompositePolicy`] admits a recurring, sufficiently-selective
//! equality-atom pair reported by the cost model.

use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

use interop_constraint::eval::{check_class_constraint, check_db_constraint, eval_formula, Truth};
use interop_constraint::{Catalog, ConstraintId};
use interop_model::fx::FxHashMap;
use interop_model::{AttrName, ClassName, Database, ModelError, Object, ObjectId, Value};

use crate::index::{CompositeIndex, HashIndex, IndexSet, KeyIndex, SortedIndex};
use crate::snapshot;
use crate::stats::{AttrStats, PairSketch};
use crate::wal::{
    self, DurabilityError, GroupCommitPolicy, SealedSegment, SegmentedWal, WalRecord,
};

/// Errors from store operations.
#[derive(Clone, Debug, PartialEq)]
pub enum StoreError {
    /// The underlying model rejected the operation (type error etc.).
    Model(ModelError),
    /// An object constraint is violated by the written object.
    ObjectConstraintViolated {
        /// The violated constraint.
        constraint: ConstraintId,
        /// The violating object.
        object: ObjectId,
    },
    /// A class constraint is violated by the resulting extension.
    ClassConstraintViolated {
        /// The violated constraint.
        constraint: ConstraintId,
    },
    /// A database constraint is violated by the resulting state.
    DbConstraintViolated {
        /// The violated constraint.
        constraint: ConstraintId,
    },
    /// A key collision (fast-path detection via the index).
    KeyViolation {
        /// The class whose key is violated.
        class: ClassName,
        /// The object already holding the key.
        holder: ObjectId,
    },
    /// The durability layer failed **before** anything reached the log
    /// (WAL append, or an explicit [`Store::snapshot_now`]). The
    /// in-memory state of the failing operation is decided by the call
    /// site: single store operations stay applied (memory runs ahead of
    /// the log, reported loudly); transaction commits roll back so
    /// memory and log agree. A failure *after* the commit is durable —
    /// the automatic snapshot cadence — never surfaces here: the commit
    /// stands and the error is reported via
    /// [`Store::take_snapshot_error`].
    Durability(DurabilityError),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Model(e) => write!(f, "model error: {e}"),
            StoreError::ObjectConstraintViolated { constraint, object } => {
                write!(f, "object {object} violates constraint {constraint}")
            }
            StoreError::ClassConstraintViolated { constraint } => {
                write!(f, "class constraint {constraint} violated")
            }
            StoreError::DbConstraintViolated { constraint } => {
                write!(f, "database constraint {constraint} violated")
            }
            StoreError::KeyViolation { class, holder } => {
                write!(f, "key of class {class} already held by object {holder}")
            }
            StoreError::Durability(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<ModelError> for StoreError {
    fn from(e: ModelError) -> Self {
        StoreError::Model(e)
    }
}

impl From<DurabilityError> for StoreError {
    fn from(e: DurabilityError) -> Self {
        StoreError::Durability(e)
    }
}

/// How the store keeps secondary indexes and statistics current across
/// mutations.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum IndexMaintenance {
    /// Apply per-object deltas to every built index/statistics summary on
    /// each committed mutation (the default).
    #[default]
    Incremental,
    /// Discard everything on any mutation attempt and rebuild lazily on
    /// the next query — the pre-cost-model behaviour, kept as the
    /// benchmark baseline and as a differential-testing oracle.
    Wholesale,
}

/// Whether (and how) committed mutations are persisted.
///
/// `Off` keeps the store byte-identical to the pre-durability builds:
/// no files are touched, no records are serialized, and every hot path
/// takes the same branches it always did. `Wal` appends every committed
/// transaction to the write-ahead log; `WalWithSnapshots` additionally
/// dumps the canonical extension every
/// [`Store::set_snapshot_every`] committed transactions and truncates
/// the log, bounding replay time on reopen.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum DurabilityMode {
    /// In-memory only (the default; all existing behaviour unchanged).
    #[default]
    Off,
    /// Append committed transactions to the write-ahead log.
    Wal,
    /// WAL plus periodic snapshots (log truncated after each snapshot).
    WalWithSnapshots,
}

/// Committed transactions between automatic snapshots (in
/// [`DurabilityMode::WalWithSnapshots`]) unless overridden via
/// [`Store::set_snapshot_every`].
const DEFAULT_SNAPSHOT_EVERY: u64 = 64;

/// The live durability machinery of a store opened with
/// [`Store::open`]: the WAL append handle, the transaction sequence
/// counter, and the in-flight transaction buffer. Deltas produced while
/// `in_txn` accumulate in `pending` and reach the file only as one
/// contiguous `Begin … Commit` run at commit time — a rollback discards
/// them (and the inverse deltas of the undo operations) entirely.
#[derive(Debug)]
struct DurabilityState {
    mode: DurabilityMode,
    dir: PathBuf,
    /// The segmented write-ahead log (rotation, pruning, group commit).
    wal: SegmentedWal,
    /// Sequence number of the last committed transaction.
    txn_seq: u64,
    /// True between `wal_txn_begin` and commit/rollback.
    in_txn: bool,
    /// Deltas of the in-flight transaction.
    pending: Vec<WalRecord>,
    /// Committed transactions since the last snapshot.
    txns_since_snapshot: u64,
    /// Snapshot cadence (`WalWithSnapshots` only).
    snapshot_every: u64,
    /// When true the snapshot cadence only raises `snapshot_due`
    /// instead of dumping inline in the commit path; an owner (the MVCC
    /// layer's background worker) drains the flag via
    /// [`Store::take_snapshot_job`] and writes the snapshot off-thread.
    deferred_snapshots: bool,
    /// Raised by the cadence in deferred mode; cleared at job capture.
    snapshot_due: bool,
    /// The **first** error among failed *automatic* snapshots since the
    /// last [`Store::take_snapshot_error`] poll — later failures bump
    /// `snapshot_failures` but never overwrite it, so a poller sees the
    /// true history (root cause + extent) rather than only the newest
    /// symptom. Automatic snapshots run after the commit is already
    /// durable in the WAL, so their failure must not fail (let alone
    /// roll back) the commit itself.
    snapshot_error: Option<DurabilityError>,
    /// Failed automatic snapshot attempts since the last poll.
    snapshot_failures: u64,
}

/// What a deferred (background) snapshot must persist: captured under
/// the commit path at cadence time, written to disk by a worker thread
/// so committers never stall on the dump. The worker pairs it with the
/// published MVCC `Arc` snapshot, whose state is exactly the extension
/// at `watermark`.
#[derive(Debug)]
pub(crate) struct SnapshotJob {
    /// The durability directory.
    pub(crate) dir: PathBuf,
    /// The last committed transaction the snapshot covers.
    pub(crate) watermark: u64,
    /// Touched-id tracking state at capture.
    pub(crate) tracking: bool,
    /// Undrained touched ids at capture.
    pub(crate) touched: Vec<ObjectId>,
    /// Sealed WAL segments the snapshot makes redundant — pruned (under
    /// the commit path) only after the snapshot file is durable. Only
    /// segments sealed *before* capture qualify: markers or commits
    /// appended later live in segments outside this list.
    pub(crate) prunable: Vec<u64>,
}

/// The record of failed automatic snapshots since the last successful
/// poll of [`Store::take_snapshot_error`]: the **first** failure (later
/// ones never overwrite it) plus how many attempts failed in total.
#[derive(Clone, Debug, PartialEq)]
pub struct SnapshotFailure {
    /// The first error since the last poll — the root cause.
    pub first: DurabilityError,
    /// Total failed attempts since the last poll (including the first).
    pub failures: u64,
}

impl fmt::Display for SnapshotFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} failed snapshot attempt(s); first: {}",
            self.failures, self.first
        )
    }
}

impl std::error::Error for SnapshotFailure {}

/// When a composite index is admitted for a recurring equality-atom
/// pair. The cost model reports every plan that keeps two equality
/// atoms over distinct attributes; the pair *qualifies* when its joint
/// estimate beats the cheaper single-atom posting by `min_gain`, and is
/// *admitted* — materialised lazily on next use — after `admit_after`
/// qualifying sightings (counted by a bounded [`PairSketch`], so a
/// stream of one-off pairs cannot grow planner state).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CompositePolicy {
    /// Qualifying sightings before a pair is admitted.
    pub admit_after: u32,
    /// Required gain factor: `min_single_est >= min_gain * joint_est`
    /// (with the joint estimate floored at one row).
    pub min_gain: f64,
    /// Probes-without-use before an admitted pair is **evicted**: every
    /// planner consultation of the composite machinery advances a probe
    /// clock, and a pair whose last use (an admission-check hit) lies
    /// more than `evict_after` probes back is dropped — its admission
    /// revoked, its sketch count forgotten (re-admission takes fresh
    /// qualifying sightings) and its materialised index discarded, so a
    /// pair the workload stopped querying stops charging every write.
    pub evict_after: u32,
}

impl Default for CompositePolicy {
    fn default() -> Self {
        CompositePolicy {
            admit_after: 3,
            min_gain: 2.0,
            evict_after: 256,
        }
    }
}

impl CompositePolicy {
    /// A policy that never admits a composite — the differential /
    /// benchmark baseline (plans keep their two-way intersections).
    pub fn disabled() -> Self {
        CompositePolicy {
            admit_after: u32::MAX,
            min_gain: f64::INFINITY,
            evict_after: u32::MAX,
        }
    }
}

/// Tracked pairs per sketch: far above the number of simultaneously hot
/// conjunct pairs a workload plausibly has, small enough to bound
/// planner state.
const COMPOSITE_SKETCH_CAP: usize = 64;

/// A candidate key: the queried class plus the ascending attribute pair.
type PairKey = (ClassName, AttrName, AttrName);

/// The composite-admission state: *query-workload* state, not data
/// state — it survives mutations (and wholesale cache discards), while
/// the materialised composite indexes themselves live in the
/// [`SecondaryCache`] and are maintained/discarded like every other
/// secondary structure. `clock` counts planner consultations of the
/// composite machinery; each admitted pair records the clock of its
/// last *use* (an admission-check hit), and pairs idle for more than
/// [`CompositePolicy::evict_after`] probes are evicted.
#[derive(Clone, Debug)]
struct CompositeAdmission {
    sketch: PairSketch<PairKey>,
    /// Admitted pair → probe-clock value of its last use.
    admitted: FxHashMap<PairKey, u64>,
    clock: u64,
}

impl Default for CompositeAdmission {
    fn default() -> Self {
        CompositeAdmission {
            sketch: PairSketch::new(COMPOSITE_SKETCH_CAP),
            admitted: FxHashMap::default(),
            clock: 0,
        }
    }
}

/// Lazily built secondary indexes and statistics, keyed by the *queried*
/// class (whose extension they cover) and attribute. `version` records
/// the store mutation counter the cache contents reflect; mutations
/// either apply deltas and stamp the new version (incremental mode) or
/// clear the maps (wholesale mode), so a stale entry can never serve a
/// query.
#[derive(Clone, Debug, Default)]
struct SecondaryCache {
    version: u64,
    hash: FxHashMap<ClassName, FxHashMap<AttrName, Arc<HashIndex>>>,
    sorted: FxHashMap<ClassName, FxHashMap<AttrName, Arc<SortedIndex>>>,
    stats: FxHashMap<ClassName, FxHashMap<AttrName, Arc<AttrStats>>>,
    composite: FxHashMap<ClassName, FxHashMap<(AttrName, AttrName), Arc<CompositeIndex>>>,
}

impl SecondaryCache {
    /// Discards every cached structure (indexes, statistics, composites),
    /// leaving the version stamp to the caller.
    fn clear(&mut self) {
        self.hash.clear();
        self.sorted.clear();
        self.stats.clear();
        self.composite.clear();
    }
}

/// Applies `$apply` to every cached `(attr, entry)` of `$map` whose
/// class extension covers `$class` — the shared loop shape of the three
/// delta operations, written once so a change to the coverage rule (or
/// a fourth secondary structure) edits one place per operation.
macro_rules! for_covering {
    ($db:expr, $map:expr, $class:expr, |$attr:ident, $entry:ident| $apply:block) => {
        for (cached, attrs) in $map.iter_mut() {
            if $db.schema.is_subclass($class, cached) {
                for ($attr, $entry) in attrs.iter_mut() {
                    $apply;
                }
            }
        }
    };
}

/// Locks a cache mutex, tolerating poisoning: the guarded structures
/// hold rebuildable derived state (secondary indexes, statistics,
/// composite-admission counters), so a peer that panicked mid-update
/// cannot leave them semantically corrupt — at worst
/// [`Store::verify_cache`] discards and rebuilds on the next read.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// The `&mut self` counterpart of [`lock`]: direct access through the
/// exclusive borrow, with the same poison tolerance and no locking
/// cost.
fn lock_mut<T>(m: &mut Mutex<T>) -> &mut T {
    m.get_mut().unwrap_or_else(PoisonError::into_inner)
}

/// A database plus its enforced constraint catalog and key indexes.
#[derive(Debug)]
pub struct Store {
    db: Database,
    catalog: Catalog,
    indexes: IndexSet,
    /// Bumped on every mutation attempt that may have touched state;
    /// secondary indexes are valid only for the version they were
    /// synchronised to (by delta or rebuild).
    version: u64,
    maintenance: IndexMaintenance,
    /// `Mutex`, not `RefCell`: the caches are filled lazily behind
    /// `&self`, and MVCC sessions ([`crate::mvcc`]) run planned queries
    /// against one shared snapshot from many threads — `Store` must be
    /// `Sync`. Single-threaded callers pay one uncontended lock per
    /// cache access.
    secondary: Mutex<SecondaryCache>,
    composite_policy: CompositePolicy,
    composites: Mutex<CompositeAdmission>,
    /// When `Some`, every *committed* state change appends the object id
    /// it touched (rollback undo operations included — they go through
    /// the same mutators). Drained, sorted and deduplicated by
    /// [`Store::take_touched`] for downstream incremental consumers.
    touched_log: Option<Vec<ObjectId>>,
    /// `Some` only for stores opened with [`Store::open`] in a
    /// persistent [`DurabilityMode`]; `None` keeps every mutation path
    /// free of durability branches beyond one `Option` check.
    durability: Option<Box<DurabilityState>>,
}

/// Compile-time proof that the store can back shared MVCC sessions: a
/// `Store` (snapshot) may be sent to and referenced from many threads.
/// If a field ever regresses to `RefCell`/`Rc`, this line fails to
/// compile.
const _: fn() = assert_send_sync::<Store>;
const fn assert_send_sync<T: Send + Sync>() {}

// `Store` deliberately does NOT implement `Clone`. A durable store
// owns a WAL file handle, and a file handle cannot be meaningfully
// shared by two independently mutating stores — an implicit
// `.clone()` would have to silently detach durability, and for a
// while it did, letting tests "persist" mutations into a copy whose
// WAL no longer existed. Use [`Store::detached_clone`], which states
// that contract in its name.
impl Store {
    /// Clones the in-memory state only: the clone is a **detached**
    /// copy with [`DurabilityMode::Off`] — it shares no WAL handle
    /// with the original and persists **nothing**, whatever the
    /// original's [`DurabilityMode`]. This is the explicit replacement
    /// for the removed `Clone` impl, so call sites visibly opt in to
    /// losing durability (e.g. scratch oracles, MVCC snapshots,
    /// benchmark per-iteration copies).
    pub fn detached_clone(&self) -> Store {
        Store {
            db: self.db.clone(),
            catalog: self.catalog.clone(),
            indexes: self.indexes.clone(),
            version: self.version,
            maintenance: self.maintenance,
            secondary: Mutex::new(lock(&self.secondary).clone()),
            composite_policy: self.composite_policy,
            composites: Mutex::new(lock(&self.composites).clone()),
            touched_log: self.touched_log.clone(),
            durability: None,
        }
    }
    /// Creates a store over an (empty or pre-populated) database. Builds
    /// key indexes from the catalog's key constraints; pre-existing
    /// objects are indexed (and trusted to satisfy the constraints —
    /// callers loading untrusted data should [`Store::check_all`]).
    pub fn new(db: Database, catalog: Catalog) -> Self {
        let mut indexes = IndexSet::new();
        for cc in catalog.all_class() {
            if let interop_constraint::ClassConstraintBody::Key(attrs) = &cc.body {
                indexes.insert(cc.class.clone(), KeyIndex::new(attrs.clone()));
            }
        }
        let mut store = Store {
            db,
            catalog,
            indexes,
            version: 0,
            maintenance: IndexMaintenance::default(),
            secondary: Mutex::new(SecondaryCache::default()),
            composite_policy: CompositePolicy::default(),
            composites: Mutex::new(CompositeAdmission::default()),
            touched_log: None,
            durability: None,
        };
        // Index existing objects.
        let ids: Vec<ObjectId> = store.db.objects().map(|o| o.id).collect();
        for id in ids {
            let obj = store.db.object(id).expect("listed").clone();
            store.index_insert(&obj).ok();
        }
        store
    }

    /// Opens a durable store rooted at `dir`, recovering any state a
    /// previous process persisted there: the newest valid snapshot is
    /// loaded into `db`, the WAL tail is replayed **one committed
    /// transaction at a time**, and any torn trailing frame — or a
    /// `Begin … delta` run missing its `Commit` — is discarded and
    /// truncated away. Secondary indexes, statistics and composite
    /// admissions are *not* persisted; they rebuild lazily exactly as
    /// on a fresh store.
    ///
    /// `db` supplies the schema (and any bootstrap objects for a fresh
    /// directory); recovered objects are inserted into it. With
    /// [`DurabilityMode::Off`] this is exactly [`Store::new`] — no file
    /// is read or created.
    ///
    /// Replay applies recovered deltas directly to the database,
    /// bypassing the store mutators, so the touched-id log cannot be
    /// polluted by replayed history; the log state (tracking flag +
    /// undrained ids) is itself recovered from the snapshot and the
    /// WAL's tracking markers.
    pub fn open(
        mut db: Database,
        catalog: Catalog,
        dir: impl AsRef<Path>,
        mode: DurabilityMode,
    ) -> Result<Store, DurabilityError> {
        if mode == DurabilityMode::Off {
            return Ok(Store::new(db, catalog));
        }
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)
            .map_err(|e| DurabilityError::Io(format!("{}: {e}", dir.display())))?;

        let mut watermark = 0u64;
        let mut tracking = false;
        let mut touched: Vec<ObjectId> = Vec::new();
        if let Some(snap) = snapshot::load_latest(&dir)? {
            watermark = snap.watermark;
            tracking = snap.tracking;
            touched = snap.touched;
            for obj in snap.objects {
                db.insert(obj)
                    .map_err(|e| DurabilityError::Model(e.to_string()))?;
            }
        }

        let mut scans = wal::scan_segments(&dir)?;
        let mut txn_seq = watermark;
        // (seq, buffered deltas) of an open `Begin … Commit` run.
        let mut open_txn: Option<(u64, Vec<WalRecord>)> = None;
        // The commit boundary: the segment and end offset of the last
        // frame that left no transaction open. Frames past it — in that
        // segment or any later one — belong to an unterminated run (or
        // the torn tail) and are discarded.
        let mut boundary: Option<(u64, u64)> = None;
        for seg in &mut scans {
            let records = std::mem::take(&mut seg.scan.records);
            let frame_ends = std::mem::take(&mut seg.scan.frame_ends);
            let torn = seg.scan.valid_len < seg.scan.file_len;
            let mut seg_boundary = 0u64;
            for (i, rec) in records.into_iter().enumerate() {
                match rec {
                    WalRecord::Begin { seq } => open_txn = Some((seq, Vec::new())),
                    WalRecord::Commit { seq } => {
                        if let Some((begin_seq, deltas)) = open_txn.take() {
                            if begin_seq == seq && seq > watermark {
                                Self::replay_deltas(
                                    &mut db,
                                    deltas,
                                    tracking.then_some(&mut touched),
                                )?;
                            }
                            txn_seq = txn_seq.max(seq);
                        }
                    }
                    WalRecord::Rollback => open_txn = None,
                    WalRecord::TouchedDrain => touched.clear(),
                    WalRecord::TrackTouched { on } => {
                        tracking = on;
                        touched.clear();
                    }
                    delta => {
                        if let Some((_, deltas)) = &mut open_txn {
                            deltas.push(delta);
                        }
                        // A delta outside Begin/Commit cannot be produced
                        // by this writer; ignore it defensively rather
                        // than guessing at its transaction.
                    }
                }
                if open_txn.is_none() {
                    seg_boundary = frame_ends[i];
                }
            }
            boundary = Some((seg.seq, seg_boundary));
            if open_txn.take().is_some() {
                // A run left open at the end of a segment: whether from
                // a crash mid-append or a hostile file, everything from
                // here on is untrusted and discarded.
                break;
            }
            if torn {
                break;
            }
        }
        // Fresh directories start at segment 1 (`wal.log` is the legacy
        // segment 0, still readable above).
        let (active_seq, valid_len) = boundary.unwrap_or((1, 0));
        // Segments past the boundary hold only discarded bytes.
        let mut removed_any = false;
        for (seq, path) in wal::list_segments(&dir)? {
            if seq > active_seq {
                std::fs::remove_file(&path)
                    .map_err(|e| DurabilityError::Io(format!("{}: {e}", path.display())))?;
                removed_any = true;
            }
        }
        if removed_any {
            wal::fsync_dir(&dir)?;
        }
        // Earlier segments are sealed; bound their contents by the
        // recovered counter (conservative: too high only delays pruning).
        let sealed: Vec<SealedSegment> = scans
            .iter()
            .filter(|s| s.seq < active_seq)
            .map(|s| SealedSegment {
                seq: s.seq,
                last_txn: txn_seq,
            })
            .collect();
        let wal = SegmentedWal::open(&dir, active_seq, valid_len, sealed, txn_seq)?;

        let mut store = Store::new(db, catalog);
        store.touched_log = tracking.then_some(touched);
        store.durability = Some(Box::new(DurabilityState {
            mode,
            dir,
            wal,
            txn_seq,
            in_txn: false,
            pending: Vec::new(),
            txns_since_snapshot: 0,
            snapshot_every: DEFAULT_SNAPSHOT_EVERY,
            deferred_snapshots: false,
            snapshot_due: false,
            snapshot_error: None,
            snapshot_failures: 0,
        }));
        Ok(store)
    }

    /// Applies one committed transaction's recovered deltas to the
    /// database. Runs against the bare [`Database`] — no store mutator,
    /// no index, no touched-log side effects — because the store is
    /// constructed *after* replay and builds everything from the final
    /// state.
    fn replay_deltas(
        db: &mut Database,
        deltas: Vec<WalRecord>,
        mut touched: Option<&mut Vec<ObjectId>>,
    ) -> Result<(), DurabilityError> {
        let model = |e: interop_model::ModelError| DurabilityError::Model(e.to_string());
        for delta in deltas {
            let id = match delta {
                WalRecord::DeltaInsert(obj) => {
                    let id = obj.id;
                    db.insert(obj).map_err(model)?;
                    id
                }
                WalRecord::DeltaUpdate { id, attr, new, .. } => {
                    db.update(id, attr, new).map_err(model)?;
                    id
                }
                WalRecord::DeltaRemove { id } => {
                    db.remove(id).map_err(model)?;
                    id
                }
                // Control records never reach here (the replay loop
                // routes them before buffering); skip defensively.
                _ => continue,
            };
            if let Some(log) = touched.as_deref_mut() {
                log.push(id);
            }
        }
        Ok(())
    }

    /// The durability mode in effect ([`DurabilityMode::Off`] for
    /// stores created with [`Store::new`] or obtained by cloning).
    pub fn durability_mode(&self) -> DurabilityMode {
        self.durability
            .as_ref()
            .map_or(DurabilityMode::Off, |d| d.mode)
    }

    /// Sets the snapshot cadence for [`DurabilityMode::WalWithSnapshots`]:
    /// a snapshot is taken (and the WAL truncated) every `every`
    /// committed transactions. Clamped to at least 1; no effect in
    /// other modes.
    pub fn set_snapshot_every(&mut self, every: u64) {
        if let Some(d) = self.durability.as_deref_mut() {
            d.snapshot_every = every.max(1);
        }
    }

    /// Takes a snapshot of the current extension now and truncates the
    /// WAL. No-op for non-durable stores. Useful before a planned
    /// shutdown to make the next [`Store::open`] replay-free.
    pub fn snapshot_now(&mut self) -> Result<(), StoreError> {
        self.snapshot_inner().map_err(StoreError::from)
    }

    /// The shared snapshot body. The WAL is reset only *after*
    /// [`snapshot::write_snapshot`] returns, i.e. after the new
    /// snapshot is fully durable — a failure leaves the log (and the
    /// older snapshots) exactly as they were. The reset itself is
    /// durable (truncation synced, sealed-segment deletions followed by
    /// a directory fsync), so power loss cannot resurrect stale
    /// committed frames the snapshot already holds.
    fn snapshot_inner(&mut self) -> Result<(), DurabilityError> {
        let Some(d) = self.durability.as_deref_mut() else {
            return Ok(());
        };
        let tracking = self.touched_log.is_some();
        let touched = self.touched_log.clone().unwrap_or_default();
        let objects: Vec<&Object> = self.db.objects().collect();
        snapshot::write_snapshot(&d.dir, d.txn_seq, tracking, &touched, &objects)?;
        d.wal.reset_all()?;
        d.txns_since_snapshot = 0;
        d.snapshot_due = false;
        Ok(())
    }

    /// Takes (and clears) the record of automatic-snapshot failures
    /// since the last poll, if any: the **first** error plus the total
    /// attempt count — later failures never overwrite the first, so the
    /// history is not silently collapsed into the newest symptom.
    /// Automatic snapshots run after the triggering commit is already
    /// durable in the WAL, so their failure cannot fail the commit — it
    /// is surfaced here instead, and the cadence retries on the next
    /// committed transaction.
    pub fn take_snapshot_error(&mut self) -> Option<SnapshotFailure> {
        let d = self.durability.as_deref_mut()?;
        let first = d.snapshot_error.take()?;
        Some(SnapshotFailure {
            first,
            failures: std::mem::take(&mut d.snapshot_failures),
        })
    }

    /// Records one failed automatic-snapshot attempt: the first error
    /// is kept, every attempt is counted.
    pub(crate) fn note_snapshot_failure(&mut self, e: DurabilityError) {
        if let Some(d) = self.durability.as_deref_mut() {
            d.snapshot_failures += 1;
            if d.snapshot_error.is_none() {
                d.snapshot_error = Some(e);
            }
        }
    }

    /// Appends one committed single-operation transaction (`Begin`,
    /// `rec`, `Commit`) to the WAL — or, inside an explicit
    /// transaction, buffers `rec` until [`Store::wal_txn_commit`].
    /// No-op when durability is off.
    fn wal_op(&mut self, rec: WalRecord) -> Result<(), StoreError> {
        let Some(d) = self.durability.as_deref_mut() else {
            return Ok(());
        };
        if d.in_txn {
            d.pending.push(rec);
            return Ok(());
        }
        let seq = d.txn_seq + 1;
        d.wal.append_run_synced(
            &[WalRecord::Begin { seq }, rec, WalRecord::Commit { seq }],
            seq,
        )?;
        d.txn_seq = seq;
        self.note_committed_txn();
        Ok(())
    }

    /// Post-commit bookkeeping: counts the transaction towards the
    /// snapshot cadence and snapshots when it is reached — inline here,
    /// or by raising `snapshot_due` for the background worker when
    /// deferred snapshots are on. Infallible by design — the
    /// transaction is already durable in the WAL when this runs, so a
    /// snapshot failure must not propagate into the commit path (a
    /// caller would roll memory back while the log keeps the commit,
    /// and replay would diverge on reopen). The error is stashed for
    /// [`Store::take_snapshot_error`]; the unreset cadence counter
    /// retries the snapshot on the next commit.
    fn note_committed_txn(&mut self) {
        let Some(d) = self.durability.as_deref_mut() else {
            return;
        };
        if d.mode != DurabilityMode::WalWithSnapshots {
            return;
        }
        d.txns_since_snapshot += 1;
        if d.txns_since_snapshot < d.snapshot_every {
            return;
        }
        if d.deferred_snapshots {
            d.snapshot_due = true;
            return;
        }
        if let Err(e) = self.snapshot_inner() {
            self.note_snapshot_failure(e);
        }
    }

    /// Switches the snapshot cadence between inline (the commit path
    /// dumps the extension itself) and deferred (the cadence only
    /// raises a flag for [`Store::take_snapshot_job`]). The MVCC layer
    /// turns this on when it owns a background snapshot worker.
    pub(crate) fn set_deferred_snapshots(&mut self, on: bool) {
        if let Some(d) = self.durability.as_deref_mut() {
            d.deferred_snapshots = on;
        }
    }

    /// Captures the work of one due background snapshot, or `None` when
    /// no snapshot is due. Seals the active segment first (so every
    /// transaction the snapshot covers sits in sealed — durable,
    /// prunable — segments) and lists the sealed segments the snapshot
    /// will make redundant. The caller pairs the job with an `Arc`
    /// snapshot of the extension at the same commit point and hands
    /// both to the worker; [`Store::prune_wal_segments`] runs after the
    /// snapshot file is durable.
    pub(crate) fn take_snapshot_job(&mut self) -> Option<SnapshotJob> {
        let tracking = self.touched_log.is_some();
        let touched = self.touched_log.clone().unwrap_or_default();
        let d = self.durability.as_deref_mut()?;
        if !d.snapshot_due {
            return None;
        }
        d.snapshot_due = false;
        d.txns_since_snapshot = 0;
        if d.wal.active_len() > 0 {
            if let Err(e) = d.wal.rotate() {
                // The snapshot never started; count it as a failed
                // attempt and let the cadence retry.
                d.snapshot_failures += 1;
                if d.snapshot_error.is_none() {
                    d.snapshot_error = Some(e);
                }
                return None;
            }
        }
        let watermark = d.txn_seq;
        Some(SnapshotJob {
            dir: d.dir.clone(),
            watermark,
            tracking,
            touched,
            prunable: d.wal.prunable(watermark),
        })
    }

    /// Deletes sealed WAL segments a durable snapshot made redundant
    /// (directory-fsynced). Failures are recorded as snapshot failures —
    /// the segments stay, replay merely re-skips their transactions.
    pub(crate) fn prune_wal_segments(&mut self, seqs: &[u64]) {
        let Some(d) = self.durability.as_deref_mut() else {
            return;
        };
        if let Err(e) = d.wal.prune_sealed(seqs) {
            d.snapshot_failures += 1;
            if d.snapshot_error.is_none() {
                d.snapshot_error = Some(e);
            }
        }
    }

    /// Sets the group-commit policy (how commits share fsyncs). The
    /// default syncs every commit before acknowledging it. Grouping
    /// takes effect for concurrent MVCC committers, whose
    /// acknowledgement can wait outside the commit path; the plain
    /// single-writer store always syncs before returning (there is
    /// nobody to share the sync with, so dwelling would only add
    /// latency). No effect when durability is off.
    pub fn set_group_commit(&mut self, policy: GroupCommitPolicy) {
        if let Some(d) = self.durability.as_deref() {
            d.wal.group().set_policy(policy);
        }
    }

    /// The group-commit policy in effect (the sync-per-commit default
    /// when durability is off).
    pub fn group_commit(&self) -> GroupCommitPolicy {
        self.durability
            .as_deref()
            .map_or_else(GroupCommitPolicy::default, |d| d.wal.group().policy())
    }

    /// Sets the WAL segment rotation threshold in bytes (clamped to at
    /// least 1). No effect when durability is off.
    pub fn set_wal_segment_bytes(&mut self, bytes: u64) {
        if let Some(d) = self.durability.as_deref_mut() {
            d.wal.set_segment_bytes(bytes);
        }
    }

    /// Opens a WAL transaction bracket: subsequent mutator deltas are
    /// buffered instead of appended. Called by [`crate::txn::Txn::commit`].
    pub(crate) fn wal_txn_begin(&mut self) {
        if let Some(d) = self.durability.as_deref_mut() {
            d.in_txn = true;
            d.pending.clear();
        }
    }

    /// Closes the bracket successfully: appends the buffered deltas as
    /// one contiguous `Begin … Commit` run (nothing, for an empty
    /// transaction). On append failure the transaction is **not**
    /// durable; the caller must roll the in-memory state back so memory
    /// and log agree. `Err` is returned **only** for append failures:
    /// once the append succeeds the transaction is committed for good,
    /// and post-commit work (the snapshot cadence) runs best-effort.
    pub(crate) fn wal_txn_commit(&mut self) -> Result<(), StoreError> {
        let Some(d) = self.durability.as_deref_mut() else {
            return Ok(());
        };
        if !d.in_txn {
            return Ok(());
        }
        d.in_txn = false;
        let pending = std::mem::take(&mut d.pending);
        if pending.is_empty() {
            return Ok(());
        }
        let seq = d.txn_seq + 1;
        let mut frames = Vec::with_capacity(pending.len() + 2);
        frames.push(WalRecord::Begin { seq });
        frames.extend(pending);
        frames.push(WalRecord::Commit { seq });
        d.wal.append_run_synced(&frames, seq)?;
        d.txn_seq = seq;
        self.note_committed_txn();
        Ok(())
    }

    /// The group-commit variant of [`Store::wal_txn_commit`]: the run
    /// is buffered into the log and the covering `sync_data` is left to
    /// the group leader — the returned ack blocks until it lands.
    /// `Ok(None)` means there was nothing to log (no durability, no
    /// bracket, or an empty transaction).
    ///
    /// The contract differs from the synced variant in one way: once
    /// this returns `Ok`, the transaction **cannot be rolled back** —
    /// its frames sit in the file ahead of later committers' frames, so
    /// a failure of the covering sync is reported through
    /// [`wal::WalAck::wait`] (and poisons the log against further
    /// appends) while the in-memory commit stands, exactly like the
    /// loudly-reported memory-runs-ahead semantics of single-op
    /// durability failures.
    pub(crate) fn wal_txn_commit_deferred(&mut self) -> Result<Option<wal::WalAck>, StoreError> {
        let Some(d) = self.durability.as_deref_mut() else {
            return Ok(None);
        };
        if !d.in_txn {
            return Ok(None);
        }
        d.in_txn = false;
        let pending = std::mem::take(&mut d.pending);
        if pending.is_empty() {
            return Ok(None);
        }
        let seq = d.txn_seq + 1;
        let mut frames = Vec::with_capacity(pending.len() + 2);
        frames.push(WalRecord::Begin { seq });
        frames.extend(pending);
        frames.push(WalRecord::Commit { seq });
        let ack = d.wal.append_run(&frames, seq)?;
        d.txn_seq = seq;
        self.note_committed_txn();
        Ok(Some(ack))
    }

    /// Closes the bracket after a rollback: the buffered deltas (and
    /// the inverse deltas the undo operations pushed) are discarded —
    /// nothing of the transaction reaches the log beyond a best-effort
    /// `Rollback` marker, which replay treats as "no transaction open".
    pub(crate) fn wal_txn_rollback(&mut self) {
        if let Some(d) = self.durability.as_deref_mut() {
            d.in_txn = false;
            d.pending.clear();
            let _ = d.wal.append_run_synced(&[WalRecord::Rollback], d.txn_seq);
        }
    }

    /// Immutable access to the underlying database.
    pub fn db(&self) -> &Database {
        &self.db
    }

    /// The enforced catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Consumes the store, returning the database.
    pub fn into_db(self) -> Database {
        self.db
    }

    fn index_class_for(&self, class: &ClassName) -> Option<ClassName> {
        // The index lives at the class where `key` is declared; an object
        // of a subclass belongs to the ancestor's index.
        self.db
            .schema
            .self_and_ancestors(class)
            .into_iter()
            .find(|c| self.indexes.contains_key(c))
    }

    fn index_insert(&mut self, obj: &Object) -> Result<(), StoreError> {
        if let Some(c) = self.index_class_for(&obj.class) {
            let idx = self.indexes.get_mut(&c).expect("found above");
            idx.insert(obj).map_err(|holder| StoreError::KeyViolation {
                class: c.clone(),
                holder,
            })?;
        }
        Ok(())
    }

    fn index_remove(&mut self, obj: &Object) {
        if let Some(c) = self.index_class_for(&obj.class) {
            self.indexes.get_mut(&c).expect("found above").remove(obj);
        }
    }

    /// Key lookup via the index (used by the query fast path).
    pub fn lookup_key(&self, class: &ClassName, key: &[Value]) -> Option<ObjectId> {
        let c = self.index_class_for(class)?;
        self.indexes[&c].get(key)
    }

    /// The key attributes indexed for `class`, if any.
    pub fn key_attrs(&self, class: &ClassName) -> Option<&[AttrName]> {
        let c = self.index_class_for(class)?;
        Some(self.indexes[&c].attrs())
    }

    /// The store's mutation counter. Bumped by every (attempted) insert,
    /// update or remove; the secondary cache is synchronised to it by
    /// deltas (or discarded, in wholesale mode) before the mutation
    /// returns.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The maintenance mode in effect.
    pub fn index_maintenance(&self) -> IndexMaintenance {
        self.maintenance
    }

    /// Switches how indexes and statistics survive mutations. Switching
    /// drops the current cache (the conservative direction for both
    /// modes).
    pub fn set_index_maintenance(&mut self, mode: IndexMaintenance) {
        self.maintenance = mode;
        let cache = lock_mut(&mut self.secondary);
        cache.clear();
        cache.version = self.version;
    }

    /// The composite-admission policy in effect.
    pub fn composite_policy(&self) -> CompositePolicy {
        self.composite_policy
    }

    /// Replaces the composite-admission policy. Already-admitted pairs
    /// stay admitted (the materialised index remains correct whatever
    /// the policy says about future admissions); use a fresh store for a
    /// composite-free baseline, or [`CompositePolicy::disabled`] from
    /// the start.
    pub fn set_composite_policy(&mut self, policy: CompositePolicy) {
        self.composite_policy = policy;
    }

    /// The admitted composite pairs, sorted — diagnostics/tests hook.
    pub fn admitted_composites(&self) -> Vec<(ClassName, AttrName, AttrName)> {
        let adm = lock(&self.composites);
        let mut out: Vec<_> = adm.admitted.keys().cloned().collect();
        out.sort();
        out
    }

    /// Starts (or stops) recording the ids of committed state changes.
    /// Disabling discards anything recorded. The log feeds per-object
    /// re-conformation in the incremental integration pipeline: after a
    /// batch of mutations, [`Store::take_touched`] yields exactly the
    /// ids whose state may differ from the last drain — failed
    /// operations append nothing, and a rolled-back transaction appends
    /// its undo operations too, so consumers re-examine those objects
    /// and find them unchanged rather than missing a change.
    pub fn track_touched(&mut self, on: bool) {
        self.touched_log = if on { Some(Vec::new()) } else { None };
        // Persist the tracking state so a reopened store resumes (or
        // stays out of) incremental mode. Best-effort: losing the
        // marker only costs the next open a conservative tracking
        // state, never correctness of the data itself.
        if let Some(d) = self.durability.as_deref_mut() {
            let _ = d
                .wal
                .append_run_synced(&[WalRecord::TrackTouched { on }], d.txn_seq);
        }
    }

    /// Drains the touched-id log (sorted, deduplicated). Empty when
    /// tracking is off or nothing was committed since the last drain.
    pub fn take_touched(&mut self) -> Vec<ObjectId> {
        let Some(log) = &mut self.touched_log else {
            return Vec::new();
        };
        let mut out = std::mem::take(log);
        out.sort_unstable();
        out.dedup();
        // Record the drain so a reopened store doesn't hand the
        // incremental pipeline already-consumed ids. Best-effort: a
        // lost marker means recovery re-offers ids whose objects the
        // pipeline then re-examines and finds unchanged — safe.
        if !out.is_empty() {
            if let Some(d) = self.durability.as_deref_mut() {
                let _ = d
                    .wal
                    .append_run_synced(&[WalRecord::TouchedDrain], d.txn_seq);
            }
        }
        out
    }

    fn log_touched(&mut self, id: ObjectId) {
        if let Some(log) = &mut self.touched_log {
            log.push(id);
        }
    }

    /// Evicts every admitted pair whose last use lies more than
    /// `evict_after` probes back: revokes the admission, forgets the
    /// sketch count (re-admission takes fresh qualifying sightings) and
    /// drops the materialised index so writes stop maintaining it.
    fn evict_stale_composites(&self, adm: &mut CompositeAdmission) {
        let horizon = self.composite_policy.evict_after as u64;
        let stale: Vec<PairKey> = adm
            .admitted
            .iter()
            .filter(|(_, &last_use)| adm.clock.saturating_sub(last_use) > horizon)
            .map(|(k, _)| k.clone())
            .collect();
        if stale.is_empty() {
            return;
        }
        // Lock order: composites (held by the caller) → secondary.
        // Every multi-lock path takes them in this order.
        let mut cache = lock(&self.secondary);
        for key in stale {
            adm.admitted.remove(&key);
            adm.sketch.forget(&key);
            let (class, a, b) = key;
            if let Some(m) = cache.composite.get_mut(&class) {
                m.remove(&(a, b));
                if m.is_empty() {
                    cache.composite.remove(&class);
                }
            }
        }
    }

    /// Registers a mutation attempt: bumps the version and brings the
    /// cache's stamp along. In wholesale mode the cache contents are
    /// discarded instead; in incremental mode the caller follows up with
    /// the per-object deltas for whatever the mutation actually changed
    /// (nothing, for a rejected op — state is unchanged, so stamping
    /// alone keeps the cache exact).
    fn bump(&mut self) {
        self.version += 1;
        let cache = lock_mut(&mut self.secondary);
        if self.maintenance == IndexMaintenance::Wholesale {
            cache.clear();
        }
        cache.version = self.version;
    }

    /// Safety net on every cache read: a version mismatch means some
    /// mutation path forgot to synchronise — discard rather than serve
    /// stale entries. `debug_assert!`s loudly in test builds.
    fn verify_cache(&self, cache: &mut SecondaryCache) {
        debug_assert_eq!(
            cache.version, self.version,
            "secondary cache out of sync with store version"
        );
        if cache.version != self.version {
            cache.clear();
            cache.version = self.version;
        }
    }

    /// Applies a committed object insertion to every built index and
    /// statistics summary whose class extension covers the object.
    fn delta_insert(&mut self, id: ObjectId) {
        if self.maintenance == IndexMaintenance::Wholesale {
            return;
        }
        let db = &self.db;
        let cache = lock_mut(&mut self.secondary);
        let Some(obj) = db.object(id) else { return };
        for_covering!(db, cache.hash, &obj.class, |attr, idx| {
            Arc::make_mut(idx).insert(obj.get(attr), obj.id)
        });
        for_covering!(db, cache.sorted, &obj.class, |attr, idx| {
            Arc::make_mut(idx).insert(obj.get(attr), obj.id)
        });
        for_covering!(db, cache.stats, &obj.class, |attr, st| {
            Arc::make_mut(st).insert(obj.get(attr))
        });
        for_covering!(db, cache.composite, &obj.class, |pair, idx| {
            Arc::make_mut(idx).insert(obj.get(&pair.0), obj.get(&pair.1), obj.id)
        });
    }

    /// Applies a committed object removal (the mirror of
    /// [`Store::delta_insert`]; `obj` is the removed object, already out
    /// of the database).
    fn delta_remove(&mut self, obj: &Object) {
        if self.maintenance == IndexMaintenance::Wholesale {
            return;
        }
        let db = &self.db;
        let cache = lock_mut(&mut self.secondary);
        for_covering!(db, cache.hash, &obj.class, |attr, idx| {
            Arc::make_mut(idx).remove(obj.get(attr), obj.id)
        });
        for_covering!(db, cache.sorted, &obj.class, |attr, idx| {
            Arc::make_mut(idx).remove(obj.get(attr), obj.id)
        });
        for_covering!(db, cache.stats, &obj.class, |attr, st| {
            Arc::make_mut(st).remove(obj.get(attr))
        });
        for_covering!(db, cache.composite, &obj.class, |pair, idx| {
            Arc::make_mut(idx).remove(obj.get(&pair.0), obj.get(&pair.1), obj.id)
        });
    }

    /// Applies a committed single-attribute update: only entries for the
    /// changed attribute are touched (extension membership is unchanged).
    fn delta_update(
        &mut self,
        class: &ClassName,
        id: ObjectId,
        target: &AttrName,
        old: &Value,
        new: &Value,
    ) {
        if self.maintenance == IndexMaintenance::Wholesale {
            return;
        }
        let db = &self.db;
        let cache = lock_mut(&mut self.secondary);
        for_covering!(db, cache.hash, class, |attr, idx| {
            if attr == target {
                let idx = Arc::make_mut(idx);
                idx.remove(old, id);
                idx.insert(new, id);
            }
        });
        for_covering!(db, cache.sorted, class, |attr, idx| {
            if attr == target {
                let idx = Arc::make_mut(idx);
                idx.remove(old, id);
                idx.insert(new, id);
            }
        });
        for_covering!(db, cache.stats, class, |attr, st| {
            if attr == target {
                Arc::make_mut(st).update(old, new);
            }
        });
        // A composite pair is touched when *either* component is the
        // updated attribute; the partner component keeps its current
        // (already-committed) value, read off the live object.
        let Some(obj) = db.object(id) else { return };
        for_covering!(db, cache.composite, class, |pair, idx| {
            if &pair.0 == target {
                let idx = Arc::make_mut(idx);
                let other = obj.get(&pair.1);
                idx.remove(old, other, id);
                idx.insert(new, other, id);
            } else if &pair.1 == target {
                let idx = Arc::make_mut(idx);
                let other = obj.get(&pair.0);
                idx.remove(other, old, id);
                idx.insert(other, new, id);
            }
        });
    }

    /// The equality (hash) index over `class`'s extension for `attr`,
    /// building it on first use.
    pub fn hash_index(&self, class: &ClassName, attr: &AttrName) -> Arc<HashIndex> {
        let mut cache = lock(&self.secondary);
        self.verify_cache(&mut cache);
        if let Some(idx) = cache.hash.get(class).and_then(|m| m.get(attr)) {
            return Arc::clone(idx);
        }
        let idx = Arc::new(HashIndex::build(self.db.extension(class).into_iter().map(
            |id| {
                let obj = self.db.object(id).expect("extension lists live objects");
                (obj.get(attr).clone(), id)
            },
        )));
        cache
            .hash
            .entry(class.clone())
            .or_default()
            .insert(attr.clone(), Arc::clone(&idx));
        idx
    }

    /// The range (sorted) index over `class`'s extension for `attr`,
    /// building it on first use.
    pub fn sorted_index(&self, class: &ClassName, attr: &AttrName) -> Arc<SortedIndex> {
        let mut cache = lock(&self.secondary);
        self.verify_cache(&mut cache);
        if let Some(idx) = cache.sorted.get(class).and_then(|m| m.get(attr)) {
            return Arc::clone(idx);
        }
        let ids = self.db.extension(class);
        let idx = Arc::new(SortedIndex::build(ids.iter().map(|&id| {
            let obj = self.db.object(id).expect("extension lists live objects");
            (obj.get(attr), id)
        })));
        cache
            .sorted
            .entry(class.clone())
            .or_default()
            .insert(attr.clone(), Arc::clone(&idx));
        idx
    }

    /// The cardinality statistics over `class`'s extension for `attr`,
    /// building them on first use in the same pass an index build would
    /// make, and rebuilding when [`AttrStats::hist_stale`] reports that
    /// the extension drifted too far from the histogram's build point.
    pub fn attr_stats(&self, class: &ClassName, attr: &AttrName) -> Arc<AttrStats> {
        let mut cache = lock(&self.secondary);
        self.verify_cache(&mut cache);
        if let Some(st) = cache.stats.get(class).and_then(|m| m.get(attr)) {
            if !st.hist_stale() {
                return Arc::clone(st);
            }
        }
        let ids = self.db.extension(class);
        let st = Arc::new(AttrStats::build(ids.iter().map(|&id| {
            let obj = self.db.object(id).expect("extension lists live objects");
            obj.get(attr)
        })));
        cache
            .stats
            .entry(class.clone())
            .or_default()
            .insert(attr.clone(), Arc::clone(&st));
        st
    }

    /// The composite equality index over `class`'s extension for the
    /// (unordered) attribute pair `{a, b}`, building it on first use.
    /// Admission gates only whether the *planner* chooses composite
    /// probes; this accessor materialises unconditionally, so tests can
    /// compare a maintained composite against a scratch rebuild.
    pub fn composite_index(
        &self,
        class: &ClassName,
        a: &AttrName,
        b: &AttrName,
    ) -> Arc<CompositeIndex> {
        let (a, b) = if a <= b { (a, b) } else { (b, a) };
        let mut cache = lock(&self.secondary);
        self.verify_cache(&mut cache);
        let pair = (a.clone(), b.clone());
        if let Some(idx) = cache.composite.get(class).and_then(|m| m.get(&pair)) {
            return Arc::clone(idx);
        }
        let idx = Arc::new(CompositeIndex::build(
            self.db.extension(class).into_iter().map(|id| {
                let obj = self.db.object(id).expect("extension lists live objects");
                (obj.get(a).clone(), obj.get(b).clone(), id)
            }),
        ));
        cache
            .composite
            .entry(class.clone())
            .or_default()
            .insert(pair, Arc::clone(&idx));
        idx
    }

    /// How many secondary structures (indexes + statistics + composite
    /// indexes) are currently cached, and the version they are valid
    /// for. Test/diagnostic hook for invalidation checks.
    pub fn secondary_cache_stats(&self) -> (u64, usize) {
        let cache = lock(&self.secondary);
        let n = cache.hash.values().map(|m| m.len()).sum::<usize>()
            + cache.sorted.values().map(|m| m.len()).sum::<usize>()
            + cache.stats.values().map(|m| m.len()).sum::<usize>()
            + cache.composite.values().map(|m| m.len()).sum::<usize>();
        (cache.version, n)
    }

    /// Validates an object against the *object constraints* effective on
    /// its class without touching the store. This is the early-validation
    /// primitive: a global transaction manager can reject a doomed
    /// subtransaction before submitting it (§1's update-validation
    /// use-case).
    pub fn validate_object(&self, obj: &Object) -> Result<(), StoreError> {
        self.db.typecheck(obj)?;
        for oc in self.catalog.object_effective(&self.db.schema, &obj.class) {
            let t = eval_formula(&self.db, obj, &oc.formula)?;
            if t == Truth::False {
                return Err(StoreError::ObjectConstraintViolated {
                    constraint: oc.id.clone(),
                    object: obj.id,
                });
            }
        }
        Ok(())
    }

    fn check_class_and_db_constraints(&self, touched: &ClassName) -> Result<(), StoreError> {
        for c in self.db.schema.self_and_ancestors(touched) {
            for cc in self.catalog.class_on(&c) {
                // Keys are enforced incrementally via the index; re-check
                // aggregates only.
                if cc.is_key() {
                    continue;
                }
                if check_class_constraint(&self.db, cc)? == Truth::False {
                    return Err(StoreError::ClassConstraintViolated {
                        constraint: cc.id.clone(),
                    });
                }
            }
        }
        for dc in self.catalog.database_constraints() {
            if check_db_constraint(&self.db, dc)? == Truth::False {
                return Err(StoreError::DbConstraintViolated {
                    constraint: dc.id.clone(),
                });
            }
        }
        Ok(())
    }

    /// Inserts an object, enforcing all constraints. On any violation the
    /// store is left unchanged.
    pub fn insert(&mut self, obj: Object) -> Result<(), StoreError> {
        // Bump even when the insert later fails: a failed op leaves state
        // unchanged, so stamping the cache at the new version keeps it
        // exact with no delta to apply.
        self.bump();
        self.validate_object(&obj)?;
        self.index_insert(&obj)?;
        let class = obj.class.clone();
        let id = obj.id;
        if let Err(e) = self.db.insert(obj) {
            // Roll the index entry back.
            if let Some(o) = self.db.object(id) {
                let o = o.clone();
                self.index_remove(&o);
            }
            return Err(e.into());
        }
        if let Err(e) = self.check_class_and_db_constraints(&class) {
            let obj = self.db.remove(id).expect("just inserted");
            self.index_remove(&obj);
            return Err(e);
        }
        self.delta_insert(id);
        self.log_touched(id);
        if self.durability.is_some() {
            let obj = self.db.object(id).expect("just inserted").clone();
            self.wal_op(WalRecord::DeltaInsert(obj))?;
        }
        Ok(())
    }

    /// Creates and inserts an object of `class`, returning its id.
    pub fn create(
        &mut self,
        class: impl Into<ClassName>,
        attrs: Vec<(&str, Value)>,
    ) -> Result<ObjectId, StoreError> {
        let class = class.into();
        let id = self.db.fresh_id();
        let mut obj = Object::new(id, class);
        for (name, v) in attrs {
            obj.set(name, v);
        }
        self.insert(obj)?;
        Ok(id)
    }

    /// Updates one attribute, enforcing all constraints; rolls back on
    /// violation.
    pub fn update(
        &mut self,
        id: ObjectId,
        attr: impl Into<AttrName>,
        value: Value,
    ) -> Result<(), StoreError> {
        let attr = attr.into();
        self.bump();
        let before = self.db.object_req(id)?.clone();
        let mut after = before.clone();
        after.set(attr.clone(), value.clone());
        self.validate_object(&after)?;
        self.index_remove(&before);
        if let Err(e) = self.index_insert(&after) {
            self.index_insert(&before).expect("restoring old key");
            return Err(e);
        }
        self.db.update(id, attr.clone(), value.clone())?;
        if let Err(e) = self.check_class_and_db_constraints(&before.class) {
            // Restore the previous object state wholesale.
            self.db.remove(id).expect("object exists");
            self.db
                .insert(before.clone())
                .expect("reinsert during rollback");
            self.index_remove(&after);
            self.index_insert(&before).expect("restoring old key");
            return Err(e);
        }
        let old = before.get(&attr).clone();
        self.delta_update(&before.class, id, &attr, &old, &value);
        self.log_touched(id);
        if self.durability.is_some() {
            self.wal_op(WalRecord::DeltaUpdate {
                id,
                attr,
                old,
                new: value,
            })?;
        }
        Ok(())
    }

    /// Removes an object.
    pub fn remove(&mut self, id: ObjectId) -> Result<Object, StoreError> {
        self.bump();
        let obj = self.db.remove(id)?;
        self.index_remove(&obj);
        if let Err(e) = self.check_class_and_db_constraints(&obj.class.clone()) {
            self.index_insert(&obj).ok();
            self.db.insert(obj).expect("reinsert after failed remove");
            return Err(e);
        }
        self.delta_remove(&obj);
        self.log_touched(id);
        self.wal_op(WalRecord::DeltaRemove { id })?;
        Ok(obj)
    }

    /// Re-checks every constraint against the full state; returns all
    /// violated constraint ids. Used after bulk-loading pre-existing data.
    pub fn check_all(&self) -> Result<Vec<ConstraintId>, StoreError> {
        let mut bad = Vec::new();
        for oc in self.catalog.all_object() {
            let viol = interop_constraint::eval::check_object_constraint(&self.db, oc)?;
            if !viol.is_empty() {
                bad.push(oc.id.clone());
            }
        }
        for cc in self.catalog.all_class() {
            if check_class_constraint(&self.db, cc)? == Truth::False {
                bad.push(cc.id.clone());
            }
        }
        for dc in self.catalog.database_constraints() {
            if check_db_constraint(&self.db, dc)? == Truth::False {
                bad.push(dc.id.clone());
            }
        }
        Ok(bad)
    }
}

impl crate::plan::StatsSource for Store {
    fn attr_stats(&self, class: &ClassName, attr: &AttrName) -> Arc<AttrStats> {
        Store::attr_stats(self, class, attr)
    }

    fn note_composite_candidate(
        &self,
        class: &ClassName,
        pair: (&AttrName, &AttrName),
        joint_est: usize,
        min_single_est: usize,
    ) {
        // Gain gate: the pair qualifies only when its joint estimate
        // beats the cheaper single-atom posting by the policy factor
        // (joint floored at one row so an estimated-empty pair cannot
        // qualify everything).
        let policy = self.composite_policy;
        let mut adm = lock(&self.composites);
        adm.clock += 1;
        self.evict_stale_composites(&mut adm);
        if (min_single_est as f64) < policy.min_gain * joint_est.max(1) as f64 {
            return;
        }
        let key = (class.clone(), pair.0.clone(), pair.1.clone());
        if adm.admitted.contains_key(&key) {
            return;
        }
        if adm.sketch.observe(key.clone()) >= policy.admit_after {
            let now = adm.clock;
            adm.admitted.insert(key, now);
        }
    }

    fn composite_admitted(&self, class: &ClassName, pair: (&AttrName, &AttrName)) -> bool {
        let mut adm = lock(&self.composites);
        adm.clock += 1;
        let key = (class.clone(), pair.0.clone(), pair.1.clone());
        // A hit is a *use*: refresh the pair's recency before sweeping,
        // so the pair being asked about is never evicted out from under
        // the plan that asked.
        let now = adm.clock;
        let hit = match adm.admitted.get_mut(&key) {
            Some(last_use) => {
                *last_use = now;
                true
            }
            None => false,
        };
        self.evict_stale_composites(&mut adm);
        hit
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use interop_constraint::{CmpOp, ConstraintId, Formula, ObjectConstraint};
    use interop_model::{ClassDef, DbName, Schema, Type};

    fn store() -> Store {
        let schema = Schema::new(
            "Bookseller",
            vec![
                ClassDef::new("Item")
                    .attr("isbn", Type::Str)
                    .attr("shopprice", Type::Real)
                    .attr("libprice", Type::Real),
                ClassDef::new("Proceedings")
                    .isa("Item")
                    .attr("ref?", Type::Bool)
                    .attr("rating", Type::Range(1, 10)),
            ],
        )
        .unwrap();
        let db = Database::new(schema, 2);
        let dbn = DbName::new("Bookseller");
        let mut cat = Catalog::new();
        cat.add_object(ObjectConstraint::new(
            ConstraintId::new(&dbn, &ClassName::new("Item"), "oc1"),
            "Item",
            Formula::Cmp(
                interop_constraint::Expr::attr("libprice"),
                CmpOp::Le,
                interop_constraint::Expr::attr("shopprice"),
            ),
        ));
        cat.add_object(ObjectConstraint::new(
            ConstraintId::new(&dbn, &ClassName::new("Proceedings"), "oc2"),
            "Proceedings",
            Formula::cmp("ref?", CmpOp::Eq, true).implies(Formula::cmp("rating", CmpOp::Ge, 7i64)),
        ));
        cat.add_class(interop_constraint::ClassConstraint::key(
            ConstraintId::new(&dbn, &ClassName::new("Item"), "cc1"),
            "Item",
            vec!["isbn"],
        ));
        Store::new(db, cat)
    }

    #[test]
    fn insert_enforces_object_constraints() {
        let mut s = store();
        assert!(s
            .create(
                "Item",
                vec![
                    ("isbn", "A".into()),
                    ("shopprice", 29.0.into()),
                    ("libprice", 26.0.into())
                ]
            )
            .is_ok());
        let err = s
            .create(
                "Item",
                vec![
                    ("isbn", "B".into()),
                    ("shopprice", 20.0.into()),
                    ("libprice", 26.0.into()),
                ],
            )
            .unwrap_err();
        assert!(matches!(err, StoreError::ObjectConstraintViolated { .. }));
        assert_eq!(s.db().len(), 1);
    }

    #[test]
    fn inherited_constraints_enforced_on_subclass() {
        let mut s = store();
        let err = s
            .create(
                "Proceedings",
                vec![
                    ("isbn", "C".into()),
                    ("shopprice", 10.0.into()),
                    ("libprice", 20.0.into()),
                ],
            )
            .unwrap_err();
        assert!(matches!(err, StoreError::ObjectConstraintViolated { .. }));
    }

    #[test]
    fn conditional_constraint_enforced() {
        let mut s = store();
        let err = s
            .create(
                "Proceedings",
                vec![
                    ("isbn", "D".into()),
                    ("ref?", true.into()),
                    ("rating", 5i64.into()),
                ],
            )
            .unwrap_err();
        assert!(matches!(err, StoreError::ObjectConstraintViolated { .. }));
        assert!(s
            .create(
                "Proceedings",
                vec![
                    ("isbn", "D".into()),
                    ("ref?", true.into()),
                    ("rating", 8i64.into())
                ]
            )
            .is_ok());
    }

    #[test]
    fn key_enforced_via_index_across_hierarchy() {
        let mut s = store();
        s.create("Item", vec![("isbn", "X".into())]).unwrap();
        // A Proceedings (subclass) with the same isbn hits the Item key.
        let err = s
            .create("Proceedings", vec![("isbn", "X".into())])
            .unwrap_err();
        assert!(matches!(err, StoreError::KeyViolation { .. }));
        assert_eq!(s.db().len(), 1);
    }

    #[test]
    fn key_lookup_fast_path() {
        let mut s = store();
        let id = s.create("Item", vec![("isbn", "X".into())]).unwrap();
        assert_eq!(
            s.lookup_key(&ClassName::new("Item"), &[Value::str("X")]),
            Some(id)
        );
        assert_eq!(
            s.lookup_key(&ClassName::new("Proceedings"), &[Value::str("X")]),
            Some(id)
        );
        assert_eq!(
            s.key_attrs(&ClassName::new("Proceedings")).unwrap().len(),
            1
        );
    }

    #[test]
    fn update_enforces_and_reindexes() {
        let mut s = store();
        let a = s
            .create(
                "Item",
                vec![
                    ("isbn", "A".into()),
                    ("shopprice", 29.0.into()),
                    ("libprice", 26.0.into()),
                ],
            )
            .unwrap();
        // Violating update rejected, state unchanged.
        let err = s.update(a, "libprice", Value::real(35.0)).unwrap_err();
        assert!(matches!(err, StoreError::ObjectConstraintViolated { .. }));
        assert_eq!(
            s.db().object(a).unwrap().get(&AttrName::new("libprice")),
            &Value::real(26.0)
        );
        // Key change reindexes.
        s.update(a, "isbn", Value::str("A2")).unwrap();
        assert_eq!(
            s.lookup_key(&ClassName::new("Item"), &[Value::str("A2")]),
            Some(a)
        );
        assert_eq!(
            s.lookup_key(&ClassName::new("Item"), &[Value::str("A")]),
            None
        );
    }

    #[test]
    fn update_key_collision_restores_old_entry() {
        let mut s = store();
        let _a = s.create("Item", vec![("isbn", "A".into())]).unwrap();
        let b = s.create("Item", vec![("isbn", "B".into())]).unwrap();
        let err = s.update(b, "isbn", Value::str("A")).unwrap_err();
        assert!(matches!(err, StoreError::KeyViolation { .. }));
        // b still reachable under its old key.
        assert_eq!(
            s.lookup_key(&ClassName::new("Item"), &[Value::str("B")]),
            Some(b)
        );
    }

    #[test]
    fn validate_object_is_side_effect_free() {
        let s = store();
        let obj = Object::new(ObjectId::new(9, 0), ClassName::new("Item"))
            .with("isbn", "Z")
            .with("shopprice", 10.0)
            .with("libprice", 20.0);
        assert!(s.validate_object(&obj).is_err());
        assert_eq!(s.db().len(), 0);
    }

    #[test]
    fn version_bumps_on_every_mutation_attempt() {
        let mut s = store();
        let v0 = s.version();
        let a = s.create("Item", vec![("isbn", "A".into())]).unwrap();
        assert!(s.version() > v0);
        let v1 = s.version();
        // A *failed* mutation also invalidates (conservative).
        let _ = s.create("Item", vec![("isbn", "A".into())]).unwrap_err();
        assert!(s.version() > v1);
        let v2 = s.version();
        s.update(a, "isbn", Value::str("B")).unwrap();
        assert!(s.version() > v2);
        let v3 = s.version();
        s.remove(a).unwrap();
        assert!(s.version() > v3);
    }

    #[test]
    fn secondary_indexes_lazy_and_maintained() {
        let mut s = store();
        s.create("Item", vec![("isbn", "A".into())]).unwrap();
        s.create(
            "Proceedings",
            vec![("isbn", "B".into()), ("rating", 9i64.into())],
        )
        .unwrap();
        assert_eq!(s.secondary_cache_stats().1, 0, "nothing built eagerly");
        let item = ClassName::new("Item");
        let isbn = AttrName::new("isbn");
        let idx = s.hash_index(&item, &isbn);
        // Extension coverage: the Proceedings instance is in Item's index.
        assert_eq!(idx.postings(&Value::str("B")).len(), 1);
        assert_eq!(s.secondary_cache_stats().1, 1);
        // Same version ⇒ cached instance is reused.
        let again = s.hash_index(&item, &isbn);
        assert!(std::sync::Arc::ptr_eq(&idx, &again));
        // A mutation applies a delta; a reader holding the old Arc keeps
        // an unchanged (copy-on-write) snapshot while the cache serves
        // the updated postings.
        s.create("Item", vec![("isbn", "C".into())]).unwrap();
        let updated = s.hash_index(&item, &isbn);
        assert!(!std::sync::Arc::ptr_eq(&idx, &updated));
        assert_eq!(updated.postings(&Value::str("C")).len(), 1);
        assert_eq!(idx.postings(&Value::str("C")).len(), 0, "snapshot");
        // With no outside reader the delta lands in place — no rebuild.
        drop(idx);
        drop(again);
        drop(updated);
        let (v0, _) = s.secondary_cache_stats();
        s.create("Item", vec![("isbn", "D".into())]).unwrap();
        let after = s.hash_index(&item, &isbn);
        assert_eq!(after.postings(&Value::str("D")).len(), 1);
        assert_eq!(s.secondary_cache_stats().0, v0 + 1, "version stamped");
    }

    #[test]
    fn wholesale_mode_discards_on_every_mutation() {
        let mut s = store();
        s.set_index_maintenance(IndexMaintenance::Wholesale);
        s.create("Item", vec![("isbn", "A".into())]).unwrap();
        let item = ClassName::new("Item");
        let isbn = AttrName::new("isbn");
        let _ = s.hash_index(&item, &isbn);
        let _ = s.attr_stats(&item, &isbn);
        assert_eq!(s.secondary_cache_stats().1, 2);
        // A *failed* mutation also discards (conservative).
        let _ = s.create("Item", vec![("isbn", "A".into())]).unwrap_err();
        assert_eq!(s.secondary_cache_stats().1, 0);
        let rebuilt = s.hash_index(&item, &isbn);
        assert_eq!(rebuilt.postings(&Value::str("A")).len(), 1);
    }

    #[test]
    fn attr_stats_lazy_and_delta_maintained() {
        let mut s = store();
        let a = s
            .create(
                "Item",
                vec![("isbn", "A".into()), ("shopprice", 10.0.into())],
            )
            .unwrap();
        s.create(
            "Proceedings",
            vec![("isbn", "B".into()), ("shopprice", 20.0.into())],
        )
        .unwrap();
        let item = ClassName::new("Item");
        let price = AttrName::new("shopprice");
        let st = s.attr_stats(&item, &price);
        assert_eq!(st.total(), 2, "subclass instance counted");
        assert_eq!(st.distinct(), 2);
        // Update flips a value: stats follow without a rebuild.
        s.update(a, "shopprice", Value::real(20.0)).unwrap();
        let st = s.attr_stats(&item, &price);
        assert_eq!(st.total(), 2);
        assert_eq!(st.distinct(), 1, "10.0 gone, both at 20.0");
        assert_eq!(st.est_eq(&Value::real(20.0)), 2);
        // Remove shrinks the extension.
        s.remove(a).unwrap();
        let st = s.attr_stats(&item, &price);
        assert_eq!(st.total(), 1);
        // A failed mutation leaves stats untouched but stamps the cache.
        let before = s.secondary_cache_stats();
        let _ = s.create("Item", vec![("isbn", "B".into())]).unwrap_err();
        let after = s.secondary_cache_stats();
        assert_eq!(after.0, before.0 + 1);
        assert_eq!(s.attr_stats(&item, &price).total(), 1);
    }

    #[test]
    fn composite_admission_counts_qualifying_sightings() {
        use crate::plan::StatsSource;
        let s = store();
        let class = ClassName::new("Item");
        let isbn = AttrName::new("isbn");
        let price = AttrName::new("shopprice");
        // Default policy admits after 3 qualifying sightings.
        for expect in [false, false, true, true] {
            s.note_composite_candidate(&class, (&isbn, &price), 1, 50);
            assert_eq!(s.composite_admitted(&class, (&isbn, &price)), expect);
        }
        assert_eq!(s.admitted_composites().len(), 1);
        // The gain gate filters non-qualifying sightings entirely.
        let lib = AttrName::new("libprice");
        for _ in 0..5 {
            s.note_composite_candidate(&class, (&isbn, &lib), 40, 50);
        }
        assert!(
            !s.composite_admitted(&class, (&isbn, &lib)),
            "50 < 2.0 * 40: never qualifies"
        );
        assert_eq!(s.admitted_composites().len(), 1);
    }

    #[test]
    fn disabled_policy_never_admits() {
        use crate::plan::StatsSource;
        let mut s = store();
        s.set_composite_policy(CompositePolicy::disabled());
        let class = ClassName::new("Item");
        let isbn = AttrName::new("isbn");
        let price = AttrName::new("shopprice");
        for _ in 0..10 {
            s.note_composite_candidate(&class, (&isbn, &price), 1, 1_000_000);
        }
        assert!(!s.composite_admitted(&class, (&isbn, &price)));
    }

    #[test]
    fn composite_index_built_lazily_and_delta_maintained() {
        let mut s = store();
        let a = s
            .create(
                "Item",
                vec![("isbn", "A".into()), ("shopprice", 10.0.into())],
            )
            .unwrap();
        s.create(
            "Proceedings",
            vec![("isbn", "B".into()), ("shopprice", 10.0.into())],
        )
        .unwrap();
        s.create("Item", vec![("isbn", "C".into())]).unwrap(); // null price
        let item = ClassName::new("Item");
        let isbn = AttrName::new("isbn");
        let price = AttrName::new("shopprice");
        // Attr order is normalised: both accessors return the same index.
        let idx = s.composite_index(&item, &price, &isbn);
        let same = s.composite_index(&item, &isbn, &price);
        assert!(Arc::ptr_eq(&idx, &same));
        // isbn < shopprice, so pairs are (isbn, price); the subclass
        // instance is covered, the null-price object is not indexed.
        assert_eq!(
            idx.postings(&Value::str("A"), &Value::real(10.0)),
            &[a],
            "pair postings keyed by ascending attr order"
        );
        assert_eq!(idx.distinct(), 2);
        // Update of either component re-keys the pair.
        s.update(a, "shopprice", Value::real(20.0)).unwrap();
        let idx = s.composite_index(&item, &isbn, &price);
        assert!(idx
            .postings(&Value::str("A"), &Value::real(10.0))
            .is_empty());
        assert_eq!(idx.postings(&Value::str("A"), &Value::real(20.0)), &[a]);
        s.update(a, "isbn", Value::str("A2")).unwrap();
        let idx = s.composite_index(&item, &isbn, &price);
        assert_eq!(idx.postings(&Value::str("A2"), &Value::real(20.0)), &[a]);
        // A null update drops the pair; restoring re-adds it.
        s.update(a, "shopprice", Value::Null).unwrap();
        let idx = s.composite_index(&item, &isbn, &price);
        assert_eq!(idx.distinct(), 1, "only the Proceedings pair remains");
        // Remove takes the pair out.
        s.remove(a).unwrap();
        let idx = s.composite_index(&item, &isbn, &price);
        assert_eq!(idx.distinct(), 1);
    }

    #[test]
    fn wholesale_mode_discards_composites_but_keeps_admission() {
        use crate::plan::StatsSource;
        let mut s = store();
        s.set_index_maintenance(IndexMaintenance::Wholesale);
        s.create(
            "Item",
            vec![("isbn", "A".into()), ("shopprice", 10.0.into())],
        )
        .unwrap();
        let item = ClassName::new("Item");
        let isbn = AttrName::new("isbn");
        let price = AttrName::new("shopprice");
        for _ in 0..3 {
            s.note_composite_candidate(&item, (&isbn, &price), 1, 10);
        }
        assert!(s.composite_admitted(&item, (&isbn, &price)));
        let _ = s.composite_index(&item, &isbn, &price);
        let before = s.secondary_cache_stats().1;
        assert!(before > 0);
        s.create("Item", vec![("isbn", "B".into())]).unwrap();
        assert_eq!(s.secondary_cache_stats().1, 0, "composite discarded too");
        // Admission is workload state: it survives the discard and the
        // index rebuilds lazily with the mutation applied.
        assert!(s.composite_admitted(&item, (&isbn, &price)));
        let idx = s.composite_index(&item, &isbn, &price);
        assert_eq!(idx.postings(&Value::str("A"), &Value::real(10.0)).len(), 1);
    }

    #[test]
    fn stale_composite_evicted_and_readmittable() {
        use crate::plan::StatsSource;
        let mut s = store();
        s.set_composite_policy(CompositePolicy {
            admit_after: 2,
            min_gain: 2.0,
            evict_after: 3,
        });
        s.create(
            "Item",
            vec![("isbn", "A".into()), ("shopprice", 10.0.into())],
        )
        .unwrap();
        let item = ClassName::new("Item");
        let isbn = AttrName::new("isbn");
        let price = AttrName::new("shopprice");
        let lib = AttrName::new("libprice");
        for _ in 0..2 {
            s.note_composite_candidate(&item, (&isbn, &price), 1, 10);
        }
        assert!(s.composite_admitted(&item, (&isbn, &price)));
        let _ = s.composite_index(&item, &isbn, &price);
        let materialised = s.secondary_cache_stats().1;
        assert!(materialised > 0);
        // Probe *other* pairs past `evict_after` without touching the
        // admitted one: its admission is revoked and the materialised
        // index is dropped, so it stops charging the write path.
        for _ in 0..5 {
            s.note_composite_candidate(&item, (&isbn, &lib), 40, 50);
        }
        assert!(s.admitted_composites().is_empty(), "stale pair evicted");
        assert!(
            s.secondary_cache_stats().1 < materialised,
            "materialised composite dropped with the admission"
        );
        // The sketch count was forgotten too: one qualifying sighting is
        // not enough to come straight back...
        s.note_composite_candidate(&item, (&isbn, &price), 1, 10);
        assert!(!s.composite_admitted(&item, (&isbn, &price)));
        // ...but fresh qualifying sightings re-admit as usual.
        s.note_composite_candidate(&item, (&isbn, &price), 1, 10);
        assert!(s.composite_admitted(&item, (&isbn, &price)));
        assert_eq!(s.admitted_composites().len(), 1);
    }

    #[test]
    fn hot_composite_survives_its_own_probes() {
        use crate::plan::StatsSource;
        let mut s = store();
        s.set_composite_policy(CompositePolicy {
            admit_after: 1,
            min_gain: 0.0,
            evict_after: 2,
        });
        let item = ClassName::new("Item");
        let isbn = AttrName::new("isbn");
        let price = AttrName::new("shopprice");
        s.note_composite_candidate(&item, (&isbn, &price), 1, 10);
        // A pair probed every consultation refreshes its last-use stamp
        // before the eviction sweep runs, so it is never evicted by the
        // very queries that keep it hot.
        for _ in 0..10 {
            assert!(s.composite_admitted(&item, (&isbn, &price)));
        }
    }

    #[test]
    fn failed_ops_and_rollbacks_keep_incremental_caches() {
        use crate::txn::{Transaction, TxnOutcome};
        let mut s = store();
        let a = s
            .create(
                "Item",
                vec![("isbn", "A".into()), ("shopprice", 10.0.into())],
            )
            .unwrap();
        let item = ClassName::new("Item");
        let isbn = AttrName::new("isbn");
        let price = AttrName::new("shopprice");
        let idx = s.hash_index(&item, &isbn);
        let st = s.attr_stats(&item, &price);
        let built = s.secondary_cache_stats().1;
        // A failed create bumps the version (conservative invalidation
        // for *readers holding snapshots*) but must not throw away the
        // incremental cache: nothing in the database changed.
        let _ = s.create("Item", vec![("isbn", "A".into())]).unwrap_err();
        assert_eq!(s.secondary_cache_stats().1, built, "entries kept");
        assert!(
            Arc::ptr_eq(&idx, &s.hash_index(&item, &isbn)),
            "failed op reuses the built index, no rebuild"
        );
        assert!(Arc::ptr_eq(&st, &s.attr_stats(&item, &price)));
        // A rolled-back transaction applies ops and then undoes them
        // through the same mutators, so every delta is mirrored by its
        // inverse: the cache stays correct without a rebuild.
        let txn = Transaction::new()
            .update(a, "shopprice", Value::real(99.0))
            .update(a, "isbn", Value::int(7)); // type error ⇒ rollback
        let outcome = txn.commit(&mut s);
        assert!(matches!(outcome, TxnOutcome::RolledBack { .. }));
        assert_eq!(s.secondary_cache_stats().1, built, "entries kept");
        let idx = s.hash_index(&item, &isbn);
        assert_eq!(idx.postings(&Value::str("A")), &[a], "postings correct");
        let st = s.attr_stats(&item, &price);
        assert_eq!(st.est_eq(&Value::real(10.0)), 1, "stats correct");
        assert_eq!(st.est_eq(&Value::real(99.0)), 0, "no ghost of the undo");
    }

    #[test]
    fn hist_staleness_oscillation_cannot_skew_stats() {
        let mut s = store();
        let item = ClassName::new("Item");
        let price = AttrName::new("shopprice");
        let mut ids = Vec::new();
        for i in 0..16 {
            ids.push(
                s.create(
                    "Item",
                    vec![
                        ("isbn", format!("I{i}").as_str().into()),
                        ("shopprice", (i as f64).into()),
                    ],
                )
                .unwrap(),
            );
        }
        let _ = s.attr_stats(&item, &price); // histogram built at 16 rows
                                             // Hover under the 2× drift threshold: churn that never crosses
                                             // it must keep the delta-maintained stats equal to a scratch
                                             // rebuild — the histogram keeps exact counts for its fixed
                                             // boundaries, so no skew accumulates.
        for round in 0..6 {
            let id = ids.pop().unwrap();
            s.remove(id).unwrap();
            ids.push(
                s.create(
                    "Item",
                    vec![
                        ("isbn", format!("R{round}").as_str().into()),
                        ("shopprice", (round as f64 + 0.5).into()),
                    ],
                )
                .unwrap(),
            );
            let st = s.attr_stats(&item, &price);
            assert!(!st.hist_stale(), "hovering churn stays fresh");
            let scratch = AttrStats::rebuild_like(
                &st,
                s.db()
                    .extension(&item)
                    .iter()
                    .map(|&id| s.db().object(id).unwrap().get(&price)),
            );
            for v in s
                .db()
                .objects()
                .map(|o| o.get(&price).clone())
                .collect::<Vec<_>>()
            {
                assert_eq!(st.est_eq(&v), scratch.est_eq(&v), "exact under churn");
            }
        }
        // Now cross the threshold: the next read rebuilds in place and
        // the fresh summary is not stale again (no oscillation).
        for i in 0..40 {
            s.create(
                "Item",
                vec![
                    ("isbn", format!("G{i}").as_str().into()),
                    ("shopprice", (100.0 + i as f64).into()),
                ],
            )
            .unwrap();
        }
        let st = s.attr_stats(&item, &price);
        assert!(!st.hist_stale(), "rebuilt at the new size");
        assert_eq!(st.total(), s.db().extension(&item).len());
        // And shrinking back below half triggers exactly one more
        // rebuild, after which the summary is fresh again.
        let all: Vec<_> = s.db().objects().map(|o| o.id).collect();
        for id in all.iter().skip(8) {
            s.remove(*id).unwrap();
        }
        let st = s.attr_stats(&item, &price);
        assert!(!st.hist_stale());
        assert_eq!(st.total(), s.db().extension(&item).len());
    }

    #[test]
    fn remove_and_check_all() {
        let mut s = store();
        let a = s.create("Item", vec![("isbn", "A".into())]).unwrap();
        assert!(s.check_all().unwrap().is_empty());
        s.remove(a).unwrap();
        assert_eq!(s.db().len(), 0);
        assert_eq!(
            s.lookup_key(&ClassName::new("Item"), &[Value::str("A")]),
            None
        );
    }
}
