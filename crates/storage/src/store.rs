//! The constraint-enforcing store.

use std::cell::RefCell;
use std::fmt;
use std::sync::Arc;

use interop_constraint::eval::{check_class_constraint, check_db_constraint, eval_formula, Truth};
use interop_constraint::{Catalog, ConstraintId};
use interop_model::fx::FxHashMap;
use interop_model::{AttrName, ClassName, Database, ModelError, Object, ObjectId, Value};

use crate::index::{HashIndex, IndexSet, KeyIndex, SortedIndex};

/// Errors from store operations.
#[derive(Clone, Debug, PartialEq)]
pub enum StoreError {
    /// The underlying model rejected the operation (type error etc.).
    Model(ModelError),
    /// An object constraint is violated by the written object.
    ObjectConstraintViolated {
        /// The violated constraint.
        constraint: ConstraintId,
        /// The violating object.
        object: ObjectId,
    },
    /// A class constraint is violated by the resulting extension.
    ClassConstraintViolated {
        /// The violated constraint.
        constraint: ConstraintId,
    },
    /// A database constraint is violated by the resulting state.
    DbConstraintViolated {
        /// The violated constraint.
        constraint: ConstraintId,
    },
    /// A key collision (fast-path detection via the index).
    KeyViolation {
        /// The class whose key is violated.
        class: ClassName,
        /// The object already holding the key.
        holder: ObjectId,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Model(e) => write!(f, "model error: {e}"),
            StoreError::ObjectConstraintViolated { constraint, object } => {
                write!(f, "object {object} violates constraint {constraint}")
            }
            StoreError::ClassConstraintViolated { constraint } => {
                write!(f, "class constraint {constraint} violated")
            }
            StoreError::DbConstraintViolated { constraint } => {
                write!(f, "database constraint {constraint} violated")
            }
            StoreError::KeyViolation { class, holder } => {
                write!(f, "key of class {class} already held by object {holder}")
            }
        }
    }
}

impl std::error::Error for StoreError {}

impl From<ModelError> for StoreError {
    fn from(e: ModelError) -> Self {
        StoreError::Model(e)
    }
}

/// Lazily built secondary indexes, keyed by the *queried* class (whose
/// extension they cover) and attribute. `version` records the store
/// mutation counter the cache was built against; any mismatch discards
/// the whole cache, so a stale index can never serve a query.
#[derive(Clone, Debug, Default)]
struct SecondaryCache {
    version: u64,
    hash: FxHashMap<ClassName, FxHashMap<AttrName, Arc<HashIndex>>>,
    sorted: FxHashMap<ClassName, FxHashMap<AttrName, Arc<SortedIndex>>>,
}

/// A database plus its enforced constraint catalog and key indexes.
#[derive(Clone, Debug)]
pub struct Store {
    db: Database,
    catalog: Catalog,
    indexes: IndexSet,
    /// Bumped on every mutation attempt that may have touched state;
    /// secondary indexes are valid only for the version they were built at.
    version: u64,
    secondary: RefCell<SecondaryCache>,
}

impl Store {
    /// Creates a store over an (empty or pre-populated) database. Builds
    /// key indexes from the catalog's key constraints; pre-existing
    /// objects are indexed (and trusted to satisfy the constraints —
    /// callers loading untrusted data should [`Store::check_all`]).
    pub fn new(db: Database, catalog: Catalog) -> Self {
        let mut indexes = IndexSet::new();
        for cc in catalog.all_class() {
            if let interop_constraint::ClassConstraintBody::Key(attrs) = &cc.body {
                indexes.insert(cc.class.clone(), KeyIndex::new(attrs.clone()));
            }
        }
        let mut store = Store {
            db,
            catalog,
            indexes,
            version: 0,
            secondary: RefCell::new(SecondaryCache::default()),
        };
        // Index existing objects.
        let ids: Vec<ObjectId> = store.db.objects().map(|o| o.id).collect();
        for id in ids {
            let obj = store.db.object(id).expect("listed").clone();
            store.index_insert(&obj).ok();
        }
        store
    }

    /// Immutable access to the underlying database.
    pub fn db(&self) -> &Database {
        &self.db
    }

    /// The enforced catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Consumes the store, returning the database.
    pub fn into_db(self) -> Database {
        self.db
    }

    fn index_class_for(&self, class: &ClassName) -> Option<ClassName> {
        // The index lives at the class where `key` is declared; an object
        // of a subclass belongs to the ancestor's index.
        self.db
            .schema
            .self_and_ancestors(class)
            .into_iter()
            .find(|c| self.indexes.contains_key(c))
    }

    fn index_insert(&mut self, obj: &Object) -> Result<(), StoreError> {
        if let Some(c) = self.index_class_for(&obj.class) {
            let idx = self.indexes.get_mut(&c).expect("found above");
            idx.insert(obj).map_err(|holder| StoreError::KeyViolation {
                class: c.clone(),
                holder,
            })?;
        }
        Ok(())
    }

    fn index_remove(&mut self, obj: &Object) {
        if let Some(c) = self.index_class_for(&obj.class) {
            self.indexes.get_mut(&c).expect("found above").remove(obj);
        }
    }

    /// Key lookup via the index (used by the query fast path).
    pub fn lookup_key(&self, class: &ClassName, key: &[Value]) -> Option<ObjectId> {
        let c = self.index_class_for(class)?;
        self.indexes[&c].get(key)
    }

    /// The key attributes indexed for `class`, if any.
    pub fn key_attrs(&self, class: &ClassName) -> Option<&[AttrName]> {
        let c = self.index_class_for(class)?;
        Some(self.indexes[&c].attrs())
    }

    /// The store's mutation counter. Bumped by every (attempted) insert,
    /// update or remove; secondary indexes built at an older version are
    /// discarded before they can serve a query.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Drops every cached secondary index if the store has mutated since
    /// the cache was built. Called on each index access.
    fn refresh_secondary(&self, cache: &mut SecondaryCache) {
        if cache.version != self.version {
            cache.hash.clear();
            cache.sorted.clear();
            cache.version = self.version;
        }
    }

    /// The equality (hash) index over `class`'s extension for `attr`,
    /// building it on first use.
    pub fn hash_index(&self, class: &ClassName, attr: &AttrName) -> Arc<HashIndex> {
        let mut cache = self.secondary.borrow_mut();
        self.refresh_secondary(&mut cache);
        if let Some(idx) = cache.hash.get(class).and_then(|m| m.get(attr)) {
            return Arc::clone(idx);
        }
        let idx = Arc::new(HashIndex::build(self.db.extension(class).into_iter().map(
            |id| {
                let obj = self.db.object(id).expect("extension lists live objects");
                (obj.get(attr).clone(), id)
            },
        )));
        cache
            .hash
            .entry(class.clone())
            .or_default()
            .insert(attr.clone(), Arc::clone(&idx));
        idx
    }

    /// The range (sorted) index over `class`'s extension for `attr`,
    /// building it on first use.
    pub fn sorted_index(&self, class: &ClassName, attr: &AttrName) -> Arc<SortedIndex> {
        let mut cache = self.secondary.borrow_mut();
        self.refresh_secondary(&mut cache);
        if let Some(idx) = cache.sorted.get(class).and_then(|m| m.get(attr)) {
            return Arc::clone(idx);
        }
        let ids = self.db.extension(class);
        let idx = Arc::new(SortedIndex::build(ids.iter().map(|&id| {
            let obj = self.db.object(id).expect("extension lists live objects");
            (obj.get(attr), id)
        })));
        cache
            .sorted
            .entry(class.clone())
            .or_default()
            .insert(attr.clone(), Arc::clone(&idx));
        idx
    }

    /// How many secondary indexes are currently cached, and the version
    /// they are valid for. Test/diagnostic hook for invalidation checks.
    pub fn secondary_cache_stats(&self) -> (u64, usize) {
        let cache = self.secondary.borrow();
        let n = cache.hash.values().map(|m| m.len()).sum::<usize>()
            + cache.sorted.values().map(|m| m.len()).sum::<usize>();
        (cache.version, n)
    }

    /// Validates an object against the *object constraints* effective on
    /// its class without touching the store. This is the early-validation
    /// primitive: a global transaction manager can reject a doomed
    /// subtransaction before submitting it (§1's update-validation
    /// use-case).
    pub fn validate_object(&self, obj: &Object) -> Result<(), StoreError> {
        self.db.typecheck(obj)?;
        for oc in self.catalog.object_effective(&self.db.schema, &obj.class) {
            let t = eval_formula(&self.db, obj, &oc.formula)?;
            if t == Truth::False {
                return Err(StoreError::ObjectConstraintViolated {
                    constraint: oc.id.clone(),
                    object: obj.id,
                });
            }
        }
        Ok(())
    }

    fn check_class_and_db_constraints(&self, touched: &ClassName) -> Result<(), StoreError> {
        for c in self.db.schema.self_and_ancestors(touched) {
            for cc in self.catalog.class_on(&c) {
                // Keys are enforced incrementally via the index; re-check
                // aggregates only.
                if cc.is_key() {
                    continue;
                }
                if check_class_constraint(&self.db, cc)? == Truth::False {
                    return Err(StoreError::ClassConstraintViolated {
                        constraint: cc.id.clone(),
                    });
                }
            }
        }
        for dc in self.catalog.database_constraints() {
            if check_db_constraint(&self.db, dc)? == Truth::False {
                return Err(StoreError::DbConstraintViolated {
                    constraint: dc.id.clone(),
                });
            }
        }
        Ok(())
    }

    /// Inserts an object, enforcing all constraints. On any violation the
    /// store is left unchanged.
    pub fn insert(&mut self, obj: Object) -> Result<(), StoreError> {
        // Conservative invalidation: bump even when the insert later
        // fails — a failed op leaves state unchanged, so the only cost is
        // a rebuild on the next query.
        self.version += 1;
        self.validate_object(&obj)?;
        self.index_insert(&obj)?;
        let class = obj.class.clone();
        let id = obj.id;
        if let Err(e) = self.db.insert(obj) {
            // Roll the index entry back.
            if let Some(o) = self.db.object(id) {
                let o = o.clone();
                self.index_remove(&o);
            }
            return Err(e.into());
        }
        if let Err(e) = self.check_class_and_db_constraints(&class) {
            let obj = self.db.remove(id).expect("just inserted");
            self.index_remove(&obj);
            return Err(e);
        }
        Ok(())
    }

    /// Creates and inserts an object of `class`, returning its id.
    pub fn create(
        &mut self,
        class: impl Into<ClassName>,
        attrs: Vec<(&str, Value)>,
    ) -> Result<ObjectId, StoreError> {
        let class = class.into();
        let id = self.db.fresh_id();
        let mut obj = Object::new(id, class);
        for (name, v) in attrs {
            obj.set(name, v);
        }
        self.insert(obj)?;
        Ok(id)
    }

    /// Updates one attribute, enforcing all constraints; rolls back on
    /// violation.
    pub fn update(
        &mut self,
        id: ObjectId,
        attr: impl Into<AttrName>,
        value: Value,
    ) -> Result<(), StoreError> {
        let attr = attr.into();
        self.version += 1;
        let before = self.db.object_req(id)?.clone();
        let mut after = before.clone();
        after.set(attr.clone(), value.clone());
        self.validate_object(&after)?;
        self.index_remove(&before);
        if let Err(e) = self.index_insert(&after) {
            self.index_insert(&before).expect("restoring old key");
            return Err(e);
        }
        self.db.update(id, attr, value)?;
        if let Err(e) = self.check_class_and_db_constraints(&before.class) {
            // Restore the previous object state wholesale.
            self.db.remove(id).expect("object exists");
            self.db
                .insert(before.clone())
                .expect("reinsert during rollback");
            self.index_remove(&after);
            self.index_insert(&before).expect("restoring old key");
            return Err(e);
        }
        Ok(())
    }

    /// Removes an object.
    pub fn remove(&mut self, id: ObjectId) -> Result<Object, StoreError> {
        self.version += 1;
        let obj = self.db.remove(id)?;
        self.index_remove(&obj);
        if let Err(e) = self.check_class_and_db_constraints(&obj.class.clone()) {
            self.index_insert(&obj).ok();
            self.db.insert(obj).expect("reinsert after failed remove");
            return Err(e);
        }
        Ok(obj)
    }

    /// Re-checks every constraint against the full state; returns all
    /// violated constraint ids. Used after bulk-loading pre-existing data.
    pub fn check_all(&self) -> Result<Vec<ConstraintId>, StoreError> {
        let mut bad = Vec::new();
        for oc in self.catalog.all_object() {
            let viol = interop_constraint::eval::check_object_constraint(&self.db, oc)?;
            if !viol.is_empty() {
                bad.push(oc.id.clone());
            }
        }
        for cc in self.catalog.all_class() {
            if check_class_constraint(&self.db, cc)? == Truth::False {
                bad.push(cc.id.clone());
            }
        }
        for dc in self.catalog.database_constraints() {
            if check_db_constraint(&self.db, dc)? == Truth::False {
                bad.push(dc.id.clone());
            }
        }
        Ok(bad)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use interop_constraint::{CmpOp, ConstraintId, Formula, ObjectConstraint};
    use interop_model::{ClassDef, DbName, Schema, Type};

    fn store() -> Store {
        let schema = Schema::new(
            "Bookseller",
            vec![
                ClassDef::new("Item")
                    .attr("isbn", Type::Str)
                    .attr("shopprice", Type::Real)
                    .attr("libprice", Type::Real),
                ClassDef::new("Proceedings")
                    .isa("Item")
                    .attr("ref?", Type::Bool)
                    .attr("rating", Type::Range(1, 10)),
            ],
        )
        .unwrap();
        let db = Database::new(schema, 2);
        let dbn = DbName::new("Bookseller");
        let mut cat = Catalog::new();
        cat.add_object(ObjectConstraint::new(
            ConstraintId::new(&dbn, &ClassName::new("Item"), "oc1"),
            "Item",
            Formula::Cmp(
                interop_constraint::Expr::attr("libprice"),
                CmpOp::Le,
                interop_constraint::Expr::attr("shopprice"),
            ),
        ));
        cat.add_object(ObjectConstraint::new(
            ConstraintId::new(&dbn, &ClassName::new("Proceedings"), "oc2"),
            "Proceedings",
            Formula::cmp("ref?", CmpOp::Eq, true).implies(Formula::cmp("rating", CmpOp::Ge, 7i64)),
        ));
        cat.add_class(interop_constraint::ClassConstraint::key(
            ConstraintId::new(&dbn, &ClassName::new("Item"), "cc1"),
            "Item",
            vec!["isbn"],
        ));
        Store::new(db, cat)
    }

    #[test]
    fn insert_enforces_object_constraints() {
        let mut s = store();
        assert!(s
            .create(
                "Item",
                vec![
                    ("isbn", "A".into()),
                    ("shopprice", 29.0.into()),
                    ("libprice", 26.0.into())
                ]
            )
            .is_ok());
        let err = s
            .create(
                "Item",
                vec![
                    ("isbn", "B".into()),
                    ("shopprice", 20.0.into()),
                    ("libprice", 26.0.into()),
                ],
            )
            .unwrap_err();
        assert!(matches!(err, StoreError::ObjectConstraintViolated { .. }));
        assert_eq!(s.db().len(), 1);
    }

    #[test]
    fn inherited_constraints_enforced_on_subclass() {
        let mut s = store();
        let err = s
            .create(
                "Proceedings",
                vec![
                    ("isbn", "C".into()),
                    ("shopprice", 10.0.into()),
                    ("libprice", 20.0.into()),
                ],
            )
            .unwrap_err();
        assert!(matches!(err, StoreError::ObjectConstraintViolated { .. }));
    }

    #[test]
    fn conditional_constraint_enforced() {
        let mut s = store();
        let err = s
            .create(
                "Proceedings",
                vec![
                    ("isbn", "D".into()),
                    ("ref?", true.into()),
                    ("rating", 5i64.into()),
                ],
            )
            .unwrap_err();
        assert!(matches!(err, StoreError::ObjectConstraintViolated { .. }));
        assert!(s
            .create(
                "Proceedings",
                vec![
                    ("isbn", "D".into()),
                    ("ref?", true.into()),
                    ("rating", 8i64.into())
                ]
            )
            .is_ok());
    }

    #[test]
    fn key_enforced_via_index_across_hierarchy() {
        let mut s = store();
        s.create("Item", vec![("isbn", "X".into())]).unwrap();
        // A Proceedings (subclass) with the same isbn hits the Item key.
        let err = s
            .create("Proceedings", vec![("isbn", "X".into())])
            .unwrap_err();
        assert!(matches!(err, StoreError::KeyViolation { .. }));
        assert_eq!(s.db().len(), 1);
    }

    #[test]
    fn key_lookup_fast_path() {
        let mut s = store();
        let id = s.create("Item", vec![("isbn", "X".into())]).unwrap();
        assert_eq!(
            s.lookup_key(&ClassName::new("Item"), &[Value::str("X")]),
            Some(id)
        );
        assert_eq!(
            s.lookup_key(&ClassName::new("Proceedings"), &[Value::str("X")]),
            Some(id)
        );
        assert_eq!(
            s.key_attrs(&ClassName::new("Proceedings")).unwrap().len(),
            1
        );
    }

    #[test]
    fn update_enforces_and_reindexes() {
        let mut s = store();
        let a = s
            .create(
                "Item",
                vec![
                    ("isbn", "A".into()),
                    ("shopprice", 29.0.into()),
                    ("libprice", 26.0.into()),
                ],
            )
            .unwrap();
        // Violating update rejected, state unchanged.
        let err = s.update(a, "libprice", Value::real(35.0)).unwrap_err();
        assert!(matches!(err, StoreError::ObjectConstraintViolated { .. }));
        assert_eq!(
            s.db().object(a).unwrap().get(&AttrName::new("libprice")),
            &Value::real(26.0)
        );
        // Key change reindexes.
        s.update(a, "isbn", Value::str("A2")).unwrap();
        assert_eq!(
            s.lookup_key(&ClassName::new("Item"), &[Value::str("A2")]),
            Some(a)
        );
        assert_eq!(
            s.lookup_key(&ClassName::new("Item"), &[Value::str("A")]),
            None
        );
    }

    #[test]
    fn update_key_collision_restores_old_entry() {
        let mut s = store();
        let _a = s.create("Item", vec![("isbn", "A".into())]).unwrap();
        let b = s.create("Item", vec![("isbn", "B".into())]).unwrap();
        let err = s.update(b, "isbn", Value::str("A")).unwrap_err();
        assert!(matches!(err, StoreError::KeyViolation { .. }));
        // b still reachable under its old key.
        assert_eq!(
            s.lookup_key(&ClassName::new("Item"), &[Value::str("B")]),
            Some(b)
        );
    }

    #[test]
    fn validate_object_is_side_effect_free() {
        let s = store();
        let obj = Object::new(ObjectId::new(9, 0), ClassName::new("Item"))
            .with("isbn", "Z")
            .with("shopprice", 10.0)
            .with("libprice", 20.0);
        assert!(s.validate_object(&obj).is_err());
        assert_eq!(s.db().len(), 0);
    }

    #[test]
    fn version_bumps_on_every_mutation_attempt() {
        let mut s = store();
        let v0 = s.version();
        let a = s.create("Item", vec![("isbn", "A".into())]).unwrap();
        assert!(s.version() > v0);
        let v1 = s.version();
        // A *failed* mutation also invalidates (conservative).
        let _ = s.create("Item", vec![("isbn", "A".into())]).unwrap_err();
        assert!(s.version() > v1);
        let v2 = s.version();
        s.update(a, "isbn", Value::str("B")).unwrap();
        assert!(s.version() > v2);
        let v3 = s.version();
        s.remove(a).unwrap();
        assert!(s.version() > v3);
    }

    #[test]
    fn secondary_indexes_lazy_and_invalidated() {
        let mut s = store();
        s.create("Item", vec![("isbn", "A".into())]).unwrap();
        s.create(
            "Proceedings",
            vec![("isbn", "B".into()), ("rating", 9i64.into())],
        )
        .unwrap();
        assert_eq!(s.secondary_cache_stats().1, 0, "nothing built eagerly");
        let item = ClassName::new("Item");
        let isbn = AttrName::new("isbn");
        let idx = s.hash_index(&item, &isbn);
        // Extension coverage: the Proceedings instance is in Item's index.
        assert_eq!(idx.postings(&Value::str("B")).len(), 1);
        assert_eq!(s.secondary_cache_stats().1, 1);
        // Same version ⇒ cached instance is reused.
        let again = s.hash_index(&item, &isbn);
        assert!(std::sync::Arc::ptr_eq(&idx, &again));
        // Any mutation drops the whole cache.
        s.create("Item", vec![("isbn", "C".into())]).unwrap();
        let rebuilt = s.hash_index(&item, &isbn);
        assert!(!std::sync::Arc::ptr_eq(&idx, &rebuilt));
        assert_eq!(rebuilt.postings(&Value::str("C")).len(), 1);
    }

    #[test]
    fn remove_and_check_all() {
        let mut s = store();
        let a = s.create("Item", vec![("isbn", "A".into())]).unwrap();
        assert!(s.check_all().unwrap().is_empty());
        s.remove(a).unwrap();
        assert_eq!(s.db().len(), 0);
        assert_eq!(
            s.lookup_key(&ClassName::new("Item"), &[Value::str("A")]),
            None
        );
    }
}
