//! # interop-storage
//!
//! An in-memory, constraint-enforcing object store — the component-DBMS
//! substrate the paper assumes ("the scope of this paper is restricted to
//! constraints that are being enforced by the component databases").
//!
//! A [`Store`] couples a populated [`interop_model::Database`] with its
//! [`interop_constraint::Catalog`] and rejects inserts/updates that
//! violate any object, class, or database constraint. [`txn`] adds
//! multi-operation transactions with validate-then-commit semantics and
//! rollback, plus the *early validation* API that powers the paper's
//! motivating use-case of pre-validating global update subtransactions.
//! [`query`]/[`plan`]/[`optimize`] implement predicate queries and the
//! paper's other motivating use-case: optimising queries with derived
//! global constraints. The [`plan`] module compiles a predicate into
//! index-satisfiable, constraint-pruned (implied-true), and residual
//! conjuncts; [`optimize`] executes the plan against lazily built
//! secondary indexes (hash postings for equality, sorted entries for
//! ranges), pruning subqueries whose predicate contradicts a (derived)
//! global constraint without scanning at all.

pub mod index;
pub mod optimize;
pub mod plan;
pub mod query;
pub mod store;
pub mod txn;

pub use index::{HashIndex, KeyIndex, SortedIndex};
pub use optimize::{execute_plan, OptimizeOutcome, Optimizer};
pub use plan::{IndexAtom, QueryPlan, Step};
pub use query::Query;
pub use store::{Store, StoreError};
pub use txn::{Transaction, TxnOp, TxnOutcome};
