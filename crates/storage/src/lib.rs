//! # interop-storage
//!
//! An in-memory, constraint-enforcing object store — the component-DBMS
//! substrate the paper assumes ("the scope of this paper is restricted to
//! constraints that are being enforced by the component databases").
//!
//! A [`Store`] couples a populated [`interop_model::Database`] with its
//! [`interop_constraint::Catalog`] and rejects inserts/updates that
//! violate any object, class, or database constraint. [`txn`] adds
//! multi-operation transactions with validate-then-commit semantics and
//! rollback, plus the *early validation* API that powers the paper's
//! motivating use-case of pre-validating global update subtransactions.
//! [`query`]/[`optimize`] implement predicate queries and the paper's
//! other motivating use-case: pruning subqueries whose predicate
//! contradicts a (derived) global constraint, without scanning.

pub mod index;
pub mod optimize;
pub mod query;
pub mod store;
pub mod txn;

pub use index::KeyIndex;
pub use optimize::{OptimizeOutcome, Optimizer};
pub use query::Query;
pub use store::{Store, StoreError};
pub use txn::{Transaction, TxnOp, TxnOutcome};
