//! # interop-storage
//!
//! An in-memory, constraint-enforcing object store — the component-DBMS
//! substrate the paper assumes ("the scope of this paper is restricted to
//! constraints that are being enforced by the component databases").
//!
//! A [`Store`] couples a populated [`interop_model::Database`] with its
//! [`interop_constraint::Catalog`] and rejects inserts/updates that
//! violate any object, class, or database constraint. [`txn`] adds
//! multi-operation transactions with validate-then-commit semantics and
//! rollback, plus the *early validation* API that powers the paper's
//! motivating use-case of pre-validating global update subtransactions.
//! [`mvcc`] promotes the store to multi-version concurrency — many
//! sessions over one shared store, snapshot reads, first-committer-wins
//! conflict detection — and [`oracle`] verifies it black-box, by
//! checking recorded concurrent histories for an acyclic serialization
//! graph. [`query`]/[`plan`]/[`optimize`] implement predicate queries and the
//! paper's other motivating use-case: optimising queries with derived
//! global constraints. The [`plan`] module compiles a predicate into
//! index-satisfiable, constraint-pruned (implied-true), and residual
//! conjuncts and costs it against per-`(class, attr)` statistics
//! ([`stats`]); [`optimize`] executes the costed plan against lazily
//! built secondary indexes (hash postings for equality, sorted entries
//! for ranges), pruning subqueries whose predicate contradicts a
//! (derived) global constraint without scanning at all, and exposes
//! every decision through [`Optimizer::explain`]. [`wal`] and
//! [`snapshot`] add durability: [`Store::open`] recovers the newest
//! valid snapshot plus the committed tail of a size-rotated segmented
//! write-ahead log, a [`wal::GroupCommitPolicy`] amortizes the
//! commit-boundary fsync across concurrent sessions (with pipelined
//! acknowledgement via [`mvcc::MvccTxn::commit_pipelined`]), and
//! [`store::DurabilityMode::Off`] keeps every in-memory path exactly as
//! before.
//!
//! # Invariants
//!
//! * **Posting lists are sorted by id and duplicate-free** — batch
//!   intersection is a linear merge; the incremental delta operations
//!   preserve the invariant by binary-searched insertion. Composite
//!   pair postings ([`index::CompositeIndex`]) obey the same rules.
//! * **Nulls are never indexed.** A posting hit *is* `Truth::True` for
//!   its conjunct under three-valued semantics; equality postings skip
//!   nulls, sorted indexes hold numerics only, and a composite skips an
//!   object when *either* component is null (the conjunction would be
//!   `Unknown`).
//! * **Pair canonicalisation**: a composite is keyed by the ascending
//!   attribute pair and by [`index::canon_key`]-canonical values, so the
//!   admission sketch, the planner's [`plan::CompositeProbe`] and the
//!   store's cache agree on exactly one key per unordered pair, and
//!   `Int(3)`/`Real(3.0)` collide per `sem_eq` in either component.
//! * **Admission is workload state, not data state**: the recurring-pair
//!   sketch and admitted set ([`store::CompositePolicy`]) survive
//!   mutations and wholesale cache discards; only the materialised
//!   composite indexes live in the secondary cache and are
//!   delta-maintained (or discarded) like every other structure.
//! * **Statistics are exact under deltas** ([`stats::AttrStats`]):
//!   totals, non-null/numeric counts, per-value frequencies and
//!   per-bucket histogram counts match a from-scratch recomputation
//!   after any committed op sequence (property-tested); only histogram
//!   *boundaries* age, and drifted summaries rebuild on access.
//! * **The cache can never serve a stale entry**: every mutation
//!   attempt bumps [`Store::version`] and either applies deltas and
//!   stamps the cache (incremental mode) or discards it (wholesale
//!   mode) before returning.
//! * **EXPLAIN is execution**: [`Optimizer::explain`] and
//!   [`Optimizer::execute`] share one decision path, so the reported
//!   strategy is the executed one.
//! * **Commit-boundary atomicity** ([`wal`]): a transaction reaches the
//!   write-ahead log only as one contiguous `Begin … deltas … Commit`
//!   run appended after it fully succeeded in memory; rollbacks append
//!   nothing of the transaction, and recovery applies a transaction
//!   only when its `Commit` frame is intact — never a prefix.
//! * **Torn tails are discarded, never reinterpreted**: WAL replay
//!   stops at the first frame that fails its length or CRC-32 check and
//!   truncates the log back to the last committed boundary — a
//!   later frame that happens to checksum correctly is unreachable by
//!   construction, because frame boundaries after a tear cannot be
//!   trusted.
//! * **[`store::DurabilityMode::Off`] is byte-identical**: a store
//!   created by [`Store::new`] (or detached-cloned from any store)
//!   takes the exact pre-durability code paths — no file I/O, no
//!   record serialisation, no behavioural drift for existing benches
//!   or tests.
//! * **Detaching is explicit**: `Store` does not implement `Clone`.
//!   Copying a store goes through [`Store::detached_clone`], whose
//!   name states the contract — the copy has [`store::DurabilityMode::Off`]
//!   and shares no WAL handle — so no call site silently "persists"
//!   into a copy whose log no longer exists.
//! * **Readers never block writers** ([`mvcc`]): a transaction reads
//!   an immutable published `Arc` snapshot; commits mutate a
//!   copy-on-write mirror and publish a fresh `Arc`. No reader holds
//!   any lock while a commit runs, and an in-flight reader's view
//!   never changes.
//! * **First committer wins** ([`mvcc`]): of two overlapping write
//!   sets, the second commit fails with
//!   [`mvcc::CommitError::WriteConflict`]; under the default
//!   [`mvcc::ValidationMode::Serializable`] read sets are validated
//!   too, and every admitted history is serializable — property-tested
//!   against the black-box [`oracle`], whose ability to *reject* is
//!   itself tested on seeded write-skew histories.
//! * **Commits serialize into the WAL in timestamp order**: the MVCC
//!   commit path re-submits buffered ops through the canonical store
//!   under the commit mutex, so the log's `Begin…Commit` run order is
//!   the commit-timestamp order — itself a valid serialization order
//!   of the recorded history.
//! * **Acknowledged never means lost** ([`wal::GroupCommitPolicy`]):
//!   under group commit, [`mvcc::MvccTxn::commit`] returns (and a
//!   pipelined [`mvcc::CommitTicket`] redeems) only after a
//!   `sync_data` covering that commit's log bytes has succeeded. A
//!   crash loses at most a *suffix* of published-but-unacknowledged
//!   commits — recovery always yields a commit-order prefix containing
//!   every acknowledged transaction. The first sync failure latches:
//!   it is reported to every waiter at and past the failed batch, and
//!   the log is restored to its last durable length so later commits
//!   cannot be reordered around the hole.
//!
//! # Example
//!
//! ```
//! use interop_constraint::{Catalog, CmpOp, Formula};
//! use interop_model::{ClassDef, Database, Schema, Type};
//! use interop_storage::{OptimizeOutcome, Optimizer, Store};
//!
//! let schema = Schema::new(
//!     "Shop",
//!     vec![ClassDef::new("Item").attr("rating", Type::Range(1, 10))],
//! )
//! .unwrap();
//! let mut store = Store::new(Database::new(schema, 1), Catalog::new());
//! store.create("Item", vec![("rating", 7i64.into())]).unwrap();
//!
//! // A derived global constraint lets the optimiser prune.
//! let opt = Optimizer::new(&store, "Item", vec![Formula::cmp("rating", CmpOp::Ge, 5i64)]);
//! let doomed = Formula::cmp("rating", CmpOp::Lt, 5i64);
//! let (hits, how) = opt.execute(&store, &doomed).unwrap();
//! assert!(hits.is_empty());
//! assert_eq!(how, OptimizeOutcome::PrunedEmpty);
//! // And the decision is inspectable:
//! assert!(opt.explain(&store, &doomed).to_string().contains("pruned-empty"));
//! ```

pub mod index;
pub mod mvcc;
pub mod optimize;
pub mod oracle;
pub mod plan;
pub mod query;
pub mod snapshot;
pub mod stats;
pub mod store;
pub mod txn;
pub mod wal;

pub use index::{CompositeIndex, HashIndex, KeyIndex, SortedIndex};
pub use mvcc::{
    CommitError, CommitTicket, MvccStore, MvccTxn, RetryPolicy, RunTxnError, ValidationMode,
};
pub use optimize::{
    execute_costed, execute_plan, Explain, ExplainStrategy, OptimizeOutcome, Optimizer,
};
pub use oracle::{
    check, check_order, replay, serialization_edges, Edge, EdgeKind, Item, QueryRecord, TxnRecord,
    Verdict,
};
pub use plan::{
    composite_gain_hint, indexable_atoms, CompositeProbe, CostedPlan, CostedRole, IndexAtom,
    ProbeStep, QueryPlan, Step,
};
pub use query::Query;
pub use snapshot::SnapshotData;
pub use stats::{AttrStats, PairSketch};
pub use store::{
    CompositePolicy, DurabilityMode, IndexMaintenance, SnapshotFailure, Store, StoreError,
};
pub use txn::{Transaction, TxnOp, TxnOutcome};
pub use wal::{DurabilityError, GroupCommitPolicy, WalAck, WalRecord};
