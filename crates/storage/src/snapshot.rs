//! Point-in-time snapshots of the canonical extension.
//!
//! A snapshot is a single file holding a versioned header, the
//! touched-id watermark state, and a **per-class sorted object dump**
//! (classes ascending by name, objects ascending by id within each
//! class), closed by a trailing CRC-32 over everything before it.
//!
//! # Atomicity and durability
//!
//! Snapshots are written to a `.tmp` sibling, `sync_all`ed, and only
//! then `rename`d into place, with a directory fsync after the rename —
//! so a crash (or power loss, which may reorder unforced writes) leaves
//! either the previous snapshot set or a stray `.tmp` that loading
//! ignores, never a live file whose name is durable but whose bytes are
//! not. [`write_snapshot`] returns only once the new snapshot is fully
//! durable, which is why callers may prune older snapshots and truncate
//! the WAL afterwards. A crash *between* snapshot and WAL truncation is
//! benign because the snapshot records the transaction watermark and
//! replay skips WAL transactions at or below it.
//!
//! # What a snapshot captures
//!
//! Object state, the transaction sequence watermark, and the
//! touched-id tracking state (flag + undrained ids) — everything the
//! store needs to resume both durability and the incremental pipeline.
//! Secondary indexes, statistics and composite admissions are *not*
//! captured: they rebuild lazily exactly as on a fresh store.

use std::io::Write;
use std::path::{Path, PathBuf};

use interop_model::{Object, ObjectId};

use crate::wal::{crc32, fsync_dir, put_id, put_object, put_u32, put_u64, Cursor, DurabilityError};

/// Snapshot format magic + version. Bump on any layout change.
const MAGIC: &[u8; 8] = b"IOSNAP01";

/// File-name prefix/suffix for live snapshots.
const PREFIX: &str = "snapshot-";
const SUFFIX: &str = ".snap";

/// The decoded contents of one snapshot file.
#[derive(Debug)]
pub struct SnapshotData {
    /// Transaction sequence watermark: WAL transactions with
    /// `seq <= watermark` are already reflected in `objects`.
    pub watermark: u64,
    /// Whether touched-id tracking was on at snapshot time.
    pub tracking: bool,
    /// Undrained touched ids at snapshot time (the incremental
    /// pipeline's resume set).
    pub touched: Vec<ObjectId>,
    /// Every live object, grouped by class (ascending) and sorted by id
    /// within each class.
    pub objects: Vec<Object>,
}

fn snapshot_path(dir: &Path, watermark: u64) -> PathBuf {
    dir.join(format!("{PREFIX}{watermark:020}{SUFFIX}"))
}

fn io_err(path: &Path, e: std::io::Error) -> DurabilityError {
    DurabilityError::Io(format!("{}: {e}", path.display()))
}

/// Serializes a snapshot. `objects` may arrive in any order; the dump
/// is canonicalised to per-class sorted order here.
fn encode(watermark: u64, tracking: bool, touched: &[ObjectId], objects: &[&Object]) -> Vec<u8> {
    let mut sorted: Vec<&Object> = objects.to_vec();
    sorted.sort_by(|a, b| (&a.class, a.id).cmp(&(&b.class, b.id)));
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC);
    put_u64(&mut out, watermark);
    out.push(u8::from(tracking));
    put_u32(&mut out, touched.len() as u32);
    for &id in touched {
        put_id(&mut out, id);
    }
    put_u64(&mut out, sorted.len() as u64);
    for obj in sorted {
        put_object(&mut out, obj);
    }
    let crc = crc32(&out);
    put_u32(&mut out, crc);
    out
}

fn decode(bytes: &[u8], path: &Path) -> Result<SnapshotData, DurabilityError> {
    let corrupt = |what: &str| DurabilityError::Corrupt(format!("{}: {what}", path.display()));
    if bytes.len() < MAGIC.len() + 4 {
        return Err(corrupt("shorter than header + checksum"));
    }
    let (body, tail) = bytes.split_at(bytes.len() - 4);
    let stored = u32::from_le_bytes([tail[0], tail[1], tail[2], tail[3]]);
    if crc32(body) != stored {
        return Err(corrupt("checksum mismatch"));
    }
    if &body[..MAGIC.len()] != MAGIC {
        return Err(corrupt("bad magic / unsupported version"));
    }
    let mut c = Cursor::new(&body[MAGIC.len()..]);
    let mut parse = || -> Option<SnapshotData> {
        let watermark = c.u64()?;
        let tracking = c.u8()? != 0;
        let n_touched = c.u32()?;
        // Clamp the pre-allocation: the count is untrusted input, and a
        // CRC-valid crafted file must not force a huge allocation before
        // the short body is detected (the loop still reads every id).
        let mut touched = Vec::with_capacity((n_touched as usize).min(1 << 20));
        for _ in 0..n_touched {
            touched.push(c.id()?);
        }
        let n_objects = c.u64()?;
        let mut objects = Vec::with_capacity(n_objects.min(1 << 20) as usize);
        for _ in 0..n_objects {
            objects.push(c.object()?);
        }
        if !c.is_empty() {
            return None;
        }
        Some(SnapshotData {
            watermark,
            tracking,
            touched,
            objects,
        })
    };
    parse().ok_or_else(|| corrupt("undecodable body"))
}

/// Writes a snapshot for `watermark` into `dir` (tmp, fsync, atomic
/// rename, directory fsync), then removes any older snapshot files.
/// Returns the live path — and returns at all only once the new
/// snapshot is durable, so callers may safely discard what it replaces
/// (older snapshots here, the WAL in [`crate::Store::snapshot_now`]).
pub fn write_snapshot(
    dir: &Path,
    watermark: u64,
    tracking: bool,
    touched: &[ObjectId],
    objects: &[&Object],
) -> Result<PathBuf, DurabilityError> {
    let bytes = encode(watermark, tracking, touched, objects);
    let live = snapshot_path(dir, watermark);
    let tmp = live.with_extension("snap.tmp");
    let mut f = std::fs::File::create(&tmp).map_err(|e| io_err(&tmp, e))?;
    f.write_all(&bytes).map_err(|e| io_err(&tmp, e))?;
    // The data must be durable *before* the rename: power loss can make
    // the rename durable ahead of unforced data writes, which would
    // leave a corrupt live snapshot after the fallbacks are pruned.
    f.sync_all().map_err(|e| io_err(&tmp, e))?;
    drop(f);
    std::fs::rename(&tmp, &live).map_err(|e| io_err(&live, e))?;
    fsync_dir(dir)?;
    // Older snapshots are now redundant; removal failures are benign
    // (loading picks the newest valid file regardless).
    for (path, mark) in list_snapshots(dir)? {
        if mark < watermark {
            let _ = std::fs::remove_file(path);
        }
    }
    Ok(live)
}

/// Lists `(path, watermark)` for every live (non-`.tmp`) snapshot file
/// in `dir`, ascending by watermark.
fn list_snapshots(dir: &Path) -> Result<Vec<(PathBuf, u64)>, DurabilityError> {
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(io_err(dir, e)),
    };
    let mut out = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| io_err(dir, e))?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(mark) = name
            .strip_prefix(PREFIX)
            .and_then(|rest| rest.strip_suffix(SUFFIX))
            .and_then(|digits| digits.parse::<u64>().ok())
        else {
            continue;
        };
        out.push((entry.path(), mark));
    }
    out.sort_by_key(|&(_, mark)| mark);
    Ok(out)
}

/// Loads the newest snapshot in `dir` that passes its integrity checks,
/// trying older ones if the newest is damaged. `None` when no valid
/// snapshot exists (fresh directory, or all damaged).
pub fn load_latest(dir: &Path) -> Result<Option<SnapshotData>, DurabilityError> {
    for (path, _) in list_snapshots(dir)?.into_iter().rev() {
        let bytes = std::fs::read(&path).map_err(|e| io_err(&path, e))?;
        if let Ok(data) = decode(&bytes, &path) {
            return Ok(Some(data));
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use interop_model::{ClassName, Value};

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("interop-snap-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn objects() -> Vec<Object> {
        vec![
            Object::new(ObjectId::new(1, 2), ClassName::new("B")).with("x", 2i64),
            Object::new(ObjectId::new(1, 0), ClassName::new("A")).with("x", 0i64),
            Object::new(ObjectId::new(1, 1), ClassName::new("B")).with("x", Value::str("one")),
        ]
    }

    #[test]
    fn roundtrip_and_canonical_order() {
        let dir = tmp_dir("roundtrip");
        let objs = objects();
        let refs: Vec<&Object> = objs.iter().collect();
        let touched = vec![ObjectId::new(1, 1)];
        write_snapshot(&dir, 5, true, &touched, &refs).unwrap();
        let data = load_latest(&dir).unwrap().unwrap();
        assert_eq!(data.watermark, 5);
        assert!(data.tracking);
        assert_eq!(data.touched, touched);
        // Per-class sorted: A:0, then B:1, B:2.
        let ids: Vec<ObjectId> = data.objects.iter().map(|o| o.id).collect();
        assert_eq!(
            ids,
            vec![
                ObjectId::new(1, 0),
                ObjectId::new(1, 1),
                ObjectId::new(1, 2)
            ]
        );
        assert_eq!(
            data.objects[1].get(&interop_model::AttrName::new("x")),
            &Value::str("one")
        );
    }

    #[test]
    fn newer_snapshot_wins_and_older_are_pruned() {
        let dir = tmp_dir("newest");
        let objs = objects();
        let refs: Vec<&Object> = objs.iter().collect();
        write_snapshot(&dir, 1, false, &[], &refs[..1]).unwrap();
        write_snapshot(&dir, 9, false, &[], &refs).unwrap();
        let data = load_latest(&dir).unwrap().unwrap();
        assert_eq!(data.watermark, 9);
        assert_eq!(data.objects.len(), 3);
        assert_eq!(list_snapshots(&dir).unwrap().len(), 1, "older pruned");
    }

    #[test]
    fn corrupt_newest_falls_back_to_older() {
        let dir = tmp_dir("fallback");
        let objs = objects();
        let refs: Vec<&Object> = objs.iter().collect();
        write_snapshot(&dir, 3, false, &[], &refs[..2]).unwrap();
        // Hand-write a newer, damaged snapshot (bad CRC).
        let newer = snapshot_path(&dir, 8);
        let mut bytes = encode(8, false, &[], &refs);
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        std::fs::write(&newer, &bytes).unwrap();
        let data = load_latest(&dir).unwrap().unwrap();
        assert_eq!(data.watermark, 3, "fell back past the damaged file");
    }

    #[test]
    fn tmp_files_and_foreign_names_ignored() {
        let dir = tmp_dir("ignore");
        std::fs::write(dir.join("snapshot-00000000000000000009.snap.tmp"), b"junk").unwrap();
        std::fs::write(dir.join("notes.txt"), b"hello").unwrap();
        assert!(load_latest(&dir).unwrap().is_none());
        let missing = dir.join("no-such-subdir");
        assert!(load_latest(&missing).unwrap().is_none());
    }
}
