//! Predicate queries over class extensions.
//!
//! [`Query::scan`] is deliberately naive — one pass, three-valued
//! evaluation, no indexes, no statistics — because it doubles as the
//! **differential oracle** for the whole planner stack: the property
//! suites run every random query through both
//! [`crate::optimize::Optimizer::execute`] and `Query::scan` and demand
//! identical hit sets, whatever strategy the cost model picked. Keep it
//! boring; its value is being obviously correct.

use interop_constraint::eval::{eval_formula, Truth};
use interop_constraint::Formula;
use interop_model::{ClassName, ModelError, ObjectId};

use crate::store::Store;

/// A simple selection query: objects of `class` (including subclasses)
/// satisfying `pred`.
#[derive(Clone, Debug)]
pub struct Query {
    /// The queried class.
    pub class: ClassName,
    /// The selection predicate.
    pub pred: Formula,
}

impl Query {
    /// Creates a query.
    pub fn new(class: impl Into<ClassName>, pred: Formula) -> Self {
        Query {
            class: class.into(),
            pred,
        }
    }

    /// Executes by scanning the class extension. Objects for which the
    /// predicate is `Unknown` (nulls) are *not* returned — a query answer
    /// must be definite, unlike constraint satisfaction.
    pub fn scan(&self, store: &Store) -> Result<Vec<ObjectId>, ModelError> {
        let mut out = Vec::new();
        for id in store.db().extension(&self.class) {
            let obj = store.db().object_req(id)?;
            if eval_formula(store.db(), obj, &self.pred)? == Truth::True {
                out.push(id);
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use interop_constraint::{Catalog, CmpOp};
    use interop_model::{ClassDef, Database, Schema, Type};

    fn store() -> Store {
        let schema = Schema::new(
            "B",
            vec![
                ClassDef::new("Item")
                    .attr("isbn", Type::Str)
                    .attr("libprice", Type::Real),
                ClassDef::new("Proceedings")
                    .isa("Item")
                    .attr("rating", Type::Range(1, 10)),
            ],
        )
        .unwrap();
        let mut s = Store::new(Database::new(schema, 1), Catalog::new());
        s.create(
            "Item",
            vec![("isbn", "A".into()), ("libprice", 10.0.into())],
        )
        .unwrap();
        s.create(
            "Proceedings",
            vec![
                ("isbn", "B".into()),
                ("libprice", 30.0.into()),
                ("rating", 8i64.into()),
            ],
        )
        .unwrap();
        s.create("Item", vec![("isbn", "C".into())]).unwrap(); // null price
        s
    }

    #[test]
    fn scan_filters_and_includes_subclasses() {
        let s = store();
        let q = Query::new("Item", Formula::cmp("libprice", CmpOp::Ge, 5.0));
        let hits = q.scan(&s).unwrap();
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn unknown_rows_excluded() {
        let s = store();
        // The null-priced item satisfies neither >= 5 nor < 5.
        let lo = Query::new("Item", Formula::cmp("libprice", CmpOp::Lt, 5.0));
        assert_eq!(lo.scan(&s).unwrap().len(), 0);
    }

    #[test]
    fn subclass_scan_is_narrower() {
        let s = store();
        let q = Query::new("Proceedings", Formula::cmp("rating", CmpOp::Ge, 5i64));
        assert_eq!(q.scan(&s).unwrap().len(), 1);
    }
}
