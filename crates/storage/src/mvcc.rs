//! Multi-version concurrency: many sessions, one store.
//!
//! [`MvccStore`] wraps a single-threaded [`Store`] in a cheaply
//! cloneable, `Send + Sync` handle. Every transaction
//! ([`MvccStore::begin`]) captures the latest **published snapshot** —
//! an `Arc<Store>` that is never mutated after publication — so
//! readers never block writers and never observe a partial commit.
//! Writes buffer in a transaction-local overlay (a detached copy of
//! the snapshot, so own writes are visible to the session's reads and
//! planned queries, and constraints reject doomed operations early)
//! and reach the shared state only at [`MvccTxn::commit`]:
//!
//! 1. **First-committer-wins**: if any object in the transaction's
//!    write set was committed past the transaction's begin timestamp,
//!    commit fails with [`CommitError::WriteConflict`].
//! 2. **Read validation** (default [`ValidationMode::Serializable`]):
//!    if any *item* the transaction read — object slots, plus
//!    class-extension items recording what its planned queries
//!    observed — changed since begin, commit fails with
//!    [`CommitError::ReadConflict`]. Skipping this step
//!    ([`ValidationMode::FirstCommitterWins`]) yields classic snapshot
//!    isolation, whose write-skew anomalies the serializability oracle
//!    ([`crate::oracle`]) demonstrably catches.
//! 3. The buffered operations re-commit through the **canonical**
//!    store — the one [`Store`] that owns durability — as one ordinary
//!    [`Transaction`], so constraint enforcement and the WAL's
//!    `Begin…Commit` bracket are exactly the single-threaded code
//!    path: commits serialize into the log in timestamp order.
//! 4. The commit timestamp is stamped on every written item, a fresh
//!    snapshot is published copy-on-write, and (when history recording
//!    is on) a [`TxnRecord`] is appended for the oracle.
//!
//! Commit-time work runs under one commit mutex; everything before it
//! — reads, planned queries, constraint checks, conflict-free
//! buffering — touches only the transaction's own snapshot.
//!
//! # Example
//!
//! ```
//! use interop_constraint::Catalog;
//! use interop_model::{ClassDef, Database, Schema, Type, Value};
//! use interop_storage::{CommitError, MvccStore, Store};
//!
//! let schema = Schema::new(
//!     "Shop",
//!     vec![ClassDef::new("Item")
//!         .attr("sku", Type::Str)
//!         .attr("stock", Type::Int)],
//! )
//! .unwrap();
//! let store = MvccStore::new(Store::new(Database::new(schema, 1), Catalog::new()));
//!
//! // Seed one object, then race two sessions over it.
//! let mut setup = store.begin();
//! let id = setup
//!     .create("Item", vec![("sku", "A".into()), ("stock", 10i64.into())])
//!     .unwrap();
//! setup.commit().unwrap();
//!
//! let (mut t1, mut t2) = (store.begin(), store.begin());
//! t1.update(id, "stock", Value::int(9)).unwrap();
//! t2.update(id, "stock", Value::int(3)).unwrap();
//! t1.commit().unwrap();
//! // First committer wins; the loser learns it conflicted.
//! assert!(matches!(t2.commit(), Err(CommitError::WriteConflict { .. })));
//!
//! // Readers see the committed value — and a session begun *before* a
//! // commit keeps its consistent snapshot.
//! let mut r = store.begin();
//! assert_eq!(r.get(id).unwrap().get(&"stock".into()), &Value::int(9));
//! ```

use std::collections::BTreeSet;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError, RwLock};

use interop_model::fx::FxHashMap;
use interop_model::{AttrName, ClassName, Object, ObjectId, Value};

use crate::optimize::Optimizer;
use crate::oracle::{Item, QueryRecord, TxnRecord};
use crate::store::{DurabilityMode, Store, StoreError};
use crate::txn::{Transaction, TxnOp, TxnOutcome};

/// Why a [`MvccTxn::commit`] was refused. In every case the shared
/// store is untouched by the failed transaction — commit is atomic.
#[derive(Clone, Debug, PartialEq)]
pub enum CommitError {
    /// Another transaction committed a write to an object in this
    /// transaction's write set after this transaction began
    /// (first-committer-wins).
    WriteConflict {
        /// The contended object.
        object: ObjectId,
        /// When the competing write committed.
        committed_ts: u64,
        /// This transaction's snapshot timestamp.
        begin_ts: u64,
    },
    /// An item this transaction read changed between begin and commit
    /// (read validation under [`ValidationMode::Serializable`]).
    ReadConflict {
        /// The item whose version moved.
        item: Item,
        /// The version this transaction observed.
        observed_ts: u64,
        /// The version now committed.
        committed_ts: u64,
    },
    /// The canonical store rejected the buffered operations at commit
    /// (e.g. a key collision with a concurrently committed insert that
    /// no object-level conflict check can see). The transaction rolled
    /// back cleanly.
    Rejected {
        /// Index of the failing buffered operation.
        failed_at: usize,
        /// The store's reason.
        error: StoreError,
    },
}

impl fmt::Display for CommitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CommitError::WriteConflict {
                object,
                committed_ts,
                begin_ts,
            } => write!(
                f,
                "write conflict on {object}: committed at ts {committed_ts}, \
                 after this txn began at ts {begin_ts}"
            ),
            CommitError::ReadConflict {
                item,
                observed_ts,
                committed_ts,
            } => write!(
                f,
                "read conflict on {item}: observed version {observed_ts}, \
                 now {committed_ts}"
            ),
            CommitError::Rejected { failed_at, error } => {
                write!(f, "rejected at op {failed_at}: {error}")
            }
        }
    }
}

impl std::error::Error for CommitError {}

/// What commit-time validation enforces.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ValidationMode {
    /// Write-conflict detection **and** read validation: commits admit
    /// only serializable histories (the oracle's property suite runs
    /// over this mode and asserts every history it admits is
    /// serializable).
    #[default]
    Serializable,
    /// Write-conflict detection only — classic snapshot isolation.
    /// Admits write skew; kept so the test suite can produce real
    /// anomalies and prove the serializability oracle rejects them.
    FirstCommitterWins,
}

/// The committed tail of the store, guarded by the commit mutex.
struct Committed {
    /// The canonical store: owns durability; every commit re-applies
    /// its buffered ops here through the ordinary [`Transaction`]
    /// path, so the WAL sees one `Begin…Commit` run per commit, in
    /// timestamp order.
    store: Store,
    /// A volatile mirror of `store`, maintained copy-on-write and
    /// published as the read snapshot. Kept separate so published
    /// `Arc`s never alias the durability-owning store.
    mirror: Arc<Store>,
    /// Item → commit timestamp of its latest committed write.
    versions: Arc<FxHashMap<Item, u64>>,
    /// The latest commit timestamp.
    ts: u64,
    /// When `Some`, every commit (read-only included) appends its
    /// [`TxnRecord`] for the serializability oracle.
    history: Option<Vec<TxnRecord>>,
}

/// The read-side publication: swapped atomically (under a brief write
/// lock) after each commit; [`MvccStore::begin`] takes the read lock
/// only long enough to clone two `Arc`s.
struct Published {
    ts: u64,
    snapshot: Arc<Store>,
    versions: Arc<FxHashMap<Item, u64>>,
}

struct Inner {
    committed: Mutex<Committed>,
    published: RwLock<Published>,
    validation: ValidationMode,
    /// Lock-free object-id allocation for concurrent sessions.
    next_serial: AtomicU64,
    space: u32,
}

/// A shared, thread-safe handle to one MVCC store. Cloning is cheap
/// (`Arc`); all clones address the same store.
#[derive(Clone)]
pub struct MvccStore {
    inner: Arc<Inner>,
}

/// Compile-time proof the sharing model holds: handles and in-flight
/// transactions may cross threads.
const _: fn() = assert_send_sync::<MvccStore>;
const _: fn() = assert_send::<MvccTxn>;
const fn assert_send_sync<T: Send + Sync>() {}
const fn assert_send<T: Send>() {}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

impl MvccStore {
    /// Wraps `store` — typically fresh from [`Store::new`] or a
    /// durable [`Store::open`] — for concurrent use, with the default
    /// [`ValidationMode::Serializable`].
    pub fn new(store: Store) -> Self {
        Self::with_validation(store, ValidationMode::default())
    }

    /// [`MvccStore::new`] with an explicit validation mode.
    pub fn with_validation(store: Store, validation: ValidationMode) -> Self {
        let space = store.db().space();
        let next_serial = store
            .db()
            .objects()
            .map(|o| o.id.serial())
            .max()
            .map_or(0, |m| m + 1);
        let mut mirror = store.detached_clone();
        // The mirror never feeds the incremental pipeline directly;
        // keeping its private touched log off stops it growing
        // unboundedly when the canonical store tracks ids.
        mirror.track_touched(false);
        let mirror = Arc::new(mirror);
        let versions: Arc<FxHashMap<Item, u64>> = Arc::new(FxHashMap::default());
        MvccStore {
            inner: Arc::new(Inner {
                committed: Mutex::new(Committed {
                    store,
                    mirror: Arc::clone(&mirror),
                    versions: Arc::clone(&versions),
                    ts: 0,
                    history: None,
                }),
                published: RwLock::new(Published {
                    ts: 0,
                    snapshot: mirror,
                    versions,
                }),
                validation,
                next_serial: AtomicU64::new(next_serial),
                space,
            }),
        }
    }

    /// The validation mode commits run under.
    pub fn validation(&self) -> ValidationMode {
        self.inner.validation
    }

    /// Begins a transaction against the latest published snapshot.
    /// Dropping the returned [`MvccTxn`] without committing rolls it
    /// back (it buffered everything locally, so there is nothing to
    /// undo).
    pub fn begin(&self) -> MvccTxn {
        let p = self
            .inner
            .published
            .read()
            .unwrap_or_else(PoisonError::into_inner);
        MvccTxn {
            store: self.clone(),
            begin_ts: p.ts,
            snapshot: Arc::clone(&p.snapshot),
            versions: Arc::clone(&p.versions),
            local: None,
            ops: Vec::new(),
            write_objs: BTreeSet::new(),
            write_classes: BTreeSet::new(),
            reads: Vec::new(),
            read_seen: BTreeSet::new(),
            queries: Vec::new(),
        }
    }

    /// The latest published snapshot — a consistent, immutable view
    /// for ad-hoc reads outside any transaction.
    pub fn read_view(&self) -> Arc<Store> {
        let p = self
            .inner
            .published
            .read()
            .unwrap_or_else(PoisonError::into_inner);
        Arc::clone(&p.snapshot)
    }

    /// The latest commit timestamp (0 before the first commit).
    pub fn last_commit_ts(&self) -> u64 {
        self.inner
            .published
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .ts
    }

    /// Allocates a fresh object id, unique across all sessions.
    pub fn fresh_id(&self) -> ObjectId {
        let serial = self.inner.next_serial.fetch_add(1, Ordering::Relaxed);
        ObjectId::new(self.inner.space, serial)
    }

    /// Starts (`true`) or stops-and-discards (`false`) history
    /// recording for the serializability oracle: while on, every
    /// commit appends a [`TxnRecord`].
    pub fn record_history(&self, on: bool) {
        lock(&self.inner.committed).history = if on { Some(Vec::new()) } else { None };
    }

    /// Drains the recorded history (empty when recording is off).
    pub fn take_history(&self) -> Vec<TxnRecord> {
        let mut c = lock(&self.inner.committed);
        match &mut c.history {
            Some(h) => std::mem::take(h),
            None => Vec::new(),
        }
    }

    /// Starts or stops the canonical store's touched-id log (see
    /// [`Store::track_touched`]).
    pub fn track_touched(&self, on: bool) {
        lock(&self.inner.committed).store.track_touched(on);
    }

    /// Atomically drains the touched-id log and returns it together
    /// with the snapshot those ids are consistent with — the
    /// incremental-pipeline entry point for shared stores (both sides
    /// taken under the commit mutex, so no commit can slip between
    /// them).
    pub fn drain_touched(&self) -> (Arc<Store>, Vec<ObjectId>) {
        let mut c = lock(&self.inner.committed);
        let touched = c.store.take_touched();
        (Arc::clone(&c.mirror), touched)
    }

    /// The canonical store's durability mode.
    pub fn durability_mode(&self) -> DurabilityMode {
        lock(&self.inner.committed).store.durability_mode()
    }

    /// Snapshots the canonical store now (see [`Store::snapshot_now`]).
    pub fn snapshot_now(&self) -> Result<(), StoreError> {
        lock(&self.inner.committed).store.snapshot_now()
    }

    /// Unwraps the canonical store when this is the last handle;
    /// returns the handle unchanged otherwise.
    pub fn into_store(self) -> Result<Store, MvccStore> {
        match Arc::try_unwrap(self.inner) {
            Ok(inner) => Ok(inner
                .committed
                .into_inner()
                .unwrap_or_else(PoisonError::into_inner)
                .store),
            Err(inner) => Err(MvccStore { inner }),
        }
    }
}

impl fmt::Debug for MvccStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MvccStore")
            .field("last_commit_ts", &self.last_commit_ts())
            .field("validation", &self.inner.validation)
            .finish_non_exhaustive()
    }
}

/// One session's transaction: snapshot reads, locally buffered writes,
/// validate-then-commit. `Send`, so worker threads can own one each.
pub struct MvccTxn {
    store: MvccStore,
    begin_ts: u64,
    /// The published snapshot this transaction reads.
    snapshot: Arc<Store>,
    /// Item versions as of `begin_ts` (what reads observe).
    versions: Arc<FxHashMap<Item, u64>>,
    /// Lazily created overlay: snapshot + own writes, so reads and
    /// planned queries see the transaction's own effects and doomed
    /// operations are rejected by real constraint checks immediately.
    local: Option<Box<Store>>,
    /// Buffered operations, re-committed through the canonical store.
    ops: Vec<TxnOp>,
    write_objs: BTreeSet<ObjectId>,
    write_classes: BTreeSet<ClassName>,
    /// Items read, with the version observed (recorded once each).
    reads: Vec<(Item, u64)>,
    read_seen: BTreeSet<Item>,
    queries: Vec<QueryRecord>,
}

impl MvccTxn {
    /// The snapshot timestamp this transaction reads at.
    pub fn begin_ts(&self) -> u64 {
        self.begin_ts
    }

    /// The store the transaction currently reads: the local overlay
    /// once it has written, the shared snapshot before.
    fn reading_store(&self) -> &Store {
        match &self.local {
            Some(l) => l,
            None => &self.snapshot,
        }
    }

    fn observed_version(&self, item: &Item) -> u64 {
        self.versions.get(item).copied().unwrap_or(0)
    }

    /// Records a read of `item` at its snapshot version, once.
    fn note_read(&mut self, item: Item) {
        if self.read_seen.insert(item.clone()) {
            let v = self.observed_version(&item);
            self.reads.push((item, v));
        }
    }

    /// Records a write of `id`: the slot itself plus the class-level
    /// items of its class and every ancestor, so concurrent planned
    /// queries over any covering extension conflict (phantom
    /// protection) and same-class writers are totally ordered.
    fn note_write(&mut self, id: ObjectId, class: &ClassName) {
        self.write_objs.insert(id);
        for c in self.snapshot.db().schema.self_and_ancestors(class) {
            self.write_classes.insert(c);
        }
    }

    fn local_mut(&mut self) -> &mut Store {
        if self.local.is_none() {
            self.local = Some(Box::new(self.snapshot.detached_clone()));
        }
        match &mut self.local {
            Some(l) => l,
            None => unreachable!("just installed above"),
        }
    }

    /// Reads one object (own uncommitted writes visible). Reads of
    /// objects this transaction has not written are recorded for
    /// commit-time validation — including reads that find nothing.
    pub fn get(&mut self, id: ObjectId) -> Option<Object> {
        if !self.write_objs.contains(&id) {
            self.note_read(Item::Obj(id));
        }
        self.reading_store().db().object(id).cloned()
    }

    /// Buffers an insert, validated against the transaction's view.
    pub fn insert(&mut self, obj: Object) -> Result<(), StoreError> {
        let (id, class) = (obj.id, obj.class.clone());
        self.local_mut().insert(obj.clone())?;
        self.note_write(id, &class);
        self.ops.push(TxnOp::Insert(obj));
        Ok(())
    }

    /// Creates and inserts an object of `class` with a globally fresh
    /// id, returning the id.
    pub fn create(
        &mut self,
        class: impl Into<ClassName>,
        attrs: Vec<(&str, Value)>,
    ) -> Result<ObjectId, StoreError> {
        let id = self.store.fresh_id();
        let mut obj = Object::new(id, class.into());
        for (name, v) in attrs {
            obj.set(name, v);
        }
        self.insert(obj)?;
        Ok(id)
    }

    /// Buffers a single-attribute update (read-modify-write: the
    /// target's snapshot version joins the read set).
    pub fn update(
        &mut self,
        id: ObjectId,
        attr: impl Into<AttrName>,
        value: Value,
    ) -> Result<(), StoreError> {
        if !self.write_objs.contains(&id) {
            self.note_read(Item::Obj(id));
        }
        let attr = attr.into();
        let local = self.local_mut();
        let class = local.db().object_req(id)?.class.clone();
        local.update(id, attr.clone(), value.clone())?;
        self.note_write(id, &class);
        self.ops.push(TxnOp::Update { id, attr, value });
        Ok(())
    }

    /// Buffers a removal (read-modify-write, like
    /// [`MvccTxn::update`]).
    pub fn remove(&mut self, id: ObjectId) -> Result<Object, StoreError> {
        if !self.write_objs.contains(&id) {
            self.note_read(Item::Obj(id));
        }
        let obj = self.local_mut().remove(id)?;
        self.note_write(id, &obj.class);
        self.ops.push(TxnOp::Delete(id));
        Ok(obj)
    }

    /// Runs a planned query against the transaction's view (own
    /// writes visible), recording the queried class and every hit for
    /// commit-time validation and for the oracle.
    pub fn query(
        &mut self,
        class: impl Into<ClassName>,
        predicate: &interop_constraint::Formula,
    ) -> Result<Vec<ObjectId>, StoreError> {
        let class = class.into();
        let store = self.reading_store();
        let opt = Optimizer::new(store, class.clone(), Vec::new());
        let (mut hits, _) = opt.execute(store, predicate)?;
        hits.sort_unstable();
        self.note_read(Item::Class(class.clone()));
        for &id in &hits {
            if !self.write_objs.contains(&id) {
                self.note_read(Item::Obj(id));
            }
        }
        self.queries.push(QueryRecord {
            class,
            predicate: predicate.clone(),
            hits: hits.clone(),
            at: self.ops.len(),
        });
        Ok(hits)
    }

    /// Discards the transaction. Equivalent to dropping it; provided
    /// so call sites can say what they mean.
    pub fn rollback(self) {}

    /// Validates and commits, returning the commit timestamp.
    ///
    /// Read-only transactions always succeed, with
    /// `commit timestamp == begin timestamp` — they are serializable
    /// at their snapshot position by construction and skip validation
    /// entirely.
    pub fn commit(self) -> Result<u64, CommitError> {
        let MvccTxn {
            store,
            begin_ts,
            ops,
            write_objs,
            write_classes,
            reads,
            queries,
            ..
        } = self;
        let inner = &store.inner;
        let mut c = lock(&inner.committed);

        if ops.is_empty() {
            if let Some(h) = &mut c.history {
                h.push(TxnRecord {
                    txn: h.len(),
                    begin_ts,
                    commit_ts: begin_ts,
                    reads,
                    writes: Vec::new(),
                    ops: Vec::new(),
                    queries,
                });
            }
            return Ok(begin_ts);
        }

        // 1. First-committer-wins on the object write set.
        for &id in &write_objs {
            let cur = c.versions.get(&Item::Obj(id)).copied().unwrap_or(0);
            if cur > begin_ts {
                return Err(CommitError::WriteConflict {
                    object: id,
                    committed_ts: cur,
                    begin_ts,
                });
            }
        }

        // 2. Read validation (serializable mode).
        if inner.validation == ValidationMode::Serializable {
            for (item, v) in &reads {
                let cur = c.versions.get(item).copied().unwrap_or(0);
                if cur != *v {
                    return Err(CommitError::ReadConflict {
                        item: item.clone(),
                        observed_ts: *v,
                        committed_ts: cur,
                    });
                }
            }
        }

        // 3. Re-commit through the canonical store: full constraint
        // enforcement plus the WAL `Begin…Commit` bracket.
        match Transaction::from_ops(ops.clone()).commit(&mut c.store) {
            TxnOutcome::RolledBack { failed_at, error } => {
                return Err(CommitError::Rejected { failed_at, error });
            }
            TxnOutcome::Committed { .. } => {}
        }

        // 4. Stamp versions and publish a fresh snapshot.
        c.ts += 1;
        let ts = c.ts;
        let mut writes = Vec::with_capacity(write_objs.len() + write_classes.len());
        {
            let versions = Arc::make_mut(&mut c.versions);
            for &id in &write_objs {
                versions.insert(Item::Obj(id), ts);
                writes.push(Item::Obj(id));
            }
            for cl in &write_classes {
                versions.insert(Item::Class(cl.clone()), ts);
                writes.push(Item::Class(cl.clone()));
            }
        }
        if Arc::get_mut(&mut c.mirror).is_none() {
            // Readers still hold the published snapshot: copy-on-write.
            let mut fresh = c.mirror.detached_clone();
            fresh.track_touched(false);
            c.mirror = Arc::new(fresh);
        }
        if let Some(m) = Arc::get_mut(&mut c.mirror) {
            let outcome = Transaction::from_ops(ops.clone()).commit(m);
            debug_assert!(
                matches!(outcome, TxnOutcome::Committed { .. }),
                "mirror diverged from the canonical store"
            );
        }
        if let Some(h) = &mut c.history {
            h.push(TxnRecord {
                txn: h.len(),
                begin_ts,
                commit_ts: ts,
                reads,
                writes,
                ops,
                queries,
            });
        }
        let published = Published {
            ts,
            snapshot: Arc::clone(&c.mirror),
            versions: Arc::clone(&c.versions),
        };
        // Publish while still holding the commit mutex, so snapshots
        // become visible in commit order.
        *inner
            .published
            .write()
            .unwrap_or_else(PoisonError::into_inner) = published;
        Ok(ts)
    }
}

impl fmt::Debug for MvccTxn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MvccTxn")
            .field("begin_ts", &self.begin_ts)
            .field("ops", &self.ops.len())
            .field("reads", &self.reads.len())
            .finish_non_exhaustive()
    }
}
