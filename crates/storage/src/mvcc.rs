//! Multi-version concurrency: many sessions, one store.
//!
//! [`MvccStore`] wraps a single-threaded [`Store`] in a cheaply
//! cloneable, `Send + Sync` handle. Every transaction
//! ([`MvccStore::begin`]) captures the latest **published snapshot** —
//! an `Arc<Store>` that is never mutated after publication — so
//! readers never block writers and never observe a partial commit.
//! Writes buffer in a transaction-local overlay (a detached copy of
//! the snapshot, so own writes are visible to the session's reads and
//! planned queries, and constraints reject doomed operations early)
//! and reach the shared state only at [`MvccTxn::commit`]:
//!
//! 1. **First-committer-wins**: if any object in the transaction's
//!    write set was committed past the transaction's begin timestamp,
//!    commit fails with [`CommitError::WriteConflict`].
//! 2. **Read validation** (default [`ValidationMode::Serializable`]):
//!    if any *item* the transaction read — object slots, plus
//!    class-extension items recording what its planned queries
//!    observed — changed since begin, commit fails with
//!    [`CommitError::ReadConflict`]. Skipping this step
//!    ([`ValidationMode::FirstCommitterWins`]) yields classic snapshot
//!    isolation, whose write-skew anomalies the serializability oracle
//!    ([`crate::oracle`]) demonstrably catches.
//! 3. The buffered operations re-commit through the **canonical**
//!    store — the one [`Store`] that owns durability — as one ordinary
//!    [`Transaction`], so constraint enforcement and the WAL's
//!    `Begin…Commit` bracket are exactly the single-threaded code
//!    path: commits serialize into the log in timestamp order.
//! 4. The commit timestamp is stamped on every written item, a fresh
//!    snapshot is published copy-on-write, and (when history recording
//!    is on) a [`TxnRecord`] is appended for the oracle.
//!
//! Commit-time work runs under one commit mutex; everything before it
//! — reads, planned queries, constraint checks, conflict-free
//! buffering — touches only the transaction's own snapshot.
//!
//! # Durability under concurrency
//!
//! With a grouped [`GroupCommitPolicy`] (see
//! [`MvccStore::set_group_commit`]) step 3 only *buffers* the WAL run;
//! the committer publishes, releases the commit mutex, and then waits
//! for the covering `sync_data` — issued once per batch by an elected
//! leader — before `commit()` returns. Acknowledged never means lost:
//! a crash can lose only transactions whose `commit()` had not yet
//! returned, and recovery still lands on a commit-order prefix. A
//! failed group sync surfaces as [`CommitError::SyncFailed`]: the
//! commit stands in memory but is not acknowledged as durable, and the
//! poisoned log fails later commits loudly.
//!
//! [`MvccTxn::commit_pipelined`] splits the two halves apart: it
//! returns as soon as the commit is published, handing back a
//! [`CommitTicket`] the session redeems for the durability
//! acknowledgement whenever it chooses. A session keeping a window of
//! unredeemed tickets lets one leader sync cover hundreds of commits —
//! batch size then scales with in-flight commits, not session count —
//! at the usual group-commit price: a crash before a ticket is
//! redeemed may lose that commit (and everything after it, never
//! anything before it).
//!
//! For [`DurabilityMode::WalWithSnapshots`] stores the construction
//! also spawns a **background snapshot worker**: at cadence the commit
//! path only seals the active WAL segment and hands the already
//! published `Arc` snapshot to the worker, which writes the snapshot
//! file (tmp + rename, as ever) and then prunes the sealed segments it
//! made redundant — writers never stall on the dump.
//! [`MvccStore::flush_snapshots`] waits for the worker to go idle;
//! dropping the last handle drains it.
//!
//! Conflict losers can retry mechanically:
//! [`MvccStore::run_txn`] re-runs a closure on a fresh snapshot under a
//! bounded [`RetryPolicy`].
//!
//! # Example
//!
//! ```
//! use interop_constraint::Catalog;
//! use interop_model::{ClassDef, Database, Schema, Type, Value};
//! use interop_storage::{CommitError, MvccStore, Store};
//!
//! let schema = Schema::new(
//!     "Shop",
//!     vec![ClassDef::new("Item")
//!         .attr("sku", Type::Str)
//!         .attr("stock", Type::Int)],
//! )
//! .unwrap();
//! let store = MvccStore::new(Store::new(Database::new(schema, 1), Catalog::new()));
//!
//! // Seed one object, then race two sessions over it.
//! let mut setup = store.begin();
//! let id = setup
//!     .create("Item", vec![("sku", "A".into()), ("stock", 10i64.into())])
//!     .unwrap();
//! setup.commit().unwrap();
//!
//! let (mut t1, mut t2) = (store.begin(), store.begin());
//! t1.update(id, "stock", Value::int(9)).unwrap();
//! t2.update(id, "stock", Value::int(3)).unwrap();
//! t1.commit().unwrap();
//! // First committer wins; the loser learns it conflicted.
//! assert!(matches!(t2.commit(), Err(CommitError::WriteConflict { .. })));
//!
//! // Readers see the committed value — and a session begun *before* a
//! // commit keeps its consistent snapshot.
//! let mut r = store.begin();
//! assert_eq!(r.get(id).unwrap().get(&"stock".into()), &Value::int(9));
//! ```

use std::collections::BTreeSet;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{mpsc, Arc, Condvar, Mutex, MutexGuard, PoisonError, RwLock};
use std::thread::JoinHandle;

use interop_model::fx::FxHashMap;
use interop_model::{AttrName, ClassName, Object, ObjectId, Value};

use crate::optimize::Optimizer;
use crate::oracle::{Item, QueryRecord, TxnRecord};
use crate::snapshot;
use crate::store::{DurabilityMode, SnapshotFailure, SnapshotJob, Store, StoreError};
use crate::txn::{Transaction, TxnOp, TxnOutcome};
use crate::wal::{DurabilityError, GroupCommitPolicy, WalAck};

/// Why a [`MvccTxn::commit`] was refused. In every case the shared
/// store is untouched by the failed transaction — commit is atomic.
#[derive(Clone, Debug, PartialEq)]
pub enum CommitError {
    /// Another transaction committed a write to an object in this
    /// transaction's write set after this transaction began
    /// (first-committer-wins).
    WriteConflict {
        /// The contended object.
        object: ObjectId,
        /// When the competing write committed.
        committed_ts: u64,
        /// This transaction's snapshot timestamp.
        begin_ts: u64,
    },
    /// An item this transaction read changed between begin and commit
    /// (read validation under [`ValidationMode::Serializable`]).
    ReadConflict {
        /// The item whose version moved.
        item: Item,
        /// The version this transaction observed.
        observed_ts: u64,
        /// The version now committed.
        committed_ts: u64,
    },
    /// The canonical store rejected the buffered operations at commit
    /// (e.g. a key collision with a concurrently committed insert that
    /// no object-level conflict check can see). The transaction rolled
    /// back cleanly.
    Rejected {
        /// Index of the failing buffered operation.
        failed_at: usize,
        /// The store's reason.
        error: StoreError,
    },
    /// Group commit only: the transaction reached the shared store and
    /// the log buffer, but the covering `sync_data` **failed** — the
    /// commit is applied in memory (later snapshots see it) yet may
    /// not survive a crash. The log is poisoned against further
    /// appends, so subsequent durable commits fail loudly too. This is
    /// the concurrent analogue of the single-writer memory-runs-ahead
    /// contract: acknowledged never means lost, so an un-syncable
    /// commit is not acknowledged as durable.
    SyncFailed {
        /// The in-memory commit timestamp the transaction received.
        ts: u64,
        /// The sync failure.
        error: DurabilityError,
    },
}

impl fmt::Display for CommitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CommitError::WriteConflict {
                object,
                committed_ts,
                begin_ts,
            } => write!(
                f,
                "write conflict on {object}: committed at ts {committed_ts}, \
                 after this txn began at ts {begin_ts}"
            ),
            CommitError::ReadConflict {
                item,
                observed_ts,
                committed_ts,
            } => write!(
                f,
                "read conflict on {item}: observed version {observed_ts}, \
                 now {committed_ts}"
            ),
            CommitError::Rejected { failed_at, error } => {
                write!(f, "rejected at op {failed_at}: {error}")
            }
            CommitError::SyncFailed { ts, error } => write!(
                f,
                "commit ts {ts} applied in memory but the group sync \
                 failed; durability is not guaranteed: {error}"
            ),
        }
    }
}

impl std::error::Error for CommitError {}

/// What commit-time validation enforces.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ValidationMode {
    /// Write-conflict detection **and** read validation: commits admit
    /// only serializable histories (the oracle's property suite runs
    /// over this mode and asserts every history it admits is
    /// serializable).
    #[default]
    Serializable,
    /// Write-conflict detection only — classic snapshot isolation.
    /// Admits write skew; kept so the test suite can produce real
    /// anomalies and prove the serializability oracle rejects them.
    FirstCommitterWins,
}

/// How many times [`MvccStore::run_txn`] re-runs a conflict-losing
/// closure before giving up.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Maximum commit attempts, the first included (clamped to ≥ 1).
    pub max_attempts: u32,
}

impl Default for RetryPolicy {
    /// Eight attempts: enough that a handful of contending writers all
    /// make progress, small enough that pathological contention fails
    /// fast instead of livelocking.
    fn default() -> Self {
        RetryPolicy { max_attempts: 8 }
    }
}

impl RetryPolicy {
    /// A policy with an explicit attempt budget.
    pub fn attempts(max_attempts: u32) -> Self {
        RetryPolicy { max_attempts }
    }
}

/// Why [`MvccStore::run_txn`] gave up.
#[derive(Debug)]
pub enum RunTxnError<E> {
    /// The closure itself failed; the transaction was discarded and
    /// not retried.
    Txn(E),
    /// The commit failed for a non-conflict reason (constraint
    /// rejection, durability failure) — retrying would not help.
    Commit(CommitError),
    /// Every attempt lost a conflict.
    Contention {
        /// Attempts made (= the policy's budget).
        attempts: u32,
        /// The conflict the final attempt lost.
        last: CommitError,
    },
}

impl<E: fmt::Display> fmt::Display for RunTxnError<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunTxnError::Txn(e) => write!(f, "transaction closure failed: {e}"),
            RunTxnError::Commit(e) => write!(f, "commit failed: {e}"),
            RunTxnError::Contention { attempts, last } => {
                write!(f, "still conflicting after {attempts} attempts: {last}")
            }
        }
    }
}

impl<E: fmt::Debug + fmt::Display> std::error::Error for RunTxnError<E> {}

/// The committed tail of the store, guarded by the commit mutex.
struct Committed {
    /// Whether the canonical store's WAL runs under a grouped policy —
    /// cached here so the hot commit path never takes the group-commit
    /// mutex (which ack waiters and the sync leader contend on) just to
    /// read the policy. Kept in step by [`MvccStore::set_group_commit`].
    grouped: bool,
    /// The canonical store: owns durability; every commit re-applies
    /// its buffered ops here through the ordinary [`Transaction`]
    /// path, so the WAL sees one `Begin…Commit` run per commit, in
    /// timestamp order.
    store: Store,
    /// A volatile mirror of `store`, maintained copy-on-write and
    /// published as the read snapshot. Kept separate so published
    /// `Arc`s never alias the durability-owning store.
    mirror: Arc<Store>,
    /// Item → commit timestamp of its latest committed write.
    versions: Arc<FxHashMap<Item, u64>>,
    /// The latest commit timestamp.
    ts: u64,
    /// When `Some`, every commit (read-only included) appends its
    /// [`TxnRecord`] for the serializability oracle.
    history: Option<Vec<TxnRecord>>,
}

/// The read-side publication: swapped atomically (under a brief write
/// lock) after each commit; [`MvccStore::begin`] takes the read lock
/// only long enough to clone two `Arc`s.
struct Published {
    ts: u64,
    snapshot: Arc<Store>,
    versions: Arc<FxHashMap<Item, u64>>,
}

struct Inner {
    /// Shared with the background snapshot worker (which must apply
    /// prune/failure results under the same commit mutex) — the worker
    /// deliberately holds this `Arc` and **not** `Inner`, so dropping
    /// the last [`MvccStore`] handle tears the worker down.
    committed: Arc<Mutex<Committed>>,
    published: RwLock<Published>,
    validation: ValidationMode,
    /// Lock-free object-id allocation for concurrent sessions.
    next_serial: AtomicU64,
    space: u32,
    /// Present only for [`DurabilityMode::WalWithSnapshots`]: the
    /// background worker that writes cadence snapshots off the commit
    /// path.
    snapshots: Option<SnapshotWorker>,
}

/// Handle to the background snapshot worker thread. Dropping it drops
/// the job sender (the worker drains queued jobs and exits) and joins
/// the thread — so every submitted snapshot is written or its failure
/// recorded before the handle is gone.
struct SnapshotWorker {
    tx: Option<Sender<(SnapshotJob, Arc<Store>)>>,
    handle: Option<JoinHandle<()>>,
    progress: Arc<SnapshotProgress>,
    /// Fallback target when the worker thread could not be spawned
    /// (resource exhaustion): jobs then run inline on the committing
    /// thread instead of being dropped.
    committed: Arc<Mutex<Committed>>,
}

/// Submitted/completed counters with a condvar, so tests (and shutdown
/// paths) can wait for the worker to go idle.
struct SnapshotProgress {
    counts: Mutex<(u64, u64)>,
    cv: Condvar,
}

impl SnapshotProgress {
    fn submitted(&self) {
        lock(&self.counts).0 += 1;
    }

    fn completed(&self) {
        lock(&self.counts).1 += 1;
        self.cv.notify_all();
    }

    fn wait_idle(&self) {
        let mut counts = lock(&self.counts);
        while counts.1 < counts.0 {
            counts = self.cv.wait(counts).unwrap_or_else(PoisonError::into_inner);
        }
    }
}

impl SnapshotWorker {
    fn spawn(committed: Arc<Mutex<Committed>>) -> Self {
        let (tx, rx) = mpsc::channel();
        let progress = Arc::new(SnapshotProgress {
            counts: Mutex::new((0, 0)),
            cv: Condvar::new(),
        });
        let worker_progress = Arc::clone(&progress);
        let worker_committed = Arc::clone(&committed);
        // Thread spawn fails only under resource exhaustion; a
        // worker-less handle degrades to running snapshot jobs inline
        // on the committing thread rather than panicking or dropping
        // them.
        let handle = std::thread::Builder::new()
            .name("mvcc-snapshot".into())
            .spawn(move || snapshot_worker(rx, worker_committed, worker_progress))
            .ok();
        SnapshotWorker {
            tx: handle.is_some().then_some(tx),
            handle,
            progress,
            committed,
        }
    }

    fn submit(&self, job: SnapshotJob, snap: Arc<Store>) {
        if let Some(tx) = &self.tx {
            self.progress.submitted();
            if tx.send((job, snap)).is_err() {
                // Worker already gone (it panicked); balance the
                // counter so waiters do not hang.
                self.progress.completed();
            }
        } else {
            run_snapshot_job(job, snap, &self.committed);
        }
    }
}

impl Drop for SnapshotWorker {
    fn drop(&mut self) {
        drop(self.tx.take());
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

/// The worker loop: dump each job's published snapshot to disk, then —
/// under the commit mutex — prune the sealed segments the durable
/// snapshot covers (or record the failure for
/// [`MvccStore::take_snapshot_error`]).
fn snapshot_worker(
    rx: Receiver<(SnapshotJob, Arc<Store>)>,
    committed: Arc<Mutex<Committed>>,
    progress: Arc<SnapshotProgress>,
) {
    while let Ok((job, snap)) = rx.recv() {
        run_snapshot_job(job, snap, &committed);
        progress.completed();
    }
}

/// One snapshot job, start to finish: dump the published snapshot to
/// disk, then — under the commit mutex — prune the sealed segments it
/// covers, or record the failure. Runs on the worker thread normally,
/// or inline on the committing thread if the worker could not spawn.
fn run_snapshot_job(job: SnapshotJob, snap: Arc<Store>, committed: &Mutex<Committed>) {
    let objects: Vec<&Object> = snap.db().objects().collect();
    let result = snapshot::write_snapshot(
        &job.dir,
        job.watermark,
        job.tracking,
        &job.touched,
        &objects,
    );
    drop(objects);
    drop(snap);
    let mut c = lock(committed);
    match result {
        Ok(_) => c.store.prune_wal_segments(&job.prunable),
        Err(e) => c.store.note_snapshot_failure(e),
    }
}

/// A shared, thread-safe handle to one MVCC store. Cloning is cheap
/// (`Arc`); all clones address the same store.
#[derive(Clone)]
pub struct MvccStore {
    inner: Arc<Inner>,
}

/// Compile-time proof the sharing model holds: handles and in-flight
/// transactions may cross threads.
const _: fn() = assert_send_sync::<MvccStore>;
const _: fn() = assert_send::<MvccTxn>;
const fn assert_send_sync<T: Send + Sync>() {}
const fn assert_send<T: Send>() {}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

impl MvccStore {
    /// Wraps `store` — typically fresh from [`Store::new`] or a
    /// durable [`Store::open`] — for concurrent use, with the default
    /// [`ValidationMode::Serializable`].
    pub fn new(store: Store) -> Self {
        Self::with_validation(store, ValidationMode::default())
    }

    /// [`MvccStore::new`] with an explicit validation mode.
    ///
    /// For a [`DurabilityMode::WalWithSnapshots`] store this also
    /// spawns the background snapshot worker and switches the store's
    /// cadence to deferred: committers only raise a flag at cadence,
    /// and the worker dumps the already-published `Arc` snapshot off
    /// the commit path.
    pub fn with_validation(mut store: Store, validation: ValidationMode) -> Self {
        let space = store.db().space();
        let next_serial = store
            .db()
            .objects()
            .map(|o| o.id.serial())
            .max()
            .map_or(0, |m| m + 1);
        let wants_worker = store.durability_mode() == DurabilityMode::WalWithSnapshots;
        store.set_deferred_snapshots(wants_worker);
        let mut mirror = store.detached_clone();
        // The mirror never feeds the incremental pipeline directly;
        // keeping its private touched log off stops it growing
        // unboundedly when the canonical store tracks ids.
        mirror.track_touched(false);
        let mirror = Arc::new(mirror);
        let versions: Arc<FxHashMap<Item, u64>> = Arc::new(FxHashMap::default());
        let committed = Arc::new(Mutex::new(Committed {
            grouped: store.group_commit().is_grouped(),
            store,
            mirror: Arc::clone(&mirror),
            versions: Arc::clone(&versions),
            ts: 0,
            history: None,
        }));
        let snapshots = wants_worker.then(|| SnapshotWorker::spawn(Arc::clone(&committed)));
        MvccStore {
            inner: Arc::new(Inner {
                committed,
                published: RwLock::new(Published {
                    ts: 0,
                    snapshot: mirror,
                    versions,
                }),
                validation,
                next_serial: AtomicU64::new(next_serial),
                space,
                snapshots,
            }),
        }
    }

    /// The validation mode commits run under.
    pub fn validation(&self) -> ValidationMode {
        self.inner.validation
    }

    /// Begins a transaction against the latest published snapshot.
    /// Dropping the returned [`MvccTxn`] without committing rolls it
    /// back (it buffered everything locally, so there is nothing to
    /// undo).
    pub fn begin(&self) -> MvccTxn {
        let p = self
            .inner
            .published
            .read()
            .unwrap_or_else(PoisonError::into_inner);
        MvccTxn {
            store: self.clone(),
            begin_ts: p.ts,
            snapshot: Arc::clone(&p.snapshot),
            versions: Arc::clone(&p.versions),
            local: None,
            ops: Vec::new(),
            write_objs: BTreeSet::new(),
            write_classes: BTreeSet::new(),
            reads: Vec::new(),
            read_seen: BTreeSet::new(),
            queries: Vec::new(),
        }
    }

    /// The latest published snapshot — a consistent, immutable view
    /// for ad-hoc reads outside any transaction.
    pub fn read_view(&self) -> Arc<Store> {
        let p = self
            .inner
            .published
            .read()
            .unwrap_or_else(PoisonError::into_inner);
        Arc::clone(&p.snapshot)
    }

    /// The latest commit timestamp (0 before the first commit).
    pub fn last_commit_ts(&self) -> u64 {
        self.inner
            .published
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .ts
    }

    /// Allocates a fresh object id, unique across all sessions.
    pub fn fresh_id(&self) -> ObjectId {
        let serial = self.inner.next_serial.fetch_add(1, Ordering::Relaxed);
        ObjectId::new(self.inner.space, serial)
    }

    /// Starts (`true`) or stops-and-discards (`false`) history
    /// recording for the serializability oracle: while on, every
    /// commit appends a [`TxnRecord`].
    pub fn record_history(&self, on: bool) {
        lock(&self.inner.committed).history = if on { Some(Vec::new()) } else { None };
    }

    /// Drains the recorded history (empty when recording is off).
    pub fn take_history(&self) -> Vec<TxnRecord> {
        let mut c = lock(&self.inner.committed);
        match &mut c.history {
            Some(h) => std::mem::take(h),
            None => Vec::new(),
        }
    }

    /// Starts or stops the canonical store's touched-id log (see
    /// [`Store::track_touched`]).
    pub fn track_touched(&self, on: bool) {
        lock(&self.inner.committed).store.track_touched(on);
    }

    /// Atomically drains the touched-id log and returns it together
    /// with the snapshot those ids are consistent with — the
    /// incremental-pipeline entry point for shared stores (both sides
    /// taken under the commit mutex, so no commit can slip between
    /// them).
    pub fn drain_touched(&self) -> (Arc<Store>, Vec<ObjectId>) {
        let mut c = lock(&self.inner.committed);
        let touched = c.store.take_touched();
        (Arc::clone(&c.mirror), touched)
    }

    /// The canonical store's durability mode.
    pub fn durability_mode(&self) -> DurabilityMode {
        lock(&self.inner.committed).store.durability_mode()
    }

    /// Snapshots the canonical store now (see [`Store::snapshot_now`]),
    /// inline on the calling thread — the background worker is not
    /// involved.
    pub fn snapshot_now(&self) -> Result<(), StoreError> {
        lock(&self.inner.committed).store.snapshot_now()
    }

    /// Takes (and clears) the record of failed automatic snapshots —
    /// background ones included — since the last poll (see
    /// [`Store::take_snapshot_error`]).
    pub fn take_snapshot_error(&self) -> Option<SnapshotFailure> {
        lock(&self.inner.committed).store.take_snapshot_error()
    }

    /// Sets the group-commit policy (see [`Store::set_group_commit`]):
    /// with a grouped policy, concurrent committers share one
    /// `sync_data` per batch and block only for the covering sync —
    /// outside the commit mutex, so the batch forms.
    pub fn set_group_commit(&self, policy: GroupCommitPolicy) {
        let mut c = lock(&self.inner.committed);
        c.store.set_group_commit(policy);
        // Read back what actually took effect: a volatile store ignores
        // the policy, and then so does the commit path.
        c.grouped = c.store.group_commit().is_grouped();
    }

    /// The group-commit policy in effect.
    pub fn group_commit(&self) -> GroupCommitPolicy {
        lock(&self.inner.committed).store.group_commit()
    }

    /// Sets the WAL segment rotation threshold (see
    /// [`Store::set_wal_segment_bytes`]).
    pub fn set_wal_segment_bytes(&self, bytes: u64) {
        lock(&self.inner.committed)
            .store
            .set_wal_segment_bytes(bytes);
    }

    /// Blocks until every background snapshot submitted so far has been
    /// written (and its segment pruning applied) or has recorded its
    /// failure. A no-op without a background worker. Tests use this to
    /// observe cadence snapshots deterministically; shutdown does not
    /// need it — dropping the last handle drains the worker anyway.
    pub fn flush_snapshots(&self) {
        if let Some(w) = &self.inner.snapshots {
            w.progress.wait_idle();
        }
    }

    /// Runs `f` inside a transaction, retrying
    /// [`CommitError::WriteConflict`] / [`CommitError::ReadConflict`]
    /// losers on a fresh snapshot up to the policy's attempt budget.
    /// Returns the closure's value and the commit timestamp.
    ///
    /// The closure may run several times, so it must be idempotent
    /// from the transaction's point of view (buffer writes through the
    /// transaction it is handed, keep side effects out). A closure
    /// error aborts immediately ([`RunTxnError::Txn`]); a
    /// non-conflict commit failure is final ([`RunTxnError::Commit`]);
    /// conflicts past the budget surface as
    /// [`RunTxnError::Contention`] with the last conflict attached.
    pub fn run_txn<T, E>(
        &self,
        policy: RetryPolicy,
        mut f: impl FnMut(&mut MvccTxn) -> Result<T, E>,
    ) -> Result<(T, u64), RunTxnError<E>> {
        let max_attempts = policy.max_attempts.max(1);
        let mut attempt = 0;
        loop {
            attempt += 1;
            let mut txn = self.begin();
            let value = f(&mut txn).map_err(RunTxnError::Txn)?;
            match txn.commit() {
                Ok(ts) => return Ok((value, ts)),
                Err(e @ (CommitError::WriteConflict { .. } | CommitError::ReadConflict { .. })) => {
                    if attempt >= max_attempts {
                        return Err(RunTxnError::Contention {
                            attempts: attempt,
                            last: e,
                        });
                    }
                }
                Err(e) => return Err(RunTxnError::Commit(e)),
            }
        }
    }

    /// Unwraps the canonical store when this is the last handle;
    /// returns the handle unchanged otherwise. Shuts the background
    /// snapshot worker down first (draining every queued snapshot), and
    /// hands the cadence back to the inline path of the single-threaded
    /// store.
    pub fn into_store(self) -> Result<Store, MvccStore> {
        match Arc::try_unwrap(self.inner) {
            Ok(inner) => {
                let Inner {
                    committed,
                    snapshots,
                    ..
                } = inner;
                // Joins the worker, which drains its queue first — so
                // its `Arc` clone of `committed` is gone afterwards.
                drop(snapshots);
                let mut store = Arc::try_unwrap(committed)
                    .unwrap_or_else(|_| unreachable!("worker joined; no other holder remains"))
                    .into_inner()
                    .unwrap_or_else(PoisonError::into_inner)
                    .store;
                store.set_deferred_snapshots(false);
                Ok(store)
            }
            Err(inner) => Err(MvccStore { inner }),
        }
    }
}

impl fmt::Debug for MvccStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MvccStore")
            .field("last_commit_ts", &self.last_commit_ts())
            .field("validation", &self.inner.validation)
            .finish_non_exhaustive()
    }
}

/// One session's transaction: snapshot reads, locally buffered writes,
/// validate-then-commit. `Send`, so worker threads can own one each.
pub struct MvccTxn {
    store: MvccStore,
    begin_ts: u64,
    /// The published snapshot this transaction reads.
    snapshot: Arc<Store>,
    /// Item versions as of `begin_ts` (what reads observe).
    versions: Arc<FxHashMap<Item, u64>>,
    /// Lazily created overlay: snapshot + own writes, so reads and
    /// planned queries see the transaction's own effects and doomed
    /// operations are rejected by real constraint checks immediately.
    local: Option<Box<Store>>,
    /// Buffered operations, re-committed through the canonical store.
    ops: Vec<TxnOp>,
    write_objs: BTreeSet<ObjectId>,
    write_classes: BTreeSet<ClassName>,
    /// Items read, with the version observed (recorded once each).
    reads: Vec<(Item, u64)>,
    read_seen: BTreeSet<Item>,
    queries: Vec<QueryRecord>,
}

impl MvccTxn {
    /// The snapshot timestamp this transaction reads at.
    pub fn begin_ts(&self) -> u64 {
        self.begin_ts
    }

    /// The store the transaction currently reads: the local overlay
    /// once it has written, the shared snapshot before.
    fn reading_store(&self) -> &Store {
        match &self.local {
            Some(l) => l,
            None => &self.snapshot,
        }
    }

    fn observed_version(&self, item: &Item) -> u64 {
        self.versions.get(item).copied().unwrap_or(0)
    }

    /// Records a read of `item` at its snapshot version, once.
    fn note_read(&mut self, item: Item) {
        if self.read_seen.insert(item.clone()) {
            let v = self.observed_version(&item);
            self.reads.push((item, v));
        }
    }

    /// Records a write of `id`: the slot itself plus the class-level
    /// items of its class and every ancestor, so concurrent planned
    /// queries over any covering extension conflict (phantom
    /// protection) and same-class writers are totally ordered.
    fn note_write(&mut self, id: ObjectId, class: &ClassName) {
        self.write_objs.insert(id);
        for c in self.snapshot.db().schema.self_and_ancestors(class) {
            self.write_classes.insert(c);
        }
    }

    fn local_mut(&mut self) -> &mut Store {
        if self.local.is_none() {
            self.local = Some(Box::new(self.snapshot.detached_clone()));
        }
        match &mut self.local {
            Some(l) => l,
            None => unreachable!("just installed above"),
        }
    }

    /// Reads one object (own uncommitted writes visible). Reads of
    /// objects this transaction has not written are recorded for
    /// commit-time validation — including reads that find nothing.
    pub fn get(&mut self, id: ObjectId) -> Option<Object> {
        if !self.write_objs.contains(&id) {
            self.note_read(Item::Obj(id));
        }
        self.reading_store().db().object(id).cloned()
    }

    /// Buffers an insert, validated against the transaction's view.
    pub fn insert(&mut self, obj: Object) -> Result<(), StoreError> {
        let (id, class) = (obj.id, obj.class.clone());
        self.local_mut().insert(obj.clone())?;
        self.note_write(id, &class);
        self.ops.push(TxnOp::Insert(obj));
        Ok(())
    }

    /// Creates and inserts an object of `class` with a globally fresh
    /// id, returning the id.
    pub fn create(
        &mut self,
        class: impl Into<ClassName>,
        attrs: Vec<(&str, Value)>,
    ) -> Result<ObjectId, StoreError> {
        let id = self.store.fresh_id();
        let mut obj = Object::new(id, class.into());
        for (name, v) in attrs {
            obj.set(name, v);
        }
        self.insert(obj)?;
        Ok(id)
    }

    /// Buffers a single-attribute update (read-modify-write: the
    /// target's snapshot version joins the read set).
    pub fn update(
        &mut self,
        id: ObjectId,
        attr: impl Into<AttrName>,
        value: Value,
    ) -> Result<(), StoreError> {
        if !self.write_objs.contains(&id) {
            self.note_read(Item::Obj(id));
        }
        let attr = attr.into();
        let local = self.local_mut();
        let class = local.db().object_req(id)?.class.clone();
        local.update(id, attr.clone(), value.clone())?;
        self.note_write(id, &class);
        self.ops.push(TxnOp::Update { id, attr, value });
        Ok(())
    }

    /// Buffers a removal (read-modify-write, like
    /// [`MvccTxn::update`]).
    pub fn remove(&mut self, id: ObjectId) -> Result<Object, StoreError> {
        if !self.write_objs.contains(&id) {
            self.note_read(Item::Obj(id));
        }
        let obj = self.local_mut().remove(id)?;
        self.note_write(id, &obj.class);
        self.ops.push(TxnOp::Delete(id));
        Ok(obj)
    }

    /// Runs a planned query against the transaction's view (own
    /// writes visible), recording the queried class and every hit for
    /// commit-time validation and for the oracle.
    pub fn query(
        &mut self,
        class: impl Into<ClassName>,
        predicate: &interop_constraint::Formula,
    ) -> Result<Vec<ObjectId>, StoreError> {
        let class = class.into();
        let store = self.reading_store();
        let opt = Optimizer::new(store, class.clone(), Vec::new());
        let (mut hits, _) = opt.execute(store, predicate)?;
        hits.sort_unstable();
        self.note_read(Item::Class(class.clone()));
        for &id in &hits {
            if !self.write_objs.contains(&id) {
                self.note_read(Item::Obj(id));
            }
        }
        self.queries.push(QueryRecord {
            class,
            predicate: predicate.clone(),
            hits: hits.clone(),
            at: self.ops.len(),
        });
        Ok(hits)
    }

    /// Discards the transaction. Equivalent to dropping it; provided
    /// so call sites can say what they mean.
    pub fn rollback(self) {}

    /// Validates and commits, returning the commit timestamp.
    ///
    /// Read-only transactions always succeed, with
    /// `commit timestamp == begin timestamp` — they are serializable
    /// at their snapshot position by construction and skip validation
    /// entirely.
    pub fn commit(self) -> Result<u64, CommitError> {
        let (ts, ack) = self.commit_start()?;
        // Only now — commit mutex released, later committers free to
        // join the batch — wait for the covering sync. `Err` means the
        // commit stands in memory but may not survive a crash; the log
        // is poisoned, so nothing later is acknowledged either.
        if let Some(ack) = ack {
            if let Err(error) = ack.wait() {
                return Err(CommitError::SyncFailed { ts, error });
            }
        }
        Ok(ts)
    }

    /// Validates and commits like [`MvccTxn::commit`], but does **not**
    /// wait for the covering sync: it returns a [`CommitTicket`] the
    /// caller redeems with [`CommitTicket::wait`] whenever it needs the
    /// durability acknowledgement.
    ///
    /// This is the pipelined flavour of group commit: a session can
    /// keep several commits in flight and wait for their tickets in
    /// batches, so the group leader's one `sync_data` covers far more
    /// than one commit per session. On return the commit is already
    /// *published* — visible to every later snapshot — but until the
    /// ticket is waited on it is not *acknowledged*: a crash in the gap
    /// may lose it (together with everything after it, never anything
    /// before — recovery still lands on a commit-order prefix).
    /// Dropping the ticket forfeits the acknowledgement, nothing else.
    pub fn commit_pipelined(self) -> Result<CommitTicket, CommitError> {
        let (ts, ack) = self.commit_start()?;
        Ok(CommitTicket { ts, ack })
    }

    /// Shared commit path: everything up to (not including) the wait
    /// for the covering sync. Returns the commit timestamp and the WAL
    /// ack to wait on, if the store is durable and grouped.
    fn commit_start(self) -> Result<(u64, Option<WalAck>), CommitError> {
        let MvccTxn {
            store,
            begin_ts,
            ops,
            write_objs,
            write_classes,
            reads,
            queries,
            ..
        } = self;
        let inner = &store.inner;
        let mut c = lock(&inner.committed);

        if ops.is_empty() {
            if let Some(h) = &mut c.history {
                h.push(TxnRecord {
                    txn: h.len(),
                    begin_ts,
                    commit_ts: begin_ts,
                    reads,
                    writes: Vec::new(),
                    ops: Vec::new(),
                    queries,
                });
            }
            return Ok((begin_ts, None));
        }

        // 1. First-committer-wins on the object write set.
        for &id in &write_objs {
            let cur = c.versions.get(&Item::Obj(id)).copied().unwrap_or(0);
            if cur > begin_ts {
                return Err(CommitError::WriteConflict {
                    object: id,
                    committed_ts: cur,
                    begin_ts,
                });
            }
        }

        // 2. Read validation (serializable mode).
        if inner.validation == ValidationMode::Serializable {
            for (item, v) in &reads {
                let cur = c.versions.get(item).copied().unwrap_or(0);
                if cur != *v {
                    return Err(CommitError::ReadConflict {
                        item: item.clone(),
                        observed_ts: *v,
                        committed_ts: cur,
                    });
                }
            }
        }

        // 3. Re-commit through the canonical store: full constraint
        // enforcement plus the WAL `Begin…Commit` bracket. Under a
        // grouped policy the run is only buffered — the covering
        // `sync_data` is the group leader's, and this committer waits
        // for it *after* releasing the commit mutex, so the batch can
        // form while it publishes.
        // The canonical pass consumes an owned op list; keep the
        // original around only if the history recorder needs it.
        let mut ops = ops;
        let canonical_ops = if c.history.is_some() {
            ops.clone()
        } else {
            std::mem::take(&mut ops)
        };
        let ack = if c.grouped {
            match Transaction::from_ops(canonical_ops).commit_deferred(&mut c.store) {
                (TxnOutcome::RolledBack { failed_at, error }, _) => {
                    return Err(CommitError::Rejected { failed_at, error });
                }
                (TxnOutcome::Committed { .. }, ack) => ack,
            }
        } else {
            match Transaction::from_ops(canonical_ops).commit(&mut c.store) {
                TxnOutcome::RolledBack { failed_at, error } => {
                    return Err(CommitError::Rejected { failed_at, error });
                }
                TxnOutcome::Committed { .. } => None,
            }
        };

        // 4. Stamp versions and publish a fresh snapshot.
        c.ts += 1;
        let ts = c.ts;
        let mut writes = Vec::with_capacity(write_objs.len() + write_classes.len());
        {
            let versions = Arc::make_mut(&mut c.versions);
            for &id in &write_objs {
                versions.insert(Item::Obj(id), ts);
                writes.push(Item::Obj(id));
            }
            for cl in &write_classes {
                versions.insert(Item::Class(cl.clone()), ts);
                writes.push(Item::Class(cl.clone()));
            }
        }
        // Publish a fresh snapshot of the canonical store. Cloning is
        // cheap by construction — the database shares its schema and
        // objects behind `Arc`s — so re-cloning every commit beats
        // maintaining a copy-on-write mirror by re-applying the ops.
        let mut fresh = c.store.detached_clone();
        fresh.track_touched(false);
        c.mirror = Arc::new(fresh);
        if let Some(h) = &mut c.history {
            h.push(TxnRecord {
                txn: h.len(),
                begin_ts,
                commit_ts: ts,
                reads,
                writes,
                ops,
                queries,
            });
        }
        let published = Published {
            ts,
            snapshot: Arc::clone(&c.mirror),
            versions: Arc::clone(&c.versions),
        };
        // If the cadence fell due on this commit, capture the snapshot
        // job (sealing the active segment) together with the mirror —
        // which is exactly the extension at the job's watermark — for
        // the background worker.
        let snapshot_job = c
            .store
            .take_snapshot_job()
            .map(|job| (job, Arc::clone(&c.mirror)));
        // Publish while still holding the commit mutex, so snapshots
        // become visible in commit order.
        *inner
            .published
            .write()
            .unwrap_or_else(PoisonError::into_inner) = published;
        drop(c);
        if let Some((job, snap)) = snapshot_job {
            if let Some(w) = &inner.snapshots {
                w.submit(job, snap);
            }
        }
        Ok((ts, ack))
    }
}

/// The durability IOU from [`MvccTxn::commit_pipelined`]: the commit is
/// published, and [`CommitTicket::wait`] blocks until the covering
/// group sync has made it durable (or surfaces the sticky sync failure
/// as [`CommitError::SyncFailed`], exactly as `commit()` would).
///
/// Tickets are redeemable in any order — each waits only for its own
/// covering sync, and a later ticket's successful wait implies every
/// earlier commit is durable too (the log syncs in commit order).
/// Dropping a ticket without waiting forfeits only the
/// acknowledgement; the commit itself is never undone.
#[derive(Debug)]
#[must_use = "the commit is not acknowledged as durable until the ticket is waited on"]
pub struct CommitTicket {
    ts: u64,
    ack: Option<WalAck>,
}

impl CommitTicket {
    /// The commit timestamp — already assigned and published.
    pub fn ts(&self) -> u64 {
        self.ts
    }

    /// Blocks until the commit is durable and returns its timestamp.
    /// For volatile or non-grouped stores the commit was already as
    /// durable as it will ever be, and this returns immediately.
    pub fn wait(self) -> Result<u64, CommitError> {
        if let Some(ack) = &self.ack {
            if let Err(error) = ack.wait() {
                return Err(CommitError::SyncFailed { ts: self.ts, error });
            }
        }
        Ok(self.ts)
    }
}

impl fmt::Debug for MvccTxn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MvccTxn")
            .field("begin_ts", &self.begin_ts)
            .field("ops", &self.ops.len())
            .field("reads", &self.reads.len())
            .finish_non_exhaustive()
    }
}
