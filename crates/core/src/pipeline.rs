//! The Figure-3 methodology pipeline: conform → merge → classify →
//! derive → detect conflicts → suggest corrections, with an iterative
//! repair loop.

use std::collections::BTreeMap;
use std::fmt;

use interop_analyze::{analyze, has_errors, render, AnalysisInput, Diagnostic};
use interop_conform::{conform, ConformError, Conformed};
use interop_constraint::{Catalog, ConstraintId, Status};
use interop_merge::{merge, IntegratedView, MergeError, MergeOptions};
use interop_model::Database;
use interop_spec::{Decision, Spec};

use crate::conflict::{detect_conflicts, Conflict};
use crate::derive::{derive_global_constraints, DeriveOptions, GlobalConstraints};
use crate::implied::{implied_constraints, ImpliedConstraint};
use crate::repair::{suggest, Repair};
use crate::subjectivity::{
    classify_constraints, property_subjectivity, SpecIssue, SubjectivityMap,
};

/// Pipeline errors.
#[derive(Clone, Debug)]
pub enum IntegrateError {
    /// Conformation failed.
    Conform(ConformError),
    /// Merging failed.
    Merge(MergeError),
    /// Strict pre-flight refused the specification: the static analyzer
    /// found at least one error-severity diagnostic. Carries the full
    /// canonical stream so callers can render every finding, not just
    /// the first.
    Preflight(Vec<Diagnostic>),
}

impl fmt::Display for IntegrateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IntegrateError::Conform(e) => write!(f, "conformation failed: {e}"),
            IntegrateError::Merge(e) => write!(f, "merging failed: {e}"),
            IntegrateError::Preflight(diags) => {
                let errors = diags
                    .iter()
                    .filter(|d| d.severity == interop_analyze::Severity::Error)
                    .count();
                write!(
                    f,
                    "pre-flight refused the specification ({errors} error(s)):\n{}",
                    render(diags).trim_end()
                )
            }
        }
    }
}

impl std::error::Error for IntegrateError {}

impl From<ConformError> for IntegrateError {
    fn from(e: ConformError) -> Self {
        IntegrateError::Conform(e)
    }
}

impl From<MergeError> for IntegrateError {
    fn from(e: MergeError) -> Self {
        IntegrateError::Merge(e)
    }
}

/// Options for the full pipeline.
#[derive(Clone, Debug, Default)]
pub struct IntegratorOptions {
    /// Merge options (virtual-subclass naming).
    pub merge: MergeOptions,
    /// Derivation options.
    pub derive: DeriveOptions,
    /// Ablation: ignore the decision-function classification by treating
    /// every decision function as conflict-ignoring (`any`). Disables
    /// df-combination and property subjectivity — demonstrating what is
    /// lost without the paper's §5.1.2 analysis.
    pub ablate_df_classification: bool,
}

/// The complete outcome of one pipeline run.
#[derive(Clone, Debug)]
pub struct IntegrationOutcome {
    /// The conformed databases, catalogs and spec (§4).
    pub conformed: Conformed,
    /// The merged view (§2.3).
    pub view: IntegratedView,
    /// Property subjectivity (§5.1.2).
    pub subjectivity: SubjectivityMap,
    /// Constraint statuses (§5.1.3).
    pub statuses: BTreeMap<ConstraintId, Status>,
    /// Specification validation issues.
    pub spec_issues: Vec<SpecIssue>,
    /// Implied constraints from rule conditions (§3).
    pub implied: Vec<ImpliedConstraint>,
    /// The derived global constraint sets (§5.2).
    pub global: GlobalConstraints,
    /// Detected conflicts.
    pub conflicts: Vec<Conflict>,
    /// Per-conflict repair suggestions (parallel to `conflicts`).
    pub repairs: Vec<Vec<Repair>>,
}

impl IntegrationOutcome {
    /// True when the specification produced no issues and no conflicts.
    pub fn is_clean(&self) -> bool {
        self.spec_issues.is_empty() && self.conflicts.is_empty()
    }
}

/// How the pre-flight gate treats analyzer findings.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum PreflightMode {
    /// Error-severity diagnostics refuse the specification before any
    /// data is read.
    #[default]
    Strict,
    /// Diagnostics are reported but never block.
    Warn,
}

/// The pipeline driver.
pub struct Integrator {
    local_db: Database,
    local_catalog: Catalog,
    remote_db: Database,
    remote_catalog: Catalog,
    spec: Spec,
    options: IntegratorOptions,
}

impl Integrator {
    /// Creates a pipeline over two databases, their catalogs and a spec.
    pub fn new(
        local_db: Database,
        local_catalog: Catalog,
        remote_db: Database,
        remote_catalog: Catalog,
        spec: Spec,
    ) -> Self {
        Integrator {
            local_db,
            local_catalog,
            remote_db,
            remote_catalog,
            spec,
            options: IntegratorOptions::default(),
        }
    }

    /// Sets options.
    pub fn with_options(mut self, options: IntegratorOptions) -> Self {
        self.options = options;
        self
    }

    /// The current specification.
    pub fn spec(&self) -> &Spec {
        &self.spec
    }

    /// Replaces the specification (used by the repair loop).
    pub fn set_spec(&mut self, spec: Spec) {
        self.spec = spec;
    }

    /// Runs the static analyzer over the schemas, catalogs and spec —
    /// no object data is touched — and returns the canonical diagnostic
    /// stream. Always safe to call; never fails.
    pub fn preflight(&self) -> Vec<Diagnostic> {
        analyze(&AnalysisInput {
            local: &self.local_db.schema,
            local_catalog: &self.local_catalog,
            remote: &self.remote_db.schema,
            remote_catalog: &self.remote_catalog,
            spec: &self.spec,
        })
    }

    /// Pre-flight gate: analyzes the spec and, in [`PreflightMode::Strict`],
    /// refuses to proceed when any error-severity diagnostic is present —
    /// *before* the pipeline reads a single object. In
    /// [`PreflightMode::Warn`] the diagnostics are returned for display
    /// but never block.
    pub fn preflight_gate(&self, mode: PreflightMode) -> Result<Vec<Diagnostic>, IntegrateError> {
        let diags = self.preflight();
        if mode == PreflightMode::Strict && has_errors(&diags) {
            return Err(IntegrateError::Preflight(diags));
        }
        Ok(diags)
    }

    /// Convenience: strict pre-flight, then the full pipeline. Defective
    /// specs fail in milliseconds with the complete diagnostic stream
    /// instead of failing (or silently misbehaving) mid-integration.
    pub fn run_checked(&self) -> Result<IntegrationOutcome, IntegrateError> {
        self.preflight_gate(PreflightMode::Strict)?;
        self.run()
    }

    /// Runs the full pipeline once.
    pub fn run(&self) -> Result<IntegrationOutcome, IntegrateError> {
        let mut spec = self.spec.clone();
        if self.options.ablate_df_classification {
            for pe in &mut spec.propeqs {
                pe.df = Decision::Any;
            }
        }
        let conformed = conform(
            &self.local_db,
            &self.local_catalog,
            &self.remote_db,
            &self.remote_catalog,
            &spec,
        )?;
        let view = merge(&conformed, &self.options.merge)?;
        let subjectivity = property_subjectivity(&conformed);
        let (statuses, mut spec_issues) = classify_constraints(&conformed, &subjectivity);
        let (implied, implied_issues) = implied_constraints(&conformed);
        spec_issues.extend(implied_issues);
        let global =
            derive_global_constraints(&conformed, &subjectivity, &statuses, self.options.derive);
        let conflicts = detect_conflicts(&conformed, &statuses, &global, &view);
        let repairs = conflicts.iter().map(suggest).collect();
        Ok(IntegrationOutcome {
            conformed,
            view,
            subjectivity,
            statuses,
            spec_issues,
            implied,
            global,
            conflicts,
            repairs,
        })
    }

    /// The Figure-3 loop: run, apply the first suggested repair of each
    /// repairable conflict, and re-run — up to `max_rounds` times or until
    /// clean. Returns the outcomes of every round (the last one reflects
    /// the final, possibly repaired, specification).
    pub fn run_with_repairs(
        &mut self,
        max_rounds: usize,
    ) -> Result<Vec<IntegrationOutcome>, IntegrateError> {
        let mut outcomes = Vec::new();
        for _ in 0..max_rounds.max(1) {
            let outcome = self.run()?;
            let done = outcome.conflicts.is_empty() || outcome.repairs.iter().all(|r| r.is_empty());
            // Repair conditions are phrased in conformed terms; translate
            // them back into the original subject terms before applying
            // (inverse attribute substitution + inverse domain conversion).
            let repairs: Vec<Repair> = outcome
                .repairs
                .iter()
                .filter_map(|r| r.first().cloned())
                .filter_map(|r| self.to_original_terms(&outcome, r))
                .collect();
            outcomes.push(outcome);
            if done {
                break;
            }
            let mut spec = self.spec.clone();
            for r in &repairs {
                spec = crate::repair::apply(&spec, r);
            }
            self.set_spec(spec);
        }
        Ok(outcomes)
    }

    /// Translates a repair phrased in conformed terms into the original
    /// specification's terms. Returns `None` when the translation is not
    /// invertible (the repair is then skipped rather than misapplied).
    fn to_original_terms(&self, outcome: &IntegrationOutcome, r: Repair) -> Option<Repair> {
        match r {
            Repair::StrengthenRule {
                rule,
                add_condition,
            } => {
                let orig_rule = self.spec.rules.iter().find(|x| x.id == rule)?;
                let (schema, plan) = match orig_rule.subject_side {
                    interop_spec::Side::Local => {
                        (&self.local_db.schema, &outcome.conformed.local.plan)
                    }
                    interop_spec::Side::Remote => {
                        (&self.remote_db.schema, &outcome.conformed.remote.plan)
                    }
                };
                let idx = interop_conform::PlanIndex::new(schema, plan);
                let rw = interop_conform::Rewriter::new(&idx);
                let cond = rw
                    .unrewrite_formula(&orig_rule.subject_class, &add_condition)
                    .ok()?;
                Some(Repair::StrengthenRule {
                    rule,
                    add_condition: cond,
                })
            }
            other => Some(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures;

    fn integrator() -> Integrator {
        let fx = fixtures::paper_fixture();
        Integrator::new(
            fx.local_db,
            fx.local_catalog,
            fx.remote_db,
            fx.remote_catalog,
            fx.spec,
        )
        .with_options(IntegratorOptions {
            merge: fixtures::merge_options(),
            ..Default::default()
        })
    }

    #[test]
    fn full_pipeline_on_paper_fixture() {
        let outcome = integrator().run().unwrap();
        assert!(outcome.spec_issues.is_empty(), "{:?}", outcome.spec_issues);
        // The derived set is non-trivial.
        assert!(outcome.global.object.len() >= 8);
        assert!(!outcome.implied.is_empty());
        // RefereedProceedings appears in the view.
        assert!(outcome
            .view
            .hierarchy
            .intersections
            .iter()
            .any(|i| i.name.as_str() == "RefereedProceedings"));
    }

    #[test]
    fn ablation_drops_df_combinations() {
        let full = integrator().run().unwrap();
        let ablated = integrator()
            .with_options(IntegratorOptions {
                merge: fixtures::merge_options(),
                ablate_df_classification: true,
                ..Default::default()
            })
            .run()
            .unwrap();
        let df_count = |o: &IntegrationOutcome| {
            o.global
                .object
                .iter()
                .filter(|d| matches!(d.origin, crate::derive::DerivationOrigin::DfCombination(_)))
                .count()
        };
        assert!(df_count(&full) > 0);
        assert_eq!(df_count(&ablated), 0, "ablation must kill df combination");
        // And the ablated run mistakes subjective values for objective
        // ones — more implicit risks or pass-throughs.
        assert!(ablated.global.object.len() != full.global.object.len());
    }

    #[test]
    fn figure3_repair_loop_fixes_weakened_oc2() {
        // The §5.2.1 variant: weaken oc2 to rating >= 3, watch the loop
        // strengthen r3 with the missing condition and converge.
        let fx = fixtures::paper_fixture();
        let mut rcat = Catalog::new();
        for oc in fx.remote_catalog.all_object() {
            if oc.id.as_str() == "Bookseller.Proceedings.oc2" {
                let mut weak = oc.clone();
                weak.formula =
                    interop_constraint::Formula::cmp("ref?", interop_constraint::CmpOp::Eq, true)
                        .implies(interop_constraint::Formula::cmp(
                            "rating",
                            interop_constraint::CmpOp::Ge,
                            3i64,
                        ));
                rcat.add_object(weak);
            } else {
                rcat.add_object(oc.clone());
            }
        }
        for cc in fx.remote_catalog.all_class() {
            rcat.add_class(cc.clone());
        }
        for dc in fx.remote_catalog.database_constraints() {
            rcat.add_database(dc.clone());
        }
        // Data must satisfy the weakened constraint — it does (it is
        // weaker). But the admission check now fails for the objective
        // Publication.oc2 (KNOWNPUBLISHERS)... that implicit risk is not
        // an admission conflict; the admission conflict arises for
        // publisher membership. Run the loop and require convergence.
        let mut integ = Integrator::new(fx.local_db, fx.local_catalog, fx.remote_db, rcat, fx.spec)
            .with_options(IntegratorOptions {
                merge: fixtures::merge_options(),
                ..Default::default()
            });
        let outcomes = integ.run_with_repairs(4).unwrap();
        assert!(outcomes.len() > 1, "at least one repair round expected");
        let last = outcomes.last().unwrap();
        // After repairs, no admission conflicts remain.
        assert!(
            !last
                .conflicts
                .iter()
                .any(|c| matches!(c.kind, crate::conflict::ConflictKind::Admission { .. })),
            "admission conflicts must be repaired: {:?}",
            last.conflicts
        );
        // The strengthened rule carries the added condition.
        let r3 = integ
            .spec()
            .rules
            .iter()
            .find(|r| r.id.as_str() == "r3")
            .unwrap();
        assert_ne!(
            r3.intra_subject.to_string(),
            "ref? = true",
            "r3 should have been strengthened: {}",
            r3.intra_subject
        );
    }

    #[test]
    fn outcome_is_clean_flag() {
        let fx = fixtures::personnel_fixture();
        let outcome = Integrator::new(
            fx.local_db,
            fx.local_catalog,
            fx.remote_db,
            fx.remote_catalog,
            fx.spec,
        )
        .run()
        .unwrap();
        assert!(outcome.spec_issues.is_empty());
        assert!(outcome.is_clean(), "{:?}", outcome.conflicts);
    }
}
