//! Conflict resolution (§5.2.1): the paper's three options and their
//! application to a specification, enabling the Figure-3 methodology loop
//! (detect → suggest → correct → re-run).

use interop_constraint::{ConstraintId, Formula, Status};
use interop_model::AttrName;
use interop_spec::{Decision, RuleId, Side, Spec};

use crate::conflict::{Conflict, ConflictKind};

/// One resolution option.
#[derive(Clone, Debug, PartialEq)]
pub enum Repair {
    /// Option 1: change the constraint's specified status from objective
    /// to subjective ("change or ignore local and/or remote constraints").
    DemoteToSubjective(ConstraintId),
    /// Option 2: adapt the object comparison rules — add the missing
    /// restriction as an intraobject condition on the rule's subject.
    StrengthenRule {
        /// The rule to strengthen.
        rule: RuleId,
        /// The condition to conjoin to the subject's intraobject
        /// condition.
        add_condition: Formula,
    },
    /// Option 3: change the decision function of an equivalent property,
    /// altering which global constraints can be derived.
    ChangeDecisionFunction {
        /// The conformed property name.
        prop: AttrName,
        /// The current function.
        from: Decision,
        /// The suggested replacement.
        to: Decision,
    },
}

impl std::fmt::Display for Repair {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Repair::DemoteToSubjective(id) => {
                write!(f, "declare constraint {id} subjective")
            }
            Repair::StrengthenRule {
                rule,
                add_condition,
            } => write!(
                f,
                "strengthen rule {rule} with intraobject condition '{add_condition}'"
            ),
            Repair::ChangeDecisionFunction { prop, from, to } => {
                write!(
                    f,
                    "change decision function of '{prop}' from {from} to {to}"
                )
            }
        }
    }
}

/// Suggests resolution options for a conflict (§5.2.1's three options,
/// instantiated per conflict kind).
pub fn suggest(conflict: &Conflict) -> Vec<Repair> {
    match &conflict.kind {
        ConflictKind::Admission {
            rule,
            violated,
            needed,
        } => vec![
            // The paper's §5.2.1 example resolution: add the target's
            // object constraint to the rule condition; objects failing it
            // are simply not admitted.
            Repair::StrengthenRule {
                rule: rule.clone(),
                add_condition: needed.clone(),
            },
            Repair::DemoteToSubjective(violated.clone()),
        ],
        ConflictKind::Implicit { constraint, path } => {
            let prop = path.0.last().cloned().unwrap_or_else(|| AttrName::new("?"));
            vec![
                Repair::DemoteToSubjective(constraint.clone()),
                // Trusting the side that enforces the constraint removes
                // the non-determinism.
                Repair::ChangeDecisionFunction {
                    prop,
                    from: Decision::Any,
                    to: Decision::Trust(Side::Local),
                },
            ]
        }
        ConflictKind::Explicit { constraints, .. } => constraints
            .iter()
            .map(|c| Repair::DemoteToSubjective(c.clone()))
            .collect(),
        ConflictKind::InstanceViolation { .. } => Vec::new(), // data, not spec
    }
}

/// Applies a repair to a specification, yielding the corrected spec.
/// `StrengthenRule` conditions are in conformed terms; they apply cleanly
/// when the subject side's attributes keep their names through
/// conformation (true for every remote-subject rule in the paper, whose
/// conformed names are the remote ones).
pub fn apply(spec: &Spec, repair: &Repair) -> Spec {
    let mut out = spec.clone();
    match repair {
        Repair::DemoteToSubjective(id) => {
            out.declare_status(id.clone(), Status::Subjective);
        }
        Repair::StrengthenRule {
            rule,
            add_condition,
        } => {
            for r in &mut out.rules {
                if &r.id == rule {
                    r.intra_subject = r.intra_subject.clone().and(add_condition.clone());
                }
            }
        }
        Repair::ChangeDecisionFunction { prop, from, to } => {
            for pe in &mut out.propeqs {
                if pe.conformed_name.head() == Some(prop) && &pe.df == from {
                    pe.df = *to;
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use interop_constraint::CmpOp;
    use interop_spec::ComparisonRule;

    fn admission_conflict() -> Conflict {
        Conflict {
            detail: "test".into(),
            kind: ConflictKind::Admission {
                rule: RuleId::new("r3"),
                violated: ConstraintId::derived("CSLibrary.RefereedPubl.oc1"),
                needed: Formula::cmp("rating", CmpOp::Ge, 4i64),
            },
        }
    }

    #[test]
    fn admission_suggestions_match_paper() {
        let options = suggest(&admission_conflict());
        // §5.2.1: "the object comparison rule would have to be changed
        // into Sim(...) ⇐ O'.ref? = true ∧ O'.rating >= 4".
        assert!(matches!(
            &options[0],
            Repair::StrengthenRule { rule, add_condition }
                if rule.as_str() == "r3" && add_condition.to_string() == "rating >= 4"
        ));
        assert!(matches!(&options[1], Repair::DemoteToSubjective(_)));
    }

    #[test]
    fn apply_strengthen_rule() {
        let mut spec = Spec::new("L", "R");
        spec.add_rule(ComparisonRule::similarity(
            "r3",
            Side::Remote,
            "Proceedings",
            "RefereedPubl",
            Formula::cmp("ref?", CmpOp::Eq, true),
        ));
        let repaired = apply(
            &spec,
            &Repair::StrengthenRule {
                rule: RuleId::new("r3"),
                add_condition: Formula::cmp("rating", CmpOp::Ge, 4i64),
            },
        );
        assert_eq!(
            repaired.rules[0].intra_subject.to_string(),
            "ref? = true and rating >= 4"
        );
    }

    #[test]
    fn apply_demote_and_change_df() {
        let mut spec = Spec::new("L", "R");
        spec.add_propeq(interop_spec::PropEq::named_after_remote(
            "A",
            "name",
            "B",
            "name",
            interop_spec::Conversion::Id,
            interop_spec::Conversion::Id,
            Decision::Any,
        ));
        let id = ConstraintId::derived("L.A.oc1");
        let s2 = apply(&spec, &Repair::DemoteToSubjective(id.clone()));
        assert_eq!(s2.status_overrides.get(&id), Some(&Status::Subjective));
        let s3 = apply(
            &s2,
            &Repair::ChangeDecisionFunction {
                prop: AttrName::new("name"),
                from: Decision::Any,
                to: Decision::Trust(Side::Local),
            },
        );
        assert_eq!(s3.propeqs[0].df, Decision::Trust(Side::Local));
    }

    #[test]
    fn implicit_suggestions() {
        let c = Conflict {
            detail: "x".into(),
            kind: ConflictKind::Implicit {
                constraint: ConstraintId::derived("L.A.oc2"),
                path: interop_constraint::Path::parse("name"),
            },
        };
        let options = suggest(&c);
        assert_eq!(options.len(), 2);
        assert!(matches!(&options[0], Repair::DemoteToSubjective(_)));
        assert!(matches!(&options[1], Repair::ChangeDecisionFunction { .. }));
    }

    #[test]
    fn instance_violations_have_no_spec_repair() {
        let c = Conflict {
            detail: "x".into(),
            kind: ConflictKind::InstanceViolation {
                object: interop_model::ObjectId::new(200, 0),
                constraint: "c".into(),
            },
        };
        assert!(suggest(&c).is_empty());
    }
}
