//! The paper's running examples as executable fixtures.
//!
//! [`paper_fixture`] is Figure 1 verbatim (modulo the documented dialect
//! differences): the `CSLibrary` and `Bookseller` schemas with all 13
//! constraints, populated extents engineered to exercise every comparison
//! rule, and the §2.2 example specification. [`personnel_fixture`] is the
//! introduction's two-department employee example (travel reimbursement
//! tariffs fused by `avg`). Both are used by unit tests, the integration
//! tests under `tests/`, the examples, and the benchmark harness.

use interop_constraint::Catalog;
use interop_lang::{parse_database, parse_spec};
use interop_merge::MergeOptions;
use interop_model::{ClassName, Database, Value};
use interop_spec::Spec;

/// The TM source of the paper's `CSLibrary` database (Figure 1, left).
pub const CSLIBRARY_TM: &str = "\
database CSLibrary

const KNOWNPUBLISHERS = {'ACM', 'IEEE', 'Springer', 'North-Holland'}
const MAX = 10000

class Publication
  attributes
    title : string
    isbn : string
    publisher : string
    shopprice : real
    ourprice : real
  object constraints
    oc1: ourprice <= shopprice
    oc2: publisher in KNOWNPUBLISHERS
  class constraints
    cc1: key isbn
    cc2: (sum (collect x for x in self) over ourprice) < MAX
end Publication

class ScientificPubl isa Publication
  attributes
    editors : Pstring
    rating : 1..5
  class constraints
    cc1: (avg (collect x for x in self) over rating) < 4
end ScientificPubl

class RefereedPubl isa ScientificPubl
  attributes
    avgAccRate : real
  object constraints
    oc1: rating >= 2
end RefereedPubl

class NonRefereedPubl isa ScientificPubl
  attributes
    authAffil : string
  object constraints
    oc1: rating <= 3
end NonRefereedPubl

class ProfessionalPubl isa Publication
  attributes
    authors : Pstring
end ProfessionalPubl
";

/// The TM source of the paper's `Bookseller` database (Figure 1, right).
pub const BOOKSELLER_TM: &str = "\
database Bookseller

class Publisher
  attributes
    name : string
    location : string
end Publisher

class Item
  attributes
    title : string
    isbn : string
    publisher : Publisher
    authors : Pstring
    shopprice : real
    libprice : real
  object constraints
    oc1: libprice <= shopprice
  class constraints
    cc1: key isbn
end Item

class Proceedings isa Item
  attributes
    ref? : boolean
    rating : 1..10
  object constraints
    oc1: publisher.name = 'IEEE' implies ref? = true
    oc2: ref? = true implies rating >= 7
    oc3: publisher.name = 'ACM' implies rating >= 6
end Proceedings

class Monograph isa Item
  attributes
    subjects : Pstring
end Monograph

database constraints
  dbl: forall p in Publisher exists i in Item | i.publisher = p
";

/// The §2.2 example integration specification (rule variables renamed
/// `O`/`O'` → `o`/`r`, see `interop-lang` docs).
pub const PAPER_SPEC: &str = "\
integration CSLibrary with Bookseller

rule r1: Eq(o : Publication, r : Item) <- o.isbn = r.isbn
rule r2: Eq(o : Publication.{publisher}, r : Publisher) <- o.publisher = r.name
rule r3: Sim(r : Proceedings, RefereedPubl) <- r.ref? = true
rule r4: Sim(r : Proceedings, NonRefereedPubl) <- r.ref? = false
rule r5: Sim(o : ScientificPubl, Proceedings) <- contains(o.title, 'Proceed')

propeq(Publication.ourprice, Item.libprice, id, id, trust(CSLibrary))
propeq(Publication.shopprice, Item.shopprice, id, id, trust(Bookseller))
propeq(Publication.publisher, Publisher.name, id, id, any)
propeq(ScientificPubl.rating, Proceedings.rating, multiply(2), id, avg)
propeq(ScientificPubl.editors, Item.authors, id, id, union)

declare subjective CSLibrary.Publication.cc2
";

/// A complete two-database scenario: schemas, catalogs, extents, spec.
#[derive(Clone, Debug)]
pub struct Fixture {
    /// Local database (populated).
    pub local_db: Database,
    /// Local constraint catalog.
    pub local_catalog: Catalog,
    /// Remote database (populated).
    pub remote_db: Database,
    /// Remote constraint catalog.
    pub remote_catalog: Catalog,
    /// The integration specification.
    pub spec: Spec,
}

/// Merge options matching the paper's naming: the Proceedings ∩
/// RefereedPubl overlap is called `RefereedProceedings` (§2.3).
pub fn merge_options() -> MergeOptions {
    let mut opts = MergeOptions::default();
    opts.intersection_names.insert(
        (
            ClassName::new("RefereedPubl"),
            ClassName::new("Proceedings"),
        ),
        ClassName::new("RefereedProceedings"),
    );
    opts.intersection_names.insert(
        (
            ClassName::new("NonRefereedPubl"),
            ClassName::new("Proceedings"),
        ),
        ClassName::new("NonRefereedProceedings"),
    );
    opts
}

/// Figure 1 with empty extents (schema + constraints + spec only).
pub fn paper_fixture_empty() -> Fixture {
    let local = parse_database(CSLIBRARY_TM).expect("CSLibrary source parses");
    let remote = parse_database(BOOKSELLER_TM).expect("Bookseller source parses");
    let spec = parse_spec(PAPER_SPEC, &local.schema, &remote.schema).expect("spec parses");
    Fixture {
        local_db: Database::new(local.schema, 1),
        local_catalog: local.catalog,
        remote_db: Database::new(remote.schema, 2),
        remote_catalog: remote.catalog,
        spec,
    }
}

/// Figure 1 with populated extents. Every comparison rule fires at least
/// once, every local/remote constraint is satisfied by its own database,
/// and the `RefereedProceedings` overlap of Figure 2 arises.
pub fn paper_fixture() -> Fixture {
    let mut fx = paper_fixture_empty();
    let l = &mut fx.local_db;
    l.create(
        "RefereedPubl",
        vec![
            ("title", "Proceedings of VLDB 22".into()),
            ("isbn", "111".into()),
            ("publisher", "ACM".into()),
            ("shopprice", 29.0.into()),
            ("ourprice", 26.0.into()),
            ("rating", 3i64.into()),
            ("avgAccRate", 0.2.into()),
            ("editors", Value::str_set(["Apers"])),
        ],
    )
    .expect("local fixture object");
    l.create(
        "RefereedPubl",
        vec![
            ("title", "Journal of the ACM 41".into()),
            ("isbn", "888".into()),
            ("publisher", "ACM".into()),
            ("shopprice", 80.0.into()),
            ("ourprice", 75.0.into()),
            ("rating", 4i64.into()),
            ("avgAccRate", 0.15.into()),
        ],
    )
    .expect("local fixture object");
    l.create(
        "ScientificPubl",
        vec![
            ("title", "Database Theory".into()),
            ("isbn", "222".into()),
            ("publisher", "IEEE".into()),
            ("shopprice", 50.0.into()),
            ("ourprice", 45.0.into()),
            ("rating", 2i64.into()),
            ("editors", Value::str_set(["Vermeer"])),
        ],
    )
    .expect("local fixture object");
    l.create(
        "NonRefereedPubl",
        vec![
            ("title", "Tech Report Digest".into()),
            ("isbn", "333".into()),
            ("publisher", "Springer".into()),
            ("shopprice", 15.0.into()),
            ("ourprice", 12.0.into()),
            ("rating", 3i64.into()),
            ("authAffil", "UTwente".into()),
        ],
    )
    .expect("local fixture object");
    l.create(
        "ProfessionalPubl",
        vec![
            ("title", "Industry Databases".into()),
            ("isbn", "444".into()),
            ("publisher", "North-Holland".into()),
            ("shopprice", 60.0.into()),
            ("ourprice", 55.0.into()),
            ("authors", Value::str_set(["Smith"])),
        ],
    )
    .expect("local fixture object");

    let r = &mut fx.remote_db;
    let acm = r
        .create(
            "Publisher",
            vec![("name", "ACM".into()), ("location", "New York".into())],
        )
        .expect("remote fixture object");
    let ieee = r
        .create(
            "Publisher",
            vec![("name", "IEEE".into()), ("location", "Montvale".into())],
        )
        .expect("remote fixture object");
    let springer = r
        .create(
            "Publisher",
            vec![("name", "Springer".into()), ("location", "Berlin".into())],
        )
        .expect("remote fixture object");
    r.create(
        "Proceedings",
        vec![
            ("title", "Proceedings of VLDB 22".into()),
            ("isbn", "111".into()),
            ("publisher", Value::Ref(acm)),
            ("authors", Value::str_set(["Apers", "Vermeer"])),
            ("shopprice", 25.0.into()),
            ("libprice", 22.0.into()),
            ("ref?", true.into()),
            ("rating", 8i64.into()),
        ],
    )
    .expect("remote fixture object");
    r.create(
        "Proceedings",
        vec![
            ("title", "Proceedings of ICDE 12".into()),
            ("isbn", "555".into()),
            ("publisher", Value::Ref(ieee)),
            ("shopprice", 40.0.into()),
            ("libprice", 35.0.into()),
            ("ref?", true.into()),
            ("rating", 9i64.into()),
        ],
    )
    .expect("remote fixture object");
    r.create(
        "Proceedings",
        vec![
            ("title", "Workshop Notes 3".into()),
            ("isbn", "666".into()),
            ("publisher", Value::Ref(springer)),
            ("shopprice", 20.0.into()),
            ("libprice", 18.0.into()),
            ("ref?", false.into()),
            ("rating", 4i64.into()),
        ],
    )
    .expect("remote fixture object");
    r.create(
        "Monograph",
        vec![
            ("title", "Database Theory".into()),
            ("isbn", "222".into()),
            ("publisher", Value::Ref(springer)),
            ("shopprice", 48.0.into()),
            ("libprice", 44.0.into()),
            ("subjects", Value::str_set(["databases", "logic"])),
        ],
    )
    .expect("remote fixture object");
    fx
}

/// The introduction's personnel example: two departments, both recording
/// employees; travel reimbursement tariffs differ and are fused by `avg`
/// (deriving the global `trav_reimb ∈ {12,17,22}`), while `salary < 1500`
/// is a department business rule (subjective).
pub const DB1_TM: &str = "\
database DB1

class Employee
  attributes
    ssn : string
    salary : real
    trav_reimb : int
  object constraints
    c1: trav_reimb in {10, 20}
    c2: salary < 1500
  class constraints
    cc1: key ssn
end Employee
";

/// The second department's database of the intro example.
pub const DB2_TM: &str = "\
database DB2

class Staff
  attributes
    ssn : string
    salary : real
    trav_reimb : int
  object constraints
    c1: trav_reimb in {14, 24}
  class constraints
    cc1: key ssn
end Staff
";

/// The intro example's specification: multi-department employees are the
/// same person (ssn equality); trips for multiple departments are
/// reimbursed at the average tariff.
pub const PERSONNEL_SPEC: &str = "\
integration DB1 with DB2

rule r1: Eq(e : Employee, s : Staff) <- e.ssn = s.ssn

propeq(Employee.trav_reimb, Staff.trav_reimb, id, id, avg)
propeq(Employee.salary, Staff.salary, id, id, trust(DB1))

declare subjective DB1.Employee.c2
";

/// Builds the introduction's personnel fixture.
pub fn personnel_fixture() -> Fixture {
    let local = parse_database(DB1_TM).expect("DB1 parses");
    let remote = parse_database(DB2_TM).expect("DB2 parses");
    let spec = parse_spec(PERSONNEL_SPEC, &local.schema, &remote.schema).expect("spec parses");
    let mut local_db = Database::new(local.schema, 1);
    let mut remote_db = Database::new(remote.schema, 2);
    local_db
        .create(
            "Employee",
            vec![
                ("ssn", "100".into()),
                ("salary", 1200.0.into()),
                ("trav_reimb", 10i64.into()),
            ],
        )
        .expect("fixture employee");
    local_db
        .create(
            "Employee",
            vec![
                ("ssn", "101".into()),
                ("salary", 1400.0.into()),
                ("trav_reimb", 20i64.into()),
            ],
        )
        .expect("fixture employee");
    remote_db
        .create(
            "Staff",
            vec![
                ("ssn", "100".into()),
                ("salary", 1300.0.into()),
                ("trav_reimb", 14i64.into()),
            ],
        )
        .expect("fixture staff");
    remote_db
        .create(
            "Staff",
            vec![
                ("ssn", "102".into()),
                ("salary", 1250.0.into()),
                ("trav_reimb", 24i64.into()),
            ],
        )
        .expect("fixture staff");
    Fixture {
        local_db,
        local_catalog: local.catalog,
        remote_db,
        remote_catalog: remote.catalog,
        spec,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use interop_constraint::eval::{
        check_class_constraint, check_db_constraint, check_object_constraint, Truth,
    };

    #[test]
    fn figure1_sources_parse_with_all_13_constraints() {
        let fx = paper_fixture_empty();
        // CSLibrary: oc1, oc2 (Publication), cc1, cc2 (Publication),
        // cc1 (ScientificPubl), oc1 (Refereed), oc1 (NonRefereed) = 7.
        assert_eq!(fx.local_catalog.len(), 7);
        // Bookseller: oc1+cc1 (Item), oc1..oc3 (Proceedings), dbl = 6.
        assert_eq!(fx.remote_catalog.len(), 6);
        assert_eq!(fx.spec.rules.len(), 5);
        assert_eq!(fx.spec.propeqs.len(), 5);
    }

    #[test]
    fn local_extents_satisfy_local_constraints() {
        let fx = paper_fixture();
        for oc in fx.local_catalog.all_object() {
            let viol = check_object_constraint(&fx.local_db, oc).unwrap();
            assert!(viol.is_empty(), "{} violated by {viol:?}", oc.id);
        }
        for cc in fx.local_catalog.all_class() {
            assert_ne!(
                check_class_constraint(&fx.local_db, cc).unwrap(),
                Truth::False,
                "{} violated",
                cc.id
            );
        }
    }

    #[test]
    fn remote_extents_satisfy_remote_constraints() {
        let fx = paper_fixture();
        for oc in fx.remote_catalog.all_object() {
            let viol = check_object_constraint(&fx.remote_db, oc).unwrap();
            assert!(viol.is_empty(), "{} violated by {viol:?}", oc.id);
        }
        for cc in fx.remote_catalog.all_class() {
            assert_ne!(
                check_class_constraint(&fx.remote_db, cc).unwrap(),
                Truth::False,
                "{} violated",
                cc.id
            );
        }
        for dc in fx.remote_catalog.database_constraints() {
            assert_eq!(check_db_constraint(&fx.remote_db, dc).unwrap(), Truth::True);
        }
    }

    #[test]
    fn personnel_fixture_parses_and_satisfies() {
        let fx = personnel_fixture();
        assert_eq!(fx.local_db.len(), 2);
        assert_eq!(fx.remote_db.len(), 2);
        for oc in fx.local_catalog.all_object() {
            assert!(check_object_constraint(&fx.local_db, oc)
                .unwrap()
                .is_empty());
        }
        for oc in fx.remote_catalog.all_object() {
            assert!(check_object_constraint(&fx.remote_db, oc)
                .unwrap()
                .is_empty());
        }
    }
}
