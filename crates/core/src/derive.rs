//! Deriving the integrated constraint set (§5.2).
//!
//! * **Object equality** (§5.2.1): objective constraints pass through;
//!   subjective local and remote constraints combine *through the decision
//!   function* where the paper's necessary conditions hold — condition
//!   (1): no conflict-avoiding function on the constrained subjective
//!   properties; condition (2): a conflict-settling function requires a
//!   matching remote constraint on the equivalent property. The
//!   combination itself is the domain image `{df(a,b) | a∈D, b∈D'}`,
//!   which reproduces both paper examples (`avg` of `rating>=4` and
//!   `name='ACM' ⇒ rating>=6` yields `name='ACM' ⇒ rating>=5`; `avg` of
//!   `{10,20}` and `{14,24}` yields `{12,17,22}`).
//! * **Strict similarity**: integrated constraints are the union of
//!   objective constraints; admission requires `Ω' ⊨ Ω̂` (checked; the
//!   failures feed the conflict/repair machinery).
//! * **Approximate similarity**: the virtual superclass gets `Ω ∨ Ω'`;
//!   horizontal fragmentation is detected when `Ω ⊨ ¬φ'`.
//! * **Class constraints** (§5.2.2): subjective by default; propagated
//!   for classes with *objective extension* and for keys meeting the
//!   paper's key-propagation criterion.
//! * **Database constraints** (§5.2.3): always subjective, never
//!   propagated.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use interop_conform::Conformed;
use interop_constraint::solve::{domain_to_formula, guarded_atoms, implies, GuardedAtom, TypeEnv};
use interop_constraint::{ClassConstraint, ConstraintId, Formula, Path, Status};
use interop_model::{ClassName, Schema};
use interop_spec::{Decision, DfKind, RuleId, Side};

use crate::implied::{admission_formula, tidy_domain};
use crate::subjectivity::SubjectivityMap;

/// Where a derived constraint is valid.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Scope {
    /// Every global object of the class.
    All(ClassName),
    /// Global objects merged from the (local, remote) class pair.
    Merged(ClassName, ClassName),
    /// Global objects stemming from the local database only.
    LocalOnly(ClassName),
    /// Global objects stemming from the remote database only.
    RemoteOnly(ClassName),
}

impl Scope {
    /// The classes the scope mentions.
    pub fn classes(&self) -> Vec<&ClassName> {
        match self {
            Scope::All(c) | Scope::LocalOnly(c) | Scope::RemoteOnly(c) => vec![c],
            Scope::Merged(a, b) => vec![a, b],
        }
    }
}

impl fmt::Display for Scope {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Scope::All(c) => write!(f, "all {c}"),
            Scope::Merged(a, b) => write!(f, "merged {a}={b}"),
            Scope::LocalOnly(c) => write!(f, "local-only {c}"),
            Scope::RemoteOnly(c) => write!(f, "remote-only {c}"),
        }
    }
}

/// How a derived constraint came about.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DerivationOrigin {
    /// An objective constraint adopted unchanged.
    ObjectivePassThrough,
    /// Local and remote subjective constraints combined through a
    /// decision function.
    DfCombination(Decision),
    /// A subjective constraint still valid for single-source objects.
    SingleSourceState,
    /// The disjunction attached to an approximate-similarity virtual
    /// superclass.
    ApproxDisjunction,
    /// A class constraint on a class with objective extension.
    ClassObjectiveExtension,
    /// A key constraint meeting the §5.2.2 propagation criterion.
    KeyPropagation,
}

impl fmt::Display for DerivationOrigin {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DerivationOrigin::ObjectivePassThrough => write!(f, "objective pass-through"),
            DerivationOrigin::DfCombination(df) => write!(f, "df-combination via {df}"),
            DerivationOrigin::SingleSourceState => write!(f, "single-source state"),
            DerivationOrigin::ApproxDisjunction => write!(f, "virtual-superclass disjunction"),
            DerivationOrigin::ClassObjectiveExtension => write!(f, "objective extension"),
            DerivationOrigin::KeyPropagation => write!(f, "key propagation"),
        }
    }
}

/// A derived global object constraint.
#[derive(Clone, Debug, PartialEq)]
pub struct DerivedConstraint {
    /// Identifier (generated).
    pub id: ConstraintId,
    /// Validity scope.
    pub scope: Scope,
    /// The constraint.
    pub formula: Formula,
    /// Contributing component constraints.
    pub sources: Vec<ConstraintId>,
    /// Provenance.
    pub origin: DerivationOrigin,
}

impl fmt::Display for DerivedConstraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] ({}) {}: {}",
            self.id, self.origin, self.scope, self.formula
        )
    }
}

/// Why a component constraint did not contribute a global constraint.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SkipReason {
    /// The constraint that was skipped.
    pub source: ConstraintId,
    /// The paper-grounded reason.
    pub reason: String,
}

/// A detected horizontal fragmentation (§5.2.1, approximate similarity).
#[derive(Clone, Debug, PartialEq)]
pub struct HorizontalFragment {
    /// The virtual superclass.
    pub virtual_class: ClassName,
    /// The two fragment classes.
    pub local_class: ClassName,
    /// Remote fragment class.
    pub remote_class: ClassName,
    /// The membership condition separating the fragments.
    pub condition: Formula,
}

/// A strict-similarity admission failure: admitted objects are not
/// provably valid members of the target class (`Ω' ⊭ Ω̂`).
#[derive(Clone, Debug, PartialEq)]
pub struct AdmissionFailure {
    /// The similarity rule.
    pub rule: RuleId,
    /// The target-class constraint not implied.
    pub violated: ConstraintId,
    /// The (conformed) constraint formula that admission must imply.
    pub needed: Formula,
}

/// The derived global constraint sets.
#[derive(Clone, Debug, Default)]
pub struct GlobalConstraints {
    /// Derived object constraints.
    pub object: Vec<DerivedConstraint>,
    /// Propagated class constraints with provenance.
    pub class_constraints: Vec<(ClassConstraint, DerivationOrigin)>,
    /// Component constraints that did not propagate, with reasons.
    pub skipped: Vec<SkipReason>,
    /// Detected horizontal fragmentations.
    pub fragments: Vec<HorizontalFragment>,
    /// Strict-similarity admission failures.
    pub admission_failures: Vec<AdmissionFailure>,
}

impl GlobalConstraints {
    /// All derived object-constraint formulas applicable to `class`
    /// members merged-or-not (scope `All`), for query optimisation.
    pub fn formulas_for_class(&self, class: &ClassName) -> Vec<&Formula> {
        self.object
            .iter()
            .filter(|d| matches!(&d.scope, Scope::All(c) if c == class))
            .map(|d| &d.formula)
            .collect()
    }

    /// All derived constraints whose scope mentions `class`.
    pub fn mentioning(&self, class: &ClassName) -> Vec<&DerivedConstraint> {
        self.object
            .iter()
            .filter(|d| d.scope.classes().contains(&class))
            .collect()
    }
}

/// Options controlling derivation.
#[derive(Clone, Copy, Debug)]
pub struct DeriveOptions {
    /// When a remote/local side has no explicit constraint on an
    /// equivalent property, use its declared type range as the implicit
    /// constraint for conflict-*eliminating* combination. Sound; the
    /// paper's examples don't need it but benefit from it.
    pub use_type_bounds: bool,
}

impl Default for DeriveOptions {
    fn default() -> Self {
        DeriveOptions {
            use_type_bounds: true,
        }
    }
}

fn family(schema: &Schema, class: &ClassName) -> Vec<ClassName> {
    let mut out = schema.self_and_ancestors(class);
    out.extend(schema.descendants(class));
    out
}

/// Looks up the decision function governing the terminal attribute of
/// `path` on `class` (side-aware, hierarchy-aware).
fn df_for_path(conf: &Conformed, side: Side, class: &ClassName, path: &Path) -> Option<Decision> {
    let schema = match side {
        Side::Local => &conf.local.db.schema,
        Side::Remote => &conf.remote.db.schema,
    };
    // Resolve the terminal (class, attr) of the path.
    let mut cur = class.clone();
    for (i, attr) in path.0.iter().enumerate() {
        if i + 1 == path.0.len() {
            for pe in &conf.spec.propeqs {
                let (pe_class, pe_path) = match side {
                    Side::Local => (&pe.local_class, &pe.local_path),
                    Side::Remote => (&pe.remote_class, &pe.remote_path),
                };
                if pe_path.head() == Some(attr) && schema.is_subclass(&cur, pe_class) {
                    return Some(pe.df);
                }
            }
            return None;
        }
        match schema.resolve_attr(&cur, attr).map(|(_, d)| d.ty.clone()) {
            Some(interop_model::Type::Ref(next)) => cur = next,
            _ => return None,
        }
    }
    None
}

struct SideCtx<'a> {
    side: Side,
    catalog: &'a interop_constraint::Catalog,
}

/// Derives the global constraint sets.
pub fn derive_global_constraints(
    conf: &Conformed,
    subj: &SubjectivityMap,
    statuses: &BTreeMap<ConstraintId, Status>,
    opts: DeriveOptions,
) -> GlobalConstraints {
    let mut out = GlobalConstraints::default();
    let local = SideCtx {
        side: Side::Local,
        catalog: &conf.local.catalog,
    };
    let remote = SideCtx {
        side: Side::Remote,
        catalog: &conf.remote.catalog,
    };

    pass_through_objective(&mut out, &local, statuses);
    pass_through_objective(&mut out, &remote, statuses);
    single_source_subjective(&mut out, &local, statuses);
    single_source_subjective(&mut out, &remote, statuses);
    df_combination(&mut out, conf, subj, statuses, opts);
    strict_similarity(&mut out, conf);
    approx_similarity(&mut out, conf, statuses);
    class_constraints(&mut out, conf, statuses);
    database_constraints(&mut out, conf);
    out
}

fn derived_id(tag: &str, n: usize) -> ConstraintId {
    ConstraintId::derived(&format!("global.{tag}.{n}"))
}

fn pass_through_objective(
    out: &mut GlobalConstraints,
    ctx: &SideCtx<'_>,
    statuses: &BTreeMap<ConstraintId, Status>,
) {
    for oc in ctx.catalog.all_object() {
        if statuses.get(&oc.id) == Some(&Status::Objective) {
            out.object.push(DerivedConstraint {
                id: derived_id("obj", out.object.len()),
                scope: Scope::All(oc.class.clone()),
                formula: oc.formula.clone(),
                sources: vec![oc.id.clone()],
                origin: DerivationOrigin::ObjectivePassThrough,
            });
        }
    }
}

fn single_source_subjective(
    out: &mut GlobalConstraints,
    ctx: &SideCtx<'_>,
    statuses: &BTreeMap<ConstraintId, Status>,
) {
    for oc in ctx.catalog.all_object() {
        if statuses.get(&oc.id) == Some(&Status::Subjective) {
            // §1: "The global state of e is entirely determined from DB1,
            // and so are the constraints valid on e."
            let scope = match ctx.side {
                Side::Local => Scope::LocalOnly(oc.class.clone()),
                Side::Remote => Scope::RemoteOnly(oc.class.clone()),
            };
            out.object.push(DerivedConstraint {
                id: derived_id("single", out.object.len()),
                scope,
                formula: oc.formula.clone(),
                sources: vec![oc.id.clone()],
                origin: DerivationOrigin::SingleSourceState,
            });
        }
    }
}

/// Subjective-constraint combination for merged objects (§5.2.1, object
/// equality).
fn df_combination(
    out: &mut GlobalConstraints,
    conf: &Conformed,
    subj: &SubjectivityMap,
    statuses: &BTreeMap<ConstraintId, Status>,
    opts: DeriveOptions,
) {
    // Class pairs with potentially merged instances: for each equality
    // rule (C, C'), all (subclass-of-C, subclass-of-C') pairs.
    let mut pairs: BTreeSet<(ClassName, ClassName)> = BTreeSet::new();
    for rule in conf.spec.equality_rules() {
        let c = match &rule.counterpart_class {
            Some(c) => c.clone(),
            None => continue,
        };
        let c2 = rule.subject_class.clone();
        let mut locals = vec![c.clone()];
        locals.extend(conf.local.db.schema.descendants(&c));
        let mut remotes = vec![c2.clone()];
        remotes.extend(conf.remote.db.schema.descendants(&c2));
        for l in &locals {
            for r in &remotes {
                pairs.insert((l.clone(), r.clone()));
            }
        }
    }
    // Dedupe key set: avoids re-deriving identical formulas (and the
    // quadratic scan over the output that a naive containment check
    // would cost at hundreds of constraints per property).
    let mut seen: BTreeSet<(Scope, String)> = BTreeSet::new();
    for (lc, rc) in pairs {
        combine_pair(out, conf, subj, statuses, opts, &lc, &rc, &mut seen);
    }
}

/// One guarded atom plus its provenance.
struct SourcedAtom {
    ga: GuardedAtom,
    source: Option<ConstraintId>,
}

fn subjective_gas(
    conf: &Conformed,
    subj: &SubjectivityMap,
    statuses: &BTreeMap<ConstraintId, Status>,
    side: Side,
    class: &ClassName,
    env: &TypeEnv,
    skipped: &mut Vec<SkipReason>,
) -> BTreeMap<Path, Vec<SourcedAtom>> {
    let (schema, catalog) = match side {
        Side::Local => (&conf.local.db.schema, &conf.local.catalog),
        Side::Remote => (&conf.remote.db.schema, &conf.remote.catalog),
    };
    let mut by_path: BTreeMap<Path, Vec<SourcedAtom>> = BTreeMap::new();
    for oc in catalog.object_effective(schema, class) {
        if statuses.get(&oc.id) != Some(&Status::Subjective) {
            continue;
        }
        for norm in interop_constraint::normalize::split_conjuncts(&oc.formula) {
            let gas = match guarded_atoms(&norm, env) {
                Some(g) => g,
                None => {
                    // The paper's condition (1) names the deeper cause
                    // when a correlated property is governed by a
                    // conflict-avoiding function: none of the correlated
                    // restrictions can propagate.
                    let avoiding = norm.paths().iter().any(|p| {
                        matches!(
                            df_for_path(conf, side, class, p).map(Decision::kind),
                            Some(DfKind::Avoiding(_))
                        )
                    });
                    skipped.push(SkipReason {
                        source: oc.id.clone(),
                        reason: if avoiding {
                            format!(
                                "condition (1): constraint '{norm}' correlates properties \
                                 governed by a conflict-avoiding decision function; its \
                                 restrictions cannot propagate (§5.2.1)"
                            )
                        } else {
                            format!(
                                "normalised constraint '{norm}' is not in guard => \
                                 single-property form; the general derivation problem is out \
                                 of scope (§5.2.1)"
                            )
                        },
                    });
                    continue;
                }
            };
            for ga in gas {
                // Guards must transfer: every guard property objective on
                // this side.
                let guard_subjective = ga
                    .guard
                    .paths()
                    .iter()
                    .any(|p| subj.path_subjective(schema, side, class, p));
                if guard_subjective {
                    skipped.push(SkipReason {
                        source: oc.id.clone(),
                        reason: format!(
                            "guard '{}' involves a subjective property and cannot transfer to \
                             the integrated view",
                            ga.guard
                        ),
                    });
                    continue;
                }
                by_path
                    .entry(ga.path.clone())
                    .or_default()
                    .push(SourcedAtom {
                        ga,
                        source: Some(oc.id.clone()),
                    });
            }
        }
    }
    by_path
}

#[allow(clippy::too_many_arguments)]
fn combine_pair(
    out: &mut GlobalConstraints,
    conf: &Conformed,
    subj: &SubjectivityMap,
    statuses: &BTreeMap<ConstraintId, Status>,
    opts: DeriveOptions,
    lc: &ClassName,
    rc: &ClassName,
    seen: &mut BTreeSet<(Scope, String)>,
) {
    let lenv = TypeEnv::for_class(&conf.local.db.schema, lc);
    let renv = TypeEnv::for_class(&conf.remote.db.schema, rc);
    let lgas = subjective_gas(
        conf,
        subj,
        statuses,
        Side::Local,
        lc,
        &lenv,
        &mut out.skipped,
    );
    let rgas = subjective_gas(
        conf,
        subj,
        statuses,
        Side::Remote,
        rc,
        &renv,
        &mut out.skipped,
    );
    let mut paths: BTreeSet<Path> = lgas.keys().cloned().collect();
    paths.extend(rgas.keys().cloned());
    for p in paths {
        // The property must be subjective on the side(s) contributing a
        // constraint, and governed by a decision function.
        let df = df_for_path(conf, Side::Local, lc, &p)
            .or_else(|| df_for_path(conf, Side::Remote, rc, &p));
        let df = match df {
            Some(df) => df,
            None => {
                // Not an equivalent property: no global value decision is
                // made, so side constraints cannot be combined.
                for sa in lgas
                    .get(&p)
                    .into_iter()
                    .flatten()
                    .chain(rgas.get(&p).into_iter().flatten())
                {
                    if let Some(src) = &sa.source {
                        out.skipped.push(SkipReason {
                            source: src.clone(),
                            reason: format!(
                                "property '{p}' is not declared equivalent; subjective \
                                 restriction on it cannot transfer"
                            ),
                        });
                    }
                }
                continue;
            }
        };
        match df.kind() {
            DfKind::Ignoring => {
                // Both sides objective — a constraint on p would not be
                // subjective *because of p*; implicit conflicts are
                // handled separately.
                continue;
            }
            DfKind::Avoiding(_) => {
                // Condition (1): the untrusted side's value plays no role.
                for sa in lgas
                    .get(&p)
                    .into_iter()
                    .flatten()
                    .chain(rgas.get(&p).into_iter().flatten())
                {
                    if let Some(src) = &sa.source {
                        out.skipped.push(SkipReason {
                            source: src.clone(),
                            reason: format!(
                                "condition (1): decision function {df} on '{p}' is conflict \
                                 avoiding; restrictions on the untrusted side cannot propagate"
                            ),
                        });
                    }
                }
                continue;
            }
            DfKind::Settling => {
                // Condition (2): both sides must constrain the property.
                let (Some(ls), Some(rs)) = (lgas.get(&p), rgas.get(&p)) else {
                    let present = lgas.get(&p).or_else(|| rgas.get(&p));
                    for sa in present.into_iter().flatten() {
                        if let Some(src) = &sa.source {
                            out.skipped.push(SkipReason {
                                source: src.clone(),
                                reason: format!(
                                    "condition (2): decision function {df} on '{p}' is conflict \
                                     settling and no comparable restriction exists on the other \
                                     side"
                                ),
                            });
                        }
                    }
                    continue;
                };
                emit_combinations(out, conf, df, &p, ls, rs, &lenv, lc, rc, seen);
            }
            DfKind::Eliminating => {
                // Combine; sides without explicit constraints contribute
                // their type range when enabled.
                let default_l = vec![SourcedAtom {
                    ga: GuardedAtom {
                        guard: Formula::True,
                        path: p.clone(),
                        domain: lenv.base_domain(&p),
                    },
                    source: None,
                }];
                let default_r = vec![SourcedAtom {
                    ga: GuardedAtom {
                        guard: Formula::True,
                        path: p.clone(),
                        domain: renv.base_domain(&p),
                    },
                    source: None,
                }];
                let ls = match lgas.get(&p) {
                    Some(v) => v,
                    None if opts.use_type_bounds => &default_l,
                    None => continue,
                };
                let rs = match rgas.get(&p) {
                    Some(v) => v,
                    None if opts.use_type_bounds => &default_r,
                    None => continue,
                };
                if ls.iter().all(|s| s.source.is_none()) && rs.iter().all(|s| s.source.is_none()) {
                    continue; // nothing but type bounds on both sides
                }
                emit_combinations(out, conf, df, &p, ls, rs, &lenv, lc, rc, seen);
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn emit_combinations(
    out: &mut GlobalConstraints,
    _conf: &Conformed,
    df: Decision,
    p: &Path,
    ls: &[SourcedAtom],
    rs: &[SourcedAtom],
    lenv: &TypeEnv,
    lc: &ClassName,
    rc: &ClassName,
    seen: &mut BTreeSet<(Scope, String)>,
) {
    // The *global* property's carrier is the df-image of the type range,
    // not the declared range itself: `avg` of two integer scales takes
    // half-integral values (the paper's own intro derives {12,17,22} from
    // integer tariffs — but avg(10,14)=12 only happens to be whole).
    // Intersecting with the raw integral range would snap a bound like
    // `score >= 3.5` up to an unsound `score >= 4`, so relax the base to
    // the real carrier before tidying.
    let base = match lenv.base_domain(p) {
        interop_constraint::Domain::Num(n) => interop_constraint::Domain::Num(
            interop_constraint::NumSet::from_ivs(false, n.intervals().to_vec()),
        ),
        d => d,
    };
    for l in ls {
        for r in rs {
            let Some(combined) = df.combine_domains(&l.ga.domain, &r.ga.domain) else {
                if let Some(src) = l.source.clone().or_else(|| r.source.clone()) {
                    out.skipped.push(SkipReason {
                        source: src,
                        reason: format!(
                            "decision function {df} cannot combine the constraint domains on \
                             '{p}' exactly"
                        ),
                    });
                }
                continue;
            };
            let guard = interop_constraint::normalize::simplify(
                &l.ga.guard.clone().and(r.ga.guard.clone()),
            );
            if guard == Formula::False {
                continue; // guards contradict: vacuous case
            }
            let tidied = tidy_domain(&combined.intersect(&base), &base);
            let body = domain_to_formula(p, &tidied);
            if body == Formula::True {
                continue; // no information beyond the type
            }
            let formula = match &guard {
                Formula::True => body,
                g => g.clone().implies(body),
            };
            let mut sources = Vec::new();
            sources.extend(l.source.clone());
            sources.extend(r.source.clone());
            // Dedupe identical derivations (constant-time via the key set).
            let scope = Scope::Merged(lc.clone(), rc.clone());
            if !seen.insert((scope.clone(), formula.to_string())) {
                continue;
            }
            out.object.push(DerivedConstraint {
                id: derived_id("merge", out.object.len()),
                scope,
                formula,
                sources,
                origin: DerivationOrigin::DfCombination(df),
            });
        }
    }
}

/// Strict similarity (§5.2.1): check `Ω' ⊨ Ω̂` for every rule.
fn strict_similarity(out: &mut GlobalConstraints, conf: &Conformed) {
    for rule in conf.spec.similarity_rules() {
        let target = match &rule.relationship {
            interop_spec::Relationship::StrictSimilarity { class } => class.clone(),
            _ => continue,
        };
        // Target-class constraints live on the side *opposite* the subject.
        let (tschema, tcatalog) = match rule.subject_side {
            Side::Remote => (&conf.local.db.schema, &conf.local.catalog),
            Side::Local => (&conf.remote.db.schema, &conf.remote.catalog),
        };
        let (sschema, _) = match rule.subject_side {
            Side::Remote => (&conf.remote.db.schema, &conf.remote.catalog),
            Side::Local => (&conf.local.db.schema, &conf.local.catalog),
        };
        if tschema.class(&target).is_none() {
            continue;
        }
        let admission = admission_formula(conf, rule);
        // The admission formula speaks about the subject's attributes in
        // conformed terms; target constraints are conformed too, so they
        // share property names.
        let subj_env = TypeEnv::for_class(sschema, &rule.subject_class);
        let mut env = subj_env.clone();
        for (path, ty) in TypeEnv::for_class(tschema, &target).iter() {
            if env.get(path).is_none() {
                env.insert(path.clone(), ty.clone());
            }
        }
        for oc in tcatalog.object_effective(tschema, &target) {
            // §5.2.1: with strictly similar objects, property subjectivity
            // plays no role (no decision function ever fuses the admitted
            // object's values), so the check covers *all* constraints of
            // the target class except those the designer explicitly
            // declared subjective.
            if conf.spec.status_overrides.get(&oc.id) == Some(&Status::Subjective) {
                continue;
            }
            // Vacuity: constraints over attributes the subject does not
            // even have evaluate to Unknown on admitted objects and are
            // never violated by them.
            if oc.formula.paths().iter().any(|p| subj_env.get(p).is_none()) {
                continue;
            }
            if !implies(&admission, &oc.formula, &env) {
                out.admission_failures.push(AdmissionFailure {
                    rule: rule.id.clone(),
                    violated: oc.id.clone(),
                    needed: oc.formula.clone(),
                });
            }
        }
    }
}

/// Approximate similarity (§5.2.1): disjunction on the virtual
/// superclass; horizontal-fragment detection.
fn approx_similarity(
    out: &mut GlobalConstraints,
    conf: &Conformed,
    statuses: &BTreeMap<ConstraintId, Status>,
) {
    for rule in conf.spec.similarity_rules() {
        let (target, virt) = match &rule.relationship {
            interop_spec::Relationship::ApproxSimilarity {
                class,
                virtual_class,
            } => (class.clone(), virtual_class.clone()),
            _ => continue,
        };
        let (tschema, tcatalog, sschema, scatalog) = match rule.subject_side {
            Side::Remote => (
                &conf.local.db.schema,
                &conf.local.catalog,
                &conf.remote.db.schema,
                &conf.remote.catalog,
            ),
            Side::Local => (
                &conf.remote.db.schema,
                &conf.remote.catalog,
                &conf.local.db.schema,
                &conf.local.catalog,
            ),
        };
        let objective = |id: &ConstraintId| statuses.get(id) == Some(&Status::Objective);
        let omega_t = Formula::conj(
            tcatalog
                .object_effective(tschema, &target)
                .iter()
                .filter(|c| objective(&c.id))
                .map(|c| c.formula.clone()),
        );
        let omega_s = Formula::conj(
            scatalog
                .object_effective(sschema, &rule.subject_class)
                .iter()
                .filter(|c| objective(&c.id))
                .map(|c| c.formula.clone()),
        );
        let sources: Vec<ConstraintId> = tcatalog
            .object_effective(tschema, &target)
            .iter()
            .chain(
                scatalog
                    .object_effective(sschema, &rule.subject_class)
                    .iter(),
            )
            .filter(|c| objective(&c.id))
            .map(|c| c.id.clone())
            .collect();
        if omega_t != Formula::True || omega_s != Formula::True {
            out.object.push(DerivedConstraint {
                id: derived_id("approx", out.object.len()),
                scope: Scope::All(virt.clone()),
                formula: omega_t.clone().or(omega_s),
                sources,
                origin: DerivationOrigin::ApproxDisjunction,
            });
        }
        // Horizontal fragmentation: Ω(target) ⊨ ¬φ' for some subject
        // constraint φ' — then φ' is the membership condition of the
        // subject fragment.
        let mut env = TypeEnv::for_class(tschema, &target);
        for (path, ty) in TypeEnv::for_class(sschema, &rule.subject_class).iter() {
            if env.get(path).is_none() {
                env.insert(path.clone(), ty.clone());
            }
        }
        for sc in scatalog.object_effective(sschema, &rule.subject_class) {
            let neg = Formula::Not(Box::new(sc.formula.clone()));
            if implies(&omega_t, &neg, &env) {
                let (local_class, remote_class) = match rule.subject_side {
                    Side::Remote => (target.clone(), rule.subject_class.clone()),
                    Side::Local => (rule.subject_class.clone(), target.clone()),
                };
                out.fragments.push(HorizontalFragment {
                    virtual_class: virt.clone(),
                    local_class,
                    remote_class,
                    condition: sc.formula.clone(),
                });
            }
        }
    }
}

/// Class constraints (§5.2.2): objective-extension and key-propagation
/// exceptions; everything else is subjective.
fn class_constraints(
    out: &mut GlobalConstraints,
    conf: &Conformed,
    statuses: &BTreeMap<ConstraintId, Status>,
) {
    // Classes touched by any equality or strict-similarity rule.
    let mut touched_local: BTreeSet<ClassName> = BTreeSet::new();
    let mut touched_remote: BTreeSet<ClassName> = BTreeSet::new();
    for rule in &conf.spec.rules {
        match &rule.relationship {
            interop_spec::Relationship::Equality => {
                if let Some(c) = &rule.counterpart_class {
                    touched_local.extend(family(&conf.local.db.schema, c));
                }
                touched_remote.extend(family(&conf.remote.db.schema, &rule.subject_class));
            }
            interop_spec::Relationship::StrictSimilarity { class }
            | interop_spec::Relationship::ApproxSimilarity { class, .. } => {
                match rule.subject_side {
                    Side::Remote => {
                        touched_local.extend(family(&conf.local.db.schema, class));
                        touched_remote.extend(family(&conf.remote.db.schema, &rule.subject_class));
                    }
                    Side::Local => {
                        touched_remote.extend(family(&conf.remote.db.schema, class));
                        touched_local.extend(family(&conf.local.db.schema, &rule.subject_class));
                    }
                }
            }
            interop_spec::Relationship::Descriptivity { .. } => {}
        }
    }
    for (side, catalog, touched) in [
        (Side::Local, &conf.local.catalog, &touched_local),
        (Side::Remote, &conf.remote.catalog, &touched_remote),
    ] {
        for cc in catalog.all_class() {
            if !touched.contains(&cc.class) {
                // §5.2.2: objective extension — the class's global
                // extension equals its local extension.
                out.class_constraints
                    .push((cc.clone(), DerivationOrigin::ClassObjectiveExtension));
                continue;
            }
            if cc.is_key() && key_criterion(conf, side, &cc.class) {
                out.class_constraints
                    .push((cc.clone(), DerivationOrigin::KeyPropagation));
                continue;
            }
            let declared_objective = statuses.get(&cc.id) == Some(&Status::Objective);
            out.skipped.push(SkipReason {
                source: cc.id.clone(),
                reason: if declared_objective {
                    "declared objective, but the class lacks objective extension; a global \
                     enforcement mechanism would be required (§5.2.2)"
                        .into()
                } else {
                    "class constraints are subjective: classifications are inherently \
                     subjective (§5.2.2)"
                        .into()
                },
            });
        }
    }
}

/// The §5.2.2 key-propagation criterion, evaluated per keyed class:
/// every equality rule touching the class's family must join exactly on
/// the keys of both its classes, and every similarity rule targeting the
/// family must classify objects of classes that equality rules cover
/// (so admitted duplicates are merged through the key, not doubled).
fn key_criterion(conf: &Conformed, side: Side, class: &ClassName) -> bool {
    let schema = match side {
        Side::Local => &conf.local.db.schema,
        Side::Remote => &conf.remote.db.schema,
    };
    let related =
        |s: &Schema, a: &ClassName, b: &ClassName| s.is_subclass(a, b) || s.is_subclass(b, a);
    let eq_rules: Vec<_> = conf.spec.equality_rules().collect();
    let mut touched_by_eq = false;
    for rule in &eq_rules {
        let Some(local_class) = &rule.counterpart_class else {
            continue;
        };
        let this_side_class = match side {
            Side::Local => local_class,
            Side::Remote => &rule.subject_class,
        };
        if !related(schema, this_side_class, class) {
            continue;
        }
        touched_by_eq = true;
        if rule.inter.len() != 1 || rule.inter[0].op != interop_constraint::CmpOp::Eq {
            return false;
        }
        let ic = &rule.inter[0];
        let lkey = conf
            .local
            .catalog
            .key_of(&conf.local.db.schema, local_class);
        let rkey = conf
            .remote
            .catalog
            .key_of(&conf.remote.db.schema, &rule.subject_class);
        let l_ok = matches!(lkey, Some(k) if k.len() == 1 && ic.local.head() == Some(&k[0]));
        let r_ok = matches!(rkey, Some(k) if k.len() == 1 && ic.remote.head() == Some(&k[0]));
        if !(l_ok && r_ok) {
            return false;
        }
    }
    // Similarity rules targeting this family add objects to the keyed
    // class; their subjects must be covered by (key-joining) eq rules so
    // that any duplicate is merged rather than doubled.
    for rule in conf.spec.similarity_rules() {
        let Some(target) = rule.relationship.target_class() else {
            continue;
        };
        // The target lives on the opposite side of the subject; it is
        // relevant when it lies on *this* side and relates to `class`.
        let target_on_this_side = match (side, rule.subject_side) {
            (Side::Local, Side::Remote) | (Side::Remote, Side::Local) => {
                schema.class(target).is_some() && related(schema, target, class)
            }
            _ => false,
        };
        if !target_on_this_side {
            continue;
        }
        let subj_schema = match rule.subject_side {
            Side::Local => &conf.local.db.schema,
            Side::Remote => &conf.remote.db.schema,
        };
        let covered = eq_rules.iter().any(|r| {
            let rule_class = match rule.subject_side {
                Side::Local => r.counterpart_class.as_ref(),
                Side::Remote => Some(&r.subject_class),
            };
            rule_class.is_some_and(|c| related(subj_schema, c, &rule.subject_class))
        });
        if !covered {
            return false;
        }
    }
    touched_by_eq
}

/// Database constraints (§5.2.3): never propagated.
fn database_constraints(out: &mut GlobalConstraints, conf: &Conformed) {
    for dc in conf
        .local
        .catalog
        .database_constraints()
        .iter()
        .chain(conf.remote.catalog.database_constraints())
    {
        out.skipped.push(SkipReason {
            source: dc.id.clone(),
            reason: "database constraints are subjective; treating them as objective has \
                     immense complications (§5.2.3)"
                .into(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures;
    use crate::subjectivity::{classify_constraints, property_subjectivity};

    fn derive_paper() -> (Conformed, GlobalConstraints) {
        let fx = fixtures::paper_fixture();
        let conf = interop_conform::conform(
            &fx.local_db,
            &fx.local_catalog,
            &fx.remote_db,
            &fx.remote_catalog,
            &fx.spec,
        )
        .unwrap();
        let subj = property_subjectivity(&conf);
        let (statuses, _) = classify_constraints(&conf, &subj);
        let global = derive_global_constraints(&conf, &subj, &statuses, DeriveOptions::default());
        (conf, global)
    }

    #[test]
    fn paper_acm_combination() {
        // §5.2.1: local rating>=4 (conformed) + remote name='ACM' ⇒
        // rating>=6 under avg gives name='ACM' ⇒ rating >= 5.
        let (_, global) = derive_paper();
        let found = global.object.iter().any(|d| {
            d.origin == DerivationOrigin::DfCombination(Decision::Avg)
                && d.formula.to_string() == "publisher.name = 'ACM' implies rating >= 5"
        });
        assert!(
            found,
            "missing the paper's ACM derivation; derived: {:#?}",
            global
                .object
                .iter()
                .filter(|d| matches!(d.origin, DerivationOrigin::DfCombination(_)))
                .map(|d| d.to_string())
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn paper_trust_blocks_libprice_combination() {
        // §5.2.1: oc1 of Publication and Item (libprice <= shopprice) are
        // both subjective via the trust functions; no global constraint
        // derives from them, with condition (1) cited.
        let (_, global) = derive_paper();
        assert!(!global.object.iter().any(|d| {
            matches!(d.origin, DerivationOrigin::DfCombination(_))
                && d.formula.to_string().contains("libprice")
        }));
        assert!(global.skipped.iter().any(|s| {
            s.source.as_str().ends_with("Item.oc1")
                || s.source.as_str().ends_with("Publication.oc1")
        }));
    }

    #[test]
    fn objective_constraints_pass_through() {
        let (_, global) = derive_paper();
        // Proceedings oc1 (IEEE ⇒ ref?) is objective → passes through.
        assert!(global.object.iter().any(|d| {
            d.origin == DerivationOrigin::ObjectivePassThrough
                && d.sources
                    .iter()
                    .any(|s| s.as_str() == "Bookseller.Proceedings.oc1")
        }));
        // VirtPublisher's reallocated oc2 is objective (name via any).
        assert!(global.object.iter().any(|d| {
            d.origin == DerivationOrigin::ObjectivePassThrough
                && matches!(&d.scope, Scope::All(c) if c.as_str() == "VirtPublisher")
        }));
    }

    #[test]
    fn subjective_constraints_hold_single_source() {
        let (_, global) = derive_paper();
        assert!(global.object.iter().any(|d| {
            d.origin == DerivationOrigin::SingleSourceState
                && matches!(&d.scope, Scope::LocalOnly(c) if c.as_str() == "Publication")
        }));
    }

    #[test]
    fn strict_sim_admission_r3_clean_r4_r5_flagged() {
        // §5.2.1: rating>=7 (implied) ⊨ rating>=4 (conformed RefereedPubl
        // oc1) — r3 admits cleanly, exactly as the paper argues.
        //
        // Reproduction finding: the paper's own example specification has
        // two *latent* admission conflicts it never walks through —
        // r4 (ref?=false Proceedings → NonRefereedPubl) does not imply
        // the conformed `rating <= 6`, and r5 (ScientificPubl →
        // Proceedings) does not imply the bookseller's oc3. Both are
        // repairable with the paper's own option 2 (strengthen the rule).
        let (_, global) = derive_paper();
        assert!(
            !global
                .admission_failures
                .iter()
                .any(|f| f.rule == RuleId::new("r3")),
            "r3 must admit cleanly: {:?}",
            global.admission_failures
        );
        assert!(global.admission_failures.iter().any(|f| {
            f.rule == RuleId::new("r4")
                && f.violated.as_str() == "CSLibrary.NonRefereedPubl.oc1"
                && f.needed.to_string() == "rating <= 6"
        }));
        assert!(global.admission_failures.iter().any(|f| {
            f.rule == RuleId::new("r5") && f.violated.as_str() == "Bookseller.Proceedings.oc3"
        }));
        assert_eq!(global.admission_failures.len(), 2);
    }

    #[test]
    fn weakened_oc2_causes_admission_failure() {
        // The paper's variant: oc2 as ref?=true ⇒ rating>=3 makes r3's
        // admitted objects violate RefereedPubl.oc1 (rating>=4 conformed).
        let fx = fixtures::paper_fixture_empty();
        let mut rcat = interop_constraint::Catalog::new();
        for oc in fx.remote_catalog.all_object() {
            if oc.id.as_str() == "Bookseller.Proceedings.oc2" {
                let mut weak = oc.clone();
                weak.formula = Formula::cmp("ref?", interop_constraint::CmpOp::Eq, true)
                    .implies(Formula::cmp("rating", interop_constraint::CmpOp::Ge, 3i64));
                rcat.add_object(weak);
            } else {
                rcat.add_object(oc.clone());
            }
        }
        for cc in fx.remote_catalog.all_class() {
            rcat.add_class(cc.clone());
        }
        for dc in fx.remote_catalog.database_constraints() {
            rcat.add_database(dc.clone());
        }
        let conf = interop_conform::conform(
            &fx.local_db,
            &fx.local_catalog,
            &fx.remote_db,
            &rcat,
            &fx.spec,
        )
        .unwrap();
        let subj = property_subjectivity(&conf);
        let (statuses, _) = classify_constraints(&conf, &subj);
        let global = derive_global_constraints(&conf, &subj, &statuses, DeriveOptions::default());
        // RefereedPubl.oc1 is subjective (rating is avg-governed), so the
        // admission check concerns *objective* target constraints only —
        // the rating check is covered by df-combination instead. But the
        // inherited Publication.oc2 (name in KNOWNPUBLISHERS) is objective
        // and not implied by the bookseller's constraints:
        assert!(global
            .admission_failures
            .iter()
            .any(|f| f.rule == RuleId::new("r3")));
    }

    #[test]
    fn key_constraints_propagate_per_criterion() {
        let (_, global) = derive_paper();
        // r1 joins isbn=isbn, isbn is key on both sides; sim rules cover
        // classes with equality rules → both keys propagate.
        let keys: Vec<_> = global
            .class_constraints
            .iter()
            .filter(|(c, o)| c.is_key() && *o == DerivationOrigin::KeyPropagation)
            .collect();
        assert_eq!(keys.len(), 2, "{keys:?}");
    }

    #[test]
    fn aggregate_class_constraints_stay_subjective() {
        let (_, global) = derive_paper();
        for id in ["CSLibrary.Publication.cc2", "CSLibrary.ScientificPubl.cc1"] {
            assert!(
                global.skipped.iter().any(|s| s.source.as_str() == id),
                "{id} should be skipped as subjective"
            );
        }
    }

    #[test]
    fn database_constraints_never_propagate() {
        let (_, global) = derive_paper();
        assert!(global
            .skipped
            .iter()
            .any(|s| s.source.as_str() == "Bookseller.dbl"));
    }

    #[test]
    fn objective_extension_when_no_rules_touch_class() {
        // Strip all rules involving Publication family → its class
        // constraints regain objective extension.
        let fx = fixtures::paper_fixture_empty();
        let mut spec = interop_spec::Spec::new("CSLibrary", "Bookseller");
        spec.propeqs = fx.spec.propeqs.clone();
        // Keep only the publisher descriptivity rule (touches Publisher,
        // not Publication's classification... descriptivity doesn't touch).
        for r in fx.spec.descriptivity_rules() {
            spec.add_rule(r.clone());
        }
        let conf = interop_conform::conform(
            &fx.local_db,
            &fx.local_catalog,
            &fx.remote_db,
            &fx.remote_catalog,
            &spec,
        )
        .unwrap();
        let subj = property_subjectivity(&conf);
        let (statuses, _) = classify_constraints(&conf, &subj);
        let global = derive_global_constraints(&conf, &subj, &statuses, DeriveOptions::default());
        assert!(global
            .class_constraints
            .iter()
            .any(|(c, o)| c.id.as_str() == "CSLibrary.Publication.cc2"
                && *o == DerivationOrigin::ClassObjectiveExtension));
    }

    #[test]
    fn personnel_intro_example() {
        // §1: trav_reimb ∈ {10,20} and {14,24} under avg → {12,17,22};
        // salary < 1500 subjective (declared) → local-only scope.
        let fx = fixtures::personnel_fixture();
        let conf = interop_conform::conform(
            &fx.local_db,
            &fx.local_catalog,
            &fx.remote_db,
            &fx.remote_catalog,
            &fx.spec,
        )
        .unwrap();
        let subj = property_subjectivity(&conf);
        let (statuses, issues) = classify_constraints(&conf, &subj);
        assert!(issues.is_empty(), "{issues:?}");
        let global = derive_global_constraints(&conf, &subj, &statuses, DeriveOptions::default());
        let combined = global
            .object
            .iter()
            .find(|d| matches!(d.origin, DerivationOrigin::DfCombination(Decision::Avg)))
            .expect("avg combination for trav_reimb");
        assert_eq!(combined.formula.to_string(), "trav_reimb in {12, 17, 22}");
        // salary < 1500 holds for local-only employees.
        assert!(global.object.iter().any(|d| {
            d.origin == DerivationOrigin::SingleSourceState
                && d.formula.to_string() == "salary < 1500"
        }));
        // ... but no merged-scope salary constraint (trust = condition 1).
        assert!(!global.object.iter().any(|d| {
            matches!(d.scope, Scope::Merged(_, _)) && d.formula.to_string().contains("salary")
        }));
    }

    #[test]
    fn type_bounds_option_controls_default_combination() {
        let fx = fixtures::personnel_fixture();
        let conf = interop_conform::conform(
            &fx.local_db,
            &fx.local_catalog,
            &fx.remote_db,
            &fx.remote_catalog,
            &fx.spec,
        )
        .unwrap();
        let subj = property_subjectivity(&conf);
        let (statuses, _) = classify_constraints(&conf, &subj);
        let without = derive_global_constraints(
            &conf,
            &subj,
            &statuses,
            DeriveOptions {
                use_type_bounds: false,
            },
        );
        // Both sides constrain trav_reimb explicitly, so the combination
        // still happens without type bounds.
        assert!(without
            .object
            .iter()
            .any(|d| matches!(d.origin, DerivationOrigin::DfCombination(_))));
    }
}
