//! The incremental end-to-end pipeline: source-database mutations flow
//! through per-object re-conformation into merge-state patches.
//!
//! [`IncrementalPipeline`] glues the two incremental layers together:
//! `interop_conform`'s [`VirtRegistry`] turns a batch of *touched source
//! object ids* into a [`ConformedDelta`] patch (re-running the interned
//! attribute plan for just those objects, and diffing virtual-object
//! ownership), and `interop_merge`'s [`IncrementalMerge`] folds that
//! patch into the maintained [`IntegratedView`] — re-matching, re-fusing
//! and re-counting only what the deltas can reach.
//!
//! The contract inherited from both layers: after every
//! [`IncrementalPipeline::apply_local`] / `apply_remote`, the maintained
//! view is byte-identical to running the full
//! conform → resolve → fuse → infer pipeline from scratch on the mutated
//! sources (differentially tested, including transaction rollbacks, in
//! `tests/prop_pipeline_incremental.rs`).

use interop_conform::{
    conform, ConformedDelta, PlanIndex, VirtRegistry, LOCAL_VIRT_SPACE, REMOTE_VIRT_SPACE,
};
use interop_merge::{IncrementalMerge, IntegratedView, MergeOptions};
use interop_model::{Database, ObjectId};
use interop_spec::{Side, Spec};

use crate::pipeline::IntegrateError;
use interop_constraint::Catalog;

/// An end-to-end incremental integration pipeline over two source
/// databases.
///
/// Built once (paying one full conform + merge), then notified of source
/// mutations via [`apply_local`](Self::apply_local) /
/// [`apply_remote`](Self::apply_remote) with the post-mutation source
/// database and the ids the mutation touched (e.g. from
/// `interop_storage`'s touched-id log).
pub struct IncrementalPipeline {
    merge: IncrementalMerge,
    local_reg: VirtRegistry,
    remote_reg: VirtRegistry,
}

impl IncrementalPipeline {
    /// Conforms the pair and seeds the incremental merge engine plus the
    /// per-side virtual-object registries.
    pub fn new(
        local_db: &Database,
        local_catalog: &Catalog,
        remote_db: &Database,
        remote_catalog: &Catalog,
        spec: &Spec,
        opts: MergeOptions,
    ) -> Result<Self, IntegrateError> {
        let conf = conform(local_db, local_catalog, remote_db, remote_catalog, spec)?;
        let local_reg = {
            let idx = PlanIndex::new(&local_db.schema, &conf.local.plan);
            VirtRegistry::new(local_db, &idx)
        };
        let remote_reg = {
            let idx = PlanIndex::new(&remote_db.schema, &conf.remote.plan);
            VirtRegistry::new(remote_db, &idx)
        };
        let merge = IncrementalMerge::new(conf, opts)?;
        Ok(IncrementalPipeline {
            merge,
            local_reg,
            remote_reg,
        })
    }

    /// The maintained integrated view.
    pub fn view(&self) -> &IntegratedView {
        self.merge.view()
    }

    /// Validates the patched merge counters against a from-scratch
    /// recount and the hierarchy's acyclicity — the property suites call
    /// this after every patch (see
    /// [`IncrementalMerge::check_invariants`]).
    pub fn check_invariants(&mut self) -> Result<(), String> {
        self.merge.check_invariants()
    }

    /// Folds a local-source mutation into the view: `src` is the
    /// post-mutation local database, `touched` the ids the mutation
    /// inserted, updated or removed.
    pub fn apply_local(
        &mut self,
        src: &Database,
        touched: &[ObjectId],
    ) -> Result<&IntegratedView, IntegrateError> {
        let deltas = self.reconform(Side::Local, src, touched)?;
        Ok(self.merge.apply(Side::Local, &deltas)?)
    }

    /// Drains a local-side [`Store`]'s touched-id log and folds exactly
    /// those changes into the view. This is the durability resume entry
    /// point: a store recovered by `Store::open` hands back the ids
    /// touched since the pipeline's last drain *before* the shutdown or
    /// crash (the log's tracking state and undrained ids are persisted
    /// with the data), so the pipeline catches up incrementally instead
    /// of re-merging from scratch. A no-op when nothing was touched.
    ///
    /// [`Store`]: interop_storage::Store
    pub fn sync_local(
        &mut self,
        store: &mut interop_storage::Store,
    ) -> Result<&IntegratedView, IntegrateError> {
        let touched = store.take_touched();
        self.apply_local(store.db(), &touched)
    }

    /// Drains a remote-side [`Store`]'s touched-id log into the view
    /// (see [`sync_local`](Self::sync_local)).
    ///
    /// [`Store`]: interop_storage::Store
    pub fn sync_remote(
        &mut self,
        store: &mut interop_storage::Store,
    ) -> Result<&IntegratedView, IntegrateError> {
        let touched = store.take_touched();
        self.apply_remote(store.db(), &touched)
    }

    /// Drains a shared MVCC store's touched-id log and folds exactly
    /// those changes into the view — the concurrent counterpart of
    /// [`sync_local`](Self::sync_local). The ids and the snapshot they
    /// are consistent with are taken atomically under the store's
    /// commit mutex ([`MvccStore::drain_touched`]), so a commit racing
    /// this call lands either entirely in this sync or entirely in the
    /// next one.
    ///
    /// [`MvccStore::drain_touched`]: interop_storage::MvccStore::drain_touched
    pub fn sync_shared_local(
        &mut self,
        store: &interop_storage::MvccStore,
    ) -> Result<&IntegratedView, IntegrateError> {
        let (snapshot, touched) = store.drain_touched();
        self.apply_local(snapshot.db(), &touched)
    }

    /// Drains a shared remote-side MVCC store into the view (see
    /// [`sync_shared_local`](Self::sync_shared_local)).
    pub fn sync_shared_remote(
        &mut self,
        store: &interop_storage::MvccStore,
    ) -> Result<&IntegratedView, IntegrateError> {
        let (snapshot, touched) = store.drain_touched();
        self.apply_remote(snapshot.db(), &touched)
    }

    /// Folds a remote-source mutation into the view (see
    /// [`apply_local`](Self::apply_local)).
    pub fn apply_remote(
        &mut self,
        src: &Database,
        touched: &[ObjectId],
    ) -> Result<&IntegratedView, IntegrateError> {
        let deltas = self.reconform(Side::Remote, src, touched)?;
        Ok(self.merge.apply(Side::Remote, &deltas)?)
    }

    fn reconform(
        &mut self,
        side: Side,
        src: &Database,
        touched: &[ObjectId],
    ) -> Result<Vec<ConformedDelta>, IntegrateError> {
        let conf = self.merge.conformed();
        let (reg, cside, virt_space) = match side {
            Side::Local => (&mut self.local_reg, &conf.local, LOCAL_VIRT_SPACE),
            Side::Remote => (&mut self.remote_reg, &conf.remote, REMOTE_VIRT_SPACE),
        };
        let idx = PlanIndex::new(&src.schema, &cside.plan);
        Ok(reg.reconform(src, &idx, virt_space, &cside.db, touched)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures;
    use interop_merge::merge;
    use interop_model::Value;

    /// The paper fixture exercises objectification (VirtPublisher) and
    /// propeq conversions, so this differentially tests the full
    /// reconform → patch path, not just identity conformation.
    fn scratch(fx: &fixtures::Fixture, opts: &MergeOptions) -> IntegratedView {
        let conf = conform(
            &fx.local_db,
            &fx.local_catalog,
            &fx.remote_db,
            &fx.remote_catalog,
            &fx.spec,
        )
        .unwrap();
        merge(&conf, opts).unwrap()
    }

    #[test]
    fn paper_fixture_mutations_track_scratch_rebuild() {
        let mut fx = fixtures::paper_fixture();
        let opts = fixtures::merge_options();
        let mut pipe = IncrementalPipeline::new(
            &fx.local_db,
            &fx.local_catalog,
            &fx.remote_db,
            &fx.remote_catalog,
            &fx.spec,
            opts.clone(),
        )
        .unwrap();
        assert_eq!(
            format!("{:?}", pipe.view()),
            format!("{:?}", scratch(&fx, &opts))
        );

        // Update: change a local publisher value — moves the object
        // between virtual publisher groups, exercising virt-ownership
        // diffing end to end.
        let id = fx.local_db.objects().next().unwrap().id;
        let mut o = fx.local_db.object(id).unwrap().clone();
        let old = o.attrs.clone();
        if let Some(v) = o.attrs.values_mut().find(|v| matches!(v, Value::Str(_))) {
            *v = Value::str("Elsevier");
        }
        fx.local_db.remove(id).unwrap();
        fx.local_db.insert(o).unwrap();
        pipe.apply_local(&fx.local_db, &[id]).unwrap();
        assert_eq!(
            format!("{:?}", pipe.view()),
            format!("{:?}", scratch(&fx, &opts))
        );

        // Revert — the view must round-trip byte-for-byte.
        let mut o = fx.local_db.object(id).unwrap().clone();
        o.attrs = old;
        fx.local_db.remove(id).unwrap();
        fx.local_db.insert(o).unwrap();
        pipe.apply_local(&fx.local_db, &[id]).unwrap();
        assert_eq!(
            format!("{:?}", pipe.view()),
            format!("{:?}", scratch(&fx, &opts))
        );

        // Remove a remote object, then a local one.
        let rid = fx.remote_db.objects().next().unwrap().id;
        fx.remote_db.remove(rid).unwrap();
        pipe.apply_remote(&fx.remote_db, &[rid]).unwrap();
        assert_eq!(
            format!("{:?}", pipe.view()),
            format!("{:?}", scratch(&fx, &opts))
        );
        let lid = fx.local_db.objects().last().unwrap().id;
        fx.local_db.remove(lid).unwrap();
        pipe.apply_local(&fx.local_db, &[lid]).unwrap();
        assert_eq!(
            format!("{:?}", pipe.view()),
            format!("{:?}", scratch(&fx, &opts))
        );
    }
}
