//! Conflict detection (§5.2.1): explicit, implicit, admission, and
//! instance-level conflicts on the integrated view.

use std::collections::BTreeMap;
use std::fmt;

use interop_conform::Conformed;
use interop_constraint::solve::{conjunction_unsat, implies, TypeEnv};
use interop_constraint::{ConstraintId, Formula, Path, Status};
use interop_merge::IntegratedView;
use interop_model::{ClassName, ObjectId};
use interop_spec::{DfKind, RuleId, Side};

use crate::derive::{GlobalConstraints, Scope};

/// The kinds of conflicts the paper distinguishes.
#[derive(Clone, Debug, PartialEq)]
pub enum ConflictKind {
    /// The integrated constraint set of a scope is unsatisfiable
    /// (`Ω̂ ⊨ false`).
    Explicit {
        /// The inconsistent scope.
        scope: Scope,
        /// The participating constraints.
        constraints: Vec<ConstraintId>,
    },
    /// An objective constraint involves a property fused by a
    /// conflict-*ignoring* function without an equivalent constraint on
    /// the other side: a global object may violate it non-deterministically.
    Implicit {
        /// The at-risk objective constraint.
        constraint: ConstraintId,
        /// The property whose non-deterministic global value causes it.
        path: Path,
    },
    /// A strict-similarity rule admits objects that are not provably
    /// valid members of the target class (`Ω' ⊭ Ω̂`).
    Admission {
        /// The rule.
        rule: RuleId,
        /// The target constraint not implied.
        violated: ConstraintId,
        /// What admission would need to imply.
        needed: Formula,
    },
    /// A global object's actual state violates an integrated constraint.
    InstanceViolation {
        /// The violating global object.
        object: ObjectId,
        /// The violated derived constraint (display form).
        constraint: String,
    },
}

/// A detected conflict with a readable description.
#[derive(Clone, Debug, PartialEq)]
pub struct Conflict {
    /// What kind of conflict.
    pub kind: ConflictKind,
    /// Human-readable detail.
    pub detail: String,
}

impl fmt::Display for Conflict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.detail)
    }
}

/// Runs all conflict analyses.
pub fn detect_conflicts(
    conf: &Conformed,
    statuses: &BTreeMap<ConstraintId, Status>,
    global: &GlobalConstraints,
    view: &IntegratedView,
) -> Vec<Conflict> {
    let mut out = Vec::new();
    explicit_conflicts(&mut out, conf, global);
    implicit_conflicts(&mut out, conf, statuses);
    for af in &global.admission_failures {
        out.push(Conflict {
            detail: format!(
                "admission conflict: rule {} admits objects not provably satisfying {} ({})",
                af.rule, af.violated, af.needed
            ),
            kind: ConflictKind::Admission {
                rule: af.rule.clone(),
                violated: af.violated.clone(),
                needed: af.needed.clone(),
            },
        });
    }
    instance_violations(&mut out, global, view);
    out
}

fn env_for_scope(conf: &Conformed, scope: &Scope) -> TypeEnv {
    let mut env = TypeEnv::new();
    for class in scope.classes() {
        for schema in [&conf.local.db.schema, &conf.remote.db.schema] {
            if schema.class(class).is_some() {
                for (p, t) in TypeEnv::for_class(schema, class).iter() {
                    if env.get(p).is_none() {
                        env.insert(p.clone(), t.clone());
                    }
                }
            }
        }
    }
    env
}

/// Gathers every derived constraint applicable within a scope: the
/// scope's own constraints plus `All`-scoped constraints on the scope's
/// classes and their ancestors.
fn applicable<'a>(
    conf: &Conformed,
    global: &'a GlobalConstraints,
    scope: &Scope,
) -> Vec<&'a crate::derive::DerivedConstraint> {
    let mut classes: Vec<ClassName> = Vec::new();
    for c in scope.classes() {
        for schema in [&conf.local.db.schema, &conf.remote.db.schema] {
            if schema.class(c).is_some() {
                classes.extend(schema.self_and_ancestors(c));
            }
        }
        classes.push(c.clone());
    }
    classes.sort();
    classes.dedup();
    global
        .object
        .iter()
        .filter(|d| &d.scope == scope || matches!(&d.scope, Scope::All(c) if classes.contains(c)))
        .collect()
}

fn explicit_conflicts(out: &mut Vec<Conflict>, conf: &Conformed, global: &GlobalConstraints) {
    let mut scopes: Vec<Scope> = global.object.iter().map(|d| d.scope.clone()).collect();
    scopes.sort();
    scopes.dedup();
    for scope in scopes {
        let constraints = applicable(conf, global, &scope);
        if constraints.len() < 2 {
            continue;
        }
        let env = env_for_scope(conf, &scope);
        let formulas: Vec<&Formula> = constraints.iter().map(|d| &d.formula).collect();
        if conjunction_unsat(&formulas, &env) {
            let ids: Vec<ConstraintId> = constraints.iter().map(|d| d.id.clone()).collect();
            out.push(Conflict {
                detail: format!(
                    "explicit conflict: the integrated constraints of scope '{scope}' are \
                     unsatisfiable ({} constraints involved)",
                    ids.len()
                ),
                kind: ConflictKind::Explicit {
                    scope,
                    constraints: ids,
                },
            });
        }
    }
}

/// §5.2.1: implicit conflicts arise only for objective constraints over
/// properties fused by conflict-ignoring functions, when the other side
/// lacks an equivalent restriction.
fn implicit_conflicts(
    out: &mut Vec<Conflict>,
    conf: &Conformed,
    statuses: &BTreeMap<ConstraintId, Status>,
) {
    for (side, catalog, schema, other_catalog, other_schema) in [
        (
            Side::Local,
            &conf.local.catalog,
            &conf.local.db.schema,
            &conf.remote.catalog,
            &conf.remote.db.schema,
        ),
        (
            Side::Remote,
            &conf.remote.catalog,
            &conf.remote.db.schema,
            &conf.local.catalog,
            &conf.local.db.schema,
        ),
    ] {
        for oc in catalog.all_object() {
            if statuses.get(&oc.id) != Some(&Status::Objective) {
                continue;
            }
            for path in oc.formula.paths() {
                // Is this path governed by a conflict-ignoring df?
                let pe = conf.spec.propeqs.iter().find(|pe| {
                    let (cls, p) = match side {
                        Side::Local => (&pe.local_class, &pe.local_path),
                        Side::Remote => (&pe.remote_class, &pe.remote_path),
                    };
                    p.head() == path.head() && schema.is_subclass(&oc.class, cls)
                        || (path.len() > 1 && p.head() == path.0.last())
                });
                let Some(pe) = pe else { continue };
                if pe.df.kind() != DfKind::Ignoring {
                    continue;
                }
                // Does the other side enforce an equivalent restriction?
                let other_class = match side {
                    Side::Local => &pe.remote_class,
                    Side::Remote => &pe.local_class,
                };
                if other_schema.class(other_class).is_none() {
                    continue;
                }
                let other_formula = Formula::conj(
                    other_catalog
                        .object_effective(other_schema, other_class)
                        .iter()
                        .map(|c| c.formula.clone()),
                );
                let mut env = TypeEnv::for_class(schema, &oc.class);
                for (p, t) in TypeEnv::for_class(other_schema, other_class).iter() {
                    if env.get(p).is_none() {
                        env.insert(p.clone(), t.clone());
                    }
                }
                // Compare on the shared conformed property name: the
                // other side's constraints must imply this one restricted
                // to the ignored path.
                if !implies(&other_formula, &oc.formula, &env) {
                    out.push(Conflict {
                        detail: format!(
                            "implicit conflict risk: objective constraint {} restricts '{path}' \
                             whose global value may come from the other side (df = any), and \
                             the other side does not enforce an equivalent restriction",
                            oc.id
                        ),
                        kind: ConflictKind::Implicit {
                            constraint: oc.id.clone(),
                            path: path.clone(),
                        },
                    });
                }
            }
        }
    }
}

fn instance_violations(out: &mut Vec<Conflict>, global: &GlobalConstraints, view: &IntegratedView) {
    for d in &global.object {
        let check = |obj: &interop_merge::GlobalObject, out: &mut Vec<Conflict>| {
            if view.eval(obj, &d.formula) == interop_constraint::eval::Truth::False {
                out.push(Conflict {
                    detail: format!(
                        "instance violation: global object {} violates derived constraint {} \
                         ({})",
                        obj.id, d.id, d.formula
                    ),
                    kind: ConflictKind::InstanceViolation {
                        object: obj.id,
                        constraint: d.to_string(),
                    },
                });
            }
        };
        match &d.scope {
            Scope::All(c) => {
                for obj in view.extension(c) {
                    check(obj, out);
                }
            }
            Scope::Merged(lc, rc) => {
                for obj in view.extension(lc) {
                    if obj.local.is_some()
                        && obj.remote.is_some()
                        && view.hierarchy.extension(rc).contains(&obj.id)
                    {
                        check(obj, out);
                    }
                }
            }
            Scope::LocalOnly(c) => {
                for obj in view.extension(c) {
                    if obj.remote.is_none() {
                        check(obj, out);
                    }
                }
            }
            Scope::RemoteOnly(c) => {
                for obj in view.extension(c) {
                    if obj.local.is_none() {
                        check(obj, out);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::derive::{derive_global_constraints, DeriveOptions};
    use crate::fixtures;
    use crate::subjectivity::{classify_constraints, property_subjectivity};
    use interop_merge::merge;

    fn run(fx: &fixtures::Fixture) -> (Conformed, GlobalConstraints, Vec<Conflict>) {
        let conf = interop_conform::conform(
            &fx.local_db,
            &fx.local_catalog,
            &fx.remote_db,
            &fx.remote_catalog,
            &fx.spec,
        )
        .unwrap();
        let subj = property_subjectivity(&conf);
        let (statuses, _) = classify_constraints(&conf, &subj);
        let global = derive_global_constraints(&conf, &subj, &statuses, DeriveOptions::default());
        let view = merge(&conf, &fixtures::merge_options()).unwrap();
        let conflicts = detect_conflicts(&conf, &statuses, &global, &view);
        (conf, global, conflicts)
    }

    #[test]
    fn paper_fixture_flags_implicit_and_latent_admission_only() {
        let fx = fixtures::paper_fixture();
        let (_, _, conflicts) = run(&fx);
        // The Figure-1 data itself is consistent: no explicit conflicts
        // and no instance violations. What remains are the genuine
        // findings: implicit risks from conflict-ignoring `any` on
        // publisher.name, and the two latent admission conflicts (r4, r5)
        // the paper's example spec carries.
        for c in &conflicts {
            assert!(
                matches!(
                    c.kind,
                    ConflictKind::Implicit { .. } | ConflictKind::Admission { .. }
                ),
                "unexpected conflict: {c}"
            );
        }
        assert!(
            conflicts.iter().any(
                |c| matches!(&c.kind, ConflictKind::Implicit { constraint, .. }
                    if constraint.as_str() == "CSLibrary.Publication.oc2")
            ),
            "the VirtPublisher KNOWNPUBLISHERS constraint is an implicit risk: {conflicts:?}"
        );
        assert!(conflicts.iter().any(
            |c| matches!(&c.kind, ConflictKind::Admission { rule, .. } if rule.as_str() == "r4")
        ));
    }

    #[test]
    fn instance_violation_detected_for_declared_objective_trust_pair() {
        // §5.1.3's lesson, staged: declare oc1 of both sides objective
        // (violating the value-subjectivity rule would be rejected, so we
        // instead craft values where the fused state breaks the formula
        // and check the instance analysis on a synthetic derived set).
        let fx = fixtures::paper_fixture();
        let conf = interop_conform::conform(
            &fx.local_db,
            &fx.local_catalog,
            &fx.remote_db,
            &fx.remote_catalog,
            &fx.spec,
        )
        .unwrap();
        let view = merge(&conf, &fixtures::merge_options()).unwrap();
        // Local (libprice 26, shopprice 29); remote (22, 25); trust(local)
        // and trust(remote) fuse to (26, 25): 26 <= 25 is false.
        let mut global = GlobalConstraints::default();
        global.object.push(crate::derive::DerivedConstraint {
            id: ConstraintId::derived("test.libprice"),
            scope: Scope::All(ClassName::new("Publication")),
            formula: Formula::Cmp(
                interop_constraint::Expr::attr("libprice"),
                interop_constraint::CmpOp::Le,
                interop_constraint::Expr::attr("shopprice"),
            ),
            sources: vec![],
            origin: crate::derive::DerivationOrigin::ObjectivePassThrough,
        });
        let conflicts = detect_conflicts(&conf, &BTreeMap::new(), &global, &view);
        assert!(
            conflicts
                .iter()
                .any(|c| matches!(c.kind, ConflictKind::InstanceViolation { .. })),
            "the paper's (26,25) fusion must violate libprice <= shopprice: {conflicts:?}"
        );
    }

    #[test]
    fn explicit_conflict_from_contradictory_derivations() {
        let fx = fixtures::paper_fixture();
        let conf = interop_conform::conform(
            &fx.local_db,
            &fx.local_catalog,
            &fx.remote_db,
            &fx.remote_catalog,
            &fx.spec,
        )
        .unwrap();
        let view = merge(&conf, &fixtures::merge_options()).unwrap();
        let mut global = GlobalConstraints::default();
        let scope = Scope::All(ClassName::new("Proceedings"));
        global.object.push(crate::derive::DerivedConstraint {
            id: ConstraintId::derived("a"),
            scope: scope.clone(),
            formula: Formula::cmp("rating", interop_constraint::CmpOp::Ge, 7i64),
            sources: vec![],
            origin: crate::derive::DerivationOrigin::ObjectivePassThrough,
        });
        global.object.push(crate::derive::DerivedConstraint {
            id: ConstraintId::derived("b"),
            scope,
            formula: Formula::cmp("rating", interop_constraint::CmpOp::Le, 3i64),
            sources: vec![],
            origin: crate::derive::DerivationOrigin::ObjectivePassThrough,
        });
        let conflicts = detect_conflicts(&conf, &BTreeMap::new(), &global, &view);
        assert!(conflicts
            .iter()
            .any(|c| matches!(c.kind, ConflictKind::Explicit { .. })));
    }

    #[test]
    fn admission_failures_surface_as_conflicts() {
        let fx = fixtures::paper_fixture();
        let conf = interop_conform::conform(
            &fx.local_db,
            &fx.local_catalog,
            &fx.remote_db,
            &fx.remote_catalog,
            &fx.spec,
        )
        .unwrap();
        let view = merge(&conf, &fixtures::merge_options()).unwrap();
        let mut global = GlobalConstraints::default();
        global
            .admission_failures
            .push(crate::derive::AdmissionFailure {
                rule: RuleId::new("r3"),
                violated: ConstraintId::derived("CSLibrary.RefereedPubl.oc1"),
                needed: Formula::cmp("rating", interop_constraint::CmpOp::Ge, 4i64),
            });
        let conflicts = detect_conflicts(&conf, &BTreeMap::new(), &global, &view);
        assert!(conflicts.iter().any(
            |c| matches!(&c.kind, ConflictKind::Admission { rule, .. } if rule.as_str() == "r3")
        ));
    }
}
