//! # interop-core
//!
//! The paper's contribution (Vermeer & Apers, VLDB 1996, §3 and §5): the
//! two roles of integrity constraints in database interoperation.
//!
//! **Role 1 — deriving global constraints.** Given the constraints
//! enforced by the component databases and the integration specification,
//! compute the constraints valid on the integrated view:
//!
//! * [`subjectivity`] — property subjectivity from the decision-function
//!   classification (§5.1.2) and constraint subjectivity via the rule
//!   *subjective values ⇒ subjective constraints* (§5.1.3), validating
//!   designer declarations against it;
//! * [`implied`] — implied object constraints from intraobject rule
//!   conditions (§3);
//! * [`mod@derive`] — the integrated constraint sets for object equality
//!   (objective pass-through + decision-function combination under the
//!   paper's necessary conditions (1)/(2)), strict similarity (union +
//!   admission check `Ω' ⊨ Ω̂`), approximate similarity (disjunction on
//!   the virtual superclass, horizontal-fragment detection), class
//!   constraints (subjective by default, objective-extension and
//!   key-propagation exceptions) and database constraints (§5.2).
//!
//! **Role 2 — validating the integration specification.**
//!
//! * [`conflict`] — explicit conflicts (`Ω̂ ⊨ false`), implicit conflicts
//!   from conflict-ignoring decision functions, admission conflicts, and
//!   instance-level violations on the merged view;
//! * [`repair`] — the paper's three resolution options: demote
//!   constraints to subjective, strengthen comparison rules with
//!   additional intraobject conditions, or change decision functions.
//!
//! [`pipeline`] wires the phases into the Figure-3 methodology loop and
//! [`report`] renders the outcome; [`fixtures`] provides the paper's
//! Figure-1 databases, extents and specification for tests, examples and
//! benchmarks.
//!
//! # Invariants
//!
//! * **Derived constraints are sound, not complete.** A constraint is
//!   emitted for the integrated view only when the paper's conditions
//!   are *proven* (objective pass-through, admissible combination,
//!   admission check `Ω' ⊨ Ω̂`); anything unprovable is skipped with a
//!   recorded [`SkipReason`]. Consumers — notably the storage planner,
//!   which prunes queries with these formulas — may treat every derived
//!   constraint as store-enforced truth.
//! * **Subjectivity errs toward subjective**: a property is objective
//!   only when its decision function provably cannot introduce
//!   disagreement; designer declarations are validated against the
//!   classification rather than trusted.
//! * **Fixtures are the shared ground truth**: [`fixtures`] is the one
//!   source of the Figure-1/2/3 artifacts used by tests, examples,
//!   benchmarks and snapshots, so every layer exercises the same bytes.

pub mod conflict;
pub mod derive;
pub mod fixtures;
pub mod implied;
pub mod incremental;
pub mod pipeline;
pub mod repair;
pub mod report;
pub mod subjectivity;

pub use conflict::{Conflict, ConflictKind};
pub use derive::{DerivationOrigin, DerivedConstraint, GlobalConstraints, Scope, SkipReason};
pub use implied::ImpliedConstraint;
pub use incremental::IncrementalPipeline;
pub use pipeline::{
    IntegrateError, IntegrationOutcome, Integrator, IntegratorOptions, PreflightMode,
};
pub use repair::Repair;
pub use subjectivity::{classify_constraints, property_subjectivity, SpecIssue, SubjectivityMap};
