//! Implied object constraints from intraobject rule conditions (§3).
//!
//! The intraobject conditions of a comparison rule resemble object
//! constraints. Two consequences (§3): the condition must not conflict
//! with the subject class's object constraints (checked here, reported as
//! a [`SpecIssue`]), and from the conjunction of both, *implied object
//! constraints* can be derived — e.g. from `Sim(O':Proceedings,
//! RefereedPubl) ← O'.ref? = true` and `oc2: ref? = true ⇒ rating >= 7`
//! the implied constraint `rating >= 7` on admitted objects.

use interop_conform::Conformed;
use interop_constraint::solve::{domain_to_formula, is_satisfiable, project, TypeEnv};
use interop_constraint::{Bnd, ConstraintId, Domain, Formula, NumSet, Path};
use interop_model::ClassName;
use interop_spec::{RuleId, Side};

use crate::subjectivity::SpecIssue;

/// An object constraint implied for rule-admitted subjects.
#[derive(Clone, Debug, PartialEq)]
pub struct ImpliedConstraint {
    /// The rule whose condition participates.
    pub rule: RuleId,
    /// The subject class the constraint is implied on.
    pub subject_class: ClassName,
    /// The side the subject lives on.
    pub subject_side: Side,
    /// The target class admitted subjects join.
    pub target_class: ClassName,
    /// The implied constraint (e.g. `rating >= 7`).
    pub formula: Formula,
    /// Contributing enforced constraints.
    pub sources: Vec<ConstraintId>,
}

/// The full admission formula for a similarity rule: the subject's
/// effective object constraints conjoined with the rule's intraobject
/// condition. Everything an admitted object is known to satisfy.
pub fn admission_formula(conf: &Conformed, rule: &interop_spec::ComparisonRule) -> Formula {
    let (catalog, schema) = match rule.subject_side {
        Side::Local => (&conf.local.catalog, &conf.local.db.schema),
        Side::Remote => (&conf.remote.catalog, &conf.remote.db.schema),
    };
    let mut f = rule.intra_subject.clone();
    for oc in catalog.object_effective(schema, &rule.subject_class) {
        f = f.and(oc.formula.clone());
    }
    f
}

/// Tidies a projected domain against the base (type) domain: bounds that
/// merely restate the attribute type are dropped, so `rating ∈ [7, 10]`
/// over a `1..10` attribute renders as the paper's `rating >= 7`.
pub fn tidy_domain(d: &Domain, base: &Domain) -> Domain {
    let (Domain::Num(n), Domain::Num(b)) = (d, base) else {
        return d.clone();
    };
    if n.intervals().len() != 1 || b.intervals().len() != 1 {
        return d.clone();
    }
    let (iv, biv) = (n.intervals()[0], b.intervals()[0]);
    let lo = if bound_eq(iv.lo, biv.lo) {
        Bnd::NegInf
    } else {
        iv.lo
    };
    let hi = if bound_eq(iv.hi, biv.hi) {
        Bnd::PosInf
    } else {
        iv.hi
    };
    match interop_constraint::Iv::new(lo, hi) {
        Some(tidied) => Domain::Num(NumSet::from_iv(n.integral, tidied)),
        None => d.clone(),
    }
}

fn bound_eq(a: Bnd, b: Bnd) -> bool {
    match (a, b) {
        (Bnd::NegInf, Bnd::NegInf) | (Bnd::PosInf, Bnd::PosInf) => true,
        (Bnd::Incl(x), Bnd::Incl(y)) | (Bnd::Excl(x), Bnd::Excl(y)) => x == y,
        _ => false,
    }
}

/// Computes implied constraints for every similarity rule, and flags rule
/// conditions that conflict with the subject's object constraints.
pub fn implied_constraints(conf: &Conformed) -> (Vec<ImpliedConstraint>, Vec<SpecIssue>) {
    let mut implied = Vec::new();
    let mut issues = Vec::new();
    for rule in conf.spec.similarity_rules() {
        let target = match rule.relationship.target_class() {
            Some(t) => t.clone(),
            None => continue,
        };
        let (catalog, schema) = match rule.subject_side {
            Side::Local => (&conf.local.catalog, &conf.local.db.schema),
            Side::Remote => (&conf.remote.catalog, &conf.remote.db.schema),
        };
        let env = TypeEnv::for_class(schema, &rule.subject_class);
        let admission = admission_formula(conf, rule);
        // §3 consequence 1: the intraobject condition must not conflict
        // with the subject's object constraints.
        if !is_satisfiable(&admission, &env) {
            issues.push(SpecIssue {
                context: rule.id.to_string(),
                reason: format!(
                    "intraobject condition '{}' conflicts with the object constraints of {}",
                    rule.intra_subject, rule.subject_class
                ),
            });
            continue;
        }
        // §3 consequence 2: derive implied constraints by projecting the
        // admission formula onto each constrained path.
        let sources: Vec<ConstraintId> = catalog
            .object_effective(schema, &rule.subject_class)
            .iter()
            .map(|c| c.id.clone())
            .collect();
        let mut paths: std::collections::BTreeSet<Path> = admission.paths();
        paths.retain(|p| !p.is_this());
        for p in paths {
            let dom = project(&admission, &p, &env);
            let base = env.base_domain(&p);
            if dom == base || dom.is_full() {
                continue; // nothing beyond the type
            }
            // Also skip when the projection is no tighter than what the
            // condition alone already states (pure restatements).
            let cond_only = project(&rule.intra_subject, &p, &env);
            if dom == cond_only && rule.intra_subject.paths().contains(&p) {
                continue;
            }
            let tidied = tidy_domain(&dom, &base);
            let formula = domain_to_formula(&p, &tidied);
            if formula == Formula::True {
                continue;
            }
            implied.push(ImpliedConstraint {
                rule: rule.id.clone(),
                subject_class: rule.subject_class.clone(),
                subject_side: rule.subject_side,
                target_class: target.clone(),
                formula,
                sources: sources.clone(),
            });
        }
    }
    (implied, issues)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures;
    use interop_constraint::CmpOp;

    fn conformed() -> Conformed {
        let fx = fixtures::paper_fixture();
        interop_conform::conform(
            &fx.local_db,
            &fx.local_catalog,
            &fx.remote_db,
            &fx.remote_catalog,
            &fx.spec,
        )
        .unwrap()
    }

    #[test]
    fn paper_section3_example() {
        // From r3's condition ref?=true and oc2 (ref?=true ⇒ rating>=7),
        // the implied constraint rating >= 7 on admitted Proceedings.
        let conf = conformed();
        let (implied, issues) = implied_constraints(&conf);
        assert!(issues.is_empty(), "{issues:?}");
        let r3_rating = implied
            .iter()
            .find(|i| {
                i.rule == RuleId::new("r3")
                    && i.formula.paths().iter().any(|p| p.to_string() == "rating")
            })
            .expect("rating implication for r3");
        assert_eq!(r3_rating.formula.to_string(), "rating >= 7");
        assert_eq!(r3_rating.target_class, ClassName::new("RefereedPubl"));
    }

    #[test]
    fn no_implied_rating_for_non_refereed() {
        // r4 (ref?=false) does not trigger oc2; projected rating domain is
        // the full 1..10 — no implied rating constraint.
        let conf = conformed();
        let (implied, _) = implied_constraints(&conf);
        assert!(!implied.iter().any(|i| i.rule == RuleId::new("r4")
            && i.formula.paths().iter().any(|p| p.to_string() == "rating")));
    }

    #[test]
    fn conflicting_condition_reported() {
        // A rule demanding rating <= 3 for refereed proceedings conflicts
        // with oc2 once ref?=true: admission unsatisfiable.
        let fx = fixtures::paper_fixture();
        let mut spec = fx.spec.clone();
        spec.add_rule(interop_spec::ComparisonRule::similarity(
            "r_bad",
            Side::Remote,
            "Proceedings",
            "NonRefereedPubl",
            Formula::cmp("ref?", CmpOp::Eq, true).and(Formula::cmp("rating", CmpOp::Le, 3i64)),
        ));
        let conf = interop_conform::conform(
            &fx.local_db,
            &fx.local_catalog,
            &fx.remote_db,
            &fx.remote_catalog,
            &spec,
        )
        .unwrap();
        let (_, issues) = implied_constraints(&conf);
        assert!(issues.iter().any(|i| i.context == "r_bad"));
    }

    #[test]
    fn tidy_drops_type_bounds() {
        use interop_constraint::NumSet;
        use interop_model::R64;
        let base = Domain::Num(NumSet::from_iv(
            true,
            interop_constraint::Iv::closed(1.0, 10.0),
        ));
        let d = Domain::Num(NumSet::from_iv(
            true,
            interop_constraint::Iv::closed(7.0, 10.0),
        ));
        let t = tidy_domain(&d, &base);
        match &t {
            Domain::Num(n) => {
                assert!(n.contains(R64::new(100.0)), "upper type bound dropped");
                assert!(!n.contains(R64::new(6.0)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn admission_formula_conjoins_condition_and_constraints() {
        let conf = conformed();
        let r3 = conf
            .spec
            .rules
            .iter()
            .find(|r| r.id.as_str() == "r3")
            .unwrap();
        let f = admission_formula(&conf, r3);
        let s = f.to_string();
        assert!(s.contains("ref? = true"));
        assert!(s.contains("rating >= 7"));
        assert!(s.contains("libprice <= shopprice"));
    }
}
