//! Objectivity and subjectivity (§5.1).
//!
//! Property subjectivity follows mechanically from the decision-function
//! classification (§5.1.2). Constraint subjectivity is then governed by
//! the consistency rule of §5.1.3 — *subjectivity of values implies
//! subjectivity of constraints* — with designer declarations validated
//! against it: declaring a constraint objective while it involves a
//! subjective property is a specification inconsistency, reported as a
//! [`SpecIssue`] (the implication is one-directional; demoting an
//! all-objective constraint to subjective is always allowed).

use std::collections::BTreeMap;
use std::fmt;

use interop_conform::Conformed;
use interop_constraint::{ConstraintId, Path, Status};
use interop_model::{AttrName, ClassName, Schema, Type};
use interop_spec::Side;

/// A validation problem found in the integration specification.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpecIssue {
    /// What the issue is about (constraint id, rule id, ...).
    pub context: String,
    /// Human-readable description.
    pub reason: String,
}

impl fmt::Display for SpecIssue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.context, self.reason)
    }
}

/// Property subjectivity per side: `(side, declaring class, attribute)` →
/// subjective? Properties not covered by any propeq are objective (their
/// global value is never decided between two sources).
#[derive(Clone, Debug, Default)]
pub struct SubjectivityMap {
    map: BTreeMap<(Side, ClassName, AttrName), bool>,
}

impl SubjectivityMap {
    /// Is `class.attr` on `side` subjective? Hierarchy-aware: an entry on
    /// an ancestor class covers subclasses.
    pub fn is_subjective(
        &self,
        schema: &Schema,
        side: Side,
        class: &ClassName,
        attr: &AttrName,
    ) -> bool {
        for c in schema.self_and_ancestors(class) {
            if let Some(&s) = self.map.get(&(side, c, attr.clone())) {
                return s;
            }
        }
        false
    }

    /// Records subjectivity for a property.
    pub fn insert(&mut self, side: Side, class: ClassName, attr: AttrName, subjective: bool) {
        self.map.insert((side, class, attr), subjective);
    }

    /// Iterates all entries `((side, class, attr), subjective)`.
    pub fn iter(&self) -> impl Iterator<Item = (&(Side, ClassName, AttrName), &bool)> {
        self.map.iter()
    }

    /// The subjectivity of the *terminal* attribute of a path on `class`
    /// (navigating reference attributes).
    pub fn path_subjective(
        &self,
        schema: &Schema,
        side: Side,
        class: &ClassName,
        path: &Path,
    ) -> bool {
        let mut cur = class.clone();
        for (i, attr) in path.0.iter().enumerate() {
            if i + 1 == path.0.len() {
                return self.is_subjective(schema, side, &cur, attr);
            }
            match schema.resolve_attr(&cur, attr).map(|(_, d)| d.ty.clone()) {
                Some(Type::Ref(next)) => cur = next,
                _ => return false, // unknown path: conservatively objective
            }
        }
        false
    }
}

/// Computes property subjectivity from the conformed propeqs (§5.1.2).
pub fn property_subjectivity(conf: &Conformed) -> SubjectivityMap {
    let mut map = SubjectivityMap::default();
    for pe in &conf.spec.propeqs {
        if let Some(la) = pe.local_path.head() {
            map.insert(
                Side::Local,
                pe.local_class.clone(),
                la.clone(),
                pe.df.subjective(Side::Local),
            );
        }
        if let Some(ra) = pe.remote_path.head() {
            map.insert(
                Side::Remote,
                pe.remote_class.clone(),
                ra.clone(),
                pe.df.subjective(Side::Remote),
            );
        }
    }
    map
}

fn schema_of(conf: &Conformed, side: Side) -> &Schema {
    match side {
        Side::Local => &conf.local.db.schema,
        Side::Remote => &conf.remote.db.schema,
    }
}

/// Does a conformed object constraint involve any subjective property?
pub fn constraint_touches_subjective(
    conf: &Conformed,
    subj: &SubjectivityMap,
    side: Side,
    class: &ClassName,
    formula: &interop_constraint::Formula,
) -> bool {
    let schema = schema_of(conf, side);
    formula
        .paths()
        .iter()
        .any(|p| subj.path_subjective(schema, side, class, p))
}

/// Assigns an objectivity status to every conformed constraint (§5.1.3,
/// §5.2.2, §5.2.3) and validates designer declarations.
///
/// Rules applied, in order:
/// * object constraints touching a subjective property are **forced
///   subjective**; a designer declaration of `objective` is rejected as a
///   [`SpecIssue`];
/// * other object constraints default to objective, overridable to
///   subjective;
/// * class constraints default to subjective (classifications are
///   inherently subjective); the *objective extension* exception (§5.2.2)
///   is handled in `derive` where rule coverage is known;
/// * database constraints are always subjective (§5.2.3); declaring one
///   objective is an issue.
pub fn classify_constraints(
    conf: &Conformed,
    subj: &SubjectivityMap,
) -> (BTreeMap<ConstraintId, Status>, Vec<SpecIssue>) {
    let mut statuses = BTreeMap::new();
    let mut issues = Vec::new();
    let declared = &conf.spec.status_overrides;
    for (side, cat) in [
        (Side::Local, &conf.local.catalog),
        (Side::Remote, &conf.remote.catalog),
    ] {
        for oc in cat.all_object() {
            let touches = constraint_touches_subjective(conf, subj, side, &oc.class, &oc.formula);
            let status = match (touches, declared.get(&oc.id)) {
                (true, Some(Status::Objective)) => {
                    issues.push(SpecIssue {
                        context: oc.id.to_string(),
                        reason: format!(
                            "declared objective but involves a subjective property; \
                             subjectivity of values implies subjectivity of constraints \
                             (constraint: {})",
                            oc.formula
                        ),
                    });
                    Status::Subjective
                }
                (true, _) => Status::Subjective,
                (false, Some(s)) => *s,
                (false, None) => Status::Objective,
            };
            statuses.insert(oc.id.clone(), status);
        }
        for cc in cat.all_class() {
            let status = match declared.get(&cc.id) {
                Some(Status::Objective) => Status::Objective, // checked in derive
                Some(Status::Subjective) | None => Status::Subjective,
                Some(Status::Unclassified) => Status::Subjective,
            };
            statuses.insert(cc.id.clone(), status);
        }
        for dc in cat.database_constraints() {
            if declared.get(&dc.id) == Some(&Status::Objective) {
                issues.push(SpecIssue {
                    context: dc.id.to_string(),
                    reason: "database constraints are subjective in the integration \
                             (the complications of treating them as objective are immense, §5.2.3)"
                        .into(),
                });
            }
            statuses.insert(dc.id.clone(), Status::Subjective);
        }
    }
    (statuses, issues)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures;
    use interop_constraint::ConstraintId;

    fn conformed() -> Conformed {
        let fx = fixtures::paper_fixture();
        interop_conform::conform(
            &fx.local_db,
            &fx.local_catalog,
            &fx.remote_db,
            &fx.remote_catalog,
            &fx.spec,
        )
        .unwrap()
    }

    #[test]
    fn paper_property_table() {
        // §5.1.2's classification on the Figure-1 propeqs.
        let conf = conformed();
        let subj = property_subjectivity(&conf);
        let l = &conf.local.db.schema;
        let r = &conf.remote.db.schema;
        // ourprice (conformed: libprice) trusted locally → local objective.
        assert!(!subj.is_subjective(
            l,
            Side::Local,
            &ClassName::new("Publication"),
            &AttrName::new("libprice")
        ));
        // Item.libprice (remote side of trust(local)) → subjective.
        assert!(subj.is_subjective(
            r,
            Side::Remote,
            &ClassName::new("Item"),
            &AttrName::new("libprice")
        ));
        // shopprice trusted remotely → local subjective, remote objective.
        assert!(subj.is_subjective(
            l,
            Side::Local,
            &ClassName::new("Publication"),
            &AttrName::new("shopprice")
        ));
        assert!(!subj.is_subjective(
            r,
            Side::Remote,
            &ClassName::new("Item"),
            &AttrName::new("shopprice")
        ));
        // publisher name: any → both objective.
        assert!(!subj.is_subjective(
            l,
            Side::Local,
            &ClassName::new("VirtPublisher"),
            &AttrName::new("name")
        ));
        // rating: avg → both subjective.
        assert!(subj.is_subjective(
            l,
            Side::Local,
            &ClassName::new("ScientificPubl"),
            &AttrName::new("rating")
        ));
        assert!(subj.is_subjective(
            r,
            Side::Remote,
            &ClassName::new("Proceedings"),
            &AttrName::new("rating")
        ));
        // editors/authors: union → both subjective.
        assert!(subj.is_subjective(
            r,
            Side::Remote,
            &ClassName::new("Item"),
            &AttrName::new("authors")
        ));
    }

    #[test]
    fn hierarchy_aware_property_lookup() {
        let conf = conformed();
        let subj = property_subjectivity(&conf);
        let l = &conf.local.db.schema;
        // RefereedPubl inherits ScientificPubl.rating's subjectivity.
        assert!(subj.is_subjective(
            l,
            Side::Local,
            &ClassName::new("RefereedPubl"),
            &AttrName::new("rating")
        ));
    }

    #[test]
    fn path_subjectivity_navigates_refs() {
        let conf = conformed();
        let subj = property_subjectivity(&conf);
        let r = &conf.remote.db.schema;
        // Proceedings → publisher.name: terminal is Publisher.name (any →
        // objective).
        assert!(!subj.path_subjective(
            r,
            Side::Remote,
            &ClassName::new("Proceedings"),
            &Path::parse("publisher.name")
        ));
        assert!(subj.path_subjective(
            r,
            Side::Remote,
            &ClassName::new("Proceedings"),
            &Path::parse("rating")
        ));
    }

    #[test]
    fn subjective_values_force_subjective_constraints() {
        let conf = conformed();
        let subj = property_subjectivity(&conf);
        let (statuses, issues) = classify_constraints(&conf, &subj);
        // §5.1.3: ocl of Publication (libprice <= shopprice) involves the
        // subjective shopprice → subjective, even though defined in both
        // databases.
        assert_eq!(
            statuses[&ConstraintId::derived("CSLibrary.Publication.oc1")],
            Status::Subjective
        );
        assert_eq!(
            statuses[&ConstraintId::derived("Bookseller.Item.oc1")],
            Status::Subjective
        );
        // Proceedings oc1 (publisher.name='IEEE' ⇒ ref?=true) touches only
        // objective props → objective (paper calls it objective).
        assert_eq!(
            statuses[&ConstraintId::derived("Bookseller.Proceedings.oc1")],
            Status::Objective
        );
        // Proceedings oc2 involves rating (avg → subjective) → subjective.
        assert_eq!(
            statuses[&ConstraintId::derived("Bookseller.Proceedings.oc2")],
            Status::Subjective
        );
        // VirtPublisher reallocated oc2 (name in KNOWNPUBLISHERS): name is
        // objective (any) — but the designer declared cc2... oc2 itself is
        // declared subjective in the fixture spec per the paper.
        assert!(issues.is_empty(), "unexpected issues: {issues:?}");
    }

    #[test]
    fn declaring_objective_on_subjective_prop_is_issue() {
        let fx = fixtures::paper_fixture();
        let mut spec = fx.spec.clone();
        // rating is subjective (avg); declaring oc2 of Proceedings
        // objective violates §5.1.3.
        spec.declare_status(
            ConstraintId::derived("Bookseller.Proceedings.oc2"),
            Status::Objective,
        );
        let conf = interop_conform::conform(
            &fx.local_db,
            &fx.local_catalog,
            &fx.remote_db,
            &fx.remote_catalog,
            &spec,
        )
        .unwrap();
        let subj = property_subjectivity(&conf);
        let (statuses, issues) = classify_constraints(&conf, &subj);
        assert!(issues.iter().any(|i| i.context.contains("Proceedings.oc2")));
        // Forced subjective despite the declaration.
        assert_eq!(
            statuses[&ConstraintId::derived("Bookseller.Proceedings.oc2")],
            Status::Subjective
        );
    }

    #[test]
    fn database_constraints_always_subjective() {
        let fx = fixtures::paper_fixture();
        let mut spec = fx.spec.clone();
        spec.declare_status(ConstraintId::derived("Bookseller.dbl"), Status::Objective);
        let conf = interop_conform::conform(
            &fx.local_db,
            &fx.local_catalog,
            &fx.remote_db,
            &fx.remote_catalog,
            &spec,
        )
        .unwrap();
        let subj = property_subjectivity(&conf);
        let (statuses, issues) = classify_constraints(&conf, &subj);
        assert_eq!(
            statuses[&ConstraintId::derived("Bookseller.dbl")],
            Status::Subjective
        );
        assert!(issues.iter().any(|i| i.context.contains("dbl")));
    }

    #[test]
    fn class_constraints_default_subjective() {
        let conf = conformed();
        let subj = property_subjectivity(&conf);
        let (statuses, _) = classify_constraints(&conf, &subj);
        assert_eq!(
            statuses[&ConstraintId::derived("CSLibrary.Publication.cc2")],
            Status::Subjective
        );
        assert_eq!(
            statuses[&ConstraintId::derived("CSLibrary.ScientificPubl.cc1")],
            Status::Subjective
        );
    }
}
