//! Plain-text reporting of an integration outcome — the artifact a
//! design tool (the paper's conclusion envisions one) would show the
//! integration designer.

use std::fmt::Write as _;

use interop_constraint::Status;

use crate::pipeline::IntegrationOutcome;

/// Renders the outcome as a multi-section plain-text report.
pub fn render(outcome: &IntegrationOutcome) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "== Integration report ==");
    let _ = writeln!(
        s,
        "databases: {} (local) + {} (remote)",
        outcome.conformed.local.db.name(),
        outcome.conformed.remote.db.name()
    );
    let _ = writeln!(
        s,
        "global objects: {}   merged pairs: {}",
        outcome.view.objects.len(),
        outcome
            .view
            .objects
            .values()
            .filter(|g| g.local.is_some() && g.remote.is_some())
            .count()
    );

    let _ = writeln!(s, "\n-- Property subjectivity (§5.1.2) --");
    for ((side, class, attr), subjective) in outcome.subjectivity.iter() {
        let _ = writeln!(
            s,
            "  {side} {class}.{attr}: {}",
            if *subjective {
                "subjective"
            } else {
                "objective"
            }
        );
    }

    let _ = writeln!(s, "\n-- Constraint statuses (§5.1.3) --");
    for (id, status) in &outcome.statuses {
        let tag = match status {
            Status::Objective => "objective",
            Status::Subjective => "subjective",
            Status::Unclassified => "unclassified",
        };
        let _ = writeln!(s, "  {id}: {tag}");
    }

    if !outcome.spec_issues.is_empty() {
        let _ = writeln!(s, "\n-- Specification issues --");
        for i in &outcome.spec_issues {
            let _ = writeln!(s, "  {i}");
        }
    }

    if !outcome.implied.is_empty() {
        let _ = writeln!(s, "\n-- Implied constraints (§3) --");
        for i in &outcome.implied {
            let _ = writeln!(
                s,
                "  [{}] on {} (joining {}): {}",
                i.rule, i.subject_class, i.target_class, i.formula
            );
        }
    }

    let _ = writeln!(s, "\n-- Derived global object constraints (§5.2.1) --");
    for d in &outcome.global.object {
        let _ = writeln!(s, "  {d}");
    }

    if !outcome.global.class_constraints.is_empty() {
        let _ = writeln!(s, "\n-- Propagated class constraints (§5.2.2) --");
        for (c, origin) in &outcome.global.class_constraints {
            let _ = writeln!(s, "  [{}] ({origin}) on {}: {}", c.id, c.class, c.body);
        }
    }

    if !outcome.global.fragments.is_empty() {
        let _ = writeln!(s, "\n-- Horizontal fragmentations --");
        for fr in &outcome.global.fragments {
            let _ = writeln!(
                s,
                "  {} = {} | {} split by '{}'",
                fr.virtual_class, fr.local_class, fr.remote_class, fr.condition
            );
        }
    }

    if !outcome.global.skipped.is_empty() {
        let _ = writeln!(s, "\n-- Not propagated --");
        for sk in &outcome.global.skipped {
            let _ = writeln!(s, "  {}: {}", sk.source, sk.reason);
        }
    }

    let _ = writeln!(s, "\n-- Inferred hierarchy (§2.3) --");
    for (sub, sup) in &outcome.view.hierarchy.edges {
        let _ = writeln!(s, "  {sub} isa {sup}");
    }
    for i in &outcome.view.hierarchy.intersections {
        let _ = writeln!(
            s,
            "  virtual subclass {} = {} ∩ {} ({} objects)",
            i.name,
            i.parents.0,
            i.parents.1,
            i.extension.len()
        );
    }

    if outcome.conflicts.is_empty() {
        let _ = writeln!(s, "\nno conflicts detected");
    } else {
        let _ = writeln!(s, "\n-- Conflicts --");
        for (c, repairs) in outcome.conflicts.iter().zip(&outcome.repairs) {
            let _ = writeln!(s, "  {c}");
            for r in repairs {
                let _ = writeln!(s, "    option: {r}");
            }
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures;
    use crate::pipeline::{Integrator, IntegratorOptions};

    #[test]
    fn report_contains_paper_artifacts() {
        let fx = fixtures::paper_fixture();
        let outcome = Integrator::new(
            fx.local_db,
            fx.local_catalog,
            fx.remote_db,
            fx.remote_catalog,
            fx.spec,
        )
        .with_options(IntegratorOptions {
            merge: fixtures::merge_options(),
            ..Default::default()
        })
        .run()
        .unwrap();
        let text = render(&outcome);
        assert!(text.contains("RefereedProceedings"));
        assert!(text.contains("publisher.name = 'ACM' implies rating >= 5"));
        assert!(text.contains("rating >= 7"));
        assert!(text.contains("subjective"));
        assert!(text.contains("Bookseller.dbl"));
    }

    #[test]
    fn personnel_report_shows_intro_example() {
        let fx = fixtures::personnel_fixture();
        let outcome = Integrator::new(
            fx.local_db,
            fx.local_catalog,
            fx.remote_db,
            fx.remote_catalog,
            fx.spec,
        )
        .run()
        .unwrap();
        let text = render(&outcome);
        assert!(text.contains("trav_reimb in {12, 17, 22}"));
        assert!(text.contains("salary < 1500"));
    }
}
