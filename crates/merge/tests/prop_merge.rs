//! Property-based tests for the merging phase: totality of the id map,
//! determinism, extent-closure invariants, and fusion correctness under
//! random extents.

use interop_constraint::Catalog;
use interop_merge::{merge, MergeOptions};
use interop_model::{ClassDef, ClassName, Database, Schema, Type, Value};
use interop_spec::{ComparisonRule, Conversion, Decision, InterCond, PropEq, Spec};
use proptest::prelude::*;

fn schemas() -> (Schema, Schema) {
    let local = Schema::new(
        "L",
        vec![ClassDef::new("A")
            .attr("key", Type::Str)
            .attr("score", Type::Range(1, 5))],
    )
    .expect("static schema");
    let remote = Schema::new(
        "R",
        vec![ClassDef::new("B")
            .attr("key", Type::Str)
            .attr("score", Type::Range(1, 10))],
    )
    .expect("static schema");
    (local, remote)
}

fn spec() -> Spec {
    let mut s = Spec::new("L", "R");
    s.add_rule(ComparisonRule::equality(
        "r",
        "A",
        "B",
        vec![InterCond::eq("key", "key")],
    ));
    s.add_propeq(PropEq::named_after_remote(
        "A",
        "score",
        "B",
        "score",
        Conversion::Multiply(2.0),
        Conversion::Id,
        Decision::Avg,
    ));
    s
}

/// Local keys from `lk`, remote keys from `rk` — arbitrary overlap.
fn build(lk: &[u8], rk: &[u8]) -> interop_merge::IntegratedView {
    let (ls, rs) = schemas();
    let mut ldb = Database::new(ls, 1);
    for (i, k) in lk.iter().enumerate() {
        ldb.create(
            "A",
            vec![
                ("key", Value::str(format!("k{k}"))),
                ("score", Value::Int((i % 5 + 1) as i64)),
            ],
        )
        .expect("local object");
    }
    let mut rdb = Database::new(rs, 2);
    for (i, k) in rk.iter().enumerate() {
        rdb.create(
            "B",
            vec![
                ("key", Value::str(format!("k{k}"))),
                ("score", Value::Int((i % 10 + 1) as i64)),
            ],
        )
        .expect("remote object");
    }
    let conf = interop_conform::conform(&ldb, &Catalog::new(), &rdb, &Catalog::new(), &spec())
        .expect("conforms");
    merge(&conf, &MergeOptions::default()).expect("merges")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every conformed object maps to a global object; global ids form a
    /// contiguous space.
    #[test]
    fn id_map_total(lk in prop::collection::vec(0u8..20, 0..15),
                    rk in prop::collection::vec(0u8..20, 0..15)) {
        let v = build(&lk, &rk);
        prop_assert_eq!(v.id_map.len(), lk.len() + rk.len());
        for gid in v.id_map.values() {
            prop_assert!(v.objects.contains_key(gid));
        }
    }

    /// Merging is deterministic.
    #[test]
    fn deterministic(lk in prop::collection::vec(0u8..10, 0..10),
                     rk in prop::collection::vec(0u8..10, 0..10)) {
        let a = build(&lk, &rk);
        let b = build(&lk, &rk);
        prop_assert_eq!(a.objects.len(), b.objects.len());
        let keys_a: Vec<_> = a.objects.keys().collect();
        let keys_b: Vec<_> = b.objects.keys().collect();
        prop_assert_eq!(keys_a, keys_b);
        for (x, y) in a.objects.values().zip(b.objects.values()) {
            prop_assert_eq!(&x.attrs, &y.attrs);
            prop_assert_eq!(&x.classes, &y.classes);
        }
    }

    /// Merged pairs correspond exactly to shared keys (first local holder
    /// wins; duplicates group transitively).
    #[test]
    fn merged_iff_shared_key(lk in prop::collection::btree_set(0u8..30, 0..15),
                             rk in prop::collection::btree_set(0u8..30, 0..15)) {
        let lv: Vec<u8> = lk.iter().copied().collect();
        let rv: Vec<u8> = rk.iter().copied().collect();
        let v = build(&lv, &rv);
        let shared = lk.intersection(&rk).count();
        let merged = v
            .objects
            .values()
            .filter(|g| g.local.is_some() && g.remote.is_some())
            .count();
        prop_assert_eq!(merged, shared);
        // Object conservation: singletons + merged = total global.
        prop_assert_eq!(v.objects.len(), lv.len() + rv.len() - shared);
    }

    /// Fused scores respect the decision function: avg of the conformed
    /// local (doubled) and remote values.
    #[test]
    fn fusion_applies_avg(lk in prop::collection::btree_set(0u8..10, 1..8),
                          rk in prop::collection::btree_set(0u8..10, 1..8)) {
        let lv: Vec<u8> = lk.iter().copied().collect();
        let rv: Vec<u8> = rk.iter().copied().collect();
        let v = build(&lv, &rv);
        for g in v.objects.values() {
            if let (Some(_), Some(_)) = (g.local, g.remote) {
                let (lval, rval, df) = &g.fused[&interop_model::AttrName::new("score")];
                prop_assert_eq!(*df, Decision::Avg);
                let expect = df.apply(lval, rval).expect("numeric avg");
                prop_assert!(g.attrs[&interop_model::AttrName::new("score")].sem_eq(&expect));
            }
        }
    }

    /// Extents are upward closed and every global object appears in the
    /// extension of each of its classes.
    #[test]
    fn extents_cover_memberships(lk in prop::collection::vec(0u8..10, 0..10),
                                 rk in prop::collection::vec(0u8..10, 0..10)) {
        let v = build(&lk, &rk);
        for g in v.objects.values() {
            prop_assert!(!g.classes.is_empty());
            for c in &g.classes {
                prop_assert!(
                    v.hierarchy.extension(c).contains(&g.id),
                    "{} missing from ext({})", g.id, c
                );
            }
        }
    }
}

#[test]
fn duplicate_keys_group_transitively() {
    // Two locals and two remotes all sharing one key collapse into a
    // single global object (with a note).
    let v = build(&[1, 1], &[1, 1]);
    let merged: Vec<_> = v
        .objects
        .values()
        .filter(|g| g.local.is_some() && g.remote.is_some())
        .collect();
    assert_eq!(merged.len(), 1);
    assert_eq!(v.objects.len(), 1);
    assert!(!v.notes.is_empty(), "multi-merge must be noted");
}

#[test]
fn empty_extents_merge_to_empty_view() {
    let v = build(&[], &[]);
    assert!(v.objects.is_empty());
    assert!(v.id_map.is_empty());
    assert!(v.hierarchy.intersections.is_empty());
}

#[test]
fn one_sided_population_is_all_singletons() {
    let v = build(&[0, 1, 2], &[]);
    assert_eq!(v.objects.len(), 3);
    assert!(v.objects.values().all(|g| g.remote.is_none()));
    let class_a = ClassName::new("A");
    assert_eq!(v.hierarchy.extension(&class_a).len(), 3);
}
