//! Property-based tests for the merging phase: totality of the id map,
//! determinism, extent-closure invariants, and fusion correctness under
//! random extents.

use std::collections::{BTreeMap, BTreeSet};

use interop_conform::Conformed;
use interop_constraint::{Catalog, CmpOp, Formula};
use interop_merge::{
    fuse, infer_hierarchy, merge, resolve, FuseResult, Hierarchy, IntersectionClass, MergeOptions,
    SimMatch,
};
use interop_model::{ClassDef, ClassName, Database, ObjectId, Schema, Type, Value};
use interop_spec::{ComparisonRule, Conversion, Decision, InterCond, PropEq, Side, Spec};
use proptest::prelude::*;

fn schemas() -> (Schema, Schema) {
    let local = Schema::new(
        "L",
        vec![ClassDef::new("A")
            .attr("key", Type::Str)
            .attr("score", Type::Range(1, 5))],
    )
    .expect("static schema");
    let remote = Schema::new(
        "R",
        vec![ClassDef::new("B")
            .attr("key", Type::Str)
            .attr("score", Type::Range(1, 10))],
    )
    .expect("static schema");
    (local, remote)
}

fn spec() -> Spec {
    let mut s = Spec::new("L", "R");
    s.add_rule(ComparisonRule::equality(
        "r",
        "A",
        "B",
        vec![InterCond::eq("key", "key")],
    ));
    s.add_propeq(PropEq::named_after_remote(
        "A",
        "score",
        "B",
        "score",
        Conversion::Multiply(2.0),
        Conversion::Id,
        Decision::Avg,
    ));
    s
}

/// Local keys from `lk`, remote keys from `rk` — arbitrary overlap.
fn build(lk: &[u8], rk: &[u8]) -> interop_merge::IntegratedView {
    let (ls, rs) = schemas();
    let mut ldb = Database::new(ls, 1);
    for (i, k) in lk.iter().enumerate() {
        ldb.create(
            "A",
            vec![
                ("key", Value::str(format!("k{k}"))),
                ("score", Value::Int((i % 5 + 1) as i64)),
            ],
        )
        .expect("local object");
    }
    let mut rdb = Database::new(rs, 2);
    for (i, k) in rk.iter().enumerate() {
        rdb.create(
            "B",
            vec![
                ("key", Value::str(format!("k{k}"))),
                ("score", Value::Int((i % 10 + 1) as i64)),
            ],
        )
        .expect("remote object");
    }
    let conf = interop_conform::conform(&ldb, &Catalog::new(), &rdb, &Catalog::new(), &spec())
        .expect("conforms");
    merge(&conf, &MergeOptions::default()).expect("merges")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every conformed object maps to a global object; global ids form a
    /// contiguous space.
    #[test]
    fn id_map_total(lk in prop::collection::vec(0u8..20, 0..15),
                    rk in prop::collection::vec(0u8..20, 0..15)) {
        let v = build(&lk, &rk);
        prop_assert_eq!(v.id_map.len(), lk.len() + rk.len());
        for gid in v.id_map.values() {
            prop_assert!(v.objects.contains_key(gid));
        }
    }

    /// Merging is deterministic.
    #[test]
    fn deterministic(lk in prop::collection::vec(0u8..10, 0..10),
                     rk in prop::collection::vec(0u8..10, 0..10)) {
        let a = build(&lk, &rk);
        let b = build(&lk, &rk);
        prop_assert_eq!(a.objects.len(), b.objects.len());
        let keys_a: Vec<_> = a.objects.keys().collect();
        let keys_b: Vec<_> = b.objects.keys().collect();
        prop_assert_eq!(keys_a, keys_b);
        for (x, y) in a.objects.values().zip(b.objects.values()) {
            prop_assert_eq!(&x.attrs, &y.attrs);
            prop_assert_eq!(&x.classes, &y.classes);
        }
    }

    /// Merged pairs correspond exactly to shared keys (first local holder
    /// wins; duplicates group transitively).
    #[test]
    fn merged_iff_shared_key(lk in prop::collection::btree_set(0u8..30, 0..15),
                             rk in prop::collection::btree_set(0u8..30, 0..15)) {
        let lv: Vec<u8> = lk.iter().copied().collect();
        let rv: Vec<u8> = rk.iter().copied().collect();
        let v = build(&lv, &rv);
        let shared = lk.intersection(&rk).count();
        let merged = v
            .objects
            .values()
            .filter(|g| g.local.is_some() && g.remote.is_some())
            .count();
        prop_assert_eq!(merged, shared);
        // Object conservation: singletons + merged = total global.
        prop_assert_eq!(v.objects.len(), lv.len() + rv.len() - shared);
    }

    /// Fused scores respect the decision function: avg of the conformed
    /// local (doubled) and remote values.
    #[test]
    fn fusion_applies_avg(lk in prop::collection::btree_set(0u8..10, 1..8),
                          rk in prop::collection::btree_set(0u8..10, 1..8)) {
        let lv: Vec<u8> = lk.iter().copied().collect();
        let rv: Vec<u8> = rk.iter().copied().collect();
        let v = build(&lv, &rv);
        for g in v.objects.values() {
            if let (Some(_), Some(_)) = (g.local, g.remote) {
                let (lval, rval, df) = &g.fused[&interop_model::AttrName::new("score")];
                prop_assert_eq!(*df, Decision::Avg);
                let expect = df.apply(lval, rval).expect("numeric avg");
                prop_assert!(g.attrs[&interop_model::AttrName::new("score")].sem_eq(&expect));
            }
        }
    }

    /// Extents are upward closed and every global object appears in the
    /// extension of each of its classes.
    #[test]
    fn extents_cover_memberships(lk in prop::collection::vec(0u8..10, 0..10),
                                 rk in prop::collection::vec(0u8..10, 0..10)) {
        let v = build(&lk, &rk);
        for g in v.objects.values() {
            prop_assert!(!g.classes.is_empty());
            for c in &g.classes {
                prop_assert!(
                    v.hierarchy.extension(c).contains(&g.id),
                    "{} missing from ext({})", g.id, c
                );
            }
        }
    }
}

/// A richer random fixture with isa chains on both sides plus strict and
/// approximate similarity, so hierarchy inference sees multi-class
/// objects, subset relations, partial overlaps and virtual superclasses.
///
/// Local: `P` ← `S` ← `Rf`; remote: `I` ← `Pr`(flag), `I` ← `M`.
/// Rules: `P ~ I` on key, `Pr` strictly similar to `Rf` when flagged,
/// `M` approximately similar to `S` under the virtual class `SOrM`.
fn rich_build(
    locals: &[(u8, u8)],
    remotes: &[(u8, u8, bool)],
) -> (Conformed, FuseResult, Vec<SimMatch>, Hierarchy) {
    let local_schema = Schema::new(
        "L",
        vec![
            ClassDef::new("P").attr("key", Type::Str),
            ClassDef::new("S").isa("P"),
            ClassDef::new("Rf").isa("S"),
        ],
    )
    .expect("static schema");
    let remote_schema = Schema::new(
        "R",
        vec![
            ClassDef::new("I").attr("key", Type::Str),
            ClassDef::new("Pr").isa("I").attr("flag", Type::Bool),
            ClassDef::new("M").isa("I"),
        ],
    )
    .expect("static schema");
    let mut ldb = Database::new(local_schema, 1);
    for (key, class) in locals {
        let class = ["P", "S", "Rf"][(*class % 3) as usize];
        ldb.create(class, vec![("key", Value::str(format!("k{key}")))])
            .expect("local object");
    }
    let mut rdb = Database::new(remote_schema, 2);
    for (key, class, flag) in remotes {
        let class = ["I", "Pr", "M"][(*class % 3) as usize];
        let mut attrs = vec![("key", Value::str(format!("k{key}")))];
        if class == "Pr" {
            attrs.push(("flag", Value::Bool(*flag)));
        }
        rdb.create(class, attrs).expect("remote object");
    }
    let mut spec = Spec::new("L", "R");
    spec.add_rule(ComparisonRule::equality(
        "r_eq",
        "P",
        "I",
        vec![InterCond::eq("key", "key")],
    ));
    spec.add_rule(ComparisonRule::similarity(
        "r_sim",
        Side::Remote,
        "Pr",
        "Rf",
        Formula::cmp("flag", CmpOp::Eq, true),
    ));
    spec.add_rule(ComparisonRule::approx_similarity(
        "r_approx",
        Side::Remote,
        "M",
        "S",
        "SOrM",
        Formula::True,
    ));
    let conf = interop_conform::conform(&ldb, &Catalog::new(), &rdb, &Catalog::new(), &spec)
        .expect("conforms");
    let (eqs, sims) = resolve(&conf).expect("resolves");
    let fused = fuse(&conf, &eqs, &sims).expect("fuses");
    let h = infer_hierarchy(&conf, &fused, &sims, &MergeOptions::default());
    (conf, fused, sims, h)
}

/// Naive set-based oracle for hierarchy inference: builds every extent as
/// a `BTreeSet`, then derives cross edges and intersections by pairwise
/// cloned-set subset/intersection tests — the quadratic algorithm the
/// count-based implementation replaced, including the canonical
/// single-edge handling of equal extents.
fn oracle_hierarchy(
    conf: &Conformed,
    fused: &FuseResult,
    sims: &[SimMatch],
    opts: &MergeOptions,
) -> Hierarchy {
    let local = &conf.local.db.schema;
    let remote = &conf.remote.db.schema;
    let ancestors_any = |class: &ClassName| -> Vec<ClassName> {
        if local.class(class).is_some() {
            local.self_and_ancestors(class)
        } else if remote.class(class).is_some() {
            remote.self_and_ancestors(class)
        } else {
            vec![class.clone()]
        }
    };
    let mut h = Hierarchy::default();
    for g in fused.objects.values() {
        for c in &g.classes {
            for anc in ancestors_any(c) {
                h.extensions.entry(anc).or_default().insert(g.id);
            }
        }
    }
    for schema in [local, remote] {
        for def in schema.classes() {
            if let Some(p) = &def.parent {
                h.edges.insert((def.name.clone(), p.clone()));
            }
        }
    }
    for s in sims {
        if let Some(v) = &s.virtual_class {
            h.virtual_superclasses.insert(v.clone());
            let mut ext = h.extensions.get(&s.target).cloned().unwrap_or_default();
            if let Some(gid) = fused.id_map.get(&s.subject) {
                ext.insert(*gid);
            }
            h.extensions.entry(v.clone()).or_default().extend(ext);
            h.edges.insert((s.target.clone(), v.clone()));
            let subj_class = match s.side {
                Side::Local => conf.local.db.object(s.subject).map(|o| o.class.clone()),
                Side::Remote => conf.remote.db.object(s.subject).map(|o| o.class.clone()),
            };
            if let Some(sc) = subj_class {
                h.edges.insert((sc, v.clone()));
            }
        }
    }
    let local_classes: Vec<ClassName> = local.class_names().cloned().collect();
    let remote_classes: Vec<ClassName> = remote.class_names().cloned().collect();
    for a in &local_classes {
        for b in &remote_classes {
            let ea = h.extensions.get(a).cloned().unwrap_or_default();
            let eb = h.extensions.get(b).cloned().unwrap_or_default();
            if ea.is_empty() || eb.is_empty() {
                continue;
            }
            let inter: BTreeSet<ObjectId> = ea.intersection(&eb).copied().collect();
            let a_in_b = ea.is_subset(&eb);
            let b_in_a = eb.is_subset(&ea);
            if a_in_b && b_in_a {
                // Equal extents: single canonical remote-isa-local edge.
                h.edges.insert((b.clone(), a.clone()));
            } else if a_in_b {
                h.edges.insert((a.clone(), b.clone()));
            } else if b_in_a {
                h.edges.insert((b.clone(), a.clone()));
            } else if !inter.is_empty() {
                let name = opts
                    .intersection_names
                    .get(&(a.clone(), b.clone()))
                    .cloned()
                    .unwrap_or_else(|| ClassName::new(format!("{b}And{a}")));
                h.extensions.insert(name.clone(), inter.clone());
                h.edges.insert((name.clone(), a.clone()));
                h.edges.insert((name.clone(), b.clone()));
                h.intersections.push(IntersectionClass {
                    name,
                    parents: (a.clone(), b.clone()),
                    extension: inter,
                });
            }
        }
    }
    h
}

/// Panics if the edge set contains a directed cycle.
fn assert_edges_acyclic(edges: &BTreeSet<(ClassName, ClassName)>) -> Result<(), String> {
    let mut adj: BTreeMap<&ClassName, Vec<&ClassName>> = BTreeMap::new();
    for (sub, sup) in edges {
        adj.entry(sub).or_default().push(sup);
    }
    // Kahn-style elimination: repeatedly drop nodes with no outgoing
    // edges into un-dropped nodes; leftovers form a cycle.
    let mut alive: BTreeSet<&ClassName> = edges.iter().flat_map(|(a, b)| [a, b]).collect();
    loop {
        let removable: Vec<&ClassName> = alive
            .iter()
            .filter(|n| {
                adj.get(*n)
                    .map(|outs| outs.iter().all(|m| !alive.contains(m)))
                    .unwrap_or(true)
            })
            .copied()
            .collect();
        if removable.is_empty() {
            break;
        }
        for n in removable {
            alive.remove(n);
        }
    }
    if alive.is_empty() {
        Ok(())
    } else {
        Err(format!("cycle among {alive:?}"))
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The count-based hierarchy inference agrees exactly with the naive
    /// cloned-set oracle on random multi-class fixtures.
    #[test]
    fn count_based_inference_matches_set_oracle(
        locals in prop::collection::vec((0u8..12, 0u8..3), 0..14),
        remotes in prop::collection::vec((0u8..12, 0u8..3, any::<bool>()), 0..14),
    ) {
        let (conf, fused, sims, h) = rich_build(&locals, &remotes);
        let expect = oracle_hierarchy(&conf, &fused, &sims, &MergeOptions::default());
        prop_assert_eq!(&h.edges, &expect.edges);
        prop_assert_eq!(&h.intersections, &expect.intersections);
        prop_assert_eq!(&h.extensions, &expect.extensions);
        prop_assert_eq!(&h.virtual_superclasses, &expect.virtual_superclasses);
    }

    /// The inferred edge set is a DAG on every random fixture, and the
    /// id map is total over both conformed extents.
    #[test]
    fn inferred_edges_acyclic_and_id_map_total(
        locals in prop::collection::vec((0u8..10, 0u8..3), 0..12),
        remotes in prop::collection::vec((0u8..10, 0u8..3, any::<bool>()), 0..12),
    ) {
        let (conf, fused, _, h) = rich_build(&locals, &remotes);
        let acyclic = assert_edges_acyclic(&h.edges);
        prop_assert!(acyclic.is_ok(), "inferred edges must be acyclic: {acyclic:?}");
        for obj in conf.local.db.objects().chain(conf.remote.db.objects()) {
            prop_assert!(
                fused.id_map.contains_key(&obj.id),
                "id_map must cover conformed object {}", obj.id
            );
        }
        for gid in fused.id_map.values() {
            prop_assert!(fused.objects.contains_key(gid));
        }
    }

    /// Merging the rich fixture is deterministic across runs, hierarchy
    /// included.
    #[test]
    fn rich_merge_deterministic(
        locals in prop::collection::vec((0u8..8, 0u8..3), 0..10),
        remotes in prop::collection::vec((0u8..8, 0u8..3, any::<bool>()), 0..10),
    ) {
        let (_, fa, _, ha) = rich_build(&locals, &remotes);
        let (_, fb, _, hb) = rich_build(&locals, &remotes);
        prop_assert_eq!(&fa.id_map, &fb.id_map);
        prop_assert_eq!(&ha.edges, &hb.edges);
        prop_assert_eq!(&ha.extensions, &hb.extensions);
        prop_assert_eq!(&ha.intersections, &hb.intersections);
        let attrs_a: Vec<_> = fa.objects.values().map(|g| &g.attrs).collect();
        let attrs_b: Vec<_> = fb.objects.values().map(|g| &g.attrs).collect();
        prop_assert_eq!(attrs_a, attrs_b);
    }
}

#[test]
fn duplicate_keys_group_transitively() {
    // Two locals and two remotes all sharing one key collapse into a
    // single global object (with a note).
    let v = build(&[1, 1], &[1, 1]);
    let merged: Vec<_> = v
        .objects
        .values()
        .filter(|g| g.local.is_some() && g.remote.is_some())
        .collect();
    assert_eq!(merged.len(), 1);
    assert_eq!(v.objects.len(), 1);
    assert!(!v.notes.is_empty(), "multi-merge must be noted");
}

#[test]
fn empty_extents_merge_to_empty_view() {
    let v = build(&[], &[]);
    assert!(v.objects.is_empty());
    assert!(v.id_map.is_empty());
    assert!(v.hierarchy.intersections.is_empty());
}

#[test]
fn one_sided_population_is_all_singletons() {
    let v = build(&[0, 1, 2], &[]);
    assert_eq!(v.objects.len(), 3);
    assert!(v.objects.values().all(|g| g.remote.is_none()));
    let class_a = ClassName::new("A");
    assert_eq!(v.hierarchy.extension(&class_a).len(), 3);
}
