//! The integrated view: the merging orchestrator plus evaluation of
//! formulas over global objects.

use std::collections::BTreeMap;

use interop_conform::Conformed;
use interop_constraint::eval::Truth;
use interop_constraint::{CmpOp, Expr, Formula, Path};
use interop_model::{AttrName, ClassName, Database, ObjectId, Value};

use crate::fuse::{FuseResult, GlobalObject};
use crate::hierarchy::{infer_hierarchy, Hierarchy};
use crate::resolve::MergeError;

/// Options controlling the merge.
#[derive(Clone, Debug, Default)]
pub struct MergeOptions {
    /// Designer-chosen names for virtual intersection classes, keyed by
    /// `(local class, remote class)` (e.g. `(RefereedPubl, Proceedings) →
    /// RefereedProceedings`). Unnamed intersections get a generated name.
    pub intersection_names: BTreeMap<(ClassName, ClassName), ClassName>,
}

/// The integrated (global) view of the two conformed databases.
#[derive(Clone, Debug)]
pub struct IntegratedView {
    /// Global objects by id.
    pub objects: BTreeMap<ObjectId, GlobalObject>,
    /// Conformed id → global id.
    pub id_map: BTreeMap<ObjectId, ObjectId>,
    /// The inferred class hierarchy and extensions.
    pub hierarchy: Hierarchy,
    /// Merge anomalies.
    pub notes: Vec<String>,
}

/// Runs the merging phase on a conformed pair (§2.3): entity resolution,
/// value fusion, hierarchy inference. The phases share one hash-indexed
/// view of the conformed objects instead of each re-indexing the pair.
pub fn merge(conf: &Conformed, opts: &MergeOptions) -> Result<IntegratedView, MergeError> {
    let idx = crate::index::ConformedIndex::new(conf);
    let (eqs, sims) = crate::resolve::resolve_with(conf, &idx)?;
    let fused: FuseResult = crate::fuse::fuse_with(conf, &idx, &eqs, &sims)?;
    let hierarchy = infer_hierarchy(conf, &fused, &sims, opts);
    Ok(IntegratedView {
        objects: fused.objects,
        id_map: fused.id_map,
        hierarchy,
        notes: fused.notes,
    })
}

impl IntegratedView {
    /// The global objects in a class's extension.
    pub fn extension(&self, class: &ClassName) -> Vec<&GlobalObject> {
        self.hierarchy
            .extension(class)
            .iter()
            .filter_map(|id| self.objects.get(id))
            .collect()
    }

    /// Navigates a path on a global object (references resolve to other
    /// global objects).
    pub fn get_path(&self, obj: &GlobalObject, path: &Path) -> Value {
        let mut cur: &GlobalObject = obj;
        for (i, attr) in path.0.iter().enumerate() {
            let v = cur.attrs.get(attr).cloned().unwrap_or(Value::Null);
            if i + 1 == path.0.len() {
                return v;
            }
            match v {
                Value::Ref(id) => match self.objects.get(&id) {
                    Some(next) => cur = next,
                    None => return Value::Null,
                },
                _ => return Value::Null,
            }
        }
        Value::Null
    }

    /// Evaluates a (conformed) formula on a global object. Semantics
    /// match the component-database evaluator: three-valued with `Null`.
    pub fn eval(&self, obj: &GlobalObject, f: &Formula) -> Truth {
        match f {
            Formula::True => Truth::True,
            Formula::False => Truth::False,
            Formula::Cmp(a, op, b) => {
                let (va, vb) = (self.eval_expr(obj, a), self.eval_expr(obj, b));
                if va.is_null() || vb.is_null() {
                    return Truth::Unknown;
                }
                match va.compare(&vb) {
                    Some(ord) => Truth::from_bool(op.test(ord)),
                    None => Truth::from_bool(matches!(op, CmpOp::Ne)),
                }
            }
            Formula::In(e, set) => {
                let v = self.eval_expr(obj, e);
                if v.is_null() {
                    return Truth::Unknown;
                }
                Truth::from_bool(set.iter().any(|s| s.sem_eq(&v)))
            }
            Formula::Contains(e, s) => match self.eval_expr(obj, e) {
                Value::Null => Truth::Unknown,
                Value::Str(hay) => Truth::from_bool(hay.contains(s.as_str())),
                _ => Truth::False,
            },
            Formula::Not(inner) => self.eval(obj, inner).not(),
            Formula::And(fs) => fs
                .iter()
                .fold(Truth::True, |acc, g| acc.and(self.eval(obj, g))),
            Formula::Or(fs) => fs
                .iter()
                .fold(Truth::False, |acc, g| acc.or(self.eval(obj, g))),
            Formula::Implies(a, b) => self.eval(obj, a).not().or(self.eval(obj, b)),
        }
    }

    fn eval_expr(&self, obj: &GlobalObject, e: &Expr) -> Value {
        match e {
            Expr::Const(v) => v.clone(),
            Expr::Attr(p) => self.get_path(obj, p),
            Expr::Neg(inner) => match self.eval_expr(obj, inner).as_num() {
                Some(n) => Value::Real(-n),
                None => Value::Null,
            },
            Expr::Bin(a, op, b) => {
                let (x, y) = (
                    self.eval_expr(obj, a).as_num(),
                    self.eval_expr(obj, b).as_num(),
                );
                match (x, y) {
                    (Some(x), Some(y)) => {
                        use interop_constraint::ArithOp::*;
                        let r = match op {
                            Add => x + y,
                            Sub => x - y,
                            Mul => x * y,
                            Div => {
                                if y.get() == 0.0 {
                                    return Value::Null;
                                }
                                x / y
                            }
                        };
                        Value::Real(r)
                    }
                    _ => Value::Null,
                }
            }
        }
    }

    /// The global object an original (conformed) object was merged into.
    pub fn global_of(&self, conformed: ObjectId) -> Option<&GlobalObject> {
        self.id_map
            .get(&conformed)
            .and_then(|gid| self.objects.get(gid))
    }

    /// A read accessor for one attribute of a global object.
    pub fn attr(&self, obj: &GlobalObject, name: &str) -> Value {
        obj.attrs
            .get(&AttrName::new(name))
            .cloned()
            .unwrap_or(Value::Null)
    }

    /// Materialises the integrated view as a plain [`interop_model::Database`]
    /// so it can be stored, queried through `interop-storage`, or serve as
    /// the *local* side of a further integration (chaining — the paper's
    /// `DBint` drawn as a database in Figure 2).
    ///
    /// The global class graph is a DAG (virtual subclasses have two
    /// parents), which the single-inheritance model cannot host; the
    /// materialised schema is therefore *flat*: one root class per global
    /// class, each carrying every attribute observed on its members
    /// (typed by the joined value kinds). Each global object is placed in
    /// one extent — the smallest class containing it (ties broken by
    /// name) — while full memberships remain available on the view.
    pub fn materialize(&self, db_name: &str, space: u32) -> Result<Database, MergeError> {
        use interop_model::{ClassDef, Schema, Type};
        // Infer attribute types per class from member values.
        let mut class_attrs: BTreeMap<ClassName, BTreeMap<AttrName, Type>> = BTreeMap::new();
        // Smallest containing class per object.
        let mut placement: BTreeMap<interop_model::ObjectId, ClassName> = BTreeMap::new();
        for g in self.objects.values() {
            let mut best: Option<(usize, ClassName)> = None;
            for (class, ext) in &self.hierarchy.extensions {
                if ext.contains(&g.id) {
                    let cand = (ext.len(), class.clone());
                    best = Some(match best {
                        None => cand,
                        Some(b) if cand < b => cand,
                        Some(b) => b,
                    });
                }
            }
            let class = best
                .map(|(_, c)| c)
                .unwrap_or_else(|| ClassName::new("GlobalObject"));
            placement.insert(g.id, class.clone());
            let attrs = class_attrs.entry(class).or_default();
            for (a, v) in &g.attrs {
                if let Some(t) = infer_value_type(v) {
                    match attrs.entry(a.clone()) {
                        std::collections::btree_map::Entry::Vacant(e) => {
                            e.insert(t);
                        }
                        std::collections::btree_map::Entry::Occupied(mut e) => {
                            let joined = e.get().join(&t).unwrap_or(Type::Str);
                            *e.get_mut() = joined;
                        }
                    }
                }
            }
        }
        // References: type them as Ref(target's placement class); all
        // target classes must agree, else fall back to a shared root.
        let mut defs: Vec<ClassDef> = Vec::new();
        let mut ref_types: BTreeMap<(ClassName, AttrName), ClassName> = BTreeMap::new();
        for g in self.objects.values() {
            let class = placement[&g.id].clone();
            for (a, v) in &g.attrs {
                if let Value::Ref(target) = v {
                    if let Some(tc) = placement.get(target) {
                        ref_types
                            .entry((class.clone(), a.clone()))
                            .and_modify(|prev| {
                                if prev != tc {
                                    *prev = ClassName::new("GlobalObject");
                                }
                            })
                            .or_insert_with(|| tc.clone());
                    }
                }
            }
        }
        // Reference attributes carry no inferable scalar type; make sure
        // they still appear in their class's attribute list.
        for (class, attr) in ref_types.keys() {
            class_attrs
                .entry(class.clone())
                .or_default()
                .entry(attr.clone())
                .or_insert(Type::Str); // placeholder; overridden by Ref below
        }
        let needs_root = ref_types.values().any(|c| c.as_str() == "GlobalObject")
            || placement.values().any(|c| c.as_str() == "GlobalObject");
        if needs_root {
            defs.push(ClassDef::new("GlobalObject"));
        }
        for (class, attrs) in &class_attrs {
            let mut def = ClassDef::new(class.clone()).virt();
            for (a, t) in attrs {
                let ty = ref_types
                    .get(&(class.clone(), a.clone()))
                    .map(|c| Type::Ref(c.clone()))
                    .unwrap_or_else(|| t.clone());
                def = def.attr(a.clone(), ty);
            }
            defs.push(def);
        }
        let schema = Schema::new(db_name, defs).map_err(|e| MergeError::Model(e.to_string()))?;
        let mut out = Database::new(schema, space);
        for g in self.objects.values() {
            let class = &placement[&g.id];
            let known = &class_attrs[class];
            let mut obj = interop_model::Object::new(g.id, class.clone());
            for (a, v) in &g.attrs {
                // Drop attributes whose type could not be inferred class-wide.
                if known.contains_key(a) || ref_types.contains_key(&(class.clone(), a.clone())) {
                    obj.set(a.clone(), v.clone());
                }
            }
            out.insert(obj)
                .map_err(|e| MergeError::Model(e.to_string()))?;
        }
        Ok(out)
    }
}

/// The materialisable type of a value, if any.
///
/// Sets carry the *join* of their members' element types (`{1, 2}` is a
/// `P(int)`, not a `Pstring`), falling back to string elements when the
/// members disagree or carry no scalar type (refs); the empty set also
/// materialises as `Pstring`. `Null` and references yield no scalar type —
/// references are patched to `Ref(class)` attributes by the caller.
fn infer_value_type(v: &Value) -> Option<interop_model::Type> {
    use interop_model::Type;
    match v {
        Value::Null => None,
        Value::Bool(_) => Some(Type::Bool),
        Value::Int(_) => Some(Type::Int),
        Value::Real(_) => Some(Type::Real),
        Value::Str(_) => Some(Type::Str),
        Value::Set(items) => {
            let mut elem: Option<Type> = None;
            for t in items.iter().filter_map(infer_value_type) {
                elem = Some(match elem {
                    None => t,
                    Some(prev) => prev.join(&t).unwrap_or(Type::Str),
                });
            }
            Some(Type::SetOf(Box::new(elem.unwrap_or(Type::Str))))
        }
        Value::Ref(_) => None, // patched by the caller once classes exist
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use interop_constraint::Catalog;
    use interop_model::{ClassDef, Database, Schema, Type};
    use interop_spec::{ComparisonRule, Conversion, Decision, InterCond, PropEq, Side, Spec};

    fn view() -> IntegratedView {
        let local_schema = Schema::new(
            "L",
            vec![
                ClassDef::new("Publication")
                    .attr("isbn", Type::Str)
                    .attr("publisher", Type::Str)
                    .attr("ourprice", Type::Real),
                ClassDef::new("ScientificPubl")
                    .isa("Publication")
                    .attr("rating", Type::Range(1, 5)),
            ],
        )
        .unwrap();
        let remote_schema = Schema::new(
            "R",
            vec![
                ClassDef::new("Publisher").attr("name", Type::Str),
                ClassDef::new("Item")
                    .attr("isbn", Type::Str)
                    .attr("publisher", Type::Ref(ClassName::new("Publisher")))
                    .attr("libprice", Type::Real),
                ClassDef::new("Proceedings")
                    .isa("Item")
                    .attr("rating", Type::Range(1, 10)),
            ],
        )
        .unwrap();
        let mut ldb = Database::new(local_schema, 1);
        ldb.create(
            "ScientificPubl",
            vec![
                ("isbn", "X".into()),
                ("publisher", "ACM".into()),
                ("ourprice", 26.0.into()),
                ("rating", 2i64.into()),
            ],
        )
        .unwrap();
        let mut rdb = Database::new(remote_schema, 2);
        let p = rdb
            .create("Publisher", vec![("name", "ACM".into())])
            .unwrap();
        rdb.create(
            "Proceedings",
            vec![
                ("isbn", "X".into()),
                ("publisher", Value::Ref(p)),
                ("libprice", 22.0.into()),
                ("rating", 8i64.into()),
            ],
        )
        .unwrap();
        let mut spec = Spec::new("L", "R");
        spec.add_rule(ComparisonRule::equality(
            "r1",
            "Publication",
            "Item",
            vec![InterCond::eq("isbn", "isbn")],
        ));
        spec.add_rule(ComparisonRule::descriptivity(
            "r2",
            "Publication",
            vec!["publisher"],
            "Publisher",
            vec![InterCond::eq("publisher", "name")],
        ));
        spec.add_propeq(PropEq::named_after_remote(
            "Publication",
            "ourprice",
            "Item",
            "libprice",
            Conversion::Id,
            Conversion::Id,
            Decision::Trust(Side::Local),
        ));
        spec.add_propeq(PropEq::named_after_remote(
            "ScientificPubl",
            "rating",
            "Proceedings",
            "rating",
            Conversion::Multiply(2.0),
            Conversion::Id,
            Decision::Avg,
        ));
        spec.add_propeq(PropEq::named_after_remote(
            "Publication",
            "publisher",
            "Publisher",
            "name",
            Conversion::Id,
            Conversion::Id,
            Decision::Any,
        ));
        let conf =
            interop_conform::conform(&ldb, &Catalog::new(), &rdb, &Catalog::new(), &spec).unwrap();
        merge(&conf, &MergeOptions::default()).unwrap()
    }

    #[test]
    fn merged_object_has_fused_rating() {
        let v = view();
        // Local rating 2 conformed to 4; remote 8; avg = 6.
        let merged = v
            .objects
            .values()
            .find(|g| {
                g.local.is_some()
                    && g.remote.is_some()
                    && g.attrs.contains_key(&AttrName::new("rating"))
            })
            .expect("merged publication");
        assert_eq!(v.attr(merged, "rating"), Value::int(6));
        assert_eq!(v.attr(merged, "libprice"), Value::real(26.0));
    }

    #[test]
    fn virtual_publisher_merges_with_remote_publisher() {
        let v = view();
        // One global publisher object carrying name=ACM, merged from the
        // virtual local and the real remote one.
        let publishers = v.extension(&ClassName::new("Publisher"));
        let virt = v.extension(&ClassName::new("VirtPublisher"));
        assert_eq!(publishers.len(), 1);
        assert_eq!(virt.len(), 1);
        assert_eq!(publishers[0].id, virt[0].id);
        assert!(publishers[0].local.is_some() && publishers[0].remote.is_some());
    }

    #[test]
    fn path_navigation_through_global_refs() {
        let v = view();
        let merged = v
            .objects
            .values()
            .find(|g| g.attrs.contains_key(&AttrName::new("rating")))
            .unwrap();
        let name = v.get_path(merged, &Path::parse("publisher.name"));
        assert_eq!(name, Value::str("ACM"));
        // Formula evaluation over the global object.
        let f = Formula::cmp("publisher.name", CmpOp::Eq, "ACM").implies(Formula::cmp(
            "rating",
            CmpOp::Ge,
            5i64,
        ));
        assert_eq!(v.eval(merged, &f), Truth::True);
    }

    #[test]
    fn eval_three_valued_on_missing_attrs() {
        let v = view();
        let merged = v
            .objects
            .values()
            .find(|g| g.attrs.contains_key(&AttrName::new("rating")))
            .unwrap();
        assert_eq!(
            v.eval(merged, &Formula::cmp("nonexistent", CmpOp::Eq, 1i64)),
            Truth::Unknown
        );
    }

    #[test]
    fn materialize_types_sets_by_element_kind() {
        // Regression: `materialize` used to type every set as `Pstring`,
        // so a set of ints could not round-trip through storage. The
        // element type must be inferred from the members.
        use interop_model::Type;
        let local_schema = Schema::new(
            "L",
            vec![ClassDef::new("Doc")
                .attr("isbn", Type::Str)
                .attr("codes", Type::SetOf(Box::new(Type::Int)))
                .attr("tags", Type::pstring())],
        )
        .unwrap();
        let remote_schema =
            Schema::new("R", vec![ClassDef::new("Item").attr("isbn", Type::Str)]).unwrap();
        let mut ldb = Database::new(local_schema, 1);
        let codes = Value::Set([Value::int(3), Value::int(7)].into_iter().collect());
        ldb.create(
            "Doc",
            vec![
                ("isbn", "X".into()),
                ("codes", codes.clone()),
                ("tags", Value::str_set(["a", "b"])),
            ],
        )
        .unwrap();
        let mut rdb = Database::new(remote_schema, 2);
        rdb.create("Item", vec![("isbn", "X".into())]).unwrap();
        let mut spec = Spec::new("L", "R");
        spec.add_rule(ComparisonRule::equality(
            "r1",
            "Doc",
            "Item",
            vec![InterCond::eq("isbn", "isbn")],
        ));
        let conf =
            interop_conform::conform(&ldb, &Catalog::new(), &rdb, &Catalog::new(), &spec).unwrap();
        let v = merge(&conf, &MergeOptions::default()).unwrap();
        let db = v.materialize("Mat", 7).unwrap();
        // The materialised schema types the set attrs by element kind.
        let g = v.objects.values().next().unwrap();
        let class = &db.object(g.id).unwrap().class;
        let (_, codes_def) = db
            .schema
            .resolve_attr(class, &AttrName::new("codes"))
            .unwrap();
        assert_eq!(codes_def.ty, Type::SetOf(Box::new(Type::Int)));
        let (_, tags_def) = db
            .schema
            .resolve_attr(class, &AttrName::new("tags"))
            .unwrap();
        assert_eq!(tags_def.ty, Type::pstring());
        // Round-trip through a constraint-enforcing store preserves the
        // set value (the old Pstring typing made this insert fail).
        let store = interop_storage::Store::new(db, Catalog::new());
        let stored = store.db().object(g.id).unwrap();
        assert_eq!(stored.get(&AttrName::new("codes")), &codes);
        let back = store.into_db();
        assert_eq!(
            back.object(g.id).unwrap().get(&AttrName::new("codes")),
            &codes
        );
    }

    #[test]
    fn global_of_resolves_both_sides() {
        let v = view();
        let gids: std::collections::BTreeSet<ObjectId> = v.objects.keys().copied().collect();
        for (orig, gid) in &v.id_map {
            assert!(gids.contains(gid), "{orig} maps to missing global {gid}");
        }
    }
}
