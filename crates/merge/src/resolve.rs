//! Entity resolution: evaluating comparison rules over conformed extents.

use std::borrow::Cow;
use std::fmt;

use interop_conform::Conformed;

use crate::index::ConformedIndex;
use interop_constraint::eval::{eval_formula, eval_path_ref, Truth};
use interop_model::{ClassName, Database, FxHashMap, ModelError, ObjectId, Value};
use interop_spec::{Relationship, RuleId, Side};

/// Errors raised during merging.
#[derive(Clone, Debug, PartialEq)]
pub enum MergeError {
    /// Underlying model error (dangling reference etc.).
    Model(String),
    /// A rule references a class missing from the conformed schema.
    UnknownClass(ClassName),
}

impl fmt::Display for MergeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MergeError::Model(m) => write!(f, "model error during merging: {m}"),
            MergeError::UnknownClass(c) => write!(f, "merge rule references unknown class '{c}'"),
        }
    }
}

impl std::error::Error for MergeError {}

impl From<ModelError> for MergeError {
    fn from(e: ModelError) -> Self {
        MergeError::Model(e.to_string())
    }
}

/// An established equality between a local and a remote object.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EqMatch {
    /// The establishing rule.
    pub rule: RuleId,
    /// Local (conformed) object.
    pub local: ObjectId,
    /// Remote (conformed) object.
    pub remote: ObjectId,
}

/// An established similarity: `subject` would be classified under
/// `target` (strict), or joins the virtual superclass (approximate).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SimMatch {
    /// The establishing rule.
    pub rule: RuleId,
    /// Which side the subject object lives on.
    pub side: Side,
    /// The subject object.
    pub subject: ObjectId,
    /// The target class (on the other side).
    pub target: ClassName,
    /// For approximate similarity: the virtual common superclass.
    pub virtual_class: Option<ClassName>,
}

/// Evaluates all comparison rules over the conformed extents.
///
/// Equality rules with an attribute-equality interobject condition are
/// executed as hash joins (build side: remote extension); everything else
/// falls back to a nested-loop check — the same asymptotics a real
/// mediator would exhibit.
pub fn resolve(conf: &Conformed) -> Result<(Vec<EqMatch>, Vec<SimMatch>), MergeError> {
    resolve_with(conf, &ConformedIndex::new(conf))
}

/// [`resolve`] over a prebuilt object index (shared across the phases by
/// [`crate::merge`]).
pub(crate) fn resolve_with(
    conf: &Conformed,
    idx: &ConformedIndex<'_>,
) -> Result<(Vec<EqMatch>, Vec<SimMatch>), MergeError> {
    let mut eqs = Vec::new();
    let mut sims = Vec::new();
    let obj = |id: ObjectId| -> Result<&interop_model::Object, MergeError> {
        idx.object(id)
            .ok_or_else(|| MergeError::Model(format!("unknown conformed object {id}")))
    };
    for rule in &conf.spec.rules {
        match &rule.relationship {
            Relationship::Equality => {
                let local_class = rule
                    .counterpart_class
                    .as_ref()
                    .ok_or_else(|| MergeError::UnknownClass(ClassName::new("<missing>")))?;
                conf.local
                    .db
                    .schema
                    .class_req(local_class)
                    .map_err(|_| MergeError::UnknownClass(local_class.clone()))?;
                conf.remote
                    .db
                    .schema
                    .class_req(&rule.subject_class)
                    .map_err(|_| MergeError::UnknownClass(rule.subject_class.clone()))?;
                let locals = conf.local.db.extension(local_class);
                let remotes = conf.remote.db.extension(&rule.subject_class);
                // Hash join when the first interobject condition is an
                // equality.
                let join_cond = rule
                    .inter
                    .iter()
                    .find(|ic| ic.op == interop_constraint::CmpOp::Eq);
                if let Some(jc) = join_cond {
                    // When the join equality is the rule's only condition,
                    // a bucket hit *is* the match — skip the re-check.
                    let bucket_decides = rule.inter.len() == 1
                        && rule.intra_counterpart == interop_constraint::Formula::True
                        && rule.intra_subject == interop_constraint::Formula::True;
                    // Hashed buckets over *borrowed* join keys: only
                    // probed, never iterated, so the arbitrary iteration
                    // order cannot leak into results (matches are emitted
                    // in local-extension order). Single-candidate buckets
                    // — the common case under key-like join attributes —
                    // stay inline, no per-key Vec. Plain one-attribute
                    // join paths (again the common case) key the table on
                    // `&Value` straight out of the objects; longer paths
                    // go through the borrowing path evaluator.
                    fn single(p: &interop_constraint::Path) -> Option<&interop_model::AttrName> {
                        p.0.first().filter(|_| p.0.len() == 1)
                    }
                    if let (Some(la), Some(ra)) = (single(&jc.local), single(&jc.remote)) {
                        let mut bucket: FxHashMap<&Value, Bucket> =
                            FxHashMap::with_capacity_and_hasher(remotes.len(), Default::default());
                        for rid in &remotes {
                            if let Some(v) = obj(*rid)?.attrs.get(ra) {
                                if !v.is_null() {
                                    bucket
                                        .entry(v)
                                        .and_modify(|b| b.push(*rid))
                                        .or_insert(Bucket::One(*rid));
                                }
                            }
                        }
                        for lid in &locals {
                            let lobj = obj(*lid)?;
                            let Some(key) = lobj.attrs.get(la) else {
                                continue;
                            };
                            if key.is_null() {
                                continue;
                            }
                            if let Some(cands) = bucket.get(key) {
                                for rid in cands.as_slice() {
                                    if bucket_decides || check_pair(conf, rule, lobj, obj(*rid)?)? {
                                        eqs.push(EqMatch {
                                            rule: rule.id.clone(),
                                            local: *lid,
                                            remote: *rid,
                                        });
                                    }
                                }
                            }
                        }
                    } else {
                        let mut bucket: FxHashMap<Cow<'_, Value>, Bucket> =
                            FxHashMap::with_capacity_and_hasher(remotes.len(), Default::default());
                        for rid in &remotes {
                            let robj = obj(*rid)?;
                            let v = eval_path_ref(&conf.remote.db, robj, &jc.remote)?;
                            if !v.is_null() {
                                bucket
                                    .entry(v)
                                    .and_modify(|b| b.push(*rid))
                                    .or_insert(Bucket::One(*rid));
                            }
                        }
                        for lid in &locals {
                            let lobj = obj(*lid)?;
                            let key = eval_path_ref(&conf.local.db, lobj, &jc.local)?;
                            if key.is_null() {
                                continue;
                            }
                            if let Some(cands) = bucket.get(&key) {
                                for rid in cands.as_slice() {
                                    if bucket_decides || check_pair(conf, rule, lobj, obj(*rid)?)? {
                                        eqs.push(EqMatch {
                                            rule: rule.id.clone(),
                                            local: *lid,
                                            remote: *rid,
                                        });
                                    }
                                }
                            }
                        }
                    }
                } else {
                    for lid in &locals {
                        let lobj = obj(*lid)?;
                        for rid in &remotes {
                            if check_pair(conf, rule, lobj, obj(*rid)?)? {
                                eqs.push(EqMatch {
                                    rule: rule.id.clone(),
                                    local: *lid,
                                    remote: *rid,
                                });
                            }
                        }
                    }
                }
            }
            Relationship::StrictSimilarity { class }
            | Relationship::ApproxSimilarity { class, .. } => {
                let (db, _other): (&Database, &Database) = match rule.subject_side {
                    Side::Local => (&conf.local.db, &conf.remote.db),
                    Side::Remote => (&conf.remote.db, &conf.local.db),
                };
                db.schema
                    .class_req(&rule.subject_class)
                    .map_err(|_| MergeError::UnknownClass(rule.subject_class.clone()))?;
                let virtual_class = match &rule.relationship {
                    Relationship::ApproxSimilarity { virtual_class, .. } => {
                        Some(virtual_class.clone())
                    }
                    _ => None,
                };
                for id in db.extension(&rule.subject_class) {
                    let obj = db.object_req(id)?;
                    if eval_formula(db, obj, &rule.intra_subject)? == Truth::True {
                        sims.push(SimMatch {
                            rule: rule.id.clone(),
                            side: rule.subject_side,
                            subject: id,
                            target: class.clone(),
                            virtual_class: virtual_class.clone(),
                        });
                    }
                }
            }
            Relationship::Descriptivity { .. } => {
                // Already rewritten into an equality rule by conformation
                // (object view) or handled by hiding (value view).
            }
        }
    }
    Ok((eqs, sims))
}

/// A hash-join bucket holding one inline candidate or a spilled list.
enum Bucket {
    One(ObjectId),
    Many(Vec<ObjectId>),
}

impl Bucket {
    fn push(&mut self, id: ObjectId) {
        match self {
            Bucket::One(first) => *self = Bucket::Many(vec![*first, id]),
            Bucket::Many(v) => v.push(id),
        }
    }

    fn as_slice(&self) -> &[ObjectId] {
        match self {
            Bucket::One(id) => std::slice::from_ref(id),
            Bucket::Many(v) => v,
        }
    }
}

/// Evaluates one rule's interobject and intraobject conditions on a
/// candidate pair. Shared by the from-scratch resolution pass above and
/// the incremental re-matcher ([`crate::incremental`]), so both gates
/// agree by construction.
pub(crate) fn check_pair(
    conf: &Conformed,
    rule: &interop_spec::ComparisonRule,
    lobj: &interop_model::Object,
    robj: &interop_model::Object,
) -> Result<bool, MergeError> {
    for ic in &rule.inter {
        let lv = eval_path_ref(&conf.local.db, lobj, &ic.local)?;
        let rv = eval_path_ref(&conf.remote.db, robj, &ic.remote)?;
        if lv.is_null() || rv.is_null() {
            return Ok(false);
        }
        let ok = match lv.compare(&rv) {
            Some(ord) => ic.op.test(ord),
            None => ic.op == interop_constraint::CmpOp::Ne,
        };
        if !ok {
            return Ok(false);
        }
    }
    if eval_formula(&conf.local.db, lobj, &rule.intra_counterpart)? != Truth::True
        && rule.intra_counterpart != interop_constraint::Formula::True
    {
        return Ok(false);
    }
    if eval_formula(&conf.remote.db, robj, &rule.intra_subject)? != Truth::True
        && rule.intra_subject != interop_constraint::Formula::True
    {
        return Ok(false);
    }
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use interop_constraint::{Catalog, CmpOp, Formula};
    use interop_model::{ClassDef, Schema, Type};
    use interop_spec::{ComparisonRule, InterCond, Spec};

    fn conformed_fixture() -> Conformed {
        let local_schema = Schema::new(
            "L",
            vec![ClassDef::new("Publication")
                .attr("isbn", Type::Str)
                .attr("title", Type::Str)],
        )
        .unwrap();
        let remote_schema = Schema::new(
            "R",
            vec![
                ClassDef::new("Item")
                    .attr("isbn", Type::Str)
                    .attr("title", Type::Str),
                ClassDef::new("Proceedings")
                    .isa("Item")
                    .attr("ref?", Type::Bool),
            ],
        )
        .unwrap();
        let mut ldb = Database::new(local_schema, 1);
        ldb.create("Publication", vec![("isbn", "A".into())])
            .unwrap();
        ldb.create("Publication", vec![("isbn", "B".into())])
            .unwrap();
        let mut rdb = Database::new(remote_schema, 2);
        rdb.create("Item", vec![("isbn", "A".into())]).unwrap();
        rdb.create(
            "Proceedings",
            vec![("isbn", "C".into()), ("ref?", true.into())],
        )
        .unwrap();
        rdb.create(
            "Proceedings",
            vec![("isbn", "D".into()), ("ref?", false.into())],
        )
        .unwrap();
        let mut spec = Spec::new("L", "R");
        spec.add_rule(ComparisonRule::equality(
            "r1",
            "Publication",
            "Item",
            vec![InterCond::eq("isbn", "isbn")],
        ));
        spec.add_rule(ComparisonRule::similarity(
            "r3",
            Side::Remote,
            "Proceedings",
            "RefereedPubl",
            Formula::cmp("ref?", CmpOp::Eq, true),
        ));
        interop_conform::conform(&ldb, &Catalog::new(), &rdb, &Catalog::new(), &spec).unwrap()
    }

    #[test]
    fn hash_join_finds_equalities() {
        let conf = conformed_fixture();
        let (eqs, _) = resolve(&conf).unwrap();
        assert_eq!(eqs.len(), 1);
        assert_eq!(eqs[0].rule, RuleId::new("r1"));
        // local A (space 1) matched remote A (space 2).
        assert_eq!(eqs[0].local.space(), 1);
        assert_eq!(eqs[0].remote.space(), 2);
    }

    #[test]
    fn similarity_filters_on_condition() {
        let conf = conformed_fixture();
        let (_, sims) = resolve(&conf).unwrap();
        // Only the ref?=true proceedings is similar; Item extension
        // includes Proceedings but the rule is on Proceedings directly.
        assert_eq!(sims.len(), 1);
        assert_eq!(sims[0].target.as_str(), "RefereedPubl");
        assert!(sims[0].virtual_class.is_none());
    }

    #[test]
    fn null_join_keys_never_match() {
        let local_schema = Schema::new("L", vec![ClassDef::new("A").attr("k", Type::Str)]).unwrap();
        let remote_schema =
            Schema::new("R", vec![ClassDef::new("B").attr("k", Type::Str)]).unwrap();
        let mut ldb = Database::new(local_schema, 1);
        ldb.create("A", vec![]).unwrap();
        let mut rdb = Database::new(remote_schema, 2);
        rdb.create("B", vec![]).unwrap();
        let mut spec = Spec::new("L", "R");
        spec.add_rule(ComparisonRule::equality(
            "r",
            "A",
            "B",
            vec![InterCond::eq("k", "k")],
        ));
        let conf =
            interop_conform::conform(&ldb, &Catalog::new(), &rdb, &Catalog::new(), &spec).unwrap();
        let (eqs, _) = resolve(&conf).unwrap();
        assert!(eqs.is_empty());
    }

    #[test]
    fn intra_conditions_gate_equality() {
        let local_schema = Schema::new(
            "L",
            vec![ClassDef::new("A").attr("k", Type::Str).attr("x", Type::Int)],
        )
        .unwrap();
        let remote_schema =
            Schema::new("R", vec![ClassDef::new("B").attr("k", Type::Str)]).unwrap();
        let mut ldb = Database::new(local_schema, 1);
        ldb.create("A", vec![("k", "1".into()), ("x", 5i64.into())])
            .unwrap();
        let mut rdb = Database::new(remote_schema, 2);
        rdb.create("B", vec![("k", "1".into())]).unwrap();
        let mut spec = Spec::new("L", "R");
        spec.add_rule(
            ComparisonRule::equality("r", "A", "B", vec![InterCond::eq("k", "k")])
                .with_counterpart_condition(Formula::cmp("x", CmpOp::Ge, 10i64)),
        );
        let conf =
            interop_conform::conform(&ldb, &Catalog::new(), &rdb, &Catalog::new(), &spec).unwrap();
        let (eqs, _) = resolve(&conf).unwrap();
        assert!(
            eqs.is_empty(),
            "intra condition x >= 10 must gate the match"
        );
    }
}
