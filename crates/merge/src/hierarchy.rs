//! Global class hierarchy inference (§2.3).
//!
//! The instance-based approach's crux: after merging, both
//! classifications apply to the global object set, and relationships
//! *between* local and remote classes are detected extensionally —
//! `C isa C'` iff every (global) member of `C` is also a member of `C'`.
//! Partial overlaps give rise to virtual subclasses such as the paper's
//! `RefereedProceedings`; approximate similarity gives rise to virtual
//! superclasses.
//!
//! Inference is *count-based*: one pass over the global objects
//! accumulates per-class extents and per-(local class, remote class)
//! overlap counters, and subset/overlap relations are then read off the
//! counts (`ext(a) ⊆ ext(b)` iff `|ext(a) ∩ ext(b)| = |ext(a)|`) without
//! materialising or cloning any extent pair. Only genuine partial
//! overlaps pay for an intersection, built by merging two sorted id
//! lists. Classes with *equal* extents yield a single canonical
//! equivalence edge (local isa remote) so the inferred edge set stays
//! acyclic — see [`infer_hierarchy`].

use std::collections::{BTreeMap, BTreeSet};

use interop_conform::Conformed;
use interop_model::{ClassName, FxHashMap, ObjectId, Schema};
use interop_spec::Side;

use crate::fuse::FuseResult;
use crate::resolve::SimMatch;
use crate::view::MergeOptions;

/// A virtual subclass arising from a partial extent overlap of a local
/// and a remote class.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IntersectionClass {
    /// The generated (or designer-named) class name.
    pub name: ClassName,
    /// The overlapping pair: (local-side class, remote-side class).
    pub parents: (ClassName, ClassName),
    /// The shared extension.
    pub extension: BTreeSet<ObjectId>,
}

/// The inferred global hierarchy.
#[derive(Clone, Debug, Default)]
pub struct Hierarchy {
    /// Extension (global ids) of every class, closed upward over both
    /// schemas' `isa` chains.
    pub extensions: BTreeMap<ClassName, BTreeSet<ObjectId>>,
    /// `isa` edges `(subclass, superclass)`: schema edges from both sides
    /// plus extensionally inferred cross edges.
    pub edges: BTreeSet<(ClassName, ClassName)>,
    /// Virtual subclasses from partial overlaps.
    pub intersections: Vec<IntersectionClass>,
    /// Virtual superclasses introduced by approximate similarity.
    pub virtual_superclasses: BTreeSet<ClassName>,
}

impl Hierarchy {
    /// The extension of a class (empty if unknown).
    pub fn extension(&self, class: &ClassName) -> &BTreeSet<ObjectId> {
        static EMPTY: std::sync::OnceLock<BTreeSet<ObjectId>> = std::sync::OnceLock::new();
        self.extensions
            .get(class)
            .unwrap_or_else(|| EMPTY.get_or_init(BTreeSet::new))
    }

    /// Is `sub isa sup` in the inferred hierarchy (direct edge)?
    pub fn is_direct_subclass(&self, sub: &ClassName, sup: &ClassName) -> bool {
        self.edges.contains(&(sub.clone(), sup.clone()))
    }

    /// Whether the inferred `isa` edge set is a DAG (no directed cycle).
    ///
    /// [`infer_hierarchy`] guarantees this by construction (equal-extent
    /// pairs emit a single canonical edge); the incremental engine
    /// re-checks it as a patch invariant after every delta application.
    pub fn is_acyclic(&self) -> bool {
        let mut adj: BTreeMap<&ClassName, Vec<&ClassName>> = BTreeMap::new();
        for (sub, sup) in &self.edges {
            adj.entry(sub).or_default().push(sup);
        }
        // DFS three-colouring: 1 = open (on the stack), 2 = done.
        fn visit<'a>(
            n: &'a ClassName,
            adj: &BTreeMap<&'a ClassName, Vec<&'a ClassName>>,
            state: &mut BTreeMap<&'a ClassName, u8>,
        ) -> bool {
            match state.get(n) {
                Some(1) => return false,
                Some(2) => return true,
                _ => {}
            }
            state.insert(n, 1);
            for m in adj.get(n).into_iter().flatten() {
                if !visit(m, adj, state) {
                    return false;
                }
            }
            state.insert(n, 2);
            true
        }
        let mut state: BTreeMap<&ClassName, u8> = BTreeMap::new();
        let nodes: Vec<&ClassName> = adj.keys().copied().collect();
        nodes.into_iter().all(|n| visit(n, &adj, &mut state))
    }
}

/// Which side of the federation a class name belongs to.
#[derive(Clone, Copy, PartialEq, Eq)]
pub(crate) enum ChainSide {
    Local,
    Remote,
    /// A virtual class (intersection or approx-similarity superclass):
    /// in neither schema, so it has no ancestors and joins no cross pair.
    Virtual,
}

/// Infers the global hierarchy from fused memberships.
///
/// Cross edges between a local class `a` and a remote class `b` are read
/// off overlap counts: `a isa b` iff `|ext(a) ∩ ext(b)| = |ext(a)|`, and
/// symmetrically. When both hold (equal non-empty extents) the classes
/// are extensionally *equivalent*; a single canonical edge `b isa a` —
/// the remote class files under the local one, the integration's home
/// vocabulary — is emitted instead of the mutual pair, keeping the
/// inferred edge set acyclic. The tie-break is deterministic because
/// every counted pair is ordered (local, remote).
pub fn infer_hierarchy(
    conf: &Conformed,
    fused: &FuseResult,
    sims: &[SimMatch],
    opts: &MergeOptions,
) -> Hierarchy {
    let local = &conf.local.db.schema;
    let remote = &conf.remote.db.schema;
    let mut h = Hierarchy::default();
    // Interned class table: the hot pass below counts pairs and extents
    // by small dense indices instead of hashing class-name strings. The
    // pointer cache short-circuits interning for repeated clones of the
    // same shared class-name allocation (the overwhelmingly common case —
    // object classes are clones of schema-owned names); distinct
    // allocations spelling the same class fall back to the string intern,
    // so aliasing is impossible.
    let mut names: Vec<ClassName> = Vec::new();
    let mut index: FxHashMap<ClassName, u32> = FxHashMap::default();
    let mut ptr_cache: FxHashMap<usize, u32> = FxHashMap::default();
    // Memoised upward-closure per interned class: side + chain indices.
    let mut chains: Vec<Option<(ChainSide, Vec<u32>)>> = Vec::new();
    // 1. One pass over the global objects: per-class extents (gid lists
    //    stay sorted because objects iterate in ascending id order) and
    //    per-(local class, remote class) overlap counters.
    let mut ext_acc: Vec<Vec<ObjectId>> = Vec::new();
    let mut overlap: FxHashMap<(u32, u32), usize> = FxHashMap::default();
    let mut lbuf: Vec<u32> = Vec::new();
    let mut rbuf: Vec<u32> = Vec::new();
    for g in fused.objects.values() {
        lbuf.clear();
        rbuf.clear();
        for c in &g.classes {
            let ci = match ptr_cache.get(&c.alloc_ptr()) {
                Some(&i) => i as usize,
                None => {
                    let i = intern(c, &mut names, &mut index);
                    ptr_cache.insert(c.alloc_ptr(), i);
                    i as usize
                }
            };
            if chains.len() < names.len() {
                chains.resize(names.len(), None);
            }
            if chains[ci].is_none() {
                let (side, chain_names) = chain_any(local, remote, c);
                let chain: Vec<u32> = chain_names
                    .iter()
                    .map(|a| intern(a, &mut names, &mut index))
                    .collect();
                chains.resize(names.len().max(chains.len()), None);
                chains[ci] = Some((side, chain));
            }
            let (side, chain) = chains[ci].as_ref().expect("filled above");
            if ext_acc.len() < names.len() {
                ext_acc.resize(names.len(), Vec::new());
            }
            for &ai in chain {
                let ext = &mut ext_acc[ai as usize];
                // An ancestor reachable from two of the object's classes
                // repeats back-to-back — dedup against the tail.
                if ext.last() != Some(&g.id) {
                    ext.push(g.id);
                }
                let buf = match side {
                    ChainSide::Local => &mut lbuf,
                    ChainSide::Remote => &mut rbuf,
                    ChainSide::Virtual => continue,
                };
                if !buf.contains(&ai) {
                    buf.push(ai);
                }
            }
        }
        for &a in &lbuf {
            for &b in &rbuf {
                *overlap.entry((a, b)).or_insert(0) += 1;
            }
        }
    }
    // 2. Schema edges.
    for schema in [local, remote] {
        for def in schema.classes() {
            if let Some(p) = &def.parent {
                h.edges.insert((def.name.clone(), p.clone()));
            }
        }
    }
    // 3. Extensionally inferred cross edges and intersections, derived
    //    from the counters in ascending (local, remote) pair order so the
    //    intersection list is deterministic.
    let mut pairs: Vec<((u32, u32), usize)> = overlap.into_iter().collect();
    pairs.sort_unstable_by(|x, y| {
        (&names[x.0 .0 as usize], &names[x.0 .1 as usize])
            .cmp(&(&names[y.0 .0 as usize], &names[y.0 .1 as usize]))
    });
    for ((ai, bi), shared) in pairs {
        let (a, b) = (&names[ai as usize], &names[bi as usize]);
        let na = ext_acc[ai as usize].len();
        let nb = ext_acc[bi as usize].len();
        let a_in_b = shared == na;
        let b_in_a = shared == nb;
        if a_in_b && b_in_a {
            // Equal extents: the classes are extensionally equivalent.
            // Emit the single canonical remote-isa-local edge (the local
            // schema is the integration's home vocabulary) instead of the
            // mutual pair, which would put a cycle in the DAG.
            h.edges.insert((b.clone(), a.clone()));
        } else if a_in_b {
            h.edges.insert((a.clone(), b.clone()));
        } else if b_in_a {
            h.edges.insert((b.clone(), a.clone()));
        } else {
            let inter = intersect_sorted(&ext_acc[ai as usize], &ext_acc[bi as usize]);
            debug_assert_eq!(inter.len(), shared);
            let name = opts
                .intersection_names
                .get(&(a.clone(), b.clone()))
                .cloned()
                .unwrap_or_else(|| ClassName::new(format!("{b}And{a}")));
            h.extensions.insert(name.clone(), inter.clone());
            h.edges.insert((name.clone(), a.clone()));
            h.edges.insert((name.clone(), b.clone()));
            h.intersections.push(IntersectionClass {
                name,
                parents: (a.clone(), b.clone()),
                extension: inter,
            });
        }
    }
    // Snapshot the accumulated extents into the deterministic output map
    // (sorted id lists collect into `BTreeSet` in linear time). Entries
    // already present — intersection classes — take precedence.
    for (i, ids) in ext_acc.into_iter().enumerate() {
        if !ids.is_empty() {
            h.extensions
                .entry(names[i].clone())
                .or_insert_with(|| ids.into_iter().collect());
        }
    }
    // 4. Virtual superclasses from approximate similarity:
    //    ext(Cᵛ) = ext(C) ∪ {subjects}; C isa Cᵛ.
    for s in sims {
        if let Some(v) = &s.virtual_class {
            h.virtual_superclasses.insert(v.clone());
            let mut ext = h.extension(&s.target).clone();
            if let Some(gid) = fused.id_map.get(&s.subject) {
                ext.insert(*gid);
            }
            h.extensions.entry(v.clone()).or_default().extend(ext);
            h.edges.insert((s.target.clone(), v.clone()));
            // The subject's own class is also generalised by Cᵛ.
            let subj_class = match s.side {
                Side::Local => conf.local.db.object(s.subject).map(|o| o.class.clone()),
                Side::Remote => conf.remote.db.object(s.subject).map(|o| o.class.clone()),
            };
            if let Some(sc) = subj_class {
                h.edges.insert((sc, v.clone()));
            }
        }
    }
    h
}

/// Interns a class name, returning its dense index.
fn intern(c: &ClassName, names: &mut Vec<ClassName>, index: &mut FxHashMap<ClassName, u32>) -> u32 {
    if let Some(&i) = index.get(c) {
        return i;
    }
    let i = names.len() as u32;
    names.push(c.clone());
    index.insert(c.clone(), i);
    i
}

/// A class's side and upward closure (self plus ancestors), looked up in
/// whichever schema declares it. Shared with [`crate::incremental`],
/// whose extent/overlap counter patches must dedup ancestor chains
/// exactly as the from-scratch pass above does.
pub(crate) fn chain_any(
    local: &Schema,
    remote: &Schema,
    class: &ClassName,
) -> (ChainSide, Vec<ClassName>) {
    if local.class(class).is_some() {
        (ChainSide::Local, local.self_and_ancestors(class))
    } else if remote.class(class).is_some() {
        (ChainSide::Remote, remote.self_and_ancestors(class))
    } else {
        (ChainSide::Virtual, vec![class.clone()])
    }
}

/// Intersection of two ascending id lists (shared linear-merge walk).
fn intersect_sorted(a: &[ObjectId], b: &[ObjectId]) -> BTreeSet<ObjectId> {
    interop_model::intersect_sorted(a, b).into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fuse::fuse;
    use crate::resolve::resolve;
    use interop_constraint::{Catalog, CmpOp, Formula};
    use interop_model::{ClassDef, Database, Type};
    use interop_spec::{ComparisonRule, InterCond, Spec};

    /// Figure-2 style fixture: some Proceedings are refereed (→ end up in
    /// RefereedPubl too), some are not; one Proceedings equals a local
    /// ScientificPubl.
    fn fixture() -> (Conformed, MergeOptions) {
        let local_schema = Schema::new(
            "L",
            vec![
                ClassDef::new("Publication").attr("isbn", Type::Str),
                ClassDef::new("ScientificPubl").isa("Publication"),
                ClassDef::new("RefereedPubl").isa("ScientificPubl"),
            ],
        )
        .unwrap();
        let remote_schema = Schema::new(
            "R",
            vec![
                ClassDef::new("Item").attr("isbn", Type::Str),
                ClassDef::new("Proceedings")
                    .isa("Item")
                    .attr("ref?", Type::Bool),
                ClassDef::new("Monograph").isa("Item"),
            ],
        )
        .unwrap();
        let mut ldb = Database::new(local_schema, 1);
        ldb.create("ScientificPubl", vec![("isbn", "X".into())])
            .unwrap();
        ldb.create("RefereedPubl", vec![("isbn", "Y".into())])
            .unwrap();
        let mut rdb = Database::new(remote_schema, 2);
        rdb.create(
            "Proceedings",
            vec![("isbn", "X".into()), ("ref?", true.into())],
        )
        .unwrap();
        rdb.create(
            "Proceedings",
            vec![("isbn", "N1".into()), ("ref?", false.into())],
        )
        .unwrap();
        rdb.create("Monograph", vec![("isbn", "M1".into())])
            .unwrap();
        let mut spec = Spec::new("L", "R");
        spec.add_rule(ComparisonRule::equality(
            "r1",
            "Publication",
            "Item",
            vec![InterCond::eq("isbn", "isbn")],
        ));
        spec.add_rule(ComparisonRule::similarity(
            "r3",
            Side::Remote,
            "Proceedings",
            "RefereedPubl",
            Formula::cmp("ref?", CmpOp::Eq, true),
        ));
        spec.add_rule(ComparisonRule::approx_similarity(
            "r6",
            Side::Remote,
            "Monograph",
            "ScientificPubl",
            "SciOrMono",
            Formula::True,
        ));
        let conf =
            interop_conform::conform(&ldb, &Catalog::new(), &rdb, &Catalog::new(), &spec).unwrap();
        let mut opts = MergeOptions::default();
        opts.intersection_names.insert(
            (
                ClassName::new("RefereedPubl"),
                ClassName::new("Proceedings"),
            ),
            ClassName::new("RefereedProceedings"),
        );
        (conf, opts)
    }

    fn build(conf: &Conformed, opts: &MergeOptions) -> (FuseResult, Hierarchy) {
        let (eqs, sims) = resolve(conf).unwrap();
        let fused = fuse(conf, &eqs, &sims).unwrap();
        let h = infer_hierarchy(conf, &fused, &sims, opts);
        (fused, h)
    }

    /// Asserts the edge set has no directed cycle.
    fn assert_acyclic(h: &Hierarchy) {
        assert!(h.is_acyclic(), "inferred isa edges contain a cycle");
    }

    #[test]
    fn figure2_virtual_subclass_refereed_proceedings() {
        let (conf, opts) = fixture();
        let (_, h) = build(&conf, &opts);
        let inter = h
            .intersections
            .iter()
            .find(|i| i.name == ClassName::new("RefereedProceedings"))
            .expect("RefereedProceedings must arise");
        assert_eq!(
            inter.parents,
            (
                ClassName::new("RefereedPubl"),
                ClassName::new("Proceedings")
            )
        );
        assert_eq!(inter.extension.len(), 1);
        assert!(h.is_direct_subclass(
            &ClassName::new("RefereedProceedings"),
            &ClassName::new("Proceedings")
        ));
        assert!(h.is_direct_subclass(
            &ClassName::new("RefereedProceedings"),
            &ClassName::new("RefereedPubl")
        ));
    }

    #[test]
    fn extensions_close_upward_across_schemas() {
        let (conf, opts) = fixture();
        let (_, h) = build(&conf, &opts);
        // The merged X object (ScientificPubl = Proceedings) is in both
        // hierarchies' ancestors.
        assert!(h.extension(&ClassName::new("Publication")).iter().count() >= 2);
        assert!(!h.extension(&ClassName::new("Item")).is_empty());
        // RefereedPubl extension: local Y + the refereed proceedings X.
        assert_eq!(h.extension(&ClassName::new("RefereedPubl")).len(), 2);
    }

    #[test]
    fn approx_similarity_builds_virtual_superclass() {
        let (conf, opts) = fixture();
        let (_, h) = build(&conf, &opts);
        let v = ClassName::new("SciOrMono");
        assert!(h.virtual_superclasses.contains(&v));
        // ext(SciOrMono) ⊇ ext(ScientificPubl) ∪ {monograph}.
        let sci = h.extension(&ClassName::new("ScientificPubl"));
        let vext = h.extension(&v);
        assert!(sci.is_subset(vext));
        assert_eq!(vext.len(), sci.len() + 1);
        assert!(h.is_direct_subclass(&ClassName::new("ScientificPubl"), &v));
        assert!(h.is_direct_subclass(&ClassName::new("Monograph"), &v));
    }

    #[test]
    fn schema_edges_present() {
        let (conf, opts) = fixture();
        let (_, h) = build(&conf, &opts);
        assert!(h.is_direct_subclass(
            &ClassName::new("RefereedPubl"),
            &ClassName::new("ScientificPubl")
        ));
        assert!(h.is_direct_subclass(&ClassName::new("Proceedings"), &ClassName::new("Item")));
    }

    #[test]
    fn full_inclusion_yields_isa_edge() {
        // Every Monograph-free fixture: make all Proceedings refereed so
        // ext(Proceedings) ⊆ ext(RefereedPubl) → inferred isa edge.
        let local_schema = Schema::new(
            "L",
            vec![
                ClassDef::new("Publication").attr("isbn", Type::Str),
                ClassDef::new("RefereedPubl").isa("Publication"),
            ],
        )
        .unwrap();
        let remote_schema = Schema::new(
            "R",
            vec![
                ClassDef::new("Item").attr("isbn", Type::Str),
                ClassDef::new("Proceedings")
                    .isa("Item")
                    .attr("ref?", Type::Bool),
            ],
        )
        .unwrap();
        let ldb = Database::new(local_schema, 1);
        let mut rdb = Database::new(remote_schema, 2);
        rdb.create(
            "Proceedings",
            vec![("isbn", "P1".into()), ("ref?", true.into())],
        )
        .unwrap();
        let mut spec = Spec::new("L", "R");
        spec.add_rule(ComparisonRule::similarity(
            "r",
            Side::Remote,
            "Proceedings",
            "RefereedPubl",
            Formula::cmp("ref?", CmpOp::Eq, true),
        ));
        let conf =
            interop_conform::conform(&ldb, &Catalog::new(), &rdb, &Catalog::new(), &spec).unwrap();
        let (_, h) = build(&conf, &MergeOptions::default());
        assert!(h.is_direct_subclass(
            &ClassName::new("Proceedings"),
            &ClassName::new("RefereedPubl")
        ));
        assert!(h.intersections.is_empty());
    }

    #[test]
    fn equal_extents_yield_single_canonical_edge_not_a_cycle() {
        // Regression: a local and a remote class whose extents coincide
        // used to get *both* `a isa b` and `b isa a`, putting a cycle in
        // the supposed DAG. The canonical form is one remote-isa-local
        // equivalence edge.
        let local_schema = Schema::new("L", vec![ClassDef::new("A").attr("k", Type::Str)]).unwrap();
        let remote_schema =
            Schema::new("R", vec![ClassDef::new("B").attr("k", Type::Str)]).unwrap();
        let mut ldb = Database::new(local_schema, 1);
        ldb.create("A", vec![("k", "1".into())]).unwrap();
        ldb.create("A", vec![("k", "2".into())]).unwrap();
        let mut rdb = Database::new(remote_schema, 2);
        rdb.create("B", vec![("k", "1".into())]).unwrap();
        rdb.create("B", vec![("k", "2".into())]).unwrap();
        let mut spec = Spec::new("L", "R");
        spec.add_rule(ComparisonRule::equality(
            "r",
            "A",
            "B",
            vec![InterCond::eq("k", "k")],
        ));
        let conf =
            interop_conform::conform(&ldb, &Catalog::new(), &rdb, &Catalog::new(), &spec).unwrap();
        let (_, h) = build(&conf, &MergeOptions::default());
        let a = ClassName::new("A");
        let b = ClassName::new("B");
        assert!(h.is_direct_subclass(&b, &a), "canonical remote-isa-local");
        assert!(
            !h.is_direct_subclass(&a, &b),
            "mutual edge must not be emitted"
        );
        assert!(h.intersections.is_empty());
        assert_acyclic(&h);
    }

    #[test]
    fn inferred_edges_are_acyclic_on_fixtures() {
        let (conf, opts) = fixture();
        let (_, h) = build(&conf, &opts);
        assert_acyclic(&h);
    }
}
