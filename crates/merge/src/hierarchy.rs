//! Global class hierarchy inference (§2.3).
//!
//! The instance-based approach's crux: after merging, both
//! classifications apply to the global object set, and relationships
//! *between* local and remote classes are detected extensionally —
//! `C isa C'` iff every (global) member of `C` is also a member of `C'`.
//! Partial overlaps give rise to virtual subclasses such as the paper's
//! `RefereedProceedings`; approximate similarity gives rise to virtual
//! superclasses.

use std::collections::{BTreeMap, BTreeSet};

use interop_conform::Conformed;
use interop_model::{ClassName, ObjectId, Schema};
use interop_spec::Side;

use crate::fuse::FuseResult;
use crate::resolve::SimMatch;
use crate::view::MergeOptions;

/// A virtual subclass arising from a partial extent overlap of a local
/// and a remote class.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IntersectionClass {
    /// The generated (or designer-named) class name.
    pub name: ClassName,
    /// The overlapping pair: (local-side class, remote-side class).
    pub parents: (ClassName, ClassName),
    /// The shared extension.
    pub extension: BTreeSet<ObjectId>,
}

/// The inferred global hierarchy.
#[derive(Clone, Debug, Default)]
pub struct Hierarchy {
    /// Extension (global ids) of every class, closed upward over both
    /// schemas' `isa` chains.
    pub extensions: BTreeMap<ClassName, BTreeSet<ObjectId>>,
    /// `isa` edges `(subclass, superclass)`: schema edges from both sides
    /// plus extensionally inferred cross edges.
    pub edges: BTreeSet<(ClassName, ClassName)>,
    /// Virtual subclasses from partial overlaps.
    pub intersections: Vec<IntersectionClass>,
    /// Virtual superclasses introduced by approximate similarity.
    pub virtual_superclasses: BTreeSet<ClassName>,
}

impl Hierarchy {
    /// The extension of a class (empty if unknown).
    pub fn extension(&self, class: &ClassName) -> &BTreeSet<ObjectId> {
        static EMPTY: std::sync::OnceLock<BTreeSet<ObjectId>> = std::sync::OnceLock::new();
        self.extensions
            .get(class)
            .unwrap_or_else(|| EMPTY.get_or_init(BTreeSet::new))
    }

    /// Is `sub isa sup` in the inferred hierarchy (direct edge)?
    pub fn is_direct_subclass(&self, sub: &ClassName, sup: &ClassName) -> bool {
        self.edges.contains(&(sub.clone(), sup.clone()))
    }
}

fn ancestors_any(local: &Schema, remote: &Schema, class: &ClassName) -> Vec<ClassName> {
    if local.class(class).is_some() {
        local.self_and_ancestors(class)
    } else if remote.class(class).is_some() {
        remote.self_and_ancestors(class)
    } else {
        vec![class.clone()] // virtual class: no schema ancestors
    }
}

/// Infers the global hierarchy from fused memberships.
pub fn infer_hierarchy(
    conf: &Conformed,
    fused: &FuseResult,
    sims: &[SimMatch],
    opts: &MergeOptions,
) -> Hierarchy {
    let local = &conf.local.db.schema;
    let remote = &conf.remote.db.schema;
    let mut h = Hierarchy::default();
    // 1. Extensions, closed upward.
    for g in fused.objects.values() {
        for c in &g.classes {
            for anc in ancestors_any(local, remote, c) {
                h.extensions.entry(anc).or_default().insert(g.id);
            }
        }
    }
    // 2. Schema edges.
    for schema in [local, remote] {
        for def in schema.classes() {
            if let Some(p) = &def.parent {
                h.edges.insert((def.name.clone(), p.clone()));
            }
        }
    }
    // 3. Virtual superclasses from approximate similarity:
    //    ext(Cᵛ) = ext(C) ∪ {subjects}; C isa Cᵛ.
    for s in sims {
        if let Some(v) = &s.virtual_class {
            h.virtual_superclasses.insert(v.clone());
            let mut ext = h.extension(&s.target).clone();
            if let Some(gid) = fused.id_map.get(&s.subject) {
                ext.insert(*gid);
            }
            h.extensions.entry(v.clone()).or_default().extend(ext);
            h.edges.insert((s.target.clone(), v.clone()));
            // The subject's own class is also generalised by Cᵛ.
            let subj_class = match s.side {
                Side::Local => conf.local.db.object(s.subject).map(|o| o.class.clone()),
                Side::Remote => conf.remote.db.object(s.subject).map(|o| o.class.clone()),
            };
            if let Some(sc) = subj_class {
                h.edges.insert((sc, v.clone()));
            }
        }
    }
    // 4. Extensionally inferred cross edges and intersections.
    let local_classes: Vec<ClassName> = local.class_names().cloned().collect();
    let remote_classes: Vec<ClassName> = remote.class_names().cloned().collect();
    for a in &local_classes {
        for b in &remote_classes {
            let ea = h.extension(a).clone();
            let eb = h.extension(b).clone();
            if ea.is_empty() || eb.is_empty() {
                continue;
            }
            let inter: BTreeSet<ObjectId> = ea.intersection(&eb).copied().collect();
            let a_in_b = ea.is_subset(&eb);
            let b_in_a = eb.is_subset(&ea);
            if a_in_b {
                h.edges.insert((a.clone(), b.clone()));
            }
            if b_in_a {
                h.edges.insert((b.clone(), a.clone()));
            }
            if !inter.is_empty() && !a_in_b && !b_in_a {
                let name = opts
                    .intersection_names
                    .get(&(a.clone(), b.clone()))
                    .cloned()
                    .unwrap_or_else(|| ClassName::new(format!("{b}And{a}")));
                h.extensions.insert(name.clone(), inter.clone());
                h.edges.insert((name.clone(), a.clone()));
                h.edges.insert((name.clone(), b.clone()));
                h.intersections.push(IntersectionClass {
                    name,
                    parents: (a.clone(), b.clone()),
                    extension: inter,
                });
            }
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fuse::fuse;
    use crate::resolve::resolve;
    use interop_constraint::{Catalog, CmpOp, Formula};
    use interop_model::{ClassDef, Database, Type};
    use interop_spec::{ComparisonRule, InterCond, Spec};

    /// Figure-2 style fixture: some Proceedings are refereed (→ end up in
    /// RefereedPubl too), some are not; one Proceedings equals a local
    /// ScientificPubl.
    fn fixture() -> (Conformed, MergeOptions) {
        let local_schema = Schema::new(
            "L",
            vec![
                ClassDef::new("Publication").attr("isbn", Type::Str),
                ClassDef::new("ScientificPubl").isa("Publication"),
                ClassDef::new("RefereedPubl").isa("ScientificPubl"),
            ],
        )
        .unwrap();
        let remote_schema = Schema::new(
            "R",
            vec![
                ClassDef::new("Item").attr("isbn", Type::Str),
                ClassDef::new("Proceedings")
                    .isa("Item")
                    .attr("ref?", Type::Bool),
                ClassDef::new("Monograph").isa("Item"),
            ],
        )
        .unwrap();
        let mut ldb = Database::new(local_schema, 1);
        ldb.create("ScientificPubl", vec![("isbn", "X".into())])
            .unwrap();
        ldb.create("RefereedPubl", vec![("isbn", "Y".into())])
            .unwrap();
        let mut rdb = Database::new(remote_schema, 2);
        rdb.create(
            "Proceedings",
            vec![("isbn", "X".into()), ("ref?", true.into())],
        )
        .unwrap();
        rdb.create(
            "Proceedings",
            vec![("isbn", "N1".into()), ("ref?", false.into())],
        )
        .unwrap();
        rdb.create("Monograph", vec![("isbn", "M1".into())])
            .unwrap();
        let mut spec = Spec::new("L", "R");
        spec.add_rule(ComparisonRule::equality(
            "r1",
            "Publication",
            "Item",
            vec![InterCond::eq("isbn", "isbn")],
        ));
        spec.add_rule(ComparisonRule::similarity(
            "r3",
            Side::Remote,
            "Proceedings",
            "RefereedPubl",
            Formula::cmp("ref?", CmpOp::Eq, true),
        ));
        spec.add_rule(ComparisonRule::approx_similarity(
            "r6",
            Side::Remote,
            "Monograph",
            "ScientificPubl",
            "SciOrMono",
            Formula::True,
        ));
        let conf =
            interop_conform::conform(&ldb, &Catalog::new(), &rdb, &Catalog::new(), &spec).unwrap();
        let mut opts = MergeOptions::default();
        opts.intersection_names.insert(
            (
                ClassName::new("RefereedPubl"),
                ClassName::new("Proceedings"),
            ),
            ClassName::new("RefereedProceedings"),
        );
        (conf, opts)
    }

    fn build(conf: &Conformed, opts: &MergeOptions) -> (FuseResult, Hierarchy) {
        let (eqs, sims) = resolve(conf).unwrap();
        let fused = fuse(conf, &eqs, &sims).unwrap();
        let h = infer_hierarchy(conf, &fused, &sims, opts);
        (fused, h)
    }

    #[test]
    fn figure2_virtual_subclass_refereed_proceedings() {
        let (conf, opts) = fixture();
        let (_, h) = build(&conf, &opts);
        let inter = h
            .intersections
            .iter()
            .find(|i| i.name == ClassName::new("RefereedProceedings"))
            .expect("RefereedProceedings must arise");
        assert_eq!(
            inter.parents,
            (
                ClassName::new("RefereedPubl"),
                ClassName::new("Proceedings")
            )
        );
        assert_eq!(inter.extension.len(), 1);
        assert!(h.is_direct_subclass(
            &ClassName::new("RefereedProceedings"),
            &ClassName::new("Proceedings")
        ));
        assert!(h.is_direct_subclass(
            &ClassName::new("RefereedProceedings"),
            &ClassName::new("RefereedPubl")
        ));
    }

    #[test]
    fn extensions_close_upward_across_schemas() {
        let (conf, opts) = fixture();
        let (_, h) = build(&conf, &opts);
        // The merged X object (ScientificPubl = Proceedings) is in both
        // hierarchies' ancestors.
        assert!(h.extension(&ClassName::new("Publication")).iter().count() >= 2);
        assert!(!h.extension(&ClassName::new("Item")).is_empty());
        // RefereedPubl extension: local Y + the refereed proceedings X.
        assert_eq!(h.extension(&ClassName::new("RefereedPubl")).len(), 2);
    }

    #[test]
    fn approx_similarity_builds_virtual_superclass() {
        let (conf, opts) = fixture();
        let (_, h) = build(&conf, &opts);
        let v = ClassName::new("SciOrMono");
        assert!(h.virtual_superclasses.contains(&v));
        // ext(SciOrMono) ⊇ ext(ScientificPubl) ∪ {monograph}.
        let sci = h.extension(&ClassName::new("ScientificPubl"));
        let vext = h.extension(&v);
        assert!(sci.is_subset(vext));
        assert_eq!(vext.len(), sci.len() + 1);
        assert!(h.is_direct_subclass(&ClassName::new("ScientificPubl"), &v));
        assert!(h.is_direct_subclass(&ClassName::new("Monograph"), &v));
    }

    #[test]
    fn schema_edges_present() {
        let (conf, opts) = fixture();
        let (_, h) = build(&conf, &opts);
        assert!(h.is_direct_subclass(
            &ClassName::new("RefereedPubl"),
            &ClassName::new("ScientificPubl")
        ));
        assert!(h.is_direct_subclass(&ClassName::new("Proceedings"), &ClassName::new("Item")));
    }

    #[test]
    fn full_inclusion_yields_isa_edge() {
        // Every Monograph-free fixture: make all Proceedings refereed so
        // ext(Proceedings) ⊆ ext(RefereedPubl) → inferred isa edge.
        let local_schema = Schema::new(
            "L",
            vec![
                ClassDef::new("Publication").attr("isbn", Type::Str),
                ClassDef::new("RefereedPubl").isa("Publication"),
            ],
        )
        .unwrap();
        let remote_schema = Schema::new(
            "R",
            vec![
                ClassDef::new("Item").attr("isbn", Type::Str),
                ClassDef::new("Proceedings")
                    .isa("Item")
                    .attr("ref?", Type::Bool),
            ],
        )
        .unwrap();
        let ldb = Database::new(local_schema, 1);
        let mut rdb = Database::new(remote_schema, 2);
        rdb.create(
            "Proceedings",
            vec![("isbn", "P1".into()), ("ref?", true.into())],
        )
        .unwrap();
        let mut spec = Spec::new("L", "R");
        spec.add_rule(ComparisonRule::similarity(
            "r",
            Side::Remote,
            "Proceedings",
            "RefereedPubl",
            Formula::cmp("ref?", CmpOp::Eq, true),
        ));
        let conf =
            interop_conform::conform(&ldb, &Catalog::new(), &rdb, &Catalog::new(), &spec).unwrap();
        let (_, h) = build(&conf, &MergeOptions::default());
        assert!(h.is_direct_subclass(
            &ClassName::new("Proceedings"),
            &ClassName::new("RefereedPubl")
        ));
        assert!(h.intersections.is_empty());
    }
}
