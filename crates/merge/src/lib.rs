//! # interop-merge
//!
//! The **merging phase** of §2.3: objects from the conformed local and
//! remote databases related by an equivalence relationship are merged
//! into single global objects; equivalent property values are fused
//! through decision functions; and — the crux of the paper's
//! instance-based approach — the **global class hierarchy is inferred
//! from the merged extents** rather than declared: `C isa C'` iff every
//! object of `C` is equal/similar to an object of `C'`, partial overlaps
//! yield virtual subclasses (the paper's `RefereedProceedings`), and
//! approximate similarity yields virtual superclasses.
//!
//! # Invariants
//!
//! * **Merge output is byte-stable.** Hashed collections are used for
//!   lookups and accumulation only, never iterated into results;
//!   everything user-visible is emitted from sorted passes. Union-find
//!   groups carry a deterministic leader, so global-id assignment is
//!   independent of tree shape.
//! * **The inferred `isa` edge set is acyclic**: equal-extent class
//!   pairs emit a single canonical `remote isa local` edge instead of a
//!   2-cycle (invariant-tested on random fixtures).
//! * **Count-based inference equals the naive oracle**: subset/overlap
//!   relations read off per-class extent and overlap counters agree
//!   with cloned-set computations (property-tested), and only genuine
//!   partial overlaps materialise an intersection class.

pub mod fuse;
pub mod hierarchy;
mod index;
pub mod resolve;
pub mod view;

pub use fuse::{fuse, FuseResult, GlobalObject, GLOBAL_SPACE};
pub use hierarchy::{infer_hierarchy, Hierarchy, IntersectionClass};
pub use resolve::{resolve, EqMatch, MergeError, SimMatch};
pub use view::{merge, IntegratedView, MergeOptions};
