//! # interop-merge
//!
//! The **merging phase** of §2.3: objects from the conformed local and
//! remote databases related by an equivalence relationship are merged
//! into single global objects; equivalent property values are fused
//! through decision functions; and — the crux of the paper's
//! instance-based approach — the **global class hierarchy is inferred
//! from the merged extents** rather than declared: `C isa C'` iff every
//! object of `C` is equal/similar to an object of `C'`, partial overlaps
//! yield virtual subclasses (the paper's `RefereedProceedings`), and
//! approximate similarity yields virtual superclasses.

pub mod fuse;
pub mod hierarchy;
mod index;
pub mod resolve;
pub mod view;

pub use fuse::{fuse, FuseResult, GlobalObject, GLOBAL_SPACE};
pub use hierarchy::{infer_hierarchy, Hierarchy, IntersectionClass};
pub use resolve::{resolve, EqMatch, MergeError, SimMatch};
pub use view::{merge, IntegratedView, MergeOptions};
