//! # interop-merge
//!
//! The **merging phase** of §2.3: objects from the conformed local and
//! remote databases related by an equivalence relationship are merged
//! into single global objects; equivalent property values are fused
//! through decision functions; and — the crux of the paper's
//! instance-based approach — the **global class hierarchy is inferred
//! from the merged extents** rather than declared: `C isa C'` iff every
//! object of `C` is equal/similar to an object of `C'`, partial overlaps
//! yield virtual subclasses (the paper's `RefereedProceedings`), and
//! approximate similarity yields virtual superclasses.
//!
//! # Invariants
//!
//! * **Merge output is byte-stable.** Hashed collections are used for
//!   lookups and accumulation only, never iterated into results;
//!   everything user-visible is emitted from sorted passes. Union-find
//!   groups carry a deterministic leader, so global-id assignment is
//!   independent of tree shape.
//! * **The inferred `isa` edge set is acyclic**: equal-extent class
//!   pairs emit a single canonical `remote isa local` edge instead of a
//!   2-cycle (invariant-tested on random fixtures).
//! * **Count-based inference equals the naive oracle**: subset/overlap
//!   relations read off per-class extent and overlap counters agree
//!   with cloned-set computations (property-tested), and only genuine
//!   partial overlaps materialise an intersection class.
//! * **Counter patching preserves the scratch counts.** The
//!   incremental engine ([`IncrementalMerge`]) maintains the same
//!   per-class extent and per-(local, remote) overlap counters by
//!   decrementing every unmerged group's contribution and incrementing
//!   every re-fused group's; decrements underflow-check and error
//!   rather than corrupt, and after any patch sequence the counters
//!   equal a from-scratch recount over the maintained view
//!   ([`IncrementalMerge::check_invariants`], exercised after every
//!   patch by the pipeline property suite).
//! * **Patched output equals scratch output byte-for-byte.** After
//!   every [`IncrementalMerge::apply`] the maintained view is
//!   `Debug`-identical to `merge` run from scratch on the patched
//!   conformed pair — group membership, fused values, notes order,
//!   and the re-inferred hierarchy included (differentially tested,
//!   transaction rollbacks included).

pub mod fuse;
pub mod hierarchy;
pub mod incremental;
mod index;
pub mod resolve;
pub mod view;

pub use fuse::{fuse, FuseResult, GlobalObject, GLOBAL_SPACE};
pub use hierarchy::{infer_hierarchy, Hierarchy, IntersectionClass};
pub use incremental::IncrementalMerge;
pub use resolve::{resolve, EqMatch, MergeError, SimMatch};
pub use view::{merge, IntegratedView, MergeOptions};
